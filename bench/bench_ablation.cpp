// Ablations for design choices called out in DESIGN.md — not paper
// experiments, but the evidence behind implementation decisions.
//
//   1. blocked vs naive matmul       — why the LAPACK plugin counts as the
//                                      "highly optimized" service of §6
//   2. binding negotiation cost      — what open_channel() adds per setup,
//                                      and why channels should be reused
//   3. registry query scaling        — XPath-lite over N stored WSDL docs
//                                      (the centralized registry's real
//                                      bottleneck curve)
//   4. lease sweep cost              — expire() over large registries
//                                      (volatile-component bookkeeping)
#include <benchmark/benchmark.h>

#include "container/container.hpp"
#include "plugins/linalg.hpp"
#include "plugins/standard.hpp"
#include "registry/xml_registry.hpp"
#include "util/rng.hpp"
#include "wsdl/descriptor.hpp"

namespace {

void BM_MatmulNaive(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  h2::Rng rng(1);
  auto a = rng.doubles(n * n);
  auto b = rng.doubles(n * n);
  for (auto _ : state) {
    auto c = h2::linalg::matmul_naive(a, b, n);
    benchmark::DoNotOptimize(c);
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MatmulNaive)->Arg(64)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_MatmulBlocked(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  h2::Rng rng(1);
  auto a = rng.doubles(n * n);
  auto b = rng.doubles(n * n);
  for (auto _ : state) {
    auto c = h2::linalg::matmul_blocked(a, b, n);
    benchmark::DoNotOptimize(c);
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MatmulBlocked)->Arg(64)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

// ---- binding negotiation overhead ---------------------------------------------

struct NegotiationWorld {
  h2::net::SimNetwork net;
  h2::kernel::PluginRepository repo;
  std::unique_ptr<h2::container::Container> host;
  h2::wsdl::Definitions wsdl;

  NegotiationWorld() {
    (void)h2::plugins::register_standard_plugins(repo);
    host = std::make_unique<h2::container::Container>("A", repo, net, *net.add_host("A"));
    h2::container::DeployOptions options;
    options.expose_soap = true;
    options.expose_http = true;
    options.expose_xdr = true;
    auto id = host->deploy("ping", options);
    wsdl = *host->describe(*id);
  }
};

void BM_OpenChannelNegotiated(benchmark::State& state) {
  NegotiationWorld world;
  for (auto _ : state) {
    auto channel = world.host->open_channel(world.wsdl);
    if (!channel.ok()) state.SkipWithError("negotiation failed");
    benchmark::DoNotOptimize(channel);
  }
  state.SetLabel("5 kinds tried, localobject wins");
}
BENCHMARK(BM_OpenChannelNegotiated);

void BM_OpenChannelDirect(benchmark::State& state) {
  NegotiationWorld world;
  std::vector<h2::wsdl::BindingKind> pref{h2::wsdl::BindingKind::kLocalObject};
  for (auto _ : state) {
    auto channel = world.host->open_channel(world.wsdl, pref);
    if (!channel.ok()) state.SkipWithError("open failed");
    benchmark::DoNotOptimize(channel);
  }
  state.SetLabel("single kind");
}
BENCHMARK(BM_OpenChannelDirect);

void BM_ChannelReuseVsReopen(benchmark::State& state) {
  NegotiationWorld world;
  bool reopen = state.range(0) == 1;
  auto channel = std::move(*world.host->open_channel(world.wsdl));
  std::vector<h2::Value> params{h2::Value::of_bytes({1, 2, 3}, "payload")};
  for (auto _ : state) {
    if (reopen) {
      auto fresh = world.host->open_channel(world.wsdl);
      benchmark::DoNotOptimize((*fresh)->invoke("ping", params));
    } else {
      benchmark::DoNotOptimize(channel->invoke("ping", params));
    }
  }
  state.SetLabel(reopen ? "reopen-every-call" : "reuse-channel");
}
BENCHMARK(BM_ChannelReuseVsReopen)->Arg(0)->Arg(1);

// ---- registry scaling -------------------------------------------------------------

h2::wsdl::Definitions make_doc(int index) {
  h2::wsdl::ServiceDescriptor d;
  d.name = "Svc" + std::to_string(index);
  d.operations.push_back({"run", {}, h2::ValueKind::kString});
  std::vector<h2::wsdl::EndpointSpec> endpoints{
      {index % 2 == 0 ? h2::wsdl::BindingKind::kSoap : h2::wsdl::BindingKind::kXdr,
       "xdr://h" + std::to_string(index) + ":9000", {}}};
  return *h2::wsdl::generate(d, endpoints);
}

void BM_RegistryXPathQuery(benchmark::State& state) {
  h2::VirtualClock clock;
  h2::reg::XmlRegistry registry(clock);
  auto docs = static_cast<int>(state.range(0));
  for (int i = 0; i < docs; ++i) (void)registry.add(make_doc(i));
  for (auto _ : state) {
    auto hits = registry.query("//binding/binding[@kind='xdr']");
    if (!hits.ok()) state.SkipWithError("query failed");
    benchmark::DoNotOptimize(hits);
  }
  state.counters["docs"] = docs;
  state.counters["hits"] = static_cast<double>(
      registry.query("//binding/binding[@kind='xdr']")->size());
}
BENCHMARK(BM_RegistryXPathQuery)->Arg(10)->Arg(100)->Arg(1000);

void BM_RegistryFindService(benchmark::State& state) {
  h2::VirtualClock clock;
  h2::reg::XmlRegistry registry(clock);
  auto docs = static_cast<int>(state.range(0));
  for (int i = 0; i < docs; ++i) (void)registry.add(make_doc(i));
  std::string target = "Svc" + std::to_string(docs / 2) + "Service";
  for (auto _ : state) {
    auto entry = registry.find_service(target);
    if (!entry.ok()) state.SkipWithError("miss");
    benchmark::DoNotOptimize(entry);
  }
  state.counters["docs"] = docs;
}
BENCHMARK(BM_RegistryFindService)->Arg(10)->Arg(100)->Arg(1000);

void BM_RegistryLeaseSweep(benchmark::State& state) {
  auto docs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    h2::VirtualClock clock;
    h2::reg::XmlRegistry registry(clock);
    for (int i = 0; i < docs; ++i) {
      // Half the entries carry a short lease.
      (void)registry.add(make_doc(i), i % 2 == 0 ? h2::kSecond : 0);
    }
    clock.advance(2 * h2::kSecond);
    state.ResumeTiming();
    auto dropped = registry.expire();
    if (dropped != static_cast<std::size_t>(docs) / 2 + static_cast<std::size_t>(docs % 2 != 0 ? 1 : 0) &&
        dropped != static_cast<std::size_t>(docs) / 2) {
      state.SkipWithError("unexpected sweep count");
    }
  }
  state.counters["docs"] = docs;
}
BENCHMARK(BM_RegistryLeaseSweep)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
