// EXP-BATCH — what adaptive RPC batching buys on the wire paths. A batch
// packs B calls into ONE wire message (an "H2RB" XDR frame or one SOAP
// envelope with repeated operation elements), so the per-message costs —
// frame/envelope assembly, the network round trip, HTTP headers, reply
// demux — are paid once instead of B times, while per-call costs
// (marshal/dispatch/unmarshal of each sub-call) are unchanged.
//
//   BM_XdrSingles/B vs BM_XdrBatch/B    B "add" calls one-by-one vs one
//                                       H2RB frame; the headline claim is
//                                       the B=64 items/s ratio (>=5x)
//   BM_SoapSingles/B vs BM_SoapBatch/B  same over SOAP 1.1 + HTTP, where
//                                       per-message overhead (envelope,
//                                       headers, HTTP framing) is largest
//   BM_LocalSingles/B vs BM_LocalBatch/B  in-process floor: no wire, so
//                                       batching must cost ~nothing
//   BM_Coherency*Storm*                 64-key write storm through the
//                                       DVM: per-key update() fan-out vs
//                                       one coalesced update_batch();
//                                       "messages" counts wire messages
//                                       per storm (N*(M-1)*2 vs (M-1)*2
//                                       for full synchrony on M members)
#include <benchmark/benchmark.h>

#include "container/container.hpp"
#include "dvm/dvm.hpp"
#include "plugins/standard.hpp"
#include "transport/rpc.hpp"

namespace {

using namespace h2;

constexpr std::uint16_t kXdrPort = 9400;
constexpr std::uint16_t kHttpPort = 9480;

struct Wire {
  net::SimNetwork net;
  net::HostId client = 0, server = 0;
  std::shared_ptr<net::DispatcherMux> mux;
  std::optional<net::ServerHandle> handle;
  std::optional<net::SoapHttpServer> http;

  Wire() {
    client = *net.add_host("client");
    server = *net.add_host("server");
    mux = std::make_shared<net::DispatcherMux>();
    mux->add("add", [](std::span<const Value> params) -> Result<Value> {
      auto n = params.empty() ? Result<std::int64_t>(std::int64_t{0})
                              : params[0].as_int();
      if (!n.ok()) return n.error();
      return Value::of_int(*n + 1, "return");
    });
    handle.emplace(*net::serve_xdr(net, server, kXdrPort, mux));
    http.emplace(net, server, kHttpPort);
    (void)http->start();
    (void)http->mount("svc", mux);
  }
};

std::vector<net::BatchItem> make_items(std::size_t count) {
  std::vector<net::BatchItem> items;
  items.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    net::BatchItem item;
    item.operation = "add";
    item.params.push_back(Value::of_int(static_cast<std::int64_t>(i), "n"));
    items.push_back(std::move(item));
  }
  return items;
}

// One iteration = B logical calls, so items/s compares across shapes.
// CPU time measures endpoint cost; the "wire_calls_per_sec" counter is
// throughput against the VIRTUAL clock (100us links), i.e. what the
// batch saves on an actual network — one round trip instead of B.
void finish(benchmark::State& state, net::SimNetwork* net, Nanos wire_ns,
            std::size_t count) {
  const std::int64_t items = static_cast<std::int64_t>(state.iterations()) *
                             static_cast<std::int64_t>(count);
  state.SetItemsProcessed(items);
  if (net != nullptr && wire_ns > 0) {
    state.counters["wire_calls_per_sec"] =
        static_cast<double>(items) / (static_cast<double>(wire_ns) * 1e-9);
  }
}

void drive_singles(benchmark::State& state, net::Channel& channel,
                   std::size_t count, net::SimNetwork* net = nullptr) {
  const std::vector<Value> params{Value::of_int(1, "n")};
  const Nanos wire_start = net != nullptr ? net->clock().now() : 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < count; ++i) {
      auto result = channel.invoke("add", params);
      if (!result.ok()) {
        state.SkipWithError(result.error().message().c_str());
        return;
      }
      benchmark::DoNotOptimize(result);
    }
  }
  finish(state, net, net != nullptr ? net->clock().now() - wire_start : 0, count);
}

void drive_batch(benchmark::State& state, net::Channel& channel,
                 std::size_t count, net::SimNetwork* net = nullptr) {
  const std::vector<net::BatchItem> items = make_items(count);
  std::vector<Result<Value>> results;
  const Nanos wire_start = net != nullptr ? net->clock().now() : 0;
  for (auto _ : state) {
    auto status = channel.invoke_batch(items, results);
    if (!status.ok()) {
      state.SkipWithError(status.error().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(results);
  }
  finish(state, net, net != nullptr ? net->clock().now() - wire_start : 0, count);
}

void BM_XdrSingles(benchmark::State& state) {
  Wire wire;
  auto channel =
      net::make_xdr_channel(wire.net, wire.client, {"xdr", "server", kXdrPort, ""});
  drive_singles(state, *channel, static_cast<std::size_t>(state.range(0)),
                &wire.net);
}
BENCHMARK(BM_XdrSingles)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_XdrBatch(benchmark::State& state) {
  Wire wire;
  auto channel =
      net::make_xdr_channel(wire.net, wire.client, {"xdr", "server", kXdrPort, ""});
  drive_batch(state, *channel, static_cast<std::size_t>(state.range(0)),
              &wire.net);
}
BENCHMARK(BM_XdrBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_SoapSingles(benchmark::State& state) {
  Wire wire;
  auto channel = net::make_soap_channel(
      wire.net, wire.client,
      *net::Endpoint::parse("http://server:9480/svc"), "urn:bench");
  drive_singles(state, *channel, static_cast<std::size_t>(state.range(0)),
                &wire.net);
}
BENCHMARK(BM_SoapSingles)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_SoapBatch(benchmark::State& state) {
  Wire wire;
  auto channel = net::make_soap_channel(
      wire.net, wire.client,
      *net::Endpoint::parse("http://server:9480/svc"), "urn:bench");
  drive_batch(state, *channel, static_cast<std::size_t>(state.range(0)),
              &wire.net);
}
BENCHMARK(BM_SoapBatch)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_LocalSingles(benchmark::State& state) {
  Wire wire;
  auto channel = net::make_local_channel(*wire.mux);
  drive_singles(state, *channel, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_LocalSingles)->Arg(64);

void BM_LocalBatch(benchmark::State& state) {
  Wire wire;
  auto channel = net::make_local_channel(*wire.mux);
  drive_batch(state, *channel, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_LocalBatch)->Arg(64);

// ---- coherency write storms -------------------------------------------------

constexpr std::size_t kStormKeys = 64;
constexpr std::size_t kStormNodes = 4;

struct Cluster {
  net::SimNetwork net;
  kernel::PluginRepository repo;
  std::vector<std::unique_ptr<container::Container>> containers;
  std::unique_ptr<dvm::Dvm> dvm;
  std::vector<std::string> keys;
  std::vector<dvm::KV> writes;

  explicit Cluster(std::unique_ptr<dvm::CoherencyProtocol> protocol) {
    (void)plugins::register_standard_plugins(repo);
    dvm = std::make_unique<dvm::Dvm>("bench", std::move(protocol));
    for (std::size_t i = 0; i < kStormNodes; ++i) {
      std::string name = "n" + std::to_string(i);
      containers.push_back(std::make_unique<container::Container>(
          name, repo, net, *net.add_host(name)));
      (void)dvm->add_node(*containers.back());
    }
    for (std::size_t i = 0; i < kStormKeys; ++i) {
      keys.push_back("k" + std::to_string(i));
    }
    for (const std::string& key : keys) {
      writes.push_back({key, "v"});
    }
  }
};

void storm_singles(benchmark::State& state, Cluster& cluster) {
  const std::string origin = cluster.dvm->node_names()[0];
  std::uint64_t messages = 0, storms = 0;
  for (auto _ : state) {
    std::uint64_t before = cluster.net.stats().messages;
    for (const dvm::KV& kv : cluster.writes) {
      auto status = cluster.dvm->set(origin, kv.key, kv.value);
      if (!status.ok()) {
        state.SkipWithError(status.error().message().c_str());
        return;
      }
    }
    messages += cluster.net.stats().messages - before;
    ++storms;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kStormKeys));
  if (storms > 0) {
    state.counters["messages"] =
        static_cast<double>(messages) / static_cast<double>(storms);
  }
}

void storm_batch(benchmark::State& state, Cluster& cluster) {
  const std::string origin = cluster.dvm->node_names()[0];
  std::uint64_t messages = 0, storms = 0;
  for (auto _ : state) {
    std::uint64_t before = cluster.net.stats().messages;
    auto status = cluster.dvm->set_batch(origin, cluster.writes);
    if (!status.ok()) {
      state.SkipWithError(status.error().message().c_str());
      return;
    }
    messages += cluster.net.stats().messages - before;
    ++storms;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kStormKeys));
  if (storms > 0) {
    state.counters["messages"] =
        static_cast<double>(messages) / static_cast<double>(storms);
  }
}

void BM_CoherencyFullSyncStormSingles(benchmark::State& state) {
  Cluster cluster(dvm::make_full_synchrony());
  storm_singles(state, cluster);
}
BENCHMARK(BM_CoherencyFullSyncStormSingles);

void BM_CoherencyFullSyncStormBatch(benchmark::State& state) {
  Cluster cluster(dvm::make_full_synchrony());
  storm_batch(state, cluster);
}
BENCHMARK(BM_CoherencyFullSyncStormBatch);

void BM_CoherencyNeighborhoodStormSingles(benchmark::State& state) {
  Cluster cluster(dvm::make_neighborhood(1));
  storm_singles(state, cluster);
}
BENCHMARK(BM_CoherencyNeighborhoodStormSingles);

void BM_CoherencyNeighborhoodStormBatch(benchmark::State& state) {
  Cluster cluster(dvm::make_neighborhood(1));
  storm_batch(state, cluster);
}
BENCHMARK(BM_CoherencyNeighborhoodStormBatch);

void BM_CoherencyDecentralizedStormBatch(benchmark::State& state) {
  Cluster cluster(dvm::make_decentralized());
  storm_batch(state, cluster);
}
BENCHMARK(BM_CoherencyDecentralizedStormBatch);

}  // namespace

BENCHMARK_MAIN();
