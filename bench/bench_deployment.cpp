// EXP-DEPLOY — the paper's deployment claim (Section 5): "Due to the
// static nature of electronic commerce services, deployment technologies
// do not provide adequate support for automated service instantiation.
// Solutions vary among different application servers and they usually
// require human interaction." The Harness II answer is a "specialized
// lightweight component container for volatile DVMs and short lived
// applications".
//
// Two deployment pipelines for the same service, measured in virtual time:
//
//   heavyweight (business app-server style, Fig 3 done manually):
//     1. upload service code to the host          (code_size over the wire)
//     2. publish the interface document to a      (remote registry call)
//        remote UDDI-like registry
//     3. publish the access-point document        (second registry call —
//        separately, as WSDL's abstract/concrete   the paper notes the two
//        split encourages)                         documents are distinct)
//     4. application-server redeploy cycle        (fixed 30 s of virtual
//        with operator interaction                 time, the "human
//                                                   interaction" stand-in)
//
//   lightweight (Harness II container):
//     one deploy() call: in-process instantiation, endpoint binding,
//     lease-scoped registration in the local registry.
//
// Reported: virtual time per deployment and per-deployment messages, with
// #services swept. Expected shape: lightweight wins by orders of
// magnitude and both scale linearly, with lightweight's slope ~0 network.
#include <benchmark/benchmark.h>

#include "container/container.hpp"
#include "plugins/standard.hpp"
#include "registry/lookup.hpp"
#include "wsdl/io.hpp"

namespace {

constexpr h2::Nanos kOperatorCycle = 30 * h2::kSecond;  // redeploy + human
constexpr std::size_t kCodeSize = 256 * 1024;           // service archive

struct World {
  h2::net::SimNetwork net;
  h2::kernel::PluginRepository repo;
  std::unique_ptr<h2::container::Container> host;
  std::unique_ptr<h2::reg::RegistryNode> registry_node;  // remote UDDI stand-in

  World() {
    (void)h2::plugins::register_standard_plugins(repo);
    auto a = net.add_host("apphost");
    host = std::make_unique<h2::container::Container>("apphost", repo, net, *a);
    auto r = net.add_host("uddi");
    registry_node = std::make_unique<h2::reg::RegistryNode>(net, *r, net.clock());
    (void)registry_node->start();
  }
};

/// The heavyweight pipeline: every step is real traffic/virtual time.
h2::Status heavyweight_deploy(World& world, const std::string& plugin) {
  auto& net = world.net;
  auto uddi_host = world.registry_node->host();
  auto app_host = world.host->host();

  // 1. upload the service archive to the application host.
  h2::ByteBuffer archive(std::vector<std::uint8_t>(kCodeSize, 0x42));
  if (auto s = net.send(uddi_host, app_host, 1, std::move(archive)); !s.ok()) return s;
  net.pump();  // delivered (no server bound: the upload just costs time/bytes)

  // Instantiate in the container (the runtime part of Fig 3 step 3).
  h2::container::DeployOptions options;
  options.expose_soap = true;
  auto id = world.host->deploy(plugin, options);
  if (!id.ok()) return id.error();
  auto defs = *world.host->describe(*id);

  // 2 + 3. publish interface and access documents as two separate remote
  // registry interactions.
  for (int document = 0; document < 2; ++document) {
    h2::net::Endpoint endpoint{.scheme = "xdr",
                               .host = "uddi",
                               .port = h2::reg::kRegistryPort,
                               .path = ""};
    auto channel = h2::net::make_xdr_channel(net, app_host, endpoint);
    std::vector<h2::Value> params{
        h2::Value::of_string(h2::wsdl::to_xml_string(defs), "wsdl"),
        h2::Value::of_int(0, "lease")};
    auto result = channel->invoke("publish", params);
    if (!result.ok()) return result.error();
  }

  // 4. the application-server redeploy cycle with operator in the loop.
  net.clock().advance(kOperatorCycle);
  return h2::Status::success();
}

/// The lightweight pipeline: one automated call.
h2::Status lightweight_deploy(World& world, const std::string& plugin) {
  h2::container::DeployOptions options;
  options.expose_xdr = true;
  options.lease = 60 * h2::kSecond;  // volatile by default
  auto id = world.host->deploy(plugin, options);
  if (!id.ok()) return id.error();
  return h2::Status::success();
}

void BM_Deployment(benchmark::State& state) {
  bool heavyweight = state.range(0) == 1;
  auto services = static_cast<std::size_t>(state.range(1));
  double virtual_us = 0;
  double messages = 0;
  for (auto _ : state) {
    state.PauseTiming();
    World world;  // fresh environment per iteration
    state.ResumeTiming();
    h2::Nanos t0 = world.net.clock().now();
    auto m0 = world.net.stats().messages;
    for (std::size_t i = 0; i < services; ++i) {
      auto status = heavyweight ? heavyweight_deploy(world, "ping")
                                : lightweight_deploy(world, "ping");
      if (!status.ok()) {
        state.SkipWithError(status.error().describe().c_str());
        return;
      }
    }
    virtual_us = static_cast<double>(world.net.clock().now() - t0) / 1e3;
    messages = static_cast<double>(world.net.stats().messages - m0);
  }
  state.counters["virtual_us_total"] = virtual_us;
  state.counters["virtual_us_per_service"] = virtual_us / static_cast<double>(services);
  state.counters["messages"] = messages;
  state.SetLabel(heavyweight ? "heavyweight" : "lightweight");
}
BENCHMARK(BM_Deployment)->Apply([](benchmark::internal::Benchmark* b) {
  for (int heavyweight : {0, 1}) {
    for (int services : {1, 4, 16}) b->Args({heavyweight, services});
  }
  b->Unit(benchmark::kMillisecond);
});

// Deploy-to-first-call latency for the lightweight path only: the number
// that matters for "volatile DVMs and short lived applications".
void BM_LightweightDeployToFirstCall(benchmark::State& state) {
  double virtual_us = 0;
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    state.ResumeTiming();
    h2::Nanos t0 = world.net.clock().now();
    h2::container::DeployOptions options;
    options.expose_xdr = true;
    auto id = world.host->deploy("time", options);
    auto defs = *world.host->describe(*id);
    // First call arrives over the network binding (a remote client would).
    std::vector<h2::wsdl::BindingKind> pref{h2::wsdl::BindingKind::kXdr};
    auto channel = world.host->open_channel(defs, pref);
    auto result = (*channel)->invoke("getTime", {});
    if (!result.ok()) {
      state.SkipWithError(result.error().describe().c_str());
      return;
    }
    virtual_us = static_cast<double>(world.net.clock().now() - t0) / 1e3;
  }
  state.counters["virtual_us"] = virtual_us;
}
BENCHMARK(BM_LightweightDeployToFirstCall)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
