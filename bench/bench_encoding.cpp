// EXP-ENC — the paper's data-encoding claim (Section 5): "the default
// BASE64 encoding adopted by SOAP for XSD data types introduces
// unacceptable overheads for scientific data both in terms of the network
// bandwidth and the encoding/decoding time."
//
// Measures, for each payload codec and array size:
//   - encode throughput (real CPU time, bytes/sec of payload)
//   - decode throughput
//   - wire expansion ratio (wire bytes / payload bytes) as a counter
//
// Expected shape: raw ≈ xdr ≫ soap-base64 > soap-xml in throughput;
// expansion 1.0x for raw/xdr, ≥4/3x for soap-base64, worse for soap-xml.
#include <benchmark/benchmark.h>

#include "encoding/codec.hpp"
#include "util/rng.hpp"

namespace {

enum CodecIndex : int { kRaw = 0, kXdr, kSoapB64, kSoapXml };

std::unique_ptr<h2::enc::Codec> make_codec(int index) {
  switch (index) {
    case kRaw: return h2::enc::make_raw_codec();
    case kXdr: return h2::enc::make_xdr_codec();
    case kSoapB64: return h2::enc::make_soap_base64_codec();
    default: return h2::enc::make_soap_xml_codec();
  }
}

void args_product(benchmark::internal::Benchmark* bench) {
  for (int codec : {kRaw, kXdr, kSoapB64, kSoapXml}) {
    for (int elems : {128, 4096, 131072, 1 << 20}) {
      bench->Args({codec, elems});
    }
  }
}

void BM_Encode(benchmark::State& state) {
  auto codec = make_codec(static_cast<int>(state.range(0)));
  auto n = static_cast<std::size_t>(state.range(1));
  h2::Rng rng(1);
  auto values = rng.doubles(n);
  std::size_t wire_size = 0;
  for (auto _ : state) {
    auto wire = codec->encode(values);
    wire_size = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 8));
  state.counters["wire_expansion"] =
      static_cast<double>(wire_size) / static_cast<double>(n * 8);
  state.SetLabel(codec->name());
}
BENCHMARK(BM_Encode)->Apply(args_product);

void BM_Decode(benchmark::State& state) {
  auto codec = make_codec(static_cast<int>(state.range(0)));
  auto n = static_cast<std::size_t>(state.range(1));
  h2::Rng rng(2);
  auto values = rng.doubles(n);
  auto wire = codec->encode(values);
  for (auto _ : state) {
    auto back = codec->decode(wire);
    if (!back.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 8));
  state.SetLabel(codec->name());
}
BENCHMARK(BM_Decode)->Apply(args_product);

// Round trip: what one marshal+unmarshal costs end to end — the number a
// binding implementor cares about.
void BM_EncodeDecodeRoundTrip(benchmark::State& state) {
  auto codec = make_codec(static_cast<int>(state.range(0)));
  auto n = static_cast<std::size_t>(state.range(1));
  h2::Rng rng(3);
  auto values = rng.doubles(n);
  for (auto _ : state) {
    auto back = codec->decode(codec->encode(values));
    if (!back.ok()) state.SkipWithError("round trip failed");
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * 8));
  state.SetLabel(codec->name());
}
BENCHMARK(BM_EncodeDecodeRoundTrip)->Apply([](benchmark::internal::Benchmark* b) {
  for (int codec : {kRaw, kXdr, kSoapB64, kSoapXml}) b->Args({codec, 65536});
});

}  // namespace

BENCHMARK_MAIN();
