// EXP-LOOP: the multi-reactor dividend. Three measurements on real
// threads and real sockets:
//   1. cross-loop post latency — how long a task posted from a foreign
//      thread waits before an EpollDriver loop runs it,
//   2. timer-wheel accuracy — how far from its requested deadline a
//      wheel timer actually fires under a live reactor,
//   3. RPC scaling — aggregate XDR calls/sec over loopback TCP with 1
//      vs 4 reactor loops serving 4 listeners (the PR 6 single-mux
//      shape vs the per-container-loop shape this PR introduces).
//
// Standalone binary (not google-benchmark): latency percentiles from
// raw samples plus a multi-section JSON report.
//
// Usage: bench_eventloop [--post-samples N] [--timer-samples N]
//                        [--rpc-rounds N] [--out FILE]
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "loop/epoll_driver.hpp"
#include "loop/event_loop.hpp"
#include "transport/marshal.hpp"
#include "transport/rpc.hpp"
#include "transport/socknet.hpp"
#include "util/clock.hpp"

namespace {

using namespace h2;
using namespace h2::net;

double percentile(std::vector<Nanos>& sorted, double p) {
  if (sorted.empty()) return 0;
  std::size_t idx = static_cast<std::size_t>(p * double(sorted.size() - 1));
  return double(sorted[idx]) / 1e3;  // ns -> us
}

struct Percentiles {
  std::size_t samples = 0;
  double p50_us = 0;
  double p99_us = 0;
};

Percentiles summarize(std::vector<Nanos> samples) {
  std::sort(samples.begin(), samples.end());
  return Percentiles{samples.size(), percentile(samples, 0.50),
                     percentile(samples, 0.99)};
}

/// Latency from a foreign-thread post() to the task running on the
/// loop's reactor thread. Sequential samples: each waits for delivery,
/// so the queue is empty and the number is pure wakeup + handoff cost.
Percentiles measure_post_latency(int samples) {
  loop::EventLoop target("bench/target");
  loop::EpollDriver driver(target);
  if (!driver.ok()) {
    std::fprintf(stderr, "fatal: epoll driver failed to start\n");
    std::exit(1);
  }
  WallClock wall;
  std::vector<Nanos> latencies;
  latencies.reserve(std::size_t(samples));
  for (int i = 0; i < samples; ++i) {
    std::atomic<Nanos> executed_at{-1};
    Nanos posted_at = wall.now();
    target.post([&executed_at, &wall] {
      executed_at.store(wall.now(), std::memory_order_release);
    });
    while (executed_at.load(std::memory_order_acquire) < 0) {
      // spin: the handoff is microseconds, a sleep would dominate it
    }
    latencies.push_back(executed_at.load() - posted_at);
  }
  driver.stop();
  return summarize(std::move(latencies));
}

/// Absolute error between a timer's requested deadline and the moment
/// its callback runs on the reactor thread. The wheel's tick (1ms) plus
/// epoll_wait's ms-granularity timeout bound the expected error.
Percentiles measure_timer_accuracy(int samples) {
  loop::EventLoop target("bench/timers");
  loop::EpollDriver driver(target);
  if (!driver.ok()) {
    std::fprintf(stderr, "fatal: epoll driver failed to start\n");
    std::exit(1);
  }
  WallClock wall;
  const Nanos delays[] = {kMillisecond, 2 * kMillisecond, 5 * kMillisecond};
  std::vector<Nanos> errors;
  errors.reserve(std::size_t(samples));
  for (int i = 0; i < samples; ++i) {
    const Nanos delay = delays[std::size_t(i) % (sizeof delays / sizeof delays[0])];
    std::atomic<Nanos> fired_at{-1};
    const Nanos armed_at = wall.now();
    (void)target.schedule(delay, [&fired_at, &wall] {
      fired_at.store(wall.now(), std::memory_order_release);
    });
    while (fired_at.load(std::memory_order_acquire) < 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    Nanos error = fired_at.load() - (armed_at + delay);
    errors.push_back(error < 0 ? -error : error);
  }
  driver.stop();
  return summarize(std::move(errors));
}

/// Wake coalescing under bursty cross-thread posting: hold the reactor
/// inside a task while a burst of posts piles up behind one pending
/// eventfd wakeup, release, and let a single drain swallow the burst.
/// The driver's own counters report how many eventfd writes were
/// suppressed and how the drain batch sizes distributed.
loop::EpollDriver::WakeStats measure_wake_coalescing(int bursts, int burst_size) {
  loop::EventLoop target("bench/wake");
  loop::EpollDriver driver(target);
  if (!driver.ok()) {
    std::fprintf(stderr, "fatal: epoll driver failed to start\n");
    std::exit(1);
  }
  for (int b = 0; b < bursts; ++b) {
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    std::atomic<bool> blocked{false};
    std::atomic<int> ran{0};
    target.post([&] {
      blocked.store(true);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    });
    while (!blocked.load()) std::this_thread::yield();
    for (int i = 0; i < burst_size; ++i) {
      target.post([&ran] { ran.fetch_add(1, std::memory_order_release); });
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_one();
    // Acquire pairs with the tasks' release increments: the reactor
    // thread is provably past this burst's locals before the next
    // iteration reuses their stack slots.
    while (ran.load(std::memory_order_acquire) < burst_size) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  loop::EpollDriver::WakeStats stats = driver.wake_stats();
  driver.stop();
  return stats;
}

struct RpcRow {
  std::size_t reactors = 0;
  std::size_t client_threads = 0;
  std::size_t ports = 0;
  std::uint64_t calls = 0;
  double wall_seconds = 0;
  double calls_per_sec = 0;
};

std::shared_ptr<DispatcherMux> make_scale_service() {
  auto mux = std::make_shared<DispatcherMux>();
  mux->add("scale", [](std::span<const Value> params) -> Result<Value> {
    auto values = params[0].as_doubles();
    if (!values.ok()) return values.error();
    for (double& v : *values) v *= 2.0;
    return Value::of_doubles(std::move(*values));
  });
  return mux;
}

/// Aggregate XDR calls/sec: `ports` listeners spread round-robin over
/// `reactors` loops, `threads` clients each hammering its own port over
/// a persistent connection. reactors=1 reproduces the single-mux PR 6
/// server; more reactors only helps if the loops genuinely run in
/// parallel on separate cores.
RpcRow run_rpc_once(std::size_t reactors, std::size_t threads, std::size_t ports,
                    int rounds_per_thread) {
  SockNet net(SockFamily::kTcp, reactors);
  HostId server = *net.add_host("server");
  auto service = make_scale_service();

  std::vector<ServerHandle> handles;
  for (std::size_t p = 0; p < ports; ++p) {
    auto handle = serve_xdr(net, server, std::uint16_t(9001 + p), service);
    if (!handle.ok()) {
      std::fprintf(stderr, "fatal: xdr server failed to start\n");
      std::exit(1);
    }
    handles.push_back(std::move(*handle));
  }

  std::vector<Value> params{Value::of_doubles({1, 2, 3, 4, 5, 6, 7, 8})};
  std::atomic<bool> failed{false};
  auto client_body = [&](std::size_t index) {
    HostId client = *net.add_host("client" + std::to_string(index));
    auto endpoint =
        Endpoint::parse("xdr://server:" + std::to_string(9001 + index % ports));
    auto channel = make_xdr_channel(net, client, *endpoint);
    for (int i = 0; i < rounds_per_thread && !failed.load(); ++i) {
      if (!channel->invoke("scale", params).ok()) {
        failed.store(true);
        return;
      }
    }
  };

  // Warmup: dial every connection and fault in the code paths once.
  {
    std::vector<std::thread> warm;
    for (std::size_t t = 0; t < threads; ++t) {
      warm.emplace_back([&, t] {
        HostId client = *net.add_host("warm" + std::to_string(t));
        auto endpoint =
            Endpoint::parse("xdr://server:" + std::to_string(9001 + t % ports));
        auto channel = make_xdr_channel(net, client, *endpoint);
        for (int i = 0; i < 20; ++i) (void)channel->invoke("scale", params);
      });
    }
    for (auto& t : warm) t.join();
  }

  WallClock wall;
  Nanos begin = wall.now();
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < threads; ++t) clients.emplace_back(client_body, t);
  for (auto& t : clients) t.join();
  Nanos elapsed = wall.now() - begin;
  if (failed.load()) {
    std::fprintf(stderr, "fatal: rpc call failed mid-benchmark\n");
    std::exit(1);
  }

  RpcRow row;
  row.reactors = net.reactor_count();
  row.client_threads = threads;
  row.ports = ports;
  row.calls = std::uint64_t(threads) * std::uint64_t(rounds_per_thread);
  row.wall_seconds = double(elapsed) / 1e9;
  row.calls_per_sec = double(row.calls) / row.wall_seconds;
  return row;
}

/// Best of `trials` runs. Every config gets the same trial count, so
/// the comparison stays fair; taking the max suppresses scheduler noise
/// from sharing cores with the host (the usual loopback-bench practice).
RpcRow run_rpc_config(std::size_t reactors, std::size_t threads, std::size_t ports,
                      int rounds_per_thread, int trials) {
  RpcRow best;
  for (int t = 0; t < trials; ++t) {
    RpcRow row = run_rpc_once(reactors, threads, ports, rounds_per_thread);
    if (row.calls_per_sec > best.calls_per_sec) best = row;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  int post_samples = 2000;
  int timer_samples = 150;
  int rpc_rounds = 4000;
  int trials = 3;
  // The tcp/xdr singles row of BENCH_sockets.json — the PR 6 single-mux
  // rate this PR's aggregate is judged against. Override after re-running
  // bench_sockets on different hardware.
  double recorded_baseline = 40868.5;
  std::string out_path = "BENCH_eventloop.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--post-samples") == 0) post_samples = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--timer-samples") == 0) timer_samples = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--rpc-rounds") == 0) rpc_rounds = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--trials") == 0) trials = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--baseline") == 0) recorded_baseline = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  Percentiles post = measure_post_latency(post_samples);
  std::printf("cross-loop post:  %zu samples  p50 %.1f us  p99 %.1f us\n",
              post.samples, post.p50_us, post.p99_us);

  Percentiles timer = measure_timer_accuracy(timer_samples);
  std::printf("timer accuracy:   %zu samples  p50 err %.1f us  p99 err %.1f us\n",
              timer.samples, timer.p50_us, timer.p99_us);

  loop::EpollDriver::WakeStats wake = measure_wake_coalescing(
      /*bursts=*/20, /*burst_size=*/256);
  std::printf("wake coalescing:  %llu requests -> %llu eventfd writes "
              "(%.1fx suppressed)  max batch %llu  batches 1/2-7/8-63/64+: "
              "%llu/%llu/%llu/%llu\n",
              static_cast<unsigned long long>(wake.wake_requests),
              static_cast<unsigned long long>(wake.wake_writes),
              wake.wake_writes > 0
                  ? double(wake.wake_requests) / double(wake.wake_writes)
                  : 0.0,
              static_cast<unsigned long long>(wake.max_batch),
              static_cast<unsigned long long>(wake.batch_1),
              static_cast<unsigned long long>(wake.batch_2_7),
              static_cast<unsigned long long>(wake.batch_8_63),
              static_cast<unsigned long long>(wake.batch_64_plus));

  constexpr std::size_t kPorts = 4;
  std::vector<RpcRow> rows;
  rows.push_back(run_rpc_config(1, 1, kPorts, rpc_rounds, trials));  // PR 6 baseline shape
  rows.push_back(run_rpc_config(1, 4, kPorts, rpc_rounds, trials));  // parallel clients, one mux
  rows.push_back(run_rpc_config(4, 4, kPorts, rpc_rounds, trials));  // one loop per listener

  std::printf("%-9s %-8s %-6s %12s %12s\n", "reactors", "clients", "ports", "calls",
              "calls/sec");
  for (const RpcRow& r : rows) {
    std::printf("%-9zu %-8zu %-6zu %12llu %12.0f\n", r.reactors, r.client_threads,
                r.ports, static_cast<unsigned long long>(r.calls), r.calls_per_sec);
  }

  // Headline: 4 reactor loops vs the single-mux single-client baseline —
  // the number the BENCH_sockets.json tcp/xdr singles row anchors.
  double single_rate = rows[0].calls_per_sec;
  double multi_rate = rows[2].calls_per_sec;
  double speedup = single_rate > 0 ? multi_rate / single_rate : 0;
  double reactor_gain =
      rows[1].calls_per_sec > 0 ? multi_rate / rows[1].calls_per_sec : 0;
  double vs_recorded = recorded_baseline > 0 ? multi_rate / recorded_baseline : 0;
  std::printf("\n4 reactors vs same-run single-mux: %.2fx aggregate "
              "(%.2fx from reactors alone)\n",
              speedup, reactor_gain);
  std::printf("4 reactors vs recorded BENCH_sockets baseline (%.0f calls/s): %.2fx\n",
              recorded_baseline, vs_recorded);

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "fatal: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"eventloop\",\n");
  std::fprintf(out,
               "  \"cross_loop_post\": {\"samples\": %zu, \"p50_us\": %.2f, "
               "\"p99_us\": %.2f},\n",
               post.samples, post.p50_us, post.p99_us);
  std::fprintf(out,
               "  \"timer_accuracy\": {\"samples\": %zu, \"p50_error_us\": %.2f, "
               "\"p99_error_us\": %.2f},\n",
               timer.samples, timer.p50_us, timer.p99_us);
  std::fprintf(out,
               "  \"wake_coalescing\": {\"wake_requests\": %llu, "
               "\"wake_writes\": %llu, \"batches\": %llu, \"tasks\": %llu, "
               "\"max_batch\": %llu, \"batch_size_distribution\": "
               "{\"1\": %llu, \"2_7\": %llu, \"8_63\": %llu, \"64_plus\": %llu}},\n",
               static_cast<unsigned long long>(wake.wake_requests),
               static_cast<unsigned long long>(wake.wake_writes),
               static_cast<unsigned long long>(wake.batches),
               static_cast<unsigned long long>(wake.tasks),
               static_cast<unsigned long long>(wake.max_batch),
               static_cast<unsigned long long>(wake.batch_1),
               static_cast<unsigned long long>(wake.batch_2_7),
               static_cast<unsigned long long>(wake.batch_8_63),
               static_cast<unsigned long long>(wake.batch_64_plus));
  std::fprintf(out, "  \"rpc_rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RpcRow& r = rows[i];
    std::fprintf(out,
                 "    {\"reactors\": %zu, \"client_threads\": %zu, \"ports\": %zu, "
                 "\"calls\": %llu, \"wall_seconds\": %.6f, \"calls_per_sec\": %.1f}%s\n",
                 r.reactors, r.client_threads, r.ports,
                 static_cast<unsigned long long>(r.calls), r.wall_seconds,
                 r.calls_per_sec, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"multi_reactor_vs_single_mux\": %.2f,\n", speedup);
  std::fprintf(out, "  \"reactor_scaling_at_4_clients\": %.2f,\n", reactor_gain);
  std::fprintf(out, "  \"recorded_baseline_calls_per_sec\": %.1f,\n", recorded_baseline);
  std::fprintf(out, "  \"multi_reactor_vs_recorded_baseline\": %.2f\n}\n", vs_recorded);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
