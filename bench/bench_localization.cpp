// EXP-LOC — the paper's localization claim (Section 5): "in case of
// components running in the same local system, exchange of data through an
// HTTP server and TCP/IP stack is an obvious overhead." Figure 5.
//
// One fixed call (ping with a 1 KiB payload) through each binding, between
// CO-LOCATED components (same sim host, loopback link). Reported per
// binding:
//   - real CPU time of the full client+server stack (the encode/frame/
//     parse work that exists even on loopback)
//   - virtual network time (loopback latency x messages)
//   - entities traversed and wire bytes, as counters
//
// Expected shape: localobject < local < xdr < soap on every axis.
#include <benchmark/benchmark.h>

#include "container/container.hpp"
#include "plugins/standard.hpp"

namespace {

struct World {
  h2::net::SimNetwork net;
  h2::kernel::PluginRepository repo;
  std::unique_ptr<h2::container::Container> host;
  h2::wsdl::Definitions wsdl;

  World() {
    (void)h2::plugins::register_standard_plugins(repo);
    auto id = net.add_host("A");
    host = std::make_unique<h2::container::Container>("A", repo, net, *id);
    h2::container::DeployOptions options;
    options.expose_soap = true;
    options.expose_mime = true;
    options.expose_xdr = true;
    auto instance = host->deploy("ping", options);
    wsdl = *host->describe(*instance);
  }
};

void run_binding(benchmark::State& state, h2::wsdl::BindingKind kind) {
  World world;
  std::vector<h2::wsdl::BindingKind> pref{kind};
  auto channel = world.host->open_channel(world.wsdl, pref);
  if (!channel.ok()) {
    state.SkipWithError(channel.error().describe().c_str());
    return;
  }
  std::vector<h2::Value> params{
      h2::Value::of_bytes(std::vector<std::uint8_t>(1024, 0xAB), "payload")};

  h2::Nanos virtual_start = world.net.clock().now();
  for (auto _ : state) {
    auto result = (*channel)->invoke("ping", params);
    if (!result.ok()) {
      state.SkipWithError(result.error().describe().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  h2::Nanos virtual_elapsed = world.net.clock().now() - virtual_start;

  auto stats = (*channel)->last_stats();
  state.counters["entities"] = static_cast<double>(stats.entities_traversed);
  state.counters["wire_bytes"] =
      static_cast<double>(stats.request_bytes + stats.response_bytes);
  state.counters["virtual_ns_per_call"] =
      static_cast<double>(virtual_elapsed) / static_cast<double>(state.iterations());
  state.SetLabel((*channel)->binding_name());
}

void BM_CoLocatedCall_LocalObject(benchmark::State& state) {
  run_binding(state, h2::wsdl::BindingKind::kLocalObject);
}
void BM_CoLocatedCall_Local(benchmark::State& state) {
  run_binding(state, h2::wsdl::BindingKind::kLocal);
}
void BM_CoLocatedCall_Xdr(benchmark::State& state) {
  run_binding(state, h2::wsdl::BindingKind::kXdr);
}
void BM_CoLocatedCall_Mime(benchmark::State& state) {
  run_binding(state, h2::wsdl::BindingKind::kMime);
}
void BM_CoLocatedCall_Soap(benchmark::State& state) {
  run_binding(state, h2::wsdl::BindingKind::kSoap);
}
BENCHMARK(BM_CoLocatedCall_LocalObject);
BENCHMARK(BM_CoLocatedCall_Local);
BENCHMARK(BM_CoLocatedCall_Xdr);
BENCHMARK(BM_CoLocatedCall_Mime);
BENCHMARK(BM_CoLocatedCall_Soap);

// Payload sweep over the two network bindings: shows the per-byte cost gap
// (SOAP pays base64/XML per byte; XDR pays a memcpy-ish cost).
void BM_CoLocatedPayloadSweep(benchmark::State& state) {
  World world;
  bool soap = state.range(0) == 1;
  std::vector<h2::wsdl::BindingKind> pref{soap ? h2::wsdl::BindingKind::kSoap
                                               : h2::wsdl::BindingKind::kXdr};
  auto channel = world.host->open_channel(world.wsdl, pref);
  auto n = static_cast<std::size_t>(state.range(1));
  std::vector<h2::Value> params{
      h2::Value::of_bytes(std::vector<std::uint8_t>(n, 7), "payload")};
  for (auto _ : state) {
    auto result = (*channel)->invoke("ping", params);
    if (!result.ok()) {
      state.SkipWithError(result.error().describe().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n));
  state.SetLabel(soap ? "soap" : "xdr");
}
BENCHMARK(BM_CoLocatedPayloadSweep)->Apply([](benchmark::internal::Benchmark* b) {
  for (int soap : {0, 1}) {
    for (int n : {1024, 65536, 1 << 20}) b->Args({soap, n});
  }
});

}  // namespace

BENCHMARK_MAIN();
