// EXP-LOOKUP — Section 5's discovery spectrum: "centralized lookup
// services ... are easy to implement and use, but they introduce a single
// point of failure and a potential scalability bottleneck. ... a
// completely decentralized approach leads to a registration phase that is
// fully localized and does not involve any network traffic, whereas the
// discovery phase performs an active lookup that can be expensive."
//
// Measures registration cost and discovery cost (virtual time + messages)
// for all three strategies over a sweep of cluster sizes. Expected shape:
//   register: decentralized ~0, neighborhood ~k calls, centralized 1 call
//   lookup:   centralized 1 call; decentralized O(nodes) on miss-path;
//             neighborhood local within k, O(nodes) beyond.
#include <benchmark/benchmark.h>

#include "registry/lookup.hpp"
#include "util/rng.hpp"
#include "wsdl/descriptor.hpp"

namespace {

enum StrategyIndex : int { kCentralized = 0, kDecentralized = 1, kNeighborhood = 2 };

struct World {
  h2::net::SimNetwork net;
  std::vector<std::unique_ptr<h2::reg::RegistryNode>> nodes;
  std::vector<h2::reg::RegistryNode*> raw;
  std::unique_ptr<h2::reg::LookupStrategy> strategy;

  World(int strategy_index, std::size_t node_count) {
    for (std::size_t i = 0; i < node_count; ++i) {
      auto host = net.add_host("n" + std::to_string(i));
      nodes.push_back(std::make_unique<h2::reg::RegistryNode>(net, *host, net.clock()));
      (void)nodes.back()->start();
      raw.push_back(nodes.back().get());
    }
    switch (strategy_index) {
      case kCentralized:
        strategy = h2::reg::make_centralized_lookup(raw, 0);
        break;
      case kDecentralized:
        strategy = h2::reg::make_decentralized_lookup(raw);
        break;
      default:
        strategy = h2::reg::make_neighborhood_lookup(raw, 2);
        break;
    }
  }
};

h2::wsdl::Definitions make_service(const std::string& name) {
  h2::wsdl::ServiceDescriptor d;
  d.name = name;
  d.operations.push_back({"run", {}, h2::ValueKind::kString});
  std::vector<h2::wsdl::EndpointSpec> endpoints{
      {h2::wsdl::BindingKind::kXdr, "xdr://x:9500", {}}};
  return *h2::wsdl::generate(d, endpoints);
}

void BM_Register(benchmark::State& state) {
  World world(static_cast<int>(state.range(0)),
              static_cast<std::size_t>(state.range(1)));
  h2::Rng rng(3);
  double virtual_us = 0;
  double messages = 0;
  int counter = 0;
  for (auto _ : state) {
    auto service = make_service("Svc" + std::to_string(counter++));
    std::size_t from = rng.next_below(world.raw.size());
    h2::Nanos t0 = world.net.clock().now();
    auto m0 = world.net.stats().messages;
    auto status = world.strategy->publish(from, service);
    if (!status.ok()) {
      state.SkipWithError(status.error().describe().c_str());
      return;
    }
    virtual_us += static_cast<double>(world.net.clock().now() - t0) / 1e3;
    messages += static_cast<double>(world.net.stats().messages - m0);
  }
  state.counters["virtual_us_per_register"] =
      virtual_us / static_cast<double>(state.iterations());
  state.counters["messages_per_register"] =
      messages / static_cast<double>(state.iterations());
  state.SetLabel(std::string(world.strategy->name()) + "/nodes=" +
                 std::to_string(state.range(1)));
}
BENCHMARK(BM_Register)->Apply([](benchmark::internal::Benchmark* b) {
  for (int strategy : {kCentralized, kDecentralized, kNeighborhood}) {
    for (int nodes : {4, 16, 64}) b->Args({strategy, nodes});
  }
});

void BM_Lookup(benchmark::State& state) {
  World world(static_cast<int>(state.range(0)),
              static_cast<std::size_t>(state.range(1)));
  // One provider publishes from node 1; consumers look up from random nodes.
  auto status = world.strategy->publish(1, make_service("Target"));
  if (!status.ok()) {
    state.SkipWithError(status.error().describe().c_str());
    return;
  }
  h2::Rng rng(5);
  double virtual_us = 0;
  double messages = 0;
  for (auto _ : state) {
    std::size_t from = rng.next_below(world.raw.size());
    h2::Nanos t0 = world.net.clock().now();
    auto m0 = world.net.stats().messages;
    auto found = world.strategy->lookup(from, "TargetService");
    if (!found.ok()) {
      state.SkipWithError(found.error().describe().c_str());
      return;
    }
    virtual_us += static_cast<double>(world.net.clock().now() - t0) / 1e3;
    messages += static_cast<double>(world.net.stats().messages - m0);
  }
  state.counters["virtual_us_per_lookup"] =
      virtual_us / static_cast<double>(state.iterations());
  state.counters["messages_per_lookup"] =
      messages / static_cast<double>(state.iterations());
  state.SetLabel(std::string(world.strategy->name()) + "/nodes=" +
                 std::to_string(state.range(1)));
}
BENCHMARK(BM_Lookup)->Apply([](benchmark::internal::Benchmark* b) {
  for (int strategy : {kCentralized, kDecentralized, kNeighborhood}) {
    for (int nodes : {4, 16, 64}) b->Args({strategy, nodes});
  }
});

// Lookup miss: the worst case the paper warns about for active queries.
void BM_LookupMiss(benchmark::State& state) {
  World world(static_cast<int>(state.range(0)), 16);
  double messages = 0;
  for (auto _ : state) {
    auto m0 = world.net.stats().messages;
    auto found = world.strategy->lookup(0, "GhostService");
    if (found.ok()) {
      state.SkipWithError("unexpected hit");
      return;
    }
    messages += static_cast<double>(world.net.stats().messages - m0);
  }
  state.counters["messages_per_miss"] =
      messages / static_cast<double>(state.iterations());
  state.SetLabel(world.strategy->name());
}
BENCHMARK(BM_LookupMiss)->Apply([](benchmark::internal::Benchmark* b) {
  for (int strategy : {kCentralized, kDecentralized, kNeighborhood}) {
    b->Args({strategy});
  }
});

}  // namespace

BENCHMARK_MAIN();
