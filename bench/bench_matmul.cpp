// EXP-MATMUL — the Figure 8 service end to end: "The standard SOAP binding
// introduces an encoding overhead as well as several intermediate steps in
// the execution that are generally unacceptable for high performance
// distributed computations" — but as N grows, O(N^3) compute swamps the
// O(N^2) encoding, so the curves converge; the crossover is where binding
// choice stops mattering.
//
// MatMul(n x n) through localobject / xdr / soap between co-located
// components, n swept. Real time includes the actual multiplication.
// The "overhead_pct" counter reports (binding_time - compute_time) /
// binding_time measured against the localobject baseline at the same n.
#include <benchmark/benchmark.h>

#include "container/container.hpp"
#include "plugins/standard.hpp"
#include "util/rng.hpp"

namespace {

struct World {
  h2::net::SimNetwork net;
  h2::kernel::PluginRepository repo;
  std::unique_ptr<h2::container::Container> host;
  h2::wsdl::Definitions wsdl;

  World() {
    (void)h2::plugins::register_standard_plugins(repo);
    auto id = net.add_host("A");
    host = std::make_unique<h2::container::Container>("A", repo, net, *id);
    h2::container::DeployOptions options;
    options.expose_soap = true;
    options.expose_mime = true;
    options.expose_xdr = true;
    auto instance = host->deploy("mmul", options);
    wsdl = *host->describe(*instance);
  }
};

enum BindingIndex : int { kLocalObject = 0, kXdr = 1, kMime = 2, kSoap = 3 };

h2::wsdl::BindingKind kind_of(int index) {
  switch (index) {
    case kLocalObject: return h2::wsdl::BindingKind::kLocalObject;
    case kXdr: return h2::wsdl::BindingKind::kXdr;
    case kMime: return h2::wsdl::BindingKind::kMime;
    default: return h2::wsdl::BindingKind::kSoap;
  }
}

const char* label_of(int index) {
  switch (index) {
    case kLocalObject: return "localobject";
    case kXdr: return "xdr";
    case kMime: return "mime";
    default: return "soap";
  }
}

void BM_MatMulService(benchmark::State& state) {
  World world;
  auto n = static_cast<std::size_t>(state.range(1));
  std::vector<h2::wsdl::BindingKind> pref{kind_of(static_cast<int>(state.range(0)))};
  auto channel = world.host->open_channel(world.wsdl, pref);
  if (!channel.ok()) {
    state.SkipWithError(channel.error().describe().c_str());
    return;
  }
  h2::Rng rng(n);
  std::vector<h2::Value> params{h2::Value::of_doubles(rng.doubles(n * n), "mata"),
                                h2::Value::of_doubles(rng.doubles(n * n), "matb")};
  for (auto _ : state) {
    auto result = (*channel)->invoke("getResult", params);
    if (!result.ok()) {
      state.SkipWithError(result.error().describe().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  // flops of the multiplication itself, so the tool reports useful rates.
  state.counters["flops_per_call"] = static_cast<double>(2 * n * n * n);
  state.counters["wire_bytes"] = static_cast<double>(
      (*channel)->last_stats().request_bytes + (*channel)->last_stats().response_bytes);
  state.SetLabel(std::string(label_of(static_cast<int>(state.range(0)))) +
                 "/n=" + std::to_string(n));
}
BENCHMARK(BM_MatMulService)->Apply([](benchmark::internal::Benchmark* b) {
  for (int binding : {kLocalObject, kXdr, kMime, kSoap}) {
    for (int n : {8, 32, 128, 256}) b->Args({binding, n});
  }
  b->Unit(benchmark::kMicrosecond);
});

}  // namespace

BENCHMARK_MAIN();
