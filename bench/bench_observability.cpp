// EXP-OBS — the cost of the observability layer. The design budget is
// <5% overhead on kernel.call with metrics on and tracing off (the
// default production configuration): the instrumented path adds one map
// hit the call made anyway, two relaxed-atomic metric updates through
// cached handles and two virtual-clock reads.
//
//   BM_UninstrumentedCall        representative component op (16x16 mmul)
//                                with set_instrumentation(false)
//   BM_InstrumentedCall          same op, the default: metrics on, tracer off
//   BM_TracedCall                same op, metrics on + a span per call
//   BM_*CallFloor                the same trio on an empty ping — the
//                                worst case, where the call itself does
//                                almost nothing and the fixed ~ns cost of
//                                the atomics is the whole bill
//
// plus micro-benches for the primitives themselves (counter add,
// histogram observe, span start/finish, and the disabled-span branch).
#include <benchmark/benchmark.h>

#include "kernel/kernel.hpp"
#include "obs/trace.hpp"
#include "plugins/standard.hpp"
#include "util/rng.hpp"

namespace {

struct World {
  h2::net::SimNetwork net;
  h2::kernel::PluginRepository repo;
  std::unique_ptr<h2::kernel::Kernel> kernel;

  World() {
    (void)h2::plugins::register_standard_plugins(repo);
    auto host = net.add_host("A");
    kernel = std::make_unique<h2::kernel::Kernel>("A", repo, net, *host);
    (void)kernel->load("ping");
    (void)kernel->load("mmul");
  }
};

void run_call(benchmark::State& state, bool instrument, bool trace,
              std::string_view plugin, std::string_view op,
              const std::vector<h2::Value>& params) {
  World world;
  world.kernel->set_instrumentation(instrument);
  world.net.tracer().set_enabled(trace);
  for (auto _ : state) {
    auto result = world.kernel->call(plugin, op, params);
    if (!result.ok()) {
      state.SkipWithError(result.error().describe().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

// Representative call: a 16x16 matrix multiply, the kind of work a
// compute component actually does per invocation. The budget claim is
// made against this shape.
std::vector<h2::Value> mmul_params() {
  constexpr std::size_t n = 16;
  h2::Rng rng(7);
  return {h2::Value::of_doubles(rng.doubles(n * n), "mata"),
          h2::Value::of_doubles(rng.doubles(n * n), "matb")};
}

void BM_UninstrumentedCall(benchmark::State& state) {
  run_call(state, /*instrument=*/false, /*trace=*/false, "mmul", "getResult",
           mmul_params());
}
void BM_InstrumentedCall(benchmark::State& state) {
  run_call(state, /*instrument=*/true, /*trace=*/false, "mmul", "getResult",
           mmul_params());
}
void BM_TracedCall(benchmark::State& state) {
  run_call(state, /*instrument=*/true, /*trace=*/true, "mmul", "getResult",
           mmul_params());
}
BENCHMARK(BM_UninstrumentedCall);
BENCHMARK(BM_InstrumentedCall);
BENCHMARK(BM_TracedCall);

// Floor: an empty ping dispatch (~60ns). Reported so the fixed cost of
// the instrumentation is visible in absolute nanoseconds.
std::vector<h2::Value> ping_params() {
  return {h2::Value::of_bytes(std::vector<std::uint8_t>(64, 0xAB), "payload")};
}

void BM_UninstrumentedCallFloor(benchmark::State& state) {
  run_call(state, false, false, "ping", "ping", ping_params());
}
void BM_InstrumentedCallFloor(benchmark::State& state) {
  run_call(state, true, false, "ping", "ping", ping_params());
}
void BM_TracedCallFloor(benchmark::State& state) {
  run_call(state, true, true, "ping", "ping", ping_params());
}
BENCHMARK(BM_UninstrumentedCallFloor);
BENCHMARK(BM_InstrumentedCallFloor);
BENCHMARK(BM_TracedCallFloor);

void BM_CounterAdd(benchmark::State& state) {
  h2::obs::MetricsRegistry registry;
  h2::obs::Counter& hits = registry.counter("h2.bench.hits");
  for (auto _ : state) {
    hits.add();
    benchmark::DoNotOptimize(hits.value());
  }
}
BENCHMARK(BM_CounterAdd);

void BM_CounterLookupAndAdd(benchmark::State& state) {
  // The cold path the cached handles avoid: name-map hit per increment.
  h2::obs::MetricsRegistry registry;
  registry.counter("h2.bench.hits");
  for (auto _ : state) {
    registry.counter("h2.bench.hits").add();
  }
}
BENCHMARK(BM_CounterLookupAndAdd);

void BM_HistogramObserve(benchmark::State& state) {
  h2::obs::MetricsRegistry registry;
  h2::obs::Histogram& lat = registry.histogram("h2.bench.latency");
  std::int64_t v = 1;
  for (auto _ : state) {
    lat.observe(v);
    v = (v * 31) % 1000000007;  // spread across buckets, no rng in the loop
  }
  benchmark::DoNotOptimize(lat.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_SpanDisabled(benchmark::State& state) {
  h2::obs::Tracer tracer;  // disabled by default
  for (auto _ : state) {
    h2::obs::Span span = tracer.start_span("noop");
    span.finish();
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanStartFinish(benchmark::State& state) {
  h2::VirtualClock clock;
  h2::obs::Tracer tracer(&clock);
  tracer.set_enabled(true);
  for (auto _ : state) {
    h2::obs::Span span = tracer.start_span("op");
    span.finish();
  }
  state.counters["dropped"] = static_cast<double>(tracer.dropped());
}
BENCHMARK(BM_SpanStartFinish);

}  // namespace

BENCHMARK_MAIN();
