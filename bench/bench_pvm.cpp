// EXP-PVM — the cost of the emulation layering of Fig 2. The paper argues
// plugin synergy gives "far superior" functionality; the implied bargain
// is that the layering overhead (hpvmd -> p2p -> network) stays a modest
// constant factor over using the transport plugin directly.
//
// Measures round-trip message cost at several payload sizes through:
//   - raw p2p plugin send+recv (the primitive)
//   - pvm_send + pvm_recv through hpvmd (the emulation)
// plus pvm spawn cost, local and remote. Expected shape: pvm/p2p real-time
// ratio < ~3x, identical virtual network time for same-size payloads
// (the emulation adds CPU layers, not wire bytes).
#include <benchmark/benchmark.h>

#include "pvm/hpvmd.hpp"

#include "plugins/mpi_comm.hpp"
#include "plugins/standard.hpp"
#include "util/rng.hpp"

namespace {

struct World {
  h2::net::SimNetwork net;
  h2::kernel::PluginRepository repo;
  std::vector<std::unique_ptr<h2::kernel::Kernel>> kernels;

  World() {
    (void)h2::plugins::register_standard_plugins(repo);
    (void)h2::pvm::register_pvm_plugin(repo);
    for (const char* name : {"hostA", "hostB"}) {
      auto host = net.add_host(name);
      kernels.push_back(std::make_unique<h2::kernel::Kernel>(name, repo, net, *host));
    }
    for (auto& k : kernels) {
      for (const char* p : {"p2p", "spawn", "table", "event", "hpvmd"}) {
        (void)k->load(p);
      }
      std::vector<h2::Value> config{h2::Value::of_string("hostA,hostB", "hosts")};
      (void)k->call("hpvmd", "config", config);
    }
  }
};

void BM_RawP2pRoundTrip(benchmark::State& state) {
  World world;
  auto n = static_cast<std::size_t>(state.range(0));
  h2::Rng rng(1);
  auto payload = rng.bytes(n);
  std::vector<h2::Value> send_params{h2::Value::of_string("hostB", "dest"),
                                     h2::Value::of_int(1, "tag"),
                                     h2::Value::of_bytes(payload, "payload")};
  std::vector<h2::Value> back_params{h2::Value::of_string("hostA", "dest"),
                                     h2::Value::of_int(2, "tag"),
                                     h2::Value::of_bytes(payload, "payload")};
  std::vector<h2::Value> tag1{h2::Value::of_int(1, "tag")};
  std::vector<h2::Value> tag2{h2::Value::of_int(2, "tag")};
  for (auto _ : state) {
    (void)world.kernels[0]->call("p2p", "send", send_params);
    auto got = world.kernels[1]->call("p2p", "recv", tag1);
    (void)world.kernels[1]->call("p2p", "send", back_params);
    auto back = world.kernels[0]->call("p2p", "recv", tag2);
    if (!back.ok()) {
      state.SkipWithError(back.error().describe().c_str());
      return;
    }
    benchmark::DoNotOptimize(got);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 2 * n));
  state.SetLabel("raw-p2p");
}
BENCHMARK(BM_RawP2pRoundTrip)->Arg(64)->Arg(4096)->Arg(262144);

void BM_PvmRoundTrip(benchmark::State& state) {
  World world;
  auto n = static_cast<std::size_t>(state.range(0));
  h2::Rng rng(2);
  auto payload = rng.bytes(n);
  auto a = *h2::pvm::PvmTask::enroll(*world.kernels[0], "a");
  auto b = *h2::pvm::PvmTask::enroll(*world.kernels[1], "b");
  for (auto _ : state) {
    (void)a.send(b.tid(), 1, payload);
    auto got = b.recv(1);
    (void)b.send(a.tid(), 2, payload);
    auto back = a.recv(2);
    if (!back.ok()) {
      state.SkipWithError(back.error().describe().c_str());
      return;
    }
    benchmark::DoNotOptimize(got);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * 2 * n));
  state.SetLabel("pvm-emulation");
}
BENCHMARK(BM_PvmRoundTrip)->Arg(64)->Arg(4096)->Arg(262144);

void BM_PvmSpawn(benchmark::State& state) {
  World world;
  bool remote = state.range(0) == 1;
  auto console = *h2::pvm::PvmTask::enroll(*world.kernels[0], "console");
  double messages = 0;
  for (auto _ : state) {
    auto m0 = world.net.stats().messages;
    auto tid = console.spawn("worker", remote ? "hostB" : "hostA");
    if (!tid.ok()) {
      state.SkipWithError(tid.error().describe().c_str());
      return;
    }
    messages += static_cast<double>(world.net.stats().messages - m0);
    benchmark::DoNotOptimize(tid);
  }
  state.counters["messages_per_spawn"] =
      messages / static_cast<double>(state.iterations());
  state.SetLabel(remote ? "remote-spawn" : "local-spawn");
}
BENCHMARK(BM_PvmSpawn)->Arg(0)->Arg(1);

// ---- MPI emulation collectives -------------------------------------------------
// The same layering question for the MPI plugin: collectives are message
// patterns over p2p, so their cost must track the pattern's message count
// (binomial bcast = n-1 sends, barrier = 2(n-1)).

struct MpiWorld {
  h2::net::SimNetwork net;
  h2::kernel::PluginRepository repo;
  std::vector<std::unique_ptr<h2::kernel::Kernel>> kernels;
  std::vector<h2::plugins::mpi::MpiComm> comms;

  explicit MpiWorld(std::size_t ranks) {
    (void)h2::plugins::register_standard_plugins(repo);
    std::string csv;
    for (std::size_t i = 0; i < ranks; ++i) {
      std::string name = "r" + std::to_string(i);
      csv += (i ? "," : "") + name;
      auto host = net.add_host(name);
      kernels.push_back(std::make_unique<h2::kernel::Kernel>(name, repo, net, *host));
      (void)kernels.back()->load("p2p");
      (void)kernels.back()->load("mpi");
    }
    for (auto& k : kernels) {
      comms.push_back(*h2::plugins::mpi::MpiComm::init(*k, csv));
    }
  }
};

void BM_MpiBcast(benchmark::State& state) {
  MpiWorld world(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> buffer(4096, 0x5A);
  double messages = 0;
  for (auto _ : state) {
    auto m0 = world.net.stats().messages;
    auto status = h2::plugins::mpi::MpiComm::bcast(world.comms, 0, buffer);
    if (!status.ok()) {
      state.SkipWithError(status.error().describe().c_str());
      return;
    }
    messages += static_cast<double>(world.net.stats().messages - m0);
  }
  state.counters["messages_per_bcast"] =
      messages / static_cast<double>(state.iterations());
  state.SetLabel("ranks=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_MpiBcast)->Arg(2)->Arg(4)->Arg(8);

void BM_MpiBarrier(benchmark::State& state) {
  MpiWorld world(static_cast<std::size_t>(state.range(0)));
  double messages = 0;
  for (auto _ : state) {
    auto m0 = world.net.stats().messages;
    auto status = h2::plugins::mpi::MpiComm::barrier(world.comms);
    if (!status.ok()) {
      state.SkipWithError(status.error().describe().c_str());
      return;
    }
    messages += static_cast<double>(world.net.stats().messages - m0);
  }
  state.counters["messages_per_barrier"] =
      messages / static_cast<double>(state.iterations());
  state.SetLabel("ranks=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_MpiBarrier)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
