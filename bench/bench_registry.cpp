// EXP-REG: the indexed registry's scaling claims made measurable.
//
// The inverted index turns find_service and value-term XPath queries
// from O(entries) document walks into posting-list intersections, so
// per-call lookup cost must stay near-flat as the registry grows from
// 10k to 1M entries while the linear-scan baseline grows linearly
// (>= 100x apart at 1M). The lease timer-wheel makes an expiry tick
// O(expired): the same 1000-lease batch must cost about the same to
// expire whether 10k or 1M live leases are parked around it.
//
// Standalone binary (not google-benchmark): each row needs one giant
// registry built once and then probed by several differently-shaped
// measurements (indexed finds, scan baselines, a timed expiry tick),
// which the library's per-benchmark fixture model fits poorly. Registry
// time is a VirtualClock (leases expire on command); measurement time is
// the wall clock. Hand-rolled JSON schema, diffable across commits.
//
// Usage: bench_registry [--quick] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "registry/xml_registry.hpp"
#include "util/rng.hpp"
#include "wsdl/descriptor.hpp"

namespace {

using namespace h2;

constexpr Nanos kBaseLease = 3600 * kSecond;  ///< far-future: parks in the wheel
constexpr std::size_t kExpireBatch = 1000;    ///< short leases per expiry tick
constexpr std::size_t kDupsPerName = 16;      ///< entries sharing each service name

double us_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

wsdl::Definitions make_defs(const std::string& name) {
  wsdl::ServiceDescriptor d;
  d.name = name;
  d.operations.push_back({"run", {}, ValueKind::kString});
  std::vector<wsdl::EndpointSpec> endpoints{
      {wsdl::BindingKind::kSoap, "http://host:80/" + name, {}}};
  auto defs = wsdl::generate(d, endpoints);
  if (!defs.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", defs.error().describe().c_str());
    std::exit(1);
  }
  return *defs;
}

struct Row {
  std::size_t entries = 0;
  double publish_us_per_entry = 0;
  double indexed_find_us = 0;  ///< per find_service call
  double scan_find_us = 0;     ///< per linear-scan baseline call
  double find_speedup = 0;     ///< scan / indexed
  double indexed_query_us = 0; ///< per value-term XPath query
  std::size_t expired = 0;
  double expire_tick_us = 0;        ///< one expire() with `expired` due
  double expire_us_per_expired = 0; ///< tick / expired — must stay flat
  std::size_t index_terms = 0;
  std::size_t index_postings = 0;
  bool parity = true;  ///< indexed and scan picked the same winners
};

/// The pre-index semantics, reproduced in-bench: walk every live entry,
/// match on the embedded service name, keep the most recent registration.
const reg::Entry* scan_find(const std::vector<const reg::Entry*>& live,
                            const std::string& name) {
  const reg::Entry* best = nullptr;
  for (const reg::Entry* e : live) {
    if (e->defs.find_service(name) == nullptr) continue;
    if (best == nullptr || e->registered_at >= best->registered_at) best = e;
  }
  return best;
}

Row measure(std::size_t n) {
  Row row;
  row.entries = n;
  VirtualClock clock;
  reg::XmlRegistry registry(clock);

  const std::size_t names = std::max<std::size_t>(1, n / kDupsPerName);
  std::vector<wsdl::Definitions> pool;
  pool.reserve(names);
  for (std::size_t i = 0; i < names; ++i) {
    pool.push_back(make_defs("Svc" + std::to_string(i)));
  }

  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    if (!registry.add(pool[i % names], kBaseLease).ok()) std::exit(1);
    // Distinct registration stamps keep the most-recent-wins tie-break
    // meaningful across duplicates of one name.
    if (i % names == names - 1) clock.advance(kMillisecond);
  }
  row.publish_us_per_entry = us_since(start) / static_cast<double>(n);
  auto stats = registry.index_stats();
  row.index_terms = stats.terms;
  row.index_postings = stats.postings;

  Rng rng(42);
  // Indexed finds: posting-list walks, O(duplicates-of-name) per call.
  const std::size_t finds = 2000;
  start = std::chrono::steady_clock::now();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < finds; ++i) {
    std::string name = "Svc" + std::to_string(rng.next_below(names)) + "Service";
    if (registry.find_service(name).ok()) ++hits;
  }
  row.indexed_find_us = us_since(start) / static_cast<double>(finds);
  if (hits != finds) row.parity = false;

  // Scan baseline: the same lookups as full walks over entries(). Few
  // calls at the big sizes — each one is O(n) by construction.
  const std::size_t scans = n >= 1'000'000 ? 20 : 200;
  auto live = registry.entries();
  Rng scan_rng(42);
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < scans; ++i) {
    std::string name =
        "Svc" + std::to_string(scan_rng.next_below(names)) + "Service";
    const reg::Entry* winner = scan_find(live, name);
    auto indexed = registry.find_service(name);
    if (winner == nullptr || !indexed.ok() || winner->key != indexed->key) {
      row.parity = false;
    }
  }
  // The parity re-check rides inside the timed region but costs one
  // indexed find (~row.indexed_find_us) per O(n) scan — noise at scale.
  row.scan_find_us = us_since(start) / static_cast<double>(scans);
  row.find_speedup =
      row.indexed_find_us > 0 ? row.scan_find_us / row.indexed_find_us : 0;

  // Indexed value-term query: term intersection + per-candidate verify.
  const std::size_t queries = 500;
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < queries; ++i) {
    std::string name = "Svc" + std::to_string(rng.next_below(names)) + "Service";
    auto got = registry.query("//service[@name='" + name + "']");
    if (!got.ok() || got->empty()) row.parity = false;
  }
  row.indexed_query_us = us_since(start) / static_cast<double>(queries);

  // Expiry tick: park a fixed batch of short leases among the n live
  // far-future ones, advance past only the batch, and time one tick.
  // O(expired) means this stays flat from 10k to 1M live leases.
  for (std::size_t i = 0; i < kExpireBatch; ++i) {
    if (!registry.add(pool[i % names], kMillisecond).ok()) std::exit(1);
  }
  clock.advance(2 * kMillisecond);
  start = std::chrono::steady_clock::now();
  row.expired = registry.expire();
  row.expire_tick_us = us_since(start);
  if (row.expired != kExpireBatch) row.parity = false;
  row.expire_us_per_expired =
      row.expired > 0 ? row.expire_tick_us / static_cast<double>(row.expired) : 0;
  return row;
}

void write_json(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"registry\",\n");
  std::fprintf(f,
               "  \"config\": {\"dups_per_name\": %zu, \"expire_batch\": %zu, "
               "\"base_lease_s\": %lld},\n",
               kDupsPerName, kExpireBatch,
               static_cast<long long>(kBaseLease / kSecond));
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"entries\": %zu, \"publish_us_per_entry\": %.3f, "
        "\"indexed_find_us\": %.3f, \"scan_find_us\": %.1f, "
        "\"find_speedup\": %.1f, \"indexed_query_us\": %.3f, "
        "\"expired\": %zu, \"expire_tick_us\": %.1f, "
        "\"expire_us_per_expired\": %.3f, \"index_terms\": %zu, "
        "\"index_postings\": %zu, \"parity\": %s}%s\n",
        r.entries, r.publish_us_per_entry, r.indexed_find_us, r.scan_find_us,
        r.find_speedup, r.indexed_query_us, r.expired, r.expire_tick_us,
        r.expire_us_per_expired, r.index_terms, r.index_postings,
        r.parity ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* out = "BENCH_registry.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_registry [--quick] [--out FILE]\n");
      return 2;
    }
  }

  std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{10'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  std::vector<Row> rows;
  for (std::size_t n : sizes) {
    Row row = measure(n);
    rows.push_back(row);
    std::printf(
        "N=%-8zu publish %6.2f us/entry   find %7.3f us indexed vs %10.1f us "
        "scan (%.0fx)   query %7.3f us   expire %zu in %8.1f us "
        "(%.3f us/expired)%s\n",
        row.entries, row.publish_us_per_entry, row.indexed_find_us,
        row.scan_find_us, row.find_speedup, row.indexed_query_us, row.expired,
        row.expire_tick_us, row.expire_us_per_expired,
        row.parity ? "" : "   PARITY FAILURE");
  }

  write_json(out, rows);
  std::printf("wrote %s\n", out);

  int failures = 0;
  for (const Row& r : rows) {
    if (!r.parity) {
      std::fprintf(stderr, "FAIL: indexed/scan parity broke at N=%zu\n", r.entries);
      ++failures;
    }
    if (r.entries >= 1'000'000 && r.find_speedup < 100) {
      std::fprintf(stderr, "FAIL: find_speedup %.1fx < 100x at N=%zu\n",
                   r.find_speedup, r.entries);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
