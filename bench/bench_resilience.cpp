// EXP-RESIL — the cost of the resilience layer on the happy path. The
// design budget is <5% overhead for a ResilientChannel wrapping an XDR
// channel on a fault-free network, measured against a representative
// component call (an NxN matrix multiply over the wire). When nothing
// fails, one logical call adds:
//   - a fixed part: deadline clock read, breaker allow/record pair (one
//     mutex round trip each), and the "h2c-<serial>" call-id stamp;
//   - a part proportional to the REPLY size: the server-side dedup cache
//     must keep a copy of the serialized reply to replay for duplicates,
//     so at-most-once fundamentally costs one reply-buffer copy.
//
//   BM_DirectXdrMmul/N        bare make_xdr_channel, NxN matmul request
//                             (2N^2 doubles in, N^2 out + real compute).
//                             The budget claim is made against N=32, the
//                             component-scale call; N=16 is reported to
//                             show where the fixed cost starts to matter.
//   BM_ResilientXdrMmul/N     same call through ResilientChannel (policy
//                             defaults, shared breaker, dedup on)
//   BM_*XdrEchoFloor/N        echo of an N-double array — the worst case:
//                             zero compute and reply == request, so the
//                             fixed cost (N=1) and the reply-copy cost
//                             (N=1024) are the whole bill
//   BM_ResilientXdrEchoNoIdFloor/N  retry/breaker machinery alone
//                             (attach_call_id off, so the server skips
//                             dedup) — isolates the loop from the copy
//   BM_FailoverXdrCall        the full stack: FailoverChannel -> resilient
//                             XDR channel resolved through a 2-node DVM
//   BM_BreakerAllowRecord     the breaker primitive by itself
//   BM_DedupLookupStore       the cache primitive by itself
#include <benchmark/benchmark.h>

#include <cmath>

#include "container/container.hpp"
#include "dvm/dvm.hpp"
#include "plugins/standard.hpp"
#include "resilience/breaker.hpp"
#include "resilience/dedup.hpp"
#include "resilience/failover.hpp"
#include "resilience/resilient_channel.hpp"
#include "transport/rpc.hpp"
#include "util/rng.hpp"

namespace {

using namespace h2;

constexpr std::uint16_t kPort = 9300;

struct Wire {
  net::SimNetwork net;
  net::HostId client = 0, server = 0;
  std::shared_ptr<net::DispatcherMux> mux;
  std::shared_ptr<resil::DedupCache> dedup;
  std::optional<net::ServerHandle> handle;

  Wire() {
    client = *net.add_host("client");
    server = *net.add_host("server");
    mux = std::make_shared<net::DispatcherMux>();
    mux->add("echo", [](std::span<const Value> params) -> Result<Value> {
      return params.empty() ? Value::of_int(0, "return") : Result<Value>(params[0]);
    });
    mux->add("mmul", [](std::span<const Value> params) -> Result<Value> {
      auto a = params[0].as_doubles();
      auto b = params[1].as_doubles();
      if (!a.ok() || !b.ok()) return err::invalid_argument("mmul wants doubles");
      const std::size_t n = static_cast<std::size_t>(std::sqrt(double(a->size())));
      std::vector<double> c(n * n, 0.0);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < n; ++k) {
          const double aik = (*a)[i * n + k];
          for (std::size_t j = 0; j < n; ++j) c[i * n + j] += aik * (*b)[k * n + j];
        }
      return Value::of_doubles(std::move(c), "result");
    });
    dedup = std::make_shared<resil::DedupCache>();  // production default depth
    handle.emplace(*net::serve_xdr(net, server, kPort, mux, dedup));
  }
};

std::unique_ptr<net::Channel> direct_channel(Wire& wire) {
  return net::make_xdr_channel(wire.net, wire.client, {"xdr", "server", kPort, ""});
}

std::unique_ptr<net::Channel> resilient_channel(Wire& wire,
                                                bool attach_call_id = true) {
  resil::CallPolicy policy;
  policy.attach_call_id = attach_call_id;
  return resil::make_resilient_channel(
      direct_channel(wire), wire.net, policy,
      &resil::BreakerRegistry::of(wire.net).for_endpoint("server"), "server");
}

void drive(benchmark::State& state, net::Channel& channel, std::string_view op,
           const std::vector<Value>& params) {
  for (auto _ : state) {
    auto result = channel.invoke(op, params);
    if (!result.ok()) {
      state.SkipWithError(result.error().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}

// Representative call: an NxN matrix multiply shipped over the XDR
// binding, the kind of work a compute component actually does per
// invocation (2N^2 doubles of request, N^2 of reply, O(N^3) flops).
// The irreducible resilience cost is one reply-buffer copy plus ~0.5us
// of fixed bookkeeping, so the ratio improves as the call does more work.
std::vector<Value> mmul_params(std::size_t n) {
  Rng rng(7);
  return {Value::of_doubles(rng.doubles(n * n), "mata"),
          Value::of_doubles(rng.doubles(n * n), "matb")};
}

void BM_DirectXdrMmul(benchmark::State& state) {
  Wire wire;
  auto channel = direct_channel(wire);
  drive(state, *channel, "mmul",
        mmul_params(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_DirectXdrMmul)->Arg(16)->Arg(32);

void BM_ResilientXdrMmul(benchmark::State& state) {
  Wire wire;
  auto channel = resilient_channel(wire);
  drive(state, *channel, "mmul",
        mmul_params(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_ResilientXdrMmul)->Arg(16)->Arg(32);

// Floor: echo of an N-double array. Reported so the fixed per-call cost
// (N=1) and the dedup reply-copy cost (N=1024, reply == request and no
// compute to amortize against) are visible in absolute nanoseconds.
std::vector<Value> echo_params(std::size_t n) {
  return {Value::of_doubles(std::vector<double>(n, 1.5), "x")};
}

void BM_DirectXdrEchoFloor(benchmark::State& state) {
  Wire wire;
  auto channel = direct_channel(wire);
  drive(state, *channel, "echo",
        echo_params(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_DirectXdrEchoFloor)->Arg(1)->Arg(1024);

void BM_ResilientXdrEchoFloor(benchmark::State& state) {
  Wire wire;
  auto channel = resilient_channel(wire);
  drive(state, *channel, "echo",
        echo_params(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_ResilientXdrEchoFloor)->Arg(1)->Arg(1024);

void BM_ResilientXdrEchoNoIdFloor(benchmark::State& state) {
  Wire wire;
  auto channel = resilient_channel(wire, /*attach_call_id=*/false);
  drive(state, *channel, "echo",
        echo_params(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_ResilientXdrEchoNoIdFloor)->Arg(1)->Arg(1024);

void BM_FailoverXdrCall(benchmark::State& state) {
  net::SimNetwork net;
  kernel::PluginRepository repo;
  (void)plugins::register_standard_plugins(repo);
  dvm::Dvm dvm("bench", dvm::make_full_synchrony());
  std::vector<std::unique_ptr<container::Container>> containers;
  for (const char* name : {"n0", "n1"}) {
    auto host = *net.add_host(name);
    containers.push_back(std::make_unique<container::Container>(name, repo, net, host));
    (void)dvm.add_node(*containers.back());
  }
  container::DeployOptions options;
  options.expose_xdr = true;
  if (!dvm.deploy("n1", "counter", options).ok()) {
    state.SkipWithError("deploy failed");
    return;
  }
  resil::CallPolicy policy;
  resil::FailoverChannel channel(dvm, *containers[0], "CounterService", policy,
                                 {wsdl::BindingKind::kXdr});
  const std::vector<Value> params{Value::of_string("warm", "id"),
                                  Value::of_int(1, "delta")};
  (void)channel.invoke("add", params);  // resolve + pin the replica once
  std::uint64_t n = 0;
  for (auto _ : state) {
    const std::vector<Value> call{Value::of_string("b" + std::to_string(n++), "id"),
                                  Value::of_int(1, "delta")};
    auto result = channel.invoke("add", call);
    if (!result.ok()) {
      state.SkipWithError(result.error().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FailoverXdrCall);

void BM_BreakerAllowRecord(benchmark::State& state) {
  resil::CircuitBreaker breaker;
  Nanos now = 0;
  for (auto _ : state) {
    bool admitted = breaker.allow(now);
    breaker.record(true, now);
    benchmark::DoNotOptimize(admitted);
    now += kMicrosecond;
  }
}
BENCHMARK(BM_BreakerAllowRecord);

void BM_DedupLookupStore(benchmark::State& state) {
  resil::DedupCache cache(1024);
  std::uint64_t n = 0;
  for (auto _ : state) {
    std::string id = "h2c-" + std::to_string(n++ % 2048);
    if (!cache.lookup(id).has_value()) {
      cache.store(id, ByteBuffer(std::vector<std::uint8_t>{1, 2, 3, 4}));
    }
  }
}
BENCHMARK(BM_DedupLookupStore);

}  // namespace

BENCHMARK_MAIN();
