// EXP-SHARD: the sharded coherency mode's scaling claim made measurable.
// Full synchrony pays O(M) messages per write (every member gets a copy);
// the consistent-hash sharded mode pays O(R) (only the R shard owners do),
// so the per-write wire cost must stay flat as the cluster grows from 64
// to 1024 nodes while full synchrony's grows linearly. Also reports the
// per-round anti-entropy cost (O(shards·R) digest exchanges) and a
// convergence check: a manually diverged replica is repaired in one round.
//
// Standalone binary (not google-benchmark): the quantities of interest are
// exact deterministic message counts from SimNetwork::stats(), not wall
// times, and the report is a hand-rolled JSON schema diffable across
// commits.
//
// Usage: bench_sharding [--writes N] [--quick] [--out FILE]
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "dvm/dvm.hpp"
#include "plugins/standard.hpp"
#include "util/rng.hpp"

namespace {

using namespace h2;

constexpr std::size_t kReplicas = 3;
constexpr std::size_t kShards = 256;

// Loop-posted anti-entropy; the DVM loop is eager here (no driver), so
// the completion lands before post_anti_entropy returns.
Result<dvm::AntiEntropyReport> run_anti_entropy(dvm::Dvm& dvm) {
  std::optional<Result<dvm::AntiEntropyReport>> outcome;
  dvm.post_anti_entropy(
      [&outcome](Result<dvm::AntiEntropyReport> r) { outcome = std::move(r); });
  if (!outcome.has_value()) return err::internal("anti-entropy never completed");
  return std::move(*outcome);
}

struct Row {
  std::size_t nodes = 0;
  double full_sync_msgs_per_write = 0;
  double sharded_msgs_per_write = 0;
  double ratio = 0;  ///< full synchrony / sharded
  std::uint64_t sharded_ae_round_msgs = 0;
};

struct Convergence {
  bool diverged = false;
  std::uint64_t repaired = 0;
  bool converged_after_one_round = false;
};

/// One cluster under test: M containers enrolled in a DVM running the
/// given protocol over a fresh SimNetwork.
struct Cluster {
  net::SimNetwork net;
  kernel::PluginRepository repo;
  std::vector<std::unique_ptr<container::Container>> containers;
  std::unique_ptr<dvm::Dvm> dvm;

  Cluster(std::unique_ptr<dvm::CoherencyProtocol> protocol, std::size_t nodes) {
    (void)plugins::register_standard_plugins(repo);
    dvm = std::make_unique<dvm::Dvm>("bench", std::move(protocol));
    for (std::size_t i = 0; i < nodes; ++i) {
      std::string name = "n" + std::to_string(i);
      auto host = *net.add_host(name);
      containers.push_back(
          std::make_unique<container::Container>(name, repo, net, host));
      if (!dvm->add_node(*containers.back()).ok()) {
        std::fprintf(stderr, "add_node %s failed\n", name.c_str());
        std::exit(1);
      }
    }
  }

  /// Messages per write over `writes` single-key sets from rotating origins.
  double msgs_per_write(std::size_t writes) {
    Rng rng(7);
    net.reset_stats();
    for (std::size_t i = 0; i < writes; ++i) {
      const auto& origin = containers[rng.next_below(containers.size())]->name();
      std::string key = "bench/key-" + std::to_string(i);
      if (!dvm->set(origin, key, "v" + std::to_string(i)).ok()) {
        std::fprintf(stderr, "set %s from %s failed\n", key.c_str(), origin.c_str());
        std::exit(1);
      }
    }
    return static_cast<double>(net.stats().messages) / static_cast<double>(writes);
  }
};

Row measure(std::size_t nodes, std::size_t writes) {
  Row row;
  row.nodes = nodes;
  {
    Cluster full(dvm::make_full_synchrony(), nodes);
    row.full_sync_msgs_per_write = full.msgs_per_write(writes);
  }
  {
    Cluster sharded(dvm::make_sharded(dvm::ShardConfig{.shards = kShards,
                                                       .replicas = kReplicas}),
                    nodes);
    row.sharded_msgs_per_write = sharded.msgs_per_write(writes);
    sharded.net.reset_stats();
    if (!run_anti_entropy(*sharded.dvm).ok()) {
      std::fprintf(stderr, "anti_entropy failed at M=%zu\n", nodes);
      std::exit(1);
    }
    row.sharded_ae_round_msgs = sharded.net.stats().messages;
  }
  row.ratio = row.full_sync_msgs_per_write / row.sharded_msgs_per_write;
  return row;
}

Convergence check_convergence() {
  Convergence out;
  Cluster cluster(dvm::make_sharded(dvm::ShardConfig{.shards = 16, .replicas = 3}), 8);
  auto& dvm = *cluster.dvm;
  for (int i = 0; i < 32; ++i) {
    std::string key = "conv/" + std::to_string(i);
    if (!dvm.set("n0", key, "v").ok()) return out;
  }
  // Hand one replica of one key a newer version behind the protocol's back.
  const dvm::ShardMap* map = dvm.shard_map();
  auto owners = map->owners(map->shard_of("conv/0"));
  auto& store = dvm.member(owners.back())->state();
  auto version = store.version_of("conv/0");
  if (!version.has_value()) return out;
  store.apply({"conv/0", "newer", {version->ts + 50, version->writer}, false});
  out.diverged = true;

  auto report = run_anti_entropy(dvm);
  if (!report.ok()) return out;
  out.repaired = report->entries_repaired;
  auto second = run_anti_entropy(dvm);
  out.converged_after_one_round = second.ok() && second->shards_divergent == 0;
  return out;
}

void write_json(const char* path, const std::vector<Row>& rows,
                const Convergence& conv, std::size_t writes) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"sharding\",\n");
  std::fprintf(f,
               "  \"config\": {\"replicas\": %zu, \"shards\": %zu, \"writes\": %zu},\n",
               kReplicas, kShards, writes);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"full_synchrony_msgs_per_write\": %.2f, "
                 "\"sharded_msgs_per_write\": %.2f, \"ratio\": %.1f, "
                 "\"sharded_ae_round_msgs\": %llu}%s\n",
                 r.nodes, r.full_sync_msgs_per_write, r.sharded_msgs_per_write,
                 r.ratio, static_cast<unsigned long long>(r.sharded_ae_round_msgs),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"convergence\": {\"diverged\": %s, \"entries_repaired\": %llu, "
               "\"converged_after_one_round\": %s}\n}\n",
               conv.diverged ? "true" : "false",
               static_cast<unsigned long long>(conv.repaired),
               conv.converged_after_one_round ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t writes = 64;
  bool quick = false;
  const char* out = "BENCH_sharding.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--writes") == 0 && i + 1 < argc) {
      writes = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_sharding [--writes N] [--quick] [--out FILE]\n");
      return 2;
    }
  }

  std::vector<std::size_t> sizes = quick ? std::vector<std::size_t>{64}
                                         : std::vector<std::size_t>{64, 256, 1024};
  std::vector<Row> rows;
  for (std::size_t nodes : sizes) {
    // Fewer writes at the largest size: full synchrony's O(M) per-write
    // cost makes each write 1000+ calls there, and the count is exact
    // regardless of sample size.
    const std::size_t n = nodes >= 1024 ? std::min<std::size_t>(writes, 16) : writes;
    Row row = measure(nodes, n);
    rows.push_back(row);
    std::printf(
        "M=%-5zu full-synchrony %8.1f msgs/write   sharded %5.1f msgs/write   "
        "(%.0fx)   ae-round %llu msgs\n",
        row.nodes, row.full_sync_msgs_per_write, row.sharded_msgs_per_write,
        row.ratio, static_cast<unsigned long long>(row.sharded_ae_round_msgs));
  }

  Convergence conv = check_convergence();
  std::printf("convergence: diverged=%d repaired=%llu one-round=%d\n",
              conv.diverged, static_cast<unsigned long long>(conv.repaired),
              conv.converged_after_one_round);

  write_json(out, rows, conv, writes);
  std::printf("wrote %s\n", out);
  if (!conv.diverged || conv.repaired == 0 || !conv.converged_after_one_round) {
    std::fprintf(stderr, "FAIL: anti-entropy did not repair the planted divergence\n");
    return 1;
  }
  return 0;
}
