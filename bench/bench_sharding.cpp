// EXP-SHARD: the sharded coherency mode's scaling claim made measurable.
// Full synchrony pays O(M) messages per write (every member gets a copy);
// the consistent-hash sharded mode pays O(R) (only the R shard owners do),
// so the per-write wire cost must stay flat as the cluster grows from 64
// to 1024 nodes while full synchrony's grows linearly. Also reports the
// per-round anti-entropy cost (O(shards·R) digest exchanges) and a
// convergence check: a manually diverged replica is repaired in one round.
//
// EXP-HANDOFF rides in the same binary: the repair-bandwidth claim
// (Merkle anti-entropy moves O(diff) bytes where the flat exchange moves
// the whole shard — measured as SimNetwork byte deltas at 1% divergence)
// and the bounded-rebalance claim (a node join against a token-bucket
// budget leaves foreground write latency near baseline, where the
// unthrottled join stalls one tick for the whole handoff).
//
// Standalone binary (not google-benchmark): the quantities of interest are
// exact deterministic message counts from SimNetwork::stats(), not wall
// times, and the report is a hand-rolled JSON schema diffable across
// commits.
//
// Usage: bench_sharding [--writes N] [--quick] [--out FILE]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "dvm/dvm.hpp"
#include "dvm/merkle.hpp"
#include "plugins/standard.hpp"
#include "transport/rpc.hpp"
#include "util/rng.hpp"

namespace {

using namespace h2;

constexpr std::size_t kReplicas = 3;
constexpr std::size_t kShards = 256;

// Loop-posted anti-entropy; the DVM loop is eager here (no driver), so
// the completion lands before post_anti_entropy returns.
Result<dvm::AntiEntropyReport> run_anti_entropy(dvm::Dvm& dvm) {
  std::optional<Result<dvm::AntiEntropyReport>> outcome;
  dvm.post_anti_entropy(
      [&outcome](Result<dvm::AntiEntropyReport> r) { outcome = std::move(r); });
  if (!outcome.has_value()) return err::internal("anti-entropy never completed");
  return std::move(*outcome);
}

struct Row {
  std::size_t nodes = 0;
  double full_sync_msgs_per_write = 0;
  double sharded_msgs_per_write = 0;
  double ratio = 0;  ///< full synchrony / sharded
  std::uint64_t sharded_ae_round_msgs = 0;
};

struct Convergence {
  bool diverged = false;
  std::uint64_t repaired = 0;
  bool converged_after_one_round = false;
};

/// One cluster under test: M containers enrolled in a DVM running the
/// given protocol over a fresh SimNetwork.
struct Cluster {
  net::SimNetwork net;
  kernel::PluginRepository repo;
  std::vector<std::unique_ptr<container::Container>> containers;
  std::unique_ptr<dvm::Dvm> dvm;

  Cluster(std::unique_ptr<dvm::CoherencyProtocol> protocol, std::size_t nodes) {
    (void)plugins::register_standard_plugins(repo);
    dvm = std::make_unique<dvm::Dvm>("bench", std::move(protocol));
    for (std::size_t i = 0; i < nodes; ++i) {
      std::string name = "n" + std::to_string(i);
      auto host = *net.add_host(name);
      containers.push_back(
          std::make_unique<container::Container>(name, repo, net, host));
      if (!dvm->add_node(*containers.back()).ok()) {
        std::fprintf(stderr, "add_node %s failed\n", name.c_str());
        std::exit(1);
      }
    }
  }

  /// Messages per write over `writes` single-key sets from rotating origins.
  double msgs_per_write(std::size_t writes) {
    Rng rng(7);
    net.reset_stats();
    for (std::size_t i = 0; i < writes; ++i) {
      const auto& origin = containers[rng.next_below(containers.size())]->name();
      std::string key = "bench/key-" + std::to_string(i);
      if (!dvm->set(origin, key, "v" + std::to_string(i)).ok()) {
        std::fprintf(stderr, "set %s from %s failed\n", key.c_str(), origin.c_str());
        std::exit(1);
      }
    }
    return static_cast<double>(net.stats().messages) / static_cast<double>(writes);
  }
};

Row measure(std::size_t nodes, std::size_t writes) {
  Row row;
  row.nodes = nodes;
  {
    Cluster full(dvm::make_full_synchrony(), nodes);
    row.full_sync_msgs_per_write = full.msgs_per_write(writes);
  }
  {
    Cluster sharded(dvm::make_sharded(dvm::ShardConfig{.shards = kShards,
                                                       .replicas = kReplicas}),
                    nodes);
    row.sharded_msgs_per_write = sharded.msgs_per_write(writes);
    sharded.net.reset_stats();
    if (!run_anti_entropy(*sharded.dvm).ok()) {
      std::fprintf(stderr, "anti_entropy failed at M=%zu\n", nodes);
      std::exit(1);
    }
    row.sharded_ae_round_msgs = sharded.net.stats().messages;
  }
  row.ratio = row.full_sync_msgs_per_write / row.sharded_msgs_per_write;
  return row;
}

Convergence check_convergence() {
  Convergence out;
  Cluster cluster(dvm::make_sharded(dvm::ShardConfig{.shards = 16, .replicas = 3}), 8);
  auto& dvm = *cluster.dvm;
  for (int i = 0; i < 32; ++i) {
    std::string key = "conv/" + std::to_string(i);
    if (!dvm.set("n0", key, "v").ok()) return out;
  }
  // Hand one replica of one key a newer version behind the protocol's back.
  const dvm::ShardMap* map = dvm.shard_map();
  auto owners = map->owners(map->shard_of("conv/0"));
  auto& store = dvm.member(owners.back())->state();
  auto version = store.version_of("conv/0");
  if (!version.has_value()) return out;
  store.apply({"conv/0", "newer", {version->ts + 50, version->writer}, false});
  out.diverged = true;

  auto report = run_anti_entropy(dvm);
  if (!report.ok()) return out;
  out.repaired = report->entries_repaired;
  auto second = run_anti_entropy(dvm);
  out.converged_after_one_round = second.ok() && second->shards_divergent == 0;
  return out;
}

Result<dvm::HintReplayReport> run_hint_replay(dvm::Dvm& dvm) {
  std::optional<Result<dvm::HintReplayReport>> outcome;
  dvm.post_hint_replay(
      [&outcome](Result<dvm::HintReplayReport> r) { outcome = std::move(r); });
  if (!outcome.has_value()) return err::internal("hint replay never completed");
  return std::move(*outcome);
}

// ---- EXP-HANDOFF: repair bandwidth -------------------------------------------

struct RepairBandwidth {
  std::size_t keys = 0;
  std::size_t diverged = 0;
  std::size_t buckets = 0;
  std::uint64_t flat_bytes = 0;    ///< whole-shard digest+pull+push exchange
  std::uint64_t merkle_bytes = 0;  ///< top-down descent + diverged buckets only
  double ratio = 0;                ///< merkle / flat
  bool both_converged = false;
};

/// One client/server pair on a fresh SimNetwork; `diverged` of `keys`
/// entries hold a newer version on the server only. Returns the total
/// wire bytes the given exchange spent converging them, via `out_ok`.
template <typename Sync>
std::uint64_t measure_exchange(std::size_t keys, std::size_t diverged, Sync sync,
                               bool* out_ok) {
  net::SimNetwork net;
  auto client = *net.add_host("client");
  auto server = *net.add_host("server");
  auto remote = std::make_shared<dvm::StateStore>();
  dvm::StateStore local;
  const std::string value(64, 'x');
  for (std::size_t i = 0; i < keys; ++i) {
    dvm::VersionedEntry entry{"k/" + std::to_string(i), value, {10 + i, 1}, false};
    remote->apply(entry);
    local.apply(entry);
  }
  const std::size_t stride = diverged > 0 ? keys / diverged : keys;
  for (std::size_t i = 0; i < keys; i += stride) {
    remote->apply({"k/" + std::to_string(i), value + "-new", {100000 + i, 2}, false});
  }
  auto handle = net::serve_xdr(net, server, 9001,
                               dvm::make_state_service(remote, /*writer=*/1));
  if (!handle.ok()) std::exit(1);
  auto channel =
      net::make_xdr_channel(net, client, *net::Endpoint::parse("xdr://server:9001"));
  net.reset_stats();
  bool ok = sync(*channel, local);
  *out_ok = ok && local.shard_digest(0, 1) == remote->shard_digest(0, 1);
  return net.stats().bytes;
}

RepairBandwidth measure_repair_bandwidth() {
  // Full size even under --quick: the in-memory exchange is cheap, and at
  // smaller stores the descent's fixed frame overhead dominates, which
  // would make the ratio a measurement of XDR framing, not of O(diff).
  RepairBandwidth out;
  out.keys = 10'000;
  out.diverged = out.keys / 100;  // 1% divergence
  out.buckets = 1024;
  bool flat_ok = false, merkle_ok = false;
  out.flat_bytes = measure_exchange(
      out.keys, out.diverged,
      [](net::Channel& peer, dvm::StateStore& local) {
        return dvm::sync_shard_with_peer(peer, local, 0, 1).ok();
      },
      &flat_ok);
  out.merkle_bytes = measure_exchange(
      out.keys, out.diverged,
      [&out](net::Channel& peer, dvm::StateStore& local) {
        return dvm::merkle_sync_shard_with_peer(peer, local, 0, 1, out.buckets).ok();
      },
      &merkle_ok);
  out.both_converged = flat_ok && merkle_ok;
  out.ratio = out.flat_bytes > 0
                  ? static_cast<double>(out.merkle_bytes) / out.flat_bytes
                  : 0;
  return out;
}

// ---- EXP-HANDOFF: bounded rebalance ------------------------------------------

struct Throttle {
  double baseline_p99_us = 0;     ///< steady state, no membership change
  double unthrottled_p99_us = 0;  ///< join with an unlimited budget
  double throttled_p99_us = 0;    ///< join against the token bucket
  double unthrottled_worst_us = 0;
  double throttled_worst_us = 0;
  std::size_t throttled_deferred = 0;  ///< handoff entries parked for replay
};

double percentile(std::vector<Nanos> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const std::size_t index =
      std::min(samples.size() - 1,
               static_cast<std::size_t>(p * static_cast<double>(samples.size())));
  return static_cast<double>(samples[index]) / 1000.0;  // ns → µs
}

/// 200 foreground ticks (one write + one budget's worth of hint replay
/// each), a node joining at the midpoint when `join_mid`. Per-tick
/// virtual-time costs land in `ticks`; returns the hints the join parked.
std::size_t run_tick_schedule(dvm::ShardConfig config, bool join_mid,
                              std::vector<Nanos>& ticks) {
  constexpr std::size_t kTicks = 200;
  Cluster cluster(dvm::make_sharded(config), 8);
  auto& dvm = *cluster.dvm;
  const std::string value(64, 'x');
  for (std::size_t i = 0; i < 2000; ++i) {
    if (!dvm.set("n0", "pre/" + std::to_string(i), value).ok()) std::exit(1);
  }
  std::unique_ptr<container::Container> joiner;
  std::size_t deferred = 0;
  for (std::size_t tick = 0; tick < kTicks; ++tick) {
    const Nanos start = cluster.net.clock().now();
    if (join_mid && tick == kTicks / 2) {
      auto host = *cluster.net.add_host("n8");
      joiner = std::make_unique<container::Container>("n8", cluster.repo,
                                                      cluster.net, host);
      if (!dvm.add_node(*joiner).ok()) std::exit(1);
      deferred = dvm.pending_hints();
    }
    if (!dvm.set("n1", "fg/" + std::to_string(tick), value).ok()) std::exit(1);
    if (!run_hint_replay(dvm).ok()) std::exit(1);
    ticks.push_back(cluster.net.clock().now() - start);
  }
  return deferred;
}

Throttle measure_throttle() {
  Throttle out;
  dvm::ShardConfig unlimited{.shards = 32, .replicas = 3};
  dvm::ShardConfig budgeted{.shards = 32, .replicas = 3};
  // In the serialized loop model a tick's repair slice delays the tick's
  // foreground write one-for-one. Replay batches all of a pass's legs into
  // one frame per target, so the byte axis is what sizes the slice: ~2 KB
  // is roughly twenty entries folded into two or three frames — about the
  // round-trip cost of one write's own R-owner fan-out. The message axis
  // just caps frames; it must stay >= R or a hint whose owners are all
  // remote can never retire in a single pass.
  budgeted.rebalance_bytes_per_tick = 2048;
  budgeted.rebalance_msgs_per_tick = 8;

  std::vector<Nanos> baseline, unthrottled, throttled;
  run_tick_schedule(unlimited, /*join_mid=*/false, baseline);
  run_tick_schedule(unlimited, /*join_mid=*/true, unthrottled);
  out.throttled_deferred = run_tick_schedule(budgeted, /*join_mid=*/true, throttled);

  out.baseline_p99_us = percentile(baseline, 0.99);
  out.unthrottled_p99_us = percentile(unthrottled, 0.99);
  out.throttled_p99_us = percentile(throttled, 0.99);
  out.unthrottled_worst_us = percentile(unthrottled, 1.0);
  out.throttled_worst_us = percentile(throttled, 1.0);
  return out;
}

void write_json(const char* path, const std::vector<Row>& rows,
                const Convergence& conv, const RepairBandwidth& repair,
                const Throttle& throttle, std::size_t writes) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"benchmark\": \"sharding\",\n");
  std::fprintf(f,
               "  \"config\": {\"replicas\": %zu, \"shards\": %zu, \"writes\": %zu},\n",
               kReplicas, kShards, writes);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"full_synchrony_msgs_per_write\": %.2f, "
                 "\"sharded_msgs_per_write\": %.2f, \"ratio\": %.1f, "
                 "\"sharded_ae_round_msgs\": %llu}%s\n",
                 r.nodes, r.full_sync_msgs_per_write, r.sharded_msgs_per_write,
                 r.ratio, static_cast<unsigned long long>(r.sharded_ae_round_msgs),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"convergence\": {\"diverged\": %s, \"entries_repaired\": %llu, "
               "\"converged_after_one_round\": %s},\n",
               conv.diverged ? "true" : "false",
               static_cast<unsigned long long>(conv.repaired),
               conv.converged_after_one_round ? "true" : "false");
  std::fprintf(f,
               "  \"repair_bandwidth\": {\"keys\": %zu, \"diverged\": %zu, "
               "\"buckets\": %zu, \"flat_bytes\": %llu, \"merkle_bytes\": %llu, "
               "\"ratio\": %.4f, \"both_converged\": %s},\n",
               repair.keys, repair.diverged, repair.buckets,
               static_cast<unsigned long long>(repair.flat_bytes),
               static_cast<unsigned long long>(repair.merkle_bytes), repair.ratio,
               repair.both_converged ? "true" : "false");
  std::fprintf(f,
               "  \"rebalance_throttle\": {\"baseline_p99_us\": %.1f, "
               "\"unthrottled_p99_us\": %.1f, \"throttled_p99_us\": %.1f, "
               "\"unthrottled_worst_us\": %.1f, \"throttled_worst_us\": %.1f, "
               "\"throttled_deferred\": %zu}\n}\n",
               throttle.baseline_p99_us, throttle.unthrottled_p99_us,
               throttle.throttled_p99_us, throttle.unthrottled_worst_us,
               throttle.throttled_worst_us, throttle.throttled_deferred);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t writes = 64;
  bool quick = false;
  const char* out = "BENCH_sharding.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--writes") == 0 && i + 1 < argc) {
      writes = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_sharding [--writes N] [--quick] [--out FILE]\n");
      return 2;
    }
  }

  std::vector<std::size_t> sizes = quick ? std::vector<std::size_t>{64}
                                         : std::vector<std::size_t>{64, 256, 1024};
  std::vector<Row> rows;
  for (std::size_t nodes : sizes) {
    // Fewer writes at the largest size: full synchrony's O(M) per-write
    // cost makes each write 1000+ calls there, and the count is exact
    // regardless of sample size.
    const std::size_t n = nodes >= 1024 ? std::min<std::size_t>(writes, 16) : writes;
    Row row = measure(nodes, n);
    rows.push_back(row);
    std::printf(
        "M=%-5zu full-synchrony %8.1f msgs/write   sharded %5.1f msgs/write   "
        "(%.0fx)   ae-round %llu msgs\n",
        row.nodes, row.full_sync_msgs_per_write, row.sharded_msgs_per_write,
        row.ratio, static_cast<unsigned long long>(row.sharded_ae_round_msgs));
  }

  Convergence conv = check_convergence();
  std::printf("convergence: diverged=%d repaired=%llu one-round=%d\n",
              conv.diverged, static_cast<unsigned long long>(conv.repaired),
              conv.converged_after_one_round);

  RepairBandwidth repair = measure_repair_bandwidth();
  std::printf(
      "repair-bandwidth: %zu keys, %zu diverged: flat %llu B, merkle %llu B "
      "(%.1f%%)\n",
      repair.keys, repair.diverged,
      static_cast<unsigned long long>(repair.flat_bytes),
      static_cast<unsigned long long>(repair.merkle_bytes), repair.ratio * 100);

  Throttle throttle = measure_throttle();
  std::printf(
      "rebalance-throttle: p99 baseline %.1fus, unthrottled join %.1fus "
      "(worst %.1fus), throttled join %.1fus (worst %.1fus, %zu deferred)\n",
      throttle.baseline_p99_us, throttle.unthrottled_p99_us,
      throttle.unthrottled_worst_us, throttle.throttled_p99_us,
      throttle.throttled_worst_us, throttle.throttled_deferred);

  write_json(out, rows, conv, repair, throttle, writes);
  std::printf("wrote %s\n", out);
  int failures = 0;
  if (!conv.diverged || conv.repaired == 0 || !conv.converged_after_one_round) {
    std::fprintf(stderr, "FAIL: anti-entropy did not repair the planted divergence\n");
    ++failures;
  }
  if (!repair.both_converged || repair.ratio > 0.10) {
    std::fprintf(stderr,
                 "FAIL: Merkle repair must converge (converged=%s) and move "
                 "<=10%% of the flat exchange's bytes (moved %.1f%%)\n",
                 repair.both_converged ? "yes" : "no", repair.ratio * 100);
    ++failures;
  }
  if (throttle.throttled_p99_us > 2 * throttle.baseline_p99_us) {
    std::fprintf(stderr,
                 "FAIL: throttled-join write p99 (%.1fus) above 2x baseline "
                 "(%.1fus)\n",
                 throttle.throttled_p99_us, throttle.baseline_p99_us);
    ++failures;
  }
  return failures > 0 ? 1 : 0;
}
