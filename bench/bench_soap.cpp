// EXP-SOAP — the per-message cost of XML messaging itself, behind the
// paper's warning that SOAP "is suitable mostly for exchanging structured
// data in reasonably small quantities". Envelope construction and parsing
// throughput vs payload size, plus the underlying XML parser's raw rate —
// the fixed tax every SOAP call pays before any network byte moves.
#include <benchmark/benchmark.h>

#include "soap/envelope.hpp"
#include "util/rng.hpp"
#include "wsdl/descriptor.hpp"
#include "wsdl/io.hpp"
#include "xml/parser.hpp"

namespace {

void BM_SoapBuildRequest(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  h2::Rng rng(1);
  std::vector<h2::Value> params{h2::Value::of_doubles(rng.doubles(n), "mata")};
  std::size_t produced = 0;
  for (auto _ : state) {
    auto text = h2::soap::build_request("getResult", "urn:mm", params);
    produced = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * produced));
  state.counters["envelope_bytes"] = static_cast<double>(produced);
}
BENCHMARK(BM_SoapBuildRequest)->Arg(16)->Arg(1024)->Arg(65536);

void BM_SoapParseRequest(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  h2::Rng rng(2);
  std::vector<h2::Value> params{h2::Value::of_doubles(rng.doubles(n), "mata")};
  auto text = h2::soap::build_request("getResult", "urn:mm", params);
  for (auto _ : state) {
    auto call = h2::soap::parse_request(text);
    if (!call.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(call);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_SoapParseRequest)->Arg(16)->Arg(1024)->Arg(65536);

void BM_SoapFaultRoundTrip(benchmark::State& state) {
  h2::soap::Fault fault{"Server", "plugin not loaded", "node=B"};
  for (auto _ : state) {
    auto reply = h2::soap::parse_reply(h2::soap::build_fault(fault));
    if (!reply.ok()) state.SkipWithError("fault round trip failed");
    benchmark::DoNotOptimize(reply);
  }
}
BENCHMARK(BM_SoapFaultRoundTrip);

// Raw XML parser rate on a deeply-tagged document (the worst case for
// element-per-item SOAP arrays).
void BM_XmlParseItemList(benchmark::State& state) {
  auto items = static_cast<std::size_t>(state.range(0));
  std::string doc = "<array>";
  for (std::size_t i = 0; i < items; ++i) {
    doc += "<item>3.14159265</item>";
  }
  doc += "</array>";
  for (auto _ : state) {
    auto root = h2::xml::parse_element(doc);
    if (!root.ok()) state.SkipWithError("xml parse failed");
    benchmark::DoNotOptimize(root);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * doc.size()));
  state.counters["items"] = static_cast<double>(items);
}
BENCHMARK(BM_XmlParseItemList)->Arg(100)->Arg(10000);

// WSDL document round trip: generation tooling cost (wsdlgen substitute).
void BM_WsdlGenerateParse(benchmark::State& state) {
  h2::wsdl::ServiceDescriptor d;
  d.name = "MatMul";
  d.operations.push_back({"getResult",
                          {{"mata", h2::ValueKind::kDoubleArray},
                           {"matb", h2::ValueKind::kDoubleArray}},
                          h2::ValueKind::kDoubleArray});
  std::vector<h2::wsdl::EndpointSpec> endpoints{
      {h2::wsdl::BindingKind::kSoap, "http://a:8080/mm", {}},
      {h2::wsdl::BindingKind::kXdr, "xdr://a:9001", {}},
  };
  for (auto _ : state) {
    auto defs = h2::wsdl::generate(d, endpoints);
    auto text = h2::wsdl::to_xml_string(*defs);
    auto back = h2::wsdl::parse(text);
    if (!back.ok()) state.SkipWithError("wsdl round trip failed");
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_WsdlGenerateParse);

}  // namespace

BENCHMARK_MAIN();
