// EXP-NET: first hardware numbers. Every other benchmark in this tree
// runs over the simulated network and reports virtual time; this one
// drives the identical channel/server stack over real kernel sockets —
// loopback TCP and Unix-domain — and reports real calls/sec and latency
// percentiles for the XDR and SOAP bindings, singles and batch=64.
//
// Standalone binary (not google-benchmark): per-call latencies feed a
// percentile computation and a hand-rolled JSON report, which the
// library's fixed aggregate set does not express.
//
// Usage: bench_sockets [--singles N] [--batches N] [--warmup N] [--out FILE]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "transport/marshal.hpp"
#include "transport/rpc.hpp"
#include "transport/socknet.hpp"
#include "util/clock.hpp"

namespace {

using namespace h2;
using namespace h2::net;

constexpr int kBatchSize = 64;

struct Row {
  std::string transport;  // "tcp" | "uds"
  std::string binding;    // "xdr" | "soap"
  int batch = 1;          // calls per wire round trip
  std::uint64_t calls = 0;
  double wall_seconds = 0;
  double calls_per_sec = 0;
  double p50_us = 0;  // latency of one wire round trip
  double p99_us = 0;
  double bytes_per_call = 0;
};

std::shared_ptr<DispatcherMux> make_scale_service() {
  auto mux = std::make_shared<DispatcherMux>();
  mux->add("scale", [](std::span<const Value> params) -> Result<Value> {
    auto values = params[0].as_doubles();
    if (!values.ok()) return values.error();
    for (double& v : *values) v *= 2.0;
    return Value::of_doubles(std::move(*values));
  });
  return mux;
}

double percentile(std::vector<Nanos>& sorted, double p) {
  if (sorted.empty()) return 0;
  std::size_t idx = static_cast<std::size_t>(p * double(sorted.size() - 1));
  return double(sorted[idx]) / 1e3;  // ns -> us
}

Row run_config(SockFamily family, bool soap, int batch, int rounds, int warmup) {
  SockNet net(family);
  HostId client = *net.add_host("client");
  HostId server = *net.add_host("server");
  auto service = make_scale_service();

  Result<ServerHandle> xdr_handle = err::unavailable("unused");
  SoapHttpServer http(net, server, 8080);
  std::unique_ptr<Channel> channel;
  if (soap) {
    if (!http.start().ok() || !http.mount("svc", service).ok()) {
      std::fprintf(stderr, "fatal: soap server failed to start\n");
      std::exit(1);
    }
    channel = make_soap_channel(net, client, *Endpoint::parse("http://server:8080/svc"),
                                "urn:bench");
  } else {
    xdr_handle = serve_xdr(net, server, 9001, service);
    if (!xdr_handle.ok()) {
      std::fprintf(stderr, "fatal: xdr server failed to start\n");
      std::exit(1);
    }
    channel = make_xdr_channel(net, client, *Endpoint::parse("xdr://server:9001"));
  }

  std::vector<Value> params{Value::of_doubles({1, 2, 3, 4, 5, 6, 7, 8})};
  std::vector<BatchItem> items;
  for (int i = 0; i < batch; ++i) items.push_back(BatchItem{"scale", params, ""});
  std::vector<Result<Value>> results;

  auto once = [&]() -> bool {
    if (batch == 1) return channel->invoke("scale", params).ok();
    if (!channel->invoke_batch(items, results).ok()) return false;
    for (const auto& r : results) {
      if (!r.ok()) return false;
    }
    return true;
  };

  WallClock wall;
  for (int i = 0; i < warmup; ++i) {
    if (!once()) {
      std::fprintf(stderr, "fatal: warmup call failed\n");
      std::exit(1);
    }
  }
  net.reset_stats();

  std::vector<Nanos> latencies;
  latencies.reserve(rounds);
  Nanos begin = wall.now();
  for (int i = 0; i < rounds; ++i) {
    Nanos t0 = wall.now();
    if (!once()) {
      std::fprintf(stderr, "fatal: measured call failed\n");
      std::exit(1);
    }
    latencies.push_back(wall.now() - t0);
  }
  Nanos elapsed = wall.now() - begin;

  std::sort(latencies.begin(), latencies.end());
  Row row;
  row.transport = net.transport_name();
  row.binding = soap ? "soap" : "xdr";
  row.batch = batch;
  row.calls = std::uint64_t(rounds) * batch;
  row.wall_seconds = double(elapsed) / 1e9;
  row.calls_per_sec = double(row.calls) / row.wall_seconds;
  row.p50_us = percentile(latencies, 0.50);
  row.p99_us = percentile(latencies, 0.99);
  row.bytes_per_call = double(net.stats().bytes) / double(row.calls);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int singles = 1500;
  int batches = 60;
  int warmup = 50;
  std::string out_path = "BENCH_sockets.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--singles") == 0) singles = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--batches") == 0) batches = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--warmup") == 0) warmup = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  std::vector<Row> rows;
  for (SockFamily family : {SockFamily::kTcp, SockFamily::kUds}) {
    for (bool soap : {false, true}) {
      rows.push_back(run_config(family, soap, 1, singles, warmup));
      rows.push_back(run_config(family, soap, kBatchSize, batches, warmup / 10 + 1));
    }
  }

  std::printf("%-4s %-5s %-8s %12s %12s %10s %10s %10s\n", "net", "bind", "mode",
              "calls", "calls/sec", "p50(us)", "p99(us)", "B/call");
  for (const Row& r : rows) {
    std::printf("%-4s %-5s batch=%-2d %12llu %12.0f %10.1f %10.1f %10.1f\n",
                r.transport.c_str(), r.binding.c_str(), r.batch,
                static_cast<unsigned long long>(r.calls), r.calls_per_sec, r.p50_us,
                r.p99_us, r.bytes_per_call);
  }

  // Headline ratio: what batch=64 buys over singles for XDR over TCP.
  double single_rate = 0, batch_rate = 0;
  for (const Row& r : rows) {
    if (r.transport == "tcp" && r.binding == "xdr") {
      (r.batch == 1 ? single_rate : batch_rate) = r.calls_per_sec;
    }
  }
  double speedup = single_rate > 0 ? batch_rate / single_rate : 0;
  std::printf("\nbatch=64 vs singles (tcp/xdr): %.1fx throughput\n", speedup);

  FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "fatal: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"benchmark\": \"sockets\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"transport\": \"%s\", \"binding\": \"%s\", \"batch\": %d, "
                 "\"calls\": %llu, \"wall_seconds\": %.6f, \"calls_per_sec\": %.1f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f, \"bytes_per_call\": %.1f}%s\n",
                 r.transport.c_str(), r.binding.c_str(), r.batch,
                 static_cast<unsigned long long>(r.calls), r.wall_seconds,
                 r.calls_per_sec, r.p50_us, r.p99_us, r.bytes_per_call,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"batch64_vs_singles_tcp_xdr\": %.2f\n}\n", speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
