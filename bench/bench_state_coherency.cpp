// EXP-COHER — Section 6's coherency trade-off: full synchrony "may be
// appropriate for relatively small DVMs running applications with many
// critical components"; the decentralized scheme "minimizes network
// traffic during state changes but introduces overheads for state
// inquiry" and suits Seti@home-like systems; neighborhood schemes sit
// between.
//
// Workload: a mixed stream of state operations with update fraction p
// (the rest are queries of random previously written keys, issued from
// random nodes). Swept: protocol x node count x update fraction.
// Reported in *virtual* time (network cost) per operation plus message
// counts. Expected crossovers:
//   - queries dominate (p small)  -> full synchrony cheapest
//   - updates dominate (p large)  -> decentralized cheapest
//   - neighborhood between, moving with k
//   - full synchrony's update cost grows linearly with node count
#include <benchmark/benchmark.h>

#include "dvm/dvm.hpp"
#include "plugins/standard.hpp"
#include "util/rng.hpp"

namespace {

enum ProtocolIndex : int { kFullSync = 0, kDecentralized = 1, kNeighborhood = 2 };

std::unique_ptr<h2::dvm::CoherencyProtocol> make_protocol(int index) {
  switch (index) {
    case kFullSync: return h2::dvm::make_full_synchrony();
    case kDecentralized: return h2::dvm::make_decentralized();
    default: return h2::dvm::make_neighborhood(2);
  }
}

const char* protocol_label(int index) {
  switch (index) {
    case kFullSync: return "full-synchrony";
    case kDecentralized: return "decentralized";
    default: return "neighborhood(k=2)";
  }
}

struct World {
  h2::net::SimNetwork net;
  h2::kernel::PluginRepository repo;
  std::vector<std::unique_ptr<h2::container::Container>> containers;
  std::unique_ptr<h2::dvm::Dvm> dvm;

  World(int protocol, std::size_t nodes) {
    (void)h2::plugins::register_standard_plugins(repo);
    dvm = std::make_unique<h2::dvm::Dvm>("bench", make_protocol(protocol));
    for (std::size_t i = 0; i < nodes; ++i) {
      std::string name = "n" + std::to_string(i);
      auto host = net.add_host(name);
      containers.push_back(
          std::make_unique<h2::container::Container>(name, repo, net, *host));
      (void)dvm->add_node(*containers.back());
    }
  }
};

void BM_CoherencyMixedWorkload(benchmark::State& state) {
  int protocol = static_cast<int>(state.range(0));
  auto nodes = static_cast<std::size_t>(state.range(1));
  double update_fraction = static_cast<double>(state.range(2)) / 100.0;
  constexpr int kOpsPerIteration = 200;

  World world(protocol, nodes);
  auto names = world.dvm->node_names();
  h2::Rng rng(99);

  // Seed keys so queries have something to find.
  std::vector<std::string> keys;
  for (int i = 0; i < 32; ++i) {
    std::string key = "key" + std::to_string(i);
    (void)world.dvm->set(names[rng.next_below(names.size())], key,
                         std::to_string(i));
    keys.push_back(key);
  }

  double virtual_us = 0;
  double messages = 0;
  for (auto _ : state) {
    h2::Nanos t0 = world.net.clock().now();
    auto m0 = world.net.stats().messages;
    for (int op = 0; op < kOpsPerIteration; ++op) {
      const std::string& origin = names[rng.next_below(names.size())];
      const std::string& key = keys[rng.next_below(keys.size())];
      if (rng.next_bool(update_fraction)) {
        auto status = world.dvm->set(origin, key, std::to_string(op));
        if (!status.ok()) {
          state.SkipWithError(status.error().describe().c_str());
          return;
        }
      } else {
        auto value = world.dvm->get(origin, key);
        if (!value.ok()) {
          state.SkipWithError(value.error().describe().c_str());
          return;
        }
      }
    }
    virtual_us += static_cast<double>(world.net.clock().now() - t0) / 1e3;
    messages += static_cast<double>(world.net.stats().messages - m0);
  }
  double total_ops = static_cast<double>(state.iterations()) * kOpsPerIteration;
  state.counters["virtual_us_per_op"] = virtual_us / total_ops;
  state.counters["messages_per_op"] = messages / total_ops;
  state.SetLabel(std::string(protocol_label(protocol)) + "/nodes=" +
                 std::to_string(nodes) + "/updates=" +
                 std::to_string(state.range(2)) + "%");
}
BENCHMARK(BM_CoherencyMixedWorkload)->Apply([](benchmark::internal::Benchmark* b) {
  for (int protocol : {kFullSync, kDecentralized, kNeighborhood}) {
    for (int nodes : {4, 16}) {
      for (int update_pct : {5, 50, 95}) b->Args({protocol, nodes, update_pct});
    }
  }
  b->Unit(benchmark::kMillisecond);
});

// Pure update and pure query costs vs node count — the raw scaling curves
// behind the crossover.
void BM_CoherencyPureOp(benchmark::State& state) {
  int protocol = static_cast<int>(state.range(0));
  auto nodes = static_cast<std::size_t>(state.range(1));
  bool update = state.range(2) == 1;

  World world(protocol, nodes);
  auto names = world.dvm->node_names();
  (void)world.dvm->set(names[0], "k", "v");

  double virtual_us = 0;
  double messages = 0;
  h2::Rng rng(7);
  for (auto _ : state) {
    const std::string& origin = names[rng.next_below(names.size())];
    h2::Nanos t0 = world.net.clock().now();
    auto m0 = world.net.stats().messages;
    if (update) {
      (void)world.dvm->set(origin, "k", "v2");
    } else {
      (void)world.dvm->get(origin, "k");
    }
    virtual_us += static_cast<double>(world.net.clock().now() - t0) / 1e3;
    messages += static_cast<double>(world.net.stats().messages - m0);
  }
  state.counters["virtual_us_per_op"] = virtual_us / static_cast<double>(state.iterations());
  state.counters["messages_per_op"] = messages / static_cast<double>(state.iterations());
  state.SetLabel(std::string(protocol_label(protocol)) + "/" +
                 (update ? "update" : "query") + "/nodes=" + std::to_string(nodes));
}
BENCHMARK(BM_CoherencyPureOp)->Apply([](benchmark::internal::Benchmark* b) {
  for (int protocol : {kFullSync, kDecentralized, kNeighborhood}) {
    for (int nodes : {2, 8, 32}) {
      for (int update : {0, 1}) b->Args({protocol, nodes, update});
    }
  }
});

}  // namespace

BENCHMARK_MAIN();
