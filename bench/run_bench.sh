#!/usr/bin/env sh
# Runs the wire-path benchmark suites (EXP-SOAP, EXP-OBS, EXP-RESIL,
# EXP-BATCH) and
# writes JSON results next to the build tree so runs can be diffed across
# commits. bench_resilience runs with repetitions and median aggregates:
# its headline number is a <5% overhead ratio, which a single noisy run
# cannot support.
#
# Usage: bench/run_bench.sh [build-dir] [min-time]
#   build-dir  defaults to ./build
#   min-time   per-benchmark minimum seconds, defaults to 0.2
set -eu

BUILD_DIR="${1:-build}"
MIN_TIME="${2:-0.2}"
OUT_DIR="${BENCH_OUT_DIR:-$BUILD_DIR}"

if [ ! -x "$BUILD_DIR/bench/bench_soap" ]; then
  echo "error: $BUILD_DIR/bench/bench_soap not built (cmake --build $BUILD_DIR)" >&2
  exit 1
fi

run() {
  name="$1"
  shift
  echo "== $name (min_time=${MIN_TIME}s) =="
  "$BUILD_DIR/bench/$name" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_format=json \
    --benchmark_out="$OUT_DIR/BENCH_${name#bench_}.json" \
    --benchmark_out_format=json "$@" > /dev/null
  echo "   wrote $OUT_DIR/BENCH_${name#bench_}.json"
}

run bench_soap
run bench_encoding
run bench_observability
run bench_resilience --benchmark_repetitions=5 --benchmark_report_aggregates_only
run bench_batching

# EXP-NET: real sockets (loopback TCP + UDS). Not a google-benchmark
# binary — it takes its own flags and writes its own JSON report.
echo "== bench_sockets (hardware) =="
"$BUILD_DIR/bench/bench_sockets" --out "$OUT_DIR/BENCH_sockets.json"
echo "   wrote $OUT_DIR/BENCH_sockets.json"

# EXP-REG: indexed registry at scale. Not a google-benchmark binary —
# it sweeps 10k/100k/1M-entry registries and writes its own JSON report;
# exits non-zero if the indexed and linear-scan paths disagree or the
# 1M-entry find speedup drops under 100x.
echo "== bench_registry (indexed registry sweep) =="
"$BUILD_DIR/bench/bench_registry" --out "$OUT_DIR/BENCH_registry.json"
echo "   wrote $OUT_DIR/BENCH_registry.json"

# EXP-SHARD: O(R) sharded vs O(M) full-synchrony write fan-out at
# M=64/256/1024, plus an anti-entropy convergence check. Exact message
# counts, own JSON schema; exits non-zero if repair fails.
echo "== bench_sharding (message counts) =="
"$BUILD_DIR/bench/bench_sharding" --out "$OUT_DIR/BENCH_sharding.json"
echo "   wrote $OUT_DIR/BENCH_sharding.json"
