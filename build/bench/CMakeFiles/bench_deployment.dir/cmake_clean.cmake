file(REMOVE_RECURSE
  "CMakeFiles/bench_deployment.dir/bench_deployment.cpp.o"
  "CMakeFiles/bench_deployment.dir/bench_deployment.cpp.o.d"
  "bench_deployment"
  "bench_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
