file(REMOVE_RECURSE
  "CMakeFiles/bench_pvm.dir/bench_pvm.cpp.o"
  "CMakeFiles/bench_pvm.dir/bench_pvm.cpp.o.d"
  "bench_pvm"
  "bench_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
