# Empty dependencies file for bench_pvm.
# This may be replaced when dependencies are built.
