file(REMOVE_RECURSE
  "CMakeFiles/bench_soap.dir/bench_soap.cpp.o"
  "CMakeFiles/bench_soap.dir/bench_soap.cpp.o.d"
  "bench_soap"
  "bench_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
