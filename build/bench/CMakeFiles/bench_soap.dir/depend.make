# Empty dependencies file for bench_soap.
# This may be replaced when dependencies are built.
