file(REMOVE_RECURSE
  "CMakeFiles/bench_state_coherency.dir/bench_state_coherency.cpp.o"
  "CMakeFiles/bench_state_coherency.dir/bench_state_coherency.cpp.o.d"
  "bench_state_coherency"
  "bench_state_coherency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_coherency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
