# Empty compiler generated dependencies file for bench_state_coherency.
# This may be replaced when dependencies are built.
