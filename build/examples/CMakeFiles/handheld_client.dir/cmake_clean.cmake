file(REMOVE_RECURSE
  "CMakeFiles/handheld_client.dir/handheld_client.cpp.o"
  "CMakeFiles/handheld_client.dir/handheld_client.cpp.o.d"
  "handheld_client"
  "handheld_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handheld_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
