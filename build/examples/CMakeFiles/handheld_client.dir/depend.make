# Empty dependencies file for handheld_client.
# This may be replaced when dependencies are built.
