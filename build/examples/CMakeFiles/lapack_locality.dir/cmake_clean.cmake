file(REMOVE_RECURSE
  "CMakeFiles/lapack_locality.dir/lapack_locality.cpp.o"
  "CMakeFiles/lapack_locality.dir/lapack_locality.cpp.o.d"
  "lapack_locality"
  "lapack_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapack_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
