# Empty compiler generated dependencies file for lapack_locality.
# This may be replaced when dependencies are built.
