file(REMOVE_RECURSE
  "CMakeFiles/legacy_environments.dir/legacy_environments.cpp.o"
  "CMakeFiles/legacy_environments.dir/legacy_environments.cpp.o.d"
  "legacy_environments"
  "legacy_environments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
