# Empty dependencies file for legacy_environments.
# This may be replaced when dependencies are built.
