file(REMOVE_RECURSE
  "CMakeFiles/matmul_service.dir/matmul_service.cpp.o"
  "CMakeFiles/matmul_service.dir/matmul_service.cpp.o.d"
  "matmul_service"
  "matmul_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
