# Empty compiler generated dependencies file for matmul_service.
# This may be replaced when dependencies are built.
