# Empty compiler generated dependencies file for mobile_agent.
# This may be replaced when dependencies are built.
