file(REMOVE_RECURSE
  "CMakeFiles/pvm_ring.dir/pvm_ring.cpp.o"
  "CMakeFiles/pvm_ring.dir/pvm_ring.cpp.o.d"
  "pvm_ring"
  "pvm_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
