# Empty compiler generated dependencies file for pvm_ring.
# This may be replaced when dependencies are built.
