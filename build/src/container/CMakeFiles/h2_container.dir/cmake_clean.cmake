file(REMOVE_RECURSE
  "CMakeFiles/h2_container.dir/container.cpp.o"
  "CMakeFiles/h2_container.dir/container.cpp.o.d"
  "CMakeFiles/h2_container.dir/management.cpp.o"
  "CMakeFiles/h2_container.dir/management.cpp.o.d"
  "libh2_container.a"
  "libh2_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
