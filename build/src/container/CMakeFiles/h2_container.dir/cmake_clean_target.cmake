file(REMOVE_RECURSE
  "libh2_container.a"
)
