# Empty dependencies file for h2_container.
# This may be replaced when dependencies are built.
