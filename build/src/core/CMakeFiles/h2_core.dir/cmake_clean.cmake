file(REMOVE_RECURSE
  "CMakeFiles/h2_core.dir/dynamic_proxy.cpp.o"
  "CMakeFiles/h2_core.dir/dynamic_proxy.cpp.o.d"
  "CMakeFiles/h2_core.dir/harness2.cpp.o"
  "CMakeFiles/h2_core.dir/harness2.cpp.o.d"
  "CMakeFiles/h2_core.dir/mobility.cpp.o"
  "CMakeFiles/h2_core.dir/mobility.cpp.o.d"
  "libh2_core.a"
  "libh2_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
