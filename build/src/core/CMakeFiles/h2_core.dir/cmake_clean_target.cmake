file(REMOVE_RECURSE
  "libh2_core.a"
)
