file(REMOVE_RECURSE
  "CMakeFiles/h2_dvm.dir/coherency.cpp.o"
  "CMakeFiles/h2_dvm.dir/coherency.cpp.o.d"
  "CMakeFiles/h2_dvm.dir/dvm.cpp.o"
  "CMakeFiles/h2_dvm.dir/dvm.cpp.o.d"
  "CMakeFiles/h2_dvm.dir/state.cpp.o"
  "CMakeFiles/h2_dvm.dir/state.cpp.o.d"
  "libh2_dvm.a"
  "libh2_dvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_dvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
