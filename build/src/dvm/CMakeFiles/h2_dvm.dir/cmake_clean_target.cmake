file(REMOVE_RECURSE
  "libh2_dvm.a"
)
