# Empty compiler generated dependencies file for h2_dvm.
# This may be replaced when dependencies are built.
