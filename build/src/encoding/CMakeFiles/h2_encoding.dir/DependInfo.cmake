
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/base64.cpp" "src/encoding/CMakeFiles/h2_encoding.dir/base64.cpp.o" "gcc" "src/encoding/CMakeFiles/h2_encoding.dir/base64.cpp.o.d"
  "/root/repo/src/encoding/codec.cpp" "src/encoding/CMakeFiles/h2_encoding.dir/codec.cpp.o" "gcc" "src/encoding/CMakeFiles/h2_encoding.dir/codec.cpp.o.d"
  "/root/repo/src/encoding/value.cpp" "src/encoding/CMakeFiles/h2_encoding.dir/value.cpp.o" "gcc" "src/encoding/CMakeFiles/h2_encoding.dir/value.cpp.o.d"
  "/root/repo/src/encoding/xdr.cpp" "src/encoding/CMakeFiles/h2_encoding.dir/xdr.cpp.o" "gcc" "src/encoding/CMakeFiles/h2_encoding.dir/xdr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/h2_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/h2_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
