file(REMOVE_RECURSE
  "CMakeFiles/h2_encoding.dir/base64.cpp.o"
  "CMakeFiles/h2_encoding.dir/base64.cpp.o.d"
  "CMakeFiles/h2_encoding.dir/codec.cpp.o"
  "CMakeFiles/h2_encoding.dir/codec.cpp.o.d"
  "CMakeFiles/h2_encoding.dir/value.cpp.o"
  "CMakeFiles/h2_encoding.dir/value.cpp.o.d"
  "CMakeFiles/h2_encoding.dir/xdr.cpp.o"
  "CMakeFiles/h2_encoding.dir/xdr.cpp.o.d"
  "libh2_encoding.a"
  "libh2_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
