file(REMOVE_RECURSE
  "libh2_encoding.a"
)
