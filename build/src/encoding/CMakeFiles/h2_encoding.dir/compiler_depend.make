# Empty compiler generated dependencies file for h2_encoding.
# This may be replaced when dependencies are built.
