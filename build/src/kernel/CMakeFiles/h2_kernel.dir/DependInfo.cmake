
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/event_bus.cpp" "src/kernel/CMakeFiles/h2_kernel.dir/event_bus.cpp.o" "gcc" "src/kernel/CMakeFiles/h2_kernel.dir/event_bus.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/kernel/CMakeFiles/h2_kernel.dir/kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/h2_kernel.dir/kernel.cpp.o.d"
  "/root/repo/src/kernel/plugin.cpp" "src/kernel/CMakeFiles/h2_kernel.dir/plugin.cpp.o" "gcc" "src/kernel/CMakeFiles/h2_kernel.dir/plugin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/h2_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/h2_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2_util.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/h2_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/h2_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/h2_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
