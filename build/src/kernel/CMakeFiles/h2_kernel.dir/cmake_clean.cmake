file(REMOVE_RECURSE
  "CMakeFiles/h2_kernel.dir/event_bus.cpp.o"
  "CMakeFiles/h2_kernel.dir/event_bus.cpp.o.d"
  "CMakeFiles/h2_kernel.dir/kernel.cpp.o"
  "CMakeFiles/h2_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/h2_kernel.dir/plugin.cpp.o"
  "CMakeFiles/h2_kernel.dir/plugin.cpp.o.d"
  "libh2_kernel.a"
  "libh2_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
