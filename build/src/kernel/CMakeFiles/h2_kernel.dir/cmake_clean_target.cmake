file(REMOVE_RECURSE
  "libh2_kernel.a"
)
