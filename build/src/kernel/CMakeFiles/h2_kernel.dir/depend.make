# Empty dependencies file for h2_kernel.
# This may be replaced when dependencies are built.
