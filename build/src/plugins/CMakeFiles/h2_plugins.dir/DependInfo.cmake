
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plugins/basic.cpp" "src/plugins/CMakeFiles/h2_plugins.dir/basic.cpp.o" "gcc" "src/plugins/CMakeFiles/h2_plugins.dir/basic.cpp.o.d"
  "/root/repo/src/plugins/compute.cpp" "src/plugins/CMakeFiles/h2_plugins.dir/compute.cpp.o" "gcc" "src/plugins/CMakeFiles/h2_plugins.dir/compute.cpp.o.d"
  "/root/repo/src/plugins/linalg.cpp" "src/plugins/CMakeFiles/h2_plugins.dir/linalg.cpp.o" "gcc" "src/plugins/CMakeFiles/h2_plugins.dir/linalg.cpp.o.d"
  "/root/repo/src/plugins/mpi.cpp" "src/plugins/CMakeFiles/h2_plugins.dir/mpi.cpp.o" "gcc" "src/plugins/CMakeFiles/h2_plugins.dir/mpi.cpp.o.d"
  "/root/repo/src/plugins/mpi_comm.cpp" "src/plugins/CMakeFiles/h2_plugins.dir/mpi_comm.cpp.o" "gcc" "src/plugins/CMakeFiles/h2_plugins.dir/mpi_comm.cpp.o.d"
  "/root/repo/src/plugins/p2p.cpp" "src/plugins/CMakeFiles/h2_plugins.dir/p2p.cpp.o" "gcc" "src/plugins/CMakeFiles/h2_plugins.dir/p2p.cpp.o.d"
  "/root/repo/src/plugins/standard.cpp" "src/plugins/CMakeFiles/h2_plugins.dir/standard.cpp.o" "gcc" "src/plugins/CMakeFiles/h2_plugins.dir/standard.cpp.o.d"
  "/root/repo/src/plugins/tuplespace.cpp" "src/plugins/CMakeFiles/h2_plugins.dir/tuplespace.cpp.o" "gcc" "src/plugins/CMakeFiles/h2_plugins.dir/tuplespace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/h2_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/h2_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2_util.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/h2_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/h2_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/h2_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/h2_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
