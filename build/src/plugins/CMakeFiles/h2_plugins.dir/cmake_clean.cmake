file(REMOVE_RECURSE
  "CMakeFiles/h2_plugins.dir/basic.cpp.o"
  "CMakeFiles/h2_plugins.dir/basic.cpp.o.d"
  "CMakeFiles/h2_plugins.dir/compute.cpp.o"
  "CMakeFiles/h2_plugins.dir/compute.cpp.o.d"
  "CMakeFiles/h2_plugins.dir/linalg.cpp.o"
  "CMakeFiles/h2_plugins.dir/linalg.cpp.o.d"
  "CMakeFiles/h2_plugins.dir/mpi.cpp.o"
  "CMakeFiles/h2_plugins.dir/mpi.cpp.o.d"
  "CMakeFiles/h2_plugins.dir/mpi_comm.cpp.o"
  "CMakeFiles/h2_plugins.dir/mpi_comm.cpp.o.d"
  "CMakeFiles/h2_plugins.dir/p2p.cpp.o"
  "CMakeFiles/h2_plugins.dir/p2p.cpp.o.d"
  "CMakeFiles/h2_plugins.dir/standard.cpp.o"
  "CMakeFiles/h2_plugins.dir/standard.cpp.o.d"
  "CMakeFiles/h2_plugins.dir/tuplespace.cpp.o"
  "CMakeFiles/h2_plugins.dir/tuplespace.cpp.o.d"
  "libh2_plugins.a"
  "libh2_plugins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_plugins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
