file(REMOVE_RECURSE
  "libh2_plugins.a"
)
