# Empty compiler generated dependencies file for h2_plugins.
# This may be replaced when dependencies are built.
