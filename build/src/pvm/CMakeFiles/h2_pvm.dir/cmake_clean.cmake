file(REMOVE_RECURSE
  "CMakeFiles/h2_pvm.dir/hpvmd.cpp.o"
  "CMakeFiles/h2_pvm.dir/hpvmd.cpp.o.d"
  "libh2_pvm.a"
  "libh2_pvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_pvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
