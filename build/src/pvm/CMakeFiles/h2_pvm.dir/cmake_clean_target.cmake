file(REMOVE_RECURSE
  "libh2_pvm.a"
)
