# Empty dependencies file for h2_pvm.
# This may be replaced when dependencies are built.
