file(REMOVE_RECURSE
  "CMakeFiles/h2_registry.dir/lookup.cpp.o"
  "CMakeFiles/h2_registry.dir/lookup.cpp.o.d"
  "CMakeFiles/h2_registry.dir/uddi.cpp.o"
  "CMakeFiles/h2_registry.dir/uddi.cpp.o.d"
  "CMakeFiles/h2_registry.dir/wsil.cpp.o"
  "CMakeFiles/h2_registry.dir/wsil.cpp.o.d"
  "CMakeFiles/h2_registry.dir/xml_registry.cpp.o"
  "CMakeFiles/h2_registry.dir/xml_registry.cpp.o.d"
  "libh2_registry.a"
  "libh2_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
