file(REMOVE_RECURSE
  "libh2_registry.a"
)
