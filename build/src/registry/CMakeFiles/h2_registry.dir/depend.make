# Empty dependencies file for h2_registry.
# This may be replaced when dependencies are built.
