file(REMOVE_RECURSE
  "CMakeFiles/h2_runner.dir/runner_box.cpp.o"
  "CMakeFiles/h2_runner.dir/runner_box.cpp.o.d"
  "libh2_runner.a"
  "libh2_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
