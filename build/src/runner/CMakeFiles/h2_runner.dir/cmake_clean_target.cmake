file(REMOVE_RECURSE
  "libh2_runner.a"
)
