# Empty compiler generated dependencies file for h2_runner.
# This may be replaced when dependencies are built.
