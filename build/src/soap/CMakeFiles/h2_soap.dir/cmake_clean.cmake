file(REMOVE_RECURSE
  "CMakeFiles/h2_soap.dir/envelope.cpp.o"
  "CMakeFiles/h2_soap.dir/envelope.cpp.o.d"
  "CMakeFiles/h2_soap.dir/mime.cpp.o"
  "CMakeFiles/h2_soap.dir/mime.cpp.o.d"
  "libh2_soap.a"
  "libh2_soap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_soap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
