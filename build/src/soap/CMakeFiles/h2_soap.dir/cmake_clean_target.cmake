file(REMOVE_RECURSE
  "libh2_soap.a"
)
