# Empty dependencies file for h2_soap.
# This may be replaced when dependencies are built.
