
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/endpoint.cpp" "src/transport/CMakeFiles/h2_transport.dir/endpoint.cpp.o" "gcc" "src/transport/CMakeFiles/h2_transport.dir/endpoint.cpp.o.d"
  "/root/repo/src/transport/http.cpp" "src/transport/CMakeFiles/h2_transport.dir/http.cpp.o" "gcc" "src/transport/CMakeFiles/h2_transport.dir/http.cpp.o.d"
  "/root/repo/src/transport/marshal.cpp" "src/transport/CMakeFiles/h2_transport.dir/marshal.cpp.o" "gcc" "src/transport/CMakeFiles/h2_transport.dir/marshal.cpp.o.d"
  "/root/repo/src/transport/rpc.cpp" "src/transport/CMakeFiles/h2_transport.dir/rpc.cpp.o" "gcc" "src/transport/CMakeFiles/h2_transport.dir/rpc.cpp.o.d"
  "/root/repo/src/transport/simnet.cpp" "src/transport/CMakeFiles/h2_transport.dir/simnet.cpp.o" "gcc" "src/transport/CMakeFiles/h2_transport.dir/simnet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soap/CMakeFiles/h2_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/h2_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/h2_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
