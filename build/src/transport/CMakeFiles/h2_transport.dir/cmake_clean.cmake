file(REMOVE_RECURSE
  "CMakeFiles/h2_transport.dir/endpoint.cpp.o"
  "CMakeFiles/h2_transport.dir/endpoint.cpp.o.d"
  "CMakeFiles/h2_transport.dir/http.cpp.o"
  "CMakeFiles/h2_transport.dir/http.cpp.o.d"
  "CMakeFiles/h2_transport.dir/marshal.cpp.o"
  "CMakeFiles/h2_transport.dir/marshal.cpp.o.d"
  "CMakeFiles/h2_transport.dir/rpc.cpp.o"
  "CMakeFiles/h2_transport.dir/rpc.cpp.o.d"
  "CMakeFiles/h2_transport.dir/simnet.cpp.o"
  "CMakeFiles/h2_transport.dir/simnet.cpp.o.d"
  "libh2_transport.a"
  "libh2_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
