file(REMOVE_RECURSE
  "libh2_transport.a"
)
