# Empty dependencies file for h2_transport.
# This may be replaced when dependencies are built.
