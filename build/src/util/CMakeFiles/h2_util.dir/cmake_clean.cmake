file(REMOVE_RECURSE
  "CMakeFiles/h2_util.dir/byte_buffer.cpp.o"
  "CMakeFiles/h2_util.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/h2_util.dir/error.cpp.o"
  "CMakeFiles/h2_util.dir/error.cpp.o.d"
  "CMakeFiles/h2_util.dir/log.cpp.o"
  "CMakeFiles/h2_util.dir/log.cpp.o.d"
  "CMakeFiles/h2_util.dir/rng.cpp.o"
  "CMakeFiles/h2_util.dir/rng.cpp.o.d"
  "CMakeFiles/h2_util.dir/strings.cpp.o"
  "CMakeFiles/h2_util.dir/strings.cpp.o.d"
  "CMakeFiles/h2_util.dir/thread_pool.cpp.o"
  "CMakeFiles/h2_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/h2_util.dir/uuid.cpp.o"
  "CMakeFiles/h2_util.dir/uuid.cpp.o.d"
  "libh2_util.a"
  "libh2_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
