file(REMOVE_RECURSE
  "libh2_util.a"
)
