# Empty dependencies file for h2_util.
# This may be replaced when dependencies are built.
