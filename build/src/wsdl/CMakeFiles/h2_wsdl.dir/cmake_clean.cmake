file(REMOVE_RECURSE
  "CMakeFiles/h2_wsdl.dir/descriptor.cpp.o"
  "CMakeFiles/h2_wsdl.dir/descriptor.cpp.o.d"
  "CMakeFiles/h2_wsdl.dir/io.cpp.o"
  "CMakeFiles/h2_wsdl.dir/io.cpp.o.d"
  "CMakeFiles/h2_wsdl.dir/model.cpp.o"
  "CMakeFiles/h2_wsdl.dir/model.cpp.o.d"
  "libh2_wsdl.a"
  "libh2_wsdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_wsdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
