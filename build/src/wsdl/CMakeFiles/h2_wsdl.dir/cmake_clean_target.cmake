file(REMOVE_RECURSE
  "libh2_wsdl.a"
)
