# Empty compiler generated dependencies file for h2_wsdl.
# This may be replaced when dependencies are built.
