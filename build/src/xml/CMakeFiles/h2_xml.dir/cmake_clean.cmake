file(REMOVE_RECURSE
  "CMakeFiles/h2_xml.dir/dom.cpp.o"
  "CMakeFiles/h2_xml.dir/dom.cpp.o.d"
  "CMakeFiles/h2_xml.dir/escape.cpp.o"
  "CMakeFiles/h2_xml.dir/escape.cpp.o.d"
  "CMakeFiles/h2_xml.dir/parser.cpp.o"
  "CMakeFiles/h2_xml.dir/parser.cpp.o.d"
  "CMakeFiles/h2_xml.dir/writer.cpp.o"
  "CMakeFiles/h2_xml.dir/writer.cpp.o.d"
  "CMakeFiles/h2_xml.dir/xpath.cpp.o"
  "CMakeFiles/h2_xml.dir/xpath.cpp.o.d"
  "libh2_xml.a"
  "libh2_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/h2_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
