file(REMOVE_RECURSE
  "libh2_xml.a"
)
