# Empty compiler generated dependencies file for h2_xml.
# This may be replaced when dependencies are built.
