file(REMOVE_RECURSE
  "CMakeFiles/container_test.dir/container/test_container.cpp.o"
  "CMakeFiles/container_test.dir/container/test_container.cpp.o.d"
  "CMakeFiles/container_test.dir/container/test_find_local.cpp.o"
  "CMakeFiles/container_test.dir/container/test_find_local.cpp.o.d"
  "CMakeFiles/container_test.dir/container/test_http_exposure.cpp.o"
  "CMakeFiles/container_test.dir/container/test_http_exposure.cpp.o.d"
  "CMakeFiles/container_test.dir/container/test_management.cpp.o"
  "CMakeFiles/container_test.dir/container/test_management.cpp.o.d"
  "CMakeFiles/container_test.dir/container/test_mime_exposure.cpp.o"
  "CMakeFiles/container_test.dir/container/test_mime_exposure.cpp.o.d"
  "CMakeFiles/container_test.dir/container/test_versioning.cpp.o"
  "CMakeFiles/container_test.dir/container/test_versioning.cpp.o.d"
  "container_test"
  "container_test.pdb"
  "container_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
