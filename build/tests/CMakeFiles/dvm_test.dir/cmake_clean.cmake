file(REMOVE_RECURSE
  "CMakeFiles/dvm_test.dir/dvm/test_coherency_edges.cpp.o"
  "CMakeFiles/dvm_test.dir/dvm/test_coherency_edges.cpp.o.d"
  "CMakeFiles/dvm_test.dir/dvm/test_dvm.cpp.o"
  "CMakeFiles/dvm_test.dir/dvm/test_dvm.cpp.o.d"
  "CMakeFiles/dvm_test.dir/dvm/test_heartbeat.cpp.o"
  "CMakeFiles/dvm_test.dir/dvm/test_heartbeat.cpp.o.d"
  "dvm_test"
  "dvm_test.pdb"
  "dvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
