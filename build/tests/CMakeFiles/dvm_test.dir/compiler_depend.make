# Empty compiler generated dependencies file for dvm_test.
# This may be replaced when dependencies are built.
