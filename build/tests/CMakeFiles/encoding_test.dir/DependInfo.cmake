
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/encoding/test_base64.cpp" "tests/CMakeFiles/encoding_test.dir/encoding/test_base64.cpp.o" "gcc" "tests/CMakeFiles/encoding_test.dir/encoding/test_base64.cpp.o.d"
  "/root/repo/tests/encoding/test_codec.cpp" "tests/CMakeFiles/encoding_test.dir/encoding/test_codec.cpp.o" "gcc" "tests/CMakeFiles/encoding_test.dir/encoding/test_codec.cpp.o.d"
  "/root/repo/tests/encoding/test_value.cpp" "tests/CMakeFiles/encoding_test.dir/encoding/test_value.cpp.o" "gcc" "tests/CMakeFiles/encoding_test.dir/encoding/test_value.cpp.o.d"
  "/root/repo/tests/encoding/test_xdr.cpp" "tests/CMakeFiles/encoding_test.dir/encoding/test_xdr.cpp.o" "gcc" "tests/CMakeFiles/encoding_test.dir/encoding/test_xdr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/encoding/CMakeFiles/h2_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/h2_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
