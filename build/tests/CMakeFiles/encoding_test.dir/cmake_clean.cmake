file(REMOVE_RECURSE
  "CMakeFiles/encoding_test.dir/encoding/test_base64.cpp.o"
  "CMakeFiles/encoding_test.dir/encoding/test_base64.cpp.o.d"
  "CMakeFiles/encoding_test.dir/encoding/test_codec.cpp.o"
  "CMakeFiles/encoding_test.dir/encoding/test_codec.cpp.o.d"
  "CMakeFiles/encoding_test.dir/encoding/test_value.cpp.o"
  "CMakeFiles/encoding_test.dir/encoding/test_value.cpp.o.d"
  "CMakeFiles/encoding_test.dir/encoding/test_xdr.cpp.o"
  "CMakeFiles/encoding_test.dir/encoding/test_xdr.cpp.o.d"
  "encoding_test"
  "encoding_test.pdb"
  "encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
