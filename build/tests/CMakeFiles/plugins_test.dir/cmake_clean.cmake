file(REMOVE_RECURSE
  "CMakeFiles/plugins_test.dir/plugins/test_basic_plugins.cpp.o"
  "CMakeFiles/plugins_test.dir/plugins/test_basic_plugins.cpp.o.d"
  "CMakeFiles/plugins_test.dir/plugins/test_compute_p2p.cpp.o"
  "CMakeFiles/plugins_test.dir/plugins/test_compute_p2p.cpp.o.d"
  "CMakeFiles/plugins_test.dir/plugins/test_linalg.cpp.o"
  "CMakeFiles/plugins_test.dir/plugins/test_linalg.cpp.o.d"
  "CMakeFiles/plugins_test.dir/plugins/test_mpi.cpp.o"
  "CMakeFiles/plugins_test.dir/plugins/test_mpi.cpp.o.d"
  "CMakeFiles/plugins_test.dir/plugins/test_tuplespace.cpp.o"
  "CMakeFiles/plugins_test.dir/plugins/test_tuplespace.cpp.o.d"
  "plugins_test"
  "plugins_test.pdb"
  "plugins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plugins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
