# Empty compiler generated dependencies file for plugins_test.
# This may be replaced when dependencies are built.
