
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pvm/test_hpvmd.cpp" "tests/CMakeFiles/pvm_test.dir/pvm/test_hpvmd.cpp.o" "gcc" "tests/CMakeFiles/pvm_test.dir/pvm/test_hpvmd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pvm/CMakeFiles/h2_pvm.dir/DependInfo.cmake"
  "/root/repo/build/src/plugins/CMakeFiles/h2_plugins.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/h2_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/wsdl/CMakeFiles/h2_wsdl.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/h2_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/h2_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/h2_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/h2_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
