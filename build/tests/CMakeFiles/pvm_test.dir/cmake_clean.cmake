file(REMOVE_RECURSE
  "CMakeFiles/pvm_test.dir/pvm/test_hpvmd.cpp.o"
  "CMakeFiles/pvm_test.dir/pvm/test_hpvmd.cpp.o.d"
  "pvm_test"
  "pvm_test.pdb"
  "pvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
