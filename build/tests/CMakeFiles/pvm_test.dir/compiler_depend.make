# Empty compiler generated dependencies file for pvm_test.
# This may be replaced when dependencies are built.
