file(REMOVE_RECURSE
  "CMakeFiles/soap_test.dir/soap/test_envelope.cpp.o"
  "CMakeFiles/soap_test.dir/soap/test_envelope.cpp.o.d"
  "CMakeFiles/soap_test.dir/soap/test_headers.cpp.o"
  "CMakeFiles/soap_test.dir/soap/test_headers.cpp.o.d"
  "CMakeFiles/soap_test.dir/soap/test_mime.cpp.o"
  "CMakeFiles/soap_test.dir/soap/test_mime.cpp.o.d"
  "soap_test"
  "soap_test.pdb"
  "soap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
