# Empty dependencies file for soap_test.
# This may be replaced when dependencies are built.
