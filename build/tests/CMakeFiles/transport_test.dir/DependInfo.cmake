
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transport/test_endpoint.cpp" "tests/CMakeFiles/transport_test.dir/transport/test_endpoint.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/test_endpoint.cpp.o.d"
  "/root/repo/tests/transport/test_http.cpp" "tests/CMakeFiles/transport_test.dir/transport/test_http.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/test_http.cpp.o.d"
  "/root/repo/tests/transport/test_http_binding.cpp" "tests/CMakeFiles/transport_test.dir/transport/test_http_binding.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/test_http_binding.cpp.o.d"
  "/root/repo/tests/transport/test_rpc.cpp" "tests/CMakeFiles/transport_test.dir/transport/test_rpc.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/test_rpc.cpp.o.d"
  "/root/repo/tests/transport/test_simnet.cpp" "tests/CMakeFiles/transport_test.dir/transport/test_simnet.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/test_simnet.cpp.o.d"
  "/root/repo/tests/transport/test_simnet_advanced.cpp" "tests/CMakeFiles/transport_test.dir/transport/test_simnet_advanced.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/test_simnet_advanced.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/h2_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/soap/CMakeFiles/h2_soap.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/h2_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/h2_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
