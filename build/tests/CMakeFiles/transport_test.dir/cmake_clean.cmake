file(REMOVE_RECURSE
  "CMakeFiles/transport_test.dir/transport/test_endpoint.cpp.o"
  "CMakeFiles/transport_test.dir/transport/test_endpoint.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/test_http.cpp.o"
  "CMakeFiles/transport_test.dir/transport/test_http.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/test_http_binding.cpp.o"
  "CMakeFiles/transport_test.dir/transport/test_http_binding.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/test_rpc.cpp.o"
  "CMakeFiles/transport_test.dir/transport/test_rpc.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/test_simnet.cpp.o"
  "CMakeFiles/transport_test.dir/transport/test_simnet.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/test_simnet_advanced.cpp.o"
  "CMakeFiles/transport_test.dir/transport/test_simnet_advanced.cpp.o.d"
  "transport_test"
  "transport_test.pdb"
  "transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
