
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_byte_buffer.cpp" "tests/CMakeFiles/util_test.dir/util/test_byte_buffer.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_byte_buffer.cpp.o.d"
  "/root/repo/tests/util/test_log_clock.cpp" "tests/CMakeFiles/util_test.dir/util/test_log_clock.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_log_clock.cpp.o.d"
  "/root/repo/tests/util/test_result.cpp" "tests/CMakeFiles/util_test.dir/util/test_result.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_result.cpp.o.d"
  "/root/repo/tests/util/test_rng_uuid.cpp" "tests/CMakeFiles/util_test.dir/util/test_rng_uuid.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_rng_uuid.cpp.o.d"
  "/root/repo/tests/util/test_strings.cpp" "tests/CMakeFiles/util_test.dir/util/test_strings.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_strings.cpp.o.d"
  "/root/repo/tests/util/test_thread_pool.cpp" "tests/CMakeFiles/util_test.dir/util/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/test_thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/h2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
