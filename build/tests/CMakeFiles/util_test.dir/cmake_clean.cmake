file(REMOVE_RECURSE
  "CMakeFiles/util_test.dir/util/test_byte_buffer.cpp.o"
  "CMakeFiles/util_test.dir/util/test_byte_buffer.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_log_clock.cpp.o"
  "CMakeFiles/util_test.dir/util/test_log_clock.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_result.cpp.o"
  "CMakeFiles/util_test.dir/util/test_result.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_rng_uuid.cpp.o"
  "CMakeFiles/util_test.dir/util/test_rng_uuid.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_strings.cpp.o"
  "CMakeFiles/util_test.dir/util/test_strings.cpp.o.d"
  "CMakeFiles/util_test.dir/util/test_thread_pool.cpp.o"
  "CMakeFiles/util_test.dir/util/test_thread_pool.cpp.o.d"
  "util_test"
  "util_test.pdb"
  "util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
