file(REMOVE_RECURSE
  "CMakeFiles/wsdl_test.dir/wsdl/test_descriptor.cpp.o"
  "CMakeFiles/wsdl_test.dir/wsdl/test_descriptor.cpp.o.d"
  "CMakeFiles/wsdl_test.dir/wsdl/test_golden.cpp.o"
  "CMakeFiles/wsdl_test.dir/wsdl/test_golden.cpp.o.d"
  "CMakeFiles/wsdl_test.dir/wsdl/test_io.cpp.o"
  "CMakeFiles/wsdl_test.dir/wsdl/test_io.cpp.o.d"
  "CMakeFiles/wsdl_test.dir/wsdl/test_model.cpp.o"
  "CMakeFiles/wsdl_test.dir/wsdl/test_model.cpp.o.d"
  "wsdl_test"
  "wsdl_test.pdb"
  "wsdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
