# Empty dependencies file for wsdl_test.
# This may be replaced when dependencies are built.
