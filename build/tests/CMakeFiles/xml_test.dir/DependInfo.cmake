
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/xml/test_parser.cpp" "tests/CMakeFiles/xml_test.dir/xml/test_parser.cpp.o" "gcc" "tests/CMakeFiles/xml_test.dir/xml/test_parser.cpp.o.d"
  "/root/repo/tests/xml/test_writer.cpp" "tests/CMakeFiles/xml_test.dir/xml/test_writer.cpp.o" "gcc" "tests/CMakeFiles/xml_test.dir/xml/test_writer.cpp.o.d"
  "/root/repo/tests/xml/test_xpath.cpp" "tests/CMakeFiles/xml_test.dir/xml/test_xpath.cpp.o" "gcc" "tests/CMakeFiles/xml_test.dir/xml/test_xpath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/h2_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/h2_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
