# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/encoding_test[1]_include.cmake")
include("/root/repo/build/tests/soap_test[1]_include.cmake")
include("/root/repo/build/tests/wsdl_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/plugins_test[1]_include.cmake")
include("/root/repo/build/tests/container_test[1]_include.cmake")
include("/root/repo/build/tests/runner_test[1]_include.cmake")
include("/root/repo/build/tests/dvm_test[1]_include.cmake")
include("/root/repo/build/tests/pvm_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
