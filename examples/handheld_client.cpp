// The paper's thin-client scenario: "lightweight clients (e.g. handheld
// devices) will be able to control distributed scientific applications
// running inside Harness II distributed virtual machines" — because every
// component speaks standard SOAP, a client that knows nothing about
// Harness can steer it.
//
// This example runs a compute DVM, then connects a "handheld" host that
// uses ONLY the SOAP binding (never xdr/local) to monitor and control the
// application's processes through the spawn plugin's Web Service face.
//
// Run:  ./handheld_client
#include <cstdio>

#include "core/harness2.hpp"

int main() {
  h2::Framework fw;

  // The science side: two nodes running a simulation under a DVM.
  auto compute1 = *fw.create_container("compute1");
  auto compute2 = *fw.create_container("compute2");
  auto dvm = *fw.create_dvm("sciencedvm", h2::CoherencyMode::kFullSynchrony);
  (void)dvm->add_node(*compute1);
  (void)dvm->add_node(*compute2);

  // Process management exposed as a SOAP Web Service on each node.
  h2::container::DeployOptions soap_only;
  soap_only.expose_soap = true;
  soap_only.expose_xdr = false;
  for (auto* node : {compute1, compute2}) {
    auto id = node->deploy("spawn", soap_only);
    if (!id.ok()) {
      std::fprintf(stderr, "deploy: %s\n", id.error().describe().c_str());
      return 1;
    }
    (void)node->publish(*id, fw.global_registry());
  }

  // The application spawns its own workers in-DVM (local fast path).
  for (auto* node : {compute1, compute2}) {
    auto record = node->find_local("SpawnService");
    auto local = node->open_channel(record->wsdl);
    for (int i = 0; i < 3; ++i) {
      std::vector<h2::Value> params{h2::Value::of_string("mc-worker")};
      (void)(*local)->invoke("spawn", params);
    }
  }

  // The handheld side: a puny device on a slow, high-latency link.
  auto handheld = *fw.create_container("handheld");
  for (auto* peer : {compute1, compute2}) {
    (void)fw.network().set_link(handheld->host(), peer->host(),
                                {.latency = 80 * h2::kMillisecond,  // GPRS-ish
                                 .bandwidth_bytes_per_sec = 5e3});
  }

  // It discovers the spawn services via the public registry and talks pure
  // SOAP — the only binding a generic SOAP stack would support.
  auto services = fw.uddi().find_service("SpawnService");
  std::printf("handheld discovered %zu SpawnService endpoints via UDDI facade\n",
              services.size());
  std::vector<h2::wsdl::BindingKind> soap_pref{h2::wsdl::BindingKind::kSoap};
  for (const auto& row : services) {
    // Resolve the WSDL through the registry entry and open a SOAP channel.
    auto entry = fw.global_registry().find_service("SpawnService");
    auto detail = fw.uddi().get_service_detail(row.service_key);
    std::printf("  service at %s (tmodel=%s)\n", detail->bindings[0].access_point.c_str(),
                detail->bindings[0].tmodel.c_str());
  }

  // Start, inspect, and stop a run on each compute node, from the handheld.
  for (auto* target : {compute1, compute2}) {
    auto record = target->find_local("SpawnService");
    auto channel = handheld->open_channel(record->wsdl, soap_pref);
    if (!channel.ok()) {
      std::fprintf(stderr, "open_channel: %s\n", channel.error().describe().c_str());
      return 1;
    }
    h2::Nanos t0 = fw.network().clock().now();
    std::vector<h2::Value> spawn_params{h2::Value::of_string("visualization-feed")};
    auto job = (*channel)->invoke("spawn", spawn_params);
    std::vector<h2::Value> status_params{*job};
    auto status = (*channel)->invoke("status", status_params);
    std::vector<h2::Value> kill_params{*job};
    (void)(*channel)->invoke("kill", kill_params);
    h2::Nanos elapsed = fw.network().clock().now() - t0;
    std::printf("%s: spawned job %lld (%s), killed it; 3 SOAP round trips took %lld ms "
                "of virtual time on the slow link\n",
                target->name().c_str(), static_cast<long long>(*job->as_int()),
                status->as_string()->c_str(),
                static_cast<long long>(elapsed / h2::kMillisecond));
  }

  std::printf("a device speaking nothing but SOAP/HTTP steered the DVM — "
              "the interoperability the paper buys by adopting Web Services standards.\n");
  return 0;
}
