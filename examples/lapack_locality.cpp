// The Section 6 narrative as running code:
//
//   "A user's application is composed of two main components: the
//    application logic and the computational library (e.g. LAPACK). The
//    user knows that a given node provides a highly optimized version of
//    the LAPACK service. He can simply run the application logic on his
//    home node and obtain the computational services from the remote node.
//    However ... he can search for a node that has a better connectivity
//    ... Further, he can load his application component to the same
//    container that hosts the LAPACK service itself, and take advantage of
//    local bindings in order to minimize latency."
//
// Three placements of the same workload, with measured (virtual) cost:
//   1. home node, far from the service        (xdr over a slow WAN link)
//   2. a well-connected node                  (xdr over a fast LAN link)
//   3. inside the LAPACK container itself     (localobject binding)
//
// Run:  ./lapack_locality [n]   (matrix dimension, default 48)
#include <cstdio>
#include <cstdlib>

#include "core/harness2.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;

  h2::Framework fw;
  auto home = *fw.create_container("home");          // the user's workstation
  auto nearby = *fw.create_container("nearby");      // same machine room as the server
  auto server = *fw.create_container("lapackhost");  // hosts the optimized LAPACK

  // Topology: home is across a WAN; nearby has gigabit to the server.
  (void)fw.network().set_link(home->host(), server->host(),
                              {.latency = 40 * h2::kMillisecond,
                               .bandwidth_bytes_per_sec = 2e6});
  (void)fw.network().set_link(nearby->host(), server->host(),
                              {.latency = 200 * h2::kMicrosecond,
                               .bandwidth_bytes_per_sec = 120e6});

  h2::container::DeployOptions options;
  options.expose_xdr = true;
  auto lapack_id = server->deploy("lapack", options);
  if (!lapack_id.ok()) {
    std::fprintf(stderr, "deploy: %s\n", lapack_id.error().describe().c_str());
    return 1;
  }
  (void)server->publish(*lapack_id, fw.global_registry());

  // The workload: factor A once, then solve against many right-hand sides.
  h2::Rng rng(11);
  auto a = rng.doubles(n * n);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += static_cast<double>(n);

  struct Placement {
    const char* label;
    h2::container::Container* where;
  } placements[] = {
      {"1. app on home node (WAN to service)", home},
      {"2. app moved to well-connected node", nearby},
      {"3. app uploaded into the LAPACK container", server},
  };

  std::printf("workload: setMatrix + factor + 16 solves, n=%zu\n\n", n);
  for (const Placement& p : placements) {
    auto channel = fw.connect(*p.where, "LapackService");
    if (!channel.ok()) {
      std::fprintf(stderr, "connect: %s\n", channel.error().describe().c_str());
      return 1;
    }
    h2::Nanos t0 = fw.network().clock().now();
    std::vector<h2::Value> set_params{h2::Value::of_doubles(a, "a")};
    auto ok = (*channel)->invoke("setMatrix", set_params);
    if (ok.ok()) ok = (*channel)->invoke("factor", {});
    std::size_t bytes = 0;
    for (int rhs = 0; ok.ok() && rhs < 16; ++rhs) {
      std::vector<h2::Value> solve_params{h2::Value::of_doubles(rng.doubles(n), "b")};
      ok = (*channel)->invoke("solve", solve_params);
      bytes += (*channel)->last_stats().request_bytes +
               (*channel)->last_stats().response_bytes;
    }
    if (!ok.ok()) {
      std::fprintf(stderr, "workload failed: %s\n", ok.error().describe().c_str());
      return 1;
    }
    h2::Nanos elapsed = fw.network().clock().now() - t0;
    std::printf("%-45s binding=%-11s wire=%8zu B  virtual time=%9lld us\n", p.label,
                (*channel)->binding_name(), bytes,
                static_cast<long long>(elapsed / h2::kMicrosecond));
  }

  std::printf("\neach move down the list cuts latency, ending at the paper's "
              "local-binding optimum (zero wire bytes).\n");
  return 0;
}
