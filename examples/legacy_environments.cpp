// Section 3 of the paper: "users may first load plugins that emulate
// distributed computing environments (currently PVM, MPI, and JavaSpaces
// plugins are available), thereby creating a framework within which their
// legacy codes may run."
//
// This example boots ONE Harness II environment and runs the same small
// computation (sum of squares of 1..24, partitioned over 3 hosts) three
// times, each under a different emulated programming model:
//
//   PVM         master/worker with tagged messages via hpvmd
//   MPI         rank-based reduce via the mpi plugin + collectives
//   JavaSpaces  task/result tuples through a central space service
//
// Run:  ./legacy_environments
#include <cstdio>
#include <cstring>

#include "core/harness2.hpp"
#include "plugins/mpi_comm.hpp"

namespace {

constexpr int kN = 24;
constexpr long kExpected = 4900;  // sum of squares 1..24

long sum_range_squares(int lo, int hi) {
  long sum = 0;
  for (int i = lo; i <= hi; ++i) sum += static_cast<long>(i) * i;
  return sum;
}

std::vector<std::uint8_t> pack(long v) {
  std::vector<std::uint8_t> out(sizeof(long));
  std::memcpy(out.data(), &v, sizeof(long));
  return out;
}
long unpack(const std::vector<std::uint8_t>& bytes) {
  long v = 0;
  std::memcpy(&v, bytes.data(), sizeof(long));
  return v;
}

}  // namespace

int main() {
  h2::Framework fw;
  std::vector<h2::container::Container*> nodes;
  for (const char* name : {"h0", "h1", "h2"}) {
    nodes.push_back(*fw.create_container(name));
    for (const char* plugin : {"p2p", "spawn", "table", "event", "hpvmd", "mpi", "space"}) {
      if (auto r = nodes.back()->kernel().load(plugin); !r.ok()) {
        std::fprintf(stderr, "load %s: %s\n", plugin, r.error().describe().c_str());
        return 1;
      }
    }
  }

  // ---- 1. PVM ------------------------------------------------------------------
  {
    for (auto* node : nodes) {
      std::vector<h2::Value> config{h2::Value::of_string("h0,h1,h2", "hosts")};
      (void)node->kernel().call("hpvmd", "config", config);
    }
    auto master = *h2::pvm::PvmTask::enroll(nodes[0]->kernel(), "master");
    std::vector<h2::pvm::PvmTask> workers;
    for (std::size_t i = 1; i < 3; ++i) {
      workers.push_back(*h2::pvm::PvmTask::enroll(nodes[i]->kernel(), "worker"));
    }
    // Master farms out ranges [1..12] and [13..24]; workers reply on tag 2.
    (void)master.send(workers[0].tid(), 1, pack(1));
    (void)master.send(workers[1].tid(), 1, pack(13));
    long total = 0;
    for (std::size_t w = 0; w < 2; ++w) {
      long lo = unpack(*workers[w].recv(1));
      (void)workers[w].send(master.tid(), 2,
                            pack(sum_range_squares(static_cast<int>(lo),
                                                   static_cast<int>(lo) + 11)));
      total += unpack(*master.recv(2));
    }
    std::printf("PVM emulation:        sum of squares 1..%d = %ld (%s)\n", kN, total,
                total == kExpected ? "ok" : "WRONG");
  }

  // ---- 2. MPI ------------------------------------------------------------------
  {
    std::vector<h2::plugins::mpi::MpiComm> comms;
    for (auto* node : nodes) {
      comms.push_back(*h2::plugins::mpi::MpiComm::init(node->kernel(), "h0,h1,h2"));
    }
    // Each rank sums its stripe; allreduce combines them.
    std::vector<double> contributions;
    for (std::int64_t rank = 0; rank < 3; ++rank) {
      int lo = static_cast<int>(rank) * 8 + 1;
      contributions.push_back(static_cast<double>(sum_range_squares(lo, lo + 7)));
    }
    auto total = h2::plugins::mpi::MpiComm::allreduce_sum(comms, contributions);
    std::printf("MPI emulation:        sum of squares 1..%d = %ld (%s)\n", kN,
                static_cast<long>(*total),
                static_cast<long>(*total) == kExpected ? "ok" : "WRONG");
  }

  // ---- 3. JavaSpaces ---------------------------------------------------------------
  {
    // h0 hosts the space; the other hosts reach it over the xdr binding.
    h2::container::DeployOptions options;
    options.expose_xdr = true;
    auto space_id = *nodes[0]->deploy("space", options);
    auto space_wsdl = *nodes[0]->describe(space_id);

    auto master = *nodes[0]->open_channel(space_wsdl);
    for (int i = 1; i <= kN; ++i) {
      std::vector<h2::Value> write_params{h2::Value::of_string("task", "name"),
                                          h2::Value::of_bytes(pack(i), "payload")};
      (void)master->invoke("write", write_params);
    }
    // Workers on h1/h2 take tasks and write results until the bag is empty.
    for (auto* worker_node : {nodes[1], nodes[2]}) {
      auto worker = *worker_node->open_channel(space_wsdl);
      while (true) {
        std::vector<h2::Value> take_params{h2::Value::of_string("task", "name")};
        auto task = worker->invoke("take", take_params);
        if (!task.ok()) break;
        long i = unpack(*task->as_bytes());
        std::vector<h2::Value> result_params{h2::Value::of_string("result", "name"),
                                             h2::Value::of_bytes(pack(i * i), "payload")};
        (void)worker->invoke("write", result_params);
      }
    }
    long total = 0;
    while (true) {
      std::vector<h2::Value> take_params{h2::Value::of_string("result", "name")};
      auto result = master->invoke("take", take_params);
      if (!result.ok()) break;
      total += unpack(*result->as_bytes());
    }
    std::printf("JavaSpaces emulation: sum of squares 1..%d = %ld (%s)\n", kN, total,
                total == kExpected ? "ok" : "WRONG");
  }

  std::printf("\nthree legacy programming models, one Harness II environment — "
              "the reconfigurability argument of Section 3.\n");
  return 0;
}
