// The MatMul Web Service of the paper's Figure 8, exercised through every
// binding it exposes (SOAP + local, plus the XDR binding the paper
// proposes). Demonstrates Figure 5: the identical abstract call costs
// radically different amounts depending on the binding, and the crossover
// as matrices grow.
//
// Run:  ./matmul_service
#include <cstdio>

#include "core/harness2.hpp"
#include "util/rng.hpp"
#include "wsdl/io.hpp"

int main() {
  h2::Framework fw;
  auto provider = *fw.create_container("hostA");
  auto consumer = *fw.create_container("hostB");

  // Deploy MatMul with all binding kinds, as Fig 8 describes ("we use both
  // a standard SOAP and a local Java binding"), plus XDR.
  h2::container::DeployOptions options;
  options.expose_soap = true;
  options.expose_xdr = true;
  auto id = provider->deploy("mmul", options);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy: %s\n", id.error().describe().c_str());
    return 1;
  }
  auto defs = *provider->describe(*id);
  std::printf("--- MatMul WSDL (paper Figure 8) ---\n%s\n------------------------------------\n",
              h2::wsdl::to_xml_string(defs, /*pretty=*/true).c_str());

  h2::Rng rng(7);
  std::printf("%6s %-12s %14s %14s %12s\n", "n", "binding", "req bytes", "resp bytes",
              "entities");
  for (std::size_t n : {4u, 16u, 64u}) {
    auto a = rng.doubles(n * n);
    auto b = rng.doubles(n * n);
    std::vector<h2::Value> params{h2::Value::of_doubles(a, "mata"),
                                  h2::Value::of_doubles(b, "matb")};

    struct Case {
      h2::container::Container* from;
      h2::wsdl::BindingKind kind;
    } cases[] = {
        {provider, h2::wsdl::BindingKind::kLocalObject},
        {consumer, h2::wsdl::BindingKind::kXdr},
        {consumer, h2::wsdl::BindingKind::kSoap},
    };
    std::vector<double> reference;
    for (const Case& c : cases) {
      std::vector<h2::wsdl::BindingKind> pref{c.kind};
      auto channel = c.from->open_channel(defs, pref);
      if (!channel.ok()) {
        std::fprintf(stderr, "open_channel: %s\n", channel.error().describe().c_str());
        return 1;
      }
      auto result = (*channel)->invoke("getResult", params);
      if (!result.ok()) {
        std::fprintf(stderr, "invoke: %s\n", result.error().describe().c_str());
        return 1;
      }
      auto values = *result->as_doubles();
      if (reference.empty()) {
        reference = values;
      } else if (values != reference) {
        std::fprintf(stderr, "bindings disagree!\n");
        return 1;
      }
      auto stats = (*channel)->last_stats();
      std::printf("%6zu %-12s %14zu %14zu %12d\n", n, (*channel)->binding_name(),
                  stats.request_bytes, stats.response_bytes, stats.entities_traversed);
    }
  }
  std::printf("\nall bindings returned identical results; "
              "SOAP moved the most bytes through the most entities,\n"
              "the localobject binding moved none — the paper's localization "
              "and encoding arguments in action.\n");
  return 0;
}
