// Mobile components (Section 5): "In mobile component frameworks the
// active component (or agent) can sometimes avoid exchanging large amounts
// of data by instead moving itself, and performing computations on the
// host where data is stored."
//
// A data host owns a large factorized system (the "data"). An analysis
// agent (a stateful table component accumulating results) must run many
// solves against it. Two strategies, measured in virtual network time:
//
//   A. stay home: every solve crosses the WAN            (data moves)
//   B. migrate: ship the agent's state once, solve        (agent moves)
//      locally, ship the accumulated results back
//
// The crossover is the paper's point: when per-call data exceeds agent
// state, moving the agent wins.
//
// Run:  ./mobile_agent [n] [solves]   (defaults: n=64, 32 solves)
#include <cstdio>
#include <cstdlib>

#include "core/harness2.hpp"
#include "core/mobility.hpp"
#include "util/rng.hpp"

namespace {

/// Runs the solve loop from wherever the agent currently lives.
h2::Result<h2::Nanos> run_solves(h2::container::Container& agent_home,
                                 const h2::wsdl::Definitions& lapack_wsdl,
                                 std::size_t n, int solves, h2::Rng& rng) {
  auto channel = agent_home.open_channel(lapack_wsdl);
  if (!channel.ok()) return channel.error();
  h2::Nanos t0 = agent_home.network().clock().now();
  for (int i = 0; i < solves; ++i) {
    std::vector<h2::Value> params{h2::Value::of_doubles(rng.doubles(n), "b")};
    auto x = (*channel)->invoke("solve", params);
    if (!x.ok()) return x.error();
  }
  return agent_home.network().clock().now() - t0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  int solves = argc > 2 ? std::atoi(argv[2]) : 32;

  h2::Framework fw;
  auto home = *fw.create_container("home");
  auto datahost = *fw.create_container("datahost");
  (void)fw.network().set_link(home->host(), datahost->host(),
                              {.latency = 25 * h2::kMillisecond,
                               .bandwidth_bytes_per_sec = 4e6});

  // The data: a factorized n x n system living on datahost.
  h2::container::DeployOptions exposed;
  exposed.expose_xdr = true;
  auto lapack_id = *datahost->deploy("lapack", exposed);
  h2::Rng rng(13);
  auto matrix = rng.doubles(n * n);
  for (std::size_t i = 0; i < n; ++i) matrix[i * n + i] += static_cast<double>(n);
  {
    auto& d = *datahost->instance(lapack_id);
    std::vector<h2::Value> set_params{h2::Value::of_doubles(matrix, "a")};
    (void)d.dispatch("setMatrix", set_params);
    (void)d.dispatch("factor", {});
  }
  auto lapack_wsdl = *datahost->describe(lapack_id);

  // The agent: a stateful component (its accumulated analysis lives in a
  // table instance on the home node).
  auto agent_id = *home->deploy("table");
  {
    auto& agent = *home->instance(agent_id);
    for (int i = 0; i < 200; ++i) {
      std::vector<h2::Value> put_params{
          h2::Value::of_string("obs" + std::to_string(i)),
          h2::Value::of_string("value-" + std::to_string(i * 7))};
      (void)agent.dispatch("put", put_params);
    }
  }

  // ---- strategy A: stay home, data crosses the WAN every call --------------------
  auto stay_cost = run_solves(*home, lapack_wsdl, n, solves, rng);
  if (!stay_cost.ok()) {
    std::fprintf(stderr, "stay-home failed: %s\n", stay_cost.error().describe().c_str());
    return 1;
  }

  // ---- strategy B: migrate the agent next to the data ----------------------------
  auto report = h2::mobility::migrate_component(*home, agent_id, "datahost");
  if (!report.ok()) {
    std::fprintf(stderr, "migration failed: %s\n", report.error().describe().c_str());
    return 1;
  }
  auto local_cost = run_solves(*datahost, lapack_wsdl, n, solves, rng);
  h2::Nanos move_cost = report->wire_time;

  // Verify the agent kept its memory across the move.
  auto& moved = *datahost->instance(report->new_instance_id);
  std::vector<h2::Value> get_params{h2::Value::of_string("obs42")};
  auto memory = moved.dispatch("get", get_params);

  std::printf("workload: %d solves against a %zux%zu system across a WAN\n\n", solves, n, n);
  std::printf("A. agent stays home:  %8lld us of network time (data moves every call)\n",
              static_cast<long long>(*stay_cost / h2::kMicrosecond));
  std::printf("B. agent migrates:    %8lld us  = %lld us move (%zu B of state) + %lld us local solves\n",
              static_cast<long long>((move_cost + *local_cost) / h2::kMicrosecond),
              static_cast<long long>(move_cost / h2::kMicrosecond), report->state_bytes,
              static_cast<long long>(*local_cost / h2::kMicrosecond));
  std::printf("\nagent memory after move: obs42 -> %s\n",
              memory.ok() ? memory->as_string()->c_str() : "LOST");
  std::printf("the agent moved once instead of moving %d right-hand sides and "
              "solutions — the paper's mobile-component argument, measured.\n",
              solves);
  return 0;
}
