// The classic PVM token-ring demo running on the Harness II PVM emulation
// (the hpvmd plugin of the paper's Figure 2). Each hop goes through:
// application -> hpvmd -> p2p plugin -> (simulated) network -> remote p2p
// mailbox -> remote hpvmd -> application, i.e. the emulation built purely
// by leveraging sibling plugins.
//
// Run:  ./pvm_ring [hosts] [laps]     (defaults: 4 hosts, 5 laps)
#include <cstdio>
#include <cstdlib>

#include "core/harness2.hpp"

int main(int argc, char** argv) {
  std::size_t host_count = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  int laps = argc > 2 ? std::atoi(argv[2]) : 5;
  if (host_count < 2) host_count = 2;

  h2::Framework fw;

  // Boot a Harness kernel with the Fig-2 stack on every host.
  std::vector<h2::container::Container*> nodes;
  std::string csv;
  for (std::size_t i = 0; i < host_count; ++i) {
    std::string name = "host" + std::to_string(i);
    nodes.push_back(*fw.create_container(name));
    csv += (i ? "," : "") + name;
  }
  for (auto* node : nodes) {
    for (const char* plugin : {"p2p", "spawn", "table", "event", "hpvmd"}) {
      if (auto r = node->kernel().load(plugin); !r.ok()) {
        std::fprintf(stderr, "load %s: %s\n", plugin, r.error().describe().c_str());
        return 1;
      }
    }
    std::vector<h2::Value> config{h2::Value::of_string(csv, "hosts")};
    if (auto r = node->kernel().call("hpvmd", "config", config); !r.ok()) {
      std::fprintf(stderr, "config: %s\n", r.error().describe().c_str());
      return 1;
    }
  }

  // Enroll one ring task per host.
  std::vector<h2::pvm::PvmTask> tasks;
  for (std::size_t i = 0; i < host_count; ++i) {
    auto task = h2::pvm::PvmTask::enroll(nodes[i]->kernel(),
                                         "ring" + std::to_string(i));
    if (!task.ok()) {
      std::fprintf(stderr, "enroll: %s\n", task.error().describe().c_str());
      return 1;
    }
    std::printf("task ring%zu on %s has tid %lld\n", i, nodes[i]->name().c_str(),
                static_cast<long long>(task->tid()));
    tasks.push_back(*task);
  }

  // Pass the token around the ring.
  constexpr std::int64_t kTag = 42;
  std::vector<std::uint8_t> token{0};
  h2::Nanos start = fw.network().clock().now();
  (void)tasks[0].send(tasks[1 % host_count].tid(), kTag, token);
  int hops = 0;
  for (int lap = 0; lap < laps; ++lap) {
    for (std::size_t step = 1; step <= host_count; ++step) {
      std::size_t self = step % host_count;
      auto received = tasks[self].recv(kTag);
      if (!received.ok()) {
        std::fprintf(stderr, "recv: %s\n", received.error().describe().c_str());
        return 1;
      }
      (*received)[0] = static_cast<std::uint8_t>((*received)[0] + 1);
      ++hops;
      std::size_t next = (self + 1) % host_count;
      (void)tasks[self].send(tasks[next].tid(), kTag, *received);
    }
  }
  auto final_token = tasks[1 % host_count].recv(kTag);
  h2::Nanos elapsed = fw.network().clock().now() - start;

  std::printf("token value after %d laps over %zu hosts: %d (expected %d)\n", laps,
              host_count, (*final_token)[0], hops);
  std::printf("virtual time: %lld us total, %lld us/hop; network messages: %llu\n",
              static_cast<long long>(elapsed / h2::kMicrosecond),
              static_cast<long long>(elapsed / (hops + 1) / h2::kMicrosecond),
              static_cast<unsigned long long>(fw.network().stats().messages));
  return (*final_token)[0] == hops ? 0 : 1;
}
