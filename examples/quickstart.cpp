// Quickstart: builds the exact environment of the paper's Figure 1 — a
// DVM named "dvm1" spanning four nodes, a replicated baseline plugin set,
// plus node-specific plugins — then discovers and calls the WSTime service
// (Figure 7) through two different bindings.
//
// Run:  ./quickstart
#include <cstdio>

#include "core/harness2.hpp"
#include "wsdl/io.hpp"

int main() {
  h2::Framework fw;

  // ---- build the DVM of Fig 1 --------------------------------------------------
  const char* node_names[] = {"A", "B", "C", "D"};
  std::vector<h2::container::Container*> nodes;
  for (const char* name : node_names) {
    auto c = fw.create_container(name);
    if (!c.ok()) {
      std::fprintf(stderr, "create_container: %s\n", c.error().describe().c_str());
      return 1;
    }
    nodes.push_back(*c);
  }

  auto dvm = fw.create_dvm("dvm1", h2::CoherencyMode::kFullSynchrony);
  for (auto* node : nodes) {
    if (auto r = (*dvm)->add_node(*node); !r.ok()) {
      std::fprintf(stderr, "add_node: %s\n", r.error().describe().c_str());
      return 1;
    }
  }

  // Baseline plugins replicated on every node ("a set of replicated
  // plugins for primitive functions such as message passing and process
  // management are loaded on all nodes").
  for (const char* plugin : {"p2p", "spawn", "table", "event"}) {
    if (auto s = (*dvm)->deploy_everywhere(plugin); !s.ok()) {
      std::fprintf(stderr, "deploy_everywhere(%s): %s\n", plugin,
                   s.error().describe().c_str());
      return 1;
    }
  }

  // Node-specific plugins, as drawn in the figure: mmul on A, ping on B,
  // the time service on C.
  h2::container::DeployOptions exposed;
  exposed.expose_soap = true;
  exposed.expose_xdr = true;
  (void)(*dvm)->deploy("A", "mmul", exposed);
  (void)(*dvm)->deploy("B", "ping", exposed);
  auto time_component = (*dvm)->deploy("C", "time", exposed);

  auto status = (*dvm)->status();
  std::printf("DVM %s: %zu nodes, %zu components, coherency=%s\n",
              status.name.c_str(), status.nodes_alive, status.components,
              status.coherency.c_str());

  // ---- publish + discover the WSTime service (Fig 7) ----------------------------
  auto record = nodes[2]->find_local("WSTimeService");
  auto key = nodes[2]->publish(record->instance_id, fw.global_registry());
  std::printf("published WSTime as registry key %s\n", key->c_str());
  std::printf("--- WSDL (as in the paper's Figure 7) ---\n%s\n-----------------------------------------\n",
              h2::wsdl::to_xml_string(record->wsdl, /*pretty=*/true).c_str());

  // ---- call it from node D over the negotiated binding (xdr) ---------------------
  auto remote = fw.connect(*nodes[3], "WSTimeService");
  auto t1 = (*remote)->invoke("getTime", {});
  std::printf("getTime via %-11s -> %s (request bytes: %zu)\n",
              (*remote)->binding_name(), t1->as_string()->c_str(),
              (*remote)->last_stats().request_bytes);

  // ---- and from node C itself, where the localobject fast path applies ------------
  auto local = fw.connect(*nodes[2], "WSTimeService");
  auto t2 = (*local)->invoke("getTime", {});
  std::printf("getTime via %-11s -> %s (request bytes: %zu)\n",
              (*local)->binding_name(), t2->as_string()->c_str(),
              (*local)->last_stats().request_bytes);

  std::printf("virtual network time spent: %lld us, messages: %llu\n",
              static_cast<long long>(fw.network().clock().now() / h2::kMicrosecond),
              static_cast<unsigned long long>(fw.network().stats().messages));
  (void)time_component;
  return 0;
}
