#include "container/container.hpp"

#include "resilience/breaker.hpp"
#include "resilience/resilient_channel.hpp"
#include "util/log.hpp"

namespace h2::container {

namespace {

Logger& logger() {
  static Logger log("container");
  return log;
}

/// Pass-through dispatcher for binding servers: endpoints hold this (via
/// shared_ptr) instead of the plugin itself, so the container retains sole
/// ownership of the component. The container always tears the endpoint
/// down before destroying the component, so the raw pointer cannot dangle.
class ForwardDispatcher final : public net::Dispatcher {
 public:
  explicit ForwardDispatcher(net::Dispatcher* target) : target_(target) {}
  Result<Value> dispatch(std::string_view operation,
                         std::span<const Value> params) override {
    return target_->dispatch(operation, params);
  }

 private:
  net::Dispatcher* target_;
};

}  // namespace

Container::Container(std::string name, const kernel::PluginRepository& repo,
                     net::SimNetwork& net, net::HostId host)
    : name_(std::move(name)),
      repo_(repo),
      net_(net),
      host_(host),
      kernel_(name_, repo, net, host),
      registry_(net.clock()),
      dedup_(std::make_shared<resil::DedupCache>(
          resil::kDefaultDedupCapacity,
          &net.metrics().counter("h2.resil.dedup_hits"))),
      soap_server_(net, host, kSoapPort),
      c_deploys_(net.metrics().counter("h2.container." + name_ + ".deploys")),
      c_undeploys_(net.metrics().counter("h2.container." + name_ + ".undeploys")),
      c_crashes_(net.metrics().counter("h2.container." + name_ + ".crashes")),
      c_restarts_(net.metrics().counter("h2.container." + name_ + ".restarts")),
      g_components_(net.metrics().gauge("h2.container." + name_ + ".components")) {
  soap_server_.set_dedup(dedup_);
}

Container::~Container() {
  // Endpoints must die before the plugins they forward to.
  for (auto& [id, deployed] : components_) {
    deployed.xdr_server.reset();
    deployed.plugin->shutdown();
  }
  soap_server_.stop();
}

Result<std::string> Container::deploy(std::string_view plugin_name,
                                      const DeployOptions& options) {
  return deploy_impl(plugin_name, options, nullptr);
}

Result<std::string> Container::deploy_with_state(std::string_view plugin_name,
                                                 const DeployOptions& options,
                                                 const Value& state) {
  return deploy_impl(plugin_name, options, &state);
}

Result<std::string> Container::deploy_impl(std::string_view plugin_name,
                                           const DeployOptions& options,
                                           const Value* state) {
  auto plugin = repo_.create(plugin_name, options.version);
  if (!plugin.ok()) return plugin.error().context("container " + name_);
  if (auto status = (*plugin)->init(kernel_); !status.ok()) {
    return status.error().context("deploying '" + std::string(plugin_name) + "'");
  }
  if (state != nullptr) {
    if (auto status = (*plugin)->restore_state(*state); !status.ok()) {
      (*plugin)->shutdown();
      return status.error().context("restoring state into '" +
                                    std::string(plugin_name) + "'");
    }
  }

  Deployed deployed;
  deployed.record.instance_id =
      std::string(plugin_name) + "-" + std::to_string(next_instance_++);
  deployed.record.plugin_name = std::string(plugin_name);
  deployed.record.exposure = options.exposure;
  deployed.plugin = std::move(*plugin);
  const std::string& id = deployed.record.instance_id;

  // Fig 3, collapsed: bind access points, then publish interface + access
  // into the (local) lookup system, then the component is live.
  std::vector<wsdl::EndpointSpec> endpoints;
  if (options.expose_localobject) {
    endpoints.push_back({wsdl::BindingKind::kLocalObject,
                         "localobject://" + name_ + "/" + id,
                         {{"instance", id}}});
  }
  if (options.expose_local) {
    endpoints.push_back({wsdl::BindingKind::kLocal,
                         "local://" + name_,
                         {{"class", std::string(plugin_name)}}});
  }
  if (options.expose_xdr) {
    std::uint16_t port = next_xdr_port_++;
    auto handle = net::serve_xdr(
        net_, host_, port, std::make_shared<ForwardDispatcher>(deployed.plugin.get()),
        dedup_);
    if (!handle.ok()) {
      deployed.plugin->shutdown();
      return handle.error().context("xdr endpoint for " + id);
    }
    deployed.xdr_server.emplace(std::move(*handle));
    deployed.xdr_port = port;
    endpoints.push_back({wsdl::BindingKind::kXdr,
                         "xdr://" + net_.host_name(host_) + ":" + std::to_string(port),
                         {}});
  }
  if (options.expose_soap || options.expose_http || options.expose_mime) {
    if (!soap_server_.running()) {
      if (auto status = soap_server_.start(); !status.ok()) {
        deployed.xdr_server.reset();
        deployed.plugin->shutdown();
        return status.error().context("starting http server for " + id);
      }
    }
  }
  if (options.expose_soap) {
    if (auto status = soap_server_.mount(
            id, std::make_shared<ForwardDispatcher>(deployed.plugin.get()));
        !status.ok()) {
      deployed.xdr_server.reset();
      deployed.plugin->shutdown();
      return status.error();
    }
    deployed.soap_path = id;
    endpoints.push_back({wsdl::BindingKind::kSoap,
                         "http://" + net_.host_name(host_) + ":" +
                             std::to_string(kSoapPort) + "/" + id,
                         {}});
  }
  if (options.expose_http) {
    std::string raw_path = id + ".raw";
    if (auto status = soap_server_.mount_raw(
            raw_path, std::make_shared<ForwardDispatcher>(deployed.plugin.get()));
        !status.ok()) {
      if (!deployed.soap_path.empty()) (void)soap_server_.unmount(deployed.soap_path);
      deployed.xdr_server.reset();
      deployed.plugin->shutdown();
      return status.error();
    }
    deployed.http_path = raw_path;
    endpoints.push_back({wsdl::BindingKind::kHttp,
                         "http://" + net_.host_name(host_) + ":" +
                             std::to_string(kSoapPort) + "/" + raw_path,
                         {}});
  }
  if (options.expose_mime) {
    std::string mime_path = id + ".mime";
    if (auto status = soap_server_.mount_mime(
            mime_path, std::make_shared<ForwardDispatcher>(deployed.plugin.get()));
        !status.ok()) {
      if (!deployed.soap_path.empty()) (void)soap_server_.unmount(deployed.soap_path);
      if (!deployed.http_path.empty()) (void)soap_server_.unmount(deployed.http_path);
      deployed.xdr_server.reset();
      deployed.plugin->shutdown();
      return status.error();
    }
    deployed.mime_path = mime_path;
    endpoints.push_back({wsdl::BindingKind::kMime,
                         "http://" + net_.host_name(host_) + ":" +
                             std::to_string(kSoapPort) + "/" + mime_path,
                         {}});
  }

  auto unwind = [&] {
    if (!deployed.soap_path.empty()) (void)soap_server_.unmount(deployed.soap_path);
    if (!deployed.http_path.empty()) (void)soap_server_.unmount(deployed.http_path);
    if (!deployed.mime_path.empty()) (void)soap_server_.unmount(deployed.mime_path);
    deployed.xdr_server.reset();
    deployed.plugin->shutdown();
  };
  auto defs = wsdl::generate(deployed.plugin->descriptor(), endpoints);
  if (!defs.ok()) {
    unwind();
    return defs.error().context("wsdl for " + id);
  }
  deployed.record.wsdl = std::move(*defs);

  auto key = registry_.add(deployed.record.wsdl, options.lease);
  if (!key.ok()) {
    unwind();
    return key.error();
  }
  registry_keys_[id] = *key;

  logger().debug(name_ + ": deployed " + id);
  std::string result_id = id;
  components_[result_id] = std::move(deployed);
  c_deploys_.add();
  g_components_.set(static_cast<std::int64_t>(components_.size()));
  return result_id;
}

Status Container::undeploy(std::string_view instance_id) {
  auto it = components_.find(instance_id);
  if (it == components_.end()) {
    return err::not_found("container " + name_ + ": no instance '" +
                          std::string(instance_id) + "'");
  }
  Deployed& deployed = it->second;
  if (!deployed.soap_path.empty()) (void)soap_server_.unmount(deployed.soap_path);
  if (!deployed.http_path.empty()) (void)soap_server_.unmount(deployed.http_path);
  if (!deployed.mime_path.empty()) (void)soap_server_.unmount(deployed.mime_path);
  deployed.xdr_server.reset();
  if (auto key = registry_keys_.find(instance_id); key != registry_keys_.end()) {
    (void)registry_.remove(key->second);
    registry_keys_.erase(key);
  }
  deployed.plugin->shutdown();
  components_.erase(it);
  if (auto pub = published_keys_.find(instance_id); pub != published_keys_.end()) {
    published_keys_.erase(pub);
  }
  c_undeploys_.add();
  g_components_.set(static_cast<std::int64_t>(components_.size()));
  logger().debug(name_ + ": undeployed " + std::string(instance_id));
  return Status::success();
}

Status Container::crash() {
  if (crashed_) return Status::success();
  bool soap_was_running = soap_server_.running();
  for (auto& [id, deployed] : components_) {
    deployed.xdr_server.reset();
    deployed.plugin->on_crash();
  }
  soap_server_.stop();
  // Remember whether the HTTP server must come back; a stopped server with
  // mounts but no prior start() stays down on restart.
  soap_was_running_ = soap_was_running;
  kernel_.for_each_plugin([](kernel::Plugin& plugin) { plugin.on_crash(); });
  kernel_.events().publish("container/lifecycle", Value::of_string("crash:" + name_));
  c_crashes_.add();
  crashed_ = true;
  logger().warn(name_ + ": crashed (endpoints dark)");
  return Status::success();
}

Status Container::restart() {
  if (!crashed_) return Status::success();
  for (auto& [id, deployed] : components_) {
    if (deployed.xdr_port == 0) continue;
    auto handle = net::serve_xdr(
        net_, host_, deployed.xdr_port,
        std::make_shared<ForwardDispatcher>(deployed.plugin.get()), dedup_);
    if (!handle.ok()) {
      return handle.error().context("restart: xdr endpoint for " + id);
    }
    deployed.xdr_server.emplace(std::move(*handle));
  }
  if (soap_was_running_) {
    if (auto status = soap_server_.start(); !status.ok()) {
      return status.error().context("restart: http server of " + name_);
    }
  }
  crashed_ = false;
  for (auto& [id, deployed] : components_) deployed.plugin->on_restart();
  kernel_.for_each_plugin([](kernel::Plugin& plugin) { plugin.on_restart(); });
  kernel_.events().publish("container/lifecycle", Value::of_string("restart:" + name_));
  c_restarts_.add();
  logger().debug(name_ + ": restarted (endpoints re-bound)");
  return Status::success();
}

std::vector<ComponentRecord> Container::components() const {
  std::vector<ComponentRecord> out;
  out.reserve(components_.size());
  for (const auto& [id, deployed] : components_) out.push_back(deployed.record);
  return out;
}

Result<wsdl::Definitions> Container::describe(std::string_view instance_id) const {
  auto it = components_.find(instance_id);
  if (it == components_.end()) {
    return err::not_found("container " + name_ + ": no instance '" +
                          std::string(instance_id) + "'");
  }
  return it->second.record.wsdl;
}

Result<ComponentRecord> Container::find_local(std::string_view service_name) const {
  auto entry = registry_.find_service(service_name);
  if (!entry.ok()) return entry.error();
  // Map the registry hit back to the component record.
  for (const auto& [id, deployed] : components_) {
    if (registry_keys_.count(id) && registry_keys_.at(id) == entry->key) {
      return deployed.record;
    }
  }
  return err::internal("registry entry without component record");
}

Result<std::string> Container::publish(std::string_view instance_id,
                                       reg::XmlRegistry& external, Nanos lease) {
  auto it = components_.find(instance_id);
  if (it == components_.end()) {
    return err::not_found("publish: no instance '" + std::string(instance_id) + "'");
  }
  auto key = external.add(it->second.record.wsdl, lease);
  if (!key.ok()) return key.error();
  it->second.record.exposure = Exposure::kPublished;
  published_keys_[std::string(instance_id)] = *key;
  return key;
}

Status Container::unpublish(std::string_view instance_id, reg::XmlRegistry& external) {
  auto it = components_.find(instance_id);
  if (it == components_.end()) {
    return err::not_found("unpublish: no instance '" + std::string(instance_id) + "'");
  }
  auto key = published_keys_.find(instance_id);
  if (key == published_keys_.end()) {
    return err::not_found("unpublish: instance '" + std::string(instance_id) +
                          "' was not published");
  }
  auto status = external.remove(key->second);
  published_keys_.erase(key);
  it->second.record.exposure = Exposure::kPrivate;
  return status;
}

Status Container::set_exposure(std::string_view instance_id, Exposure exposure) {
  auto it = components_.find(instance_id);
  if (it == components_.end()) {
    return err::not_found("set_exposure: no instance '" + std::string(instance_id) + "'");
  }
  it->second.record.exposure = exposure;
  return Status::success();
}

Result<net::Dispatcher&> Container::instance(std::string_view instance_id) {
  auto it = components_.find(instance_id);
  if (it == components_.end()) {
    return err::not_found("container " + name_ + ": no live instance '" +
                          std::string(instance_id) + "'");
  }
  return static_cast<net::Dispatcher&>(*it->second.plugin);
}

Result<kernel::Plugin&> Container::component(std::string_view instance_id) {
  auto it = components_.find(instance_id);
  if (it == components_.end()) {
    return err::not_found("container " + name_ + ": no live instance '" +
                          std::string(instance_id) + "'");
  }
  return *it->second.plugin;
}

Result<std::unique_ptr<net::Channel>> Container::try_open(const wsdl::Definitions& defs,
                                                          const wsdl::Binding& binding,
                                                          const wsdl::Port& port) {
  auto endpoint = net::Endpoint::parse(port.address);
  if (!endpoint.ok()) return endpoint.error();

  switch (binding.kind) {
    case wsdl::BindingKind::kLocalObject: {
      if (endpoint->host != name_) {
        return err::unavailable("localobject instance lives in container '" +
                                endpoint->host + "', not here");
      }
      auto target = instance(endpoint->path);
      if (!target.ok()) return target.error();
      return net::make_local_channel(*target, /*instance_bound=*/true);
    }
    case wsdl::BindingKind::kLocal: {
      if (endpoint->host != name_) {
        return err::unavailable("local binding is for container '" + endpoint->host + "'");
      }
      auto cls = binding.properties.find("class");
      if (cls == binding.properties.end()) {
        return err::invalid_argument("local binding without class property");
      }
      // Prefer an already-deployed instance of the class...
      for (auto& [id, deployed] : components_) {
        if (deployed.record.plugin_name == cls->second) {
          return net::make_local_channel(*deployed.plugin);
        }
      }
      // ...otherwise the "port factory" path: instantiate one on demand
      // (the paper's Java binding allows "instantiating a new object of
      // the selected type", with automatic code retrieval).
      DeployOptions options;
      options.expose_soap = false;
      options.expose_xdr = false;
      auto id = deploy(cls->second, options);
      if (!id.ok()) return id.error().context("local-binding instantiation");
      return net::make_local_channel(*components_.at(*id).plugin);
    }
    case wsdl::BindingKind::kXdr:
      return net::make_xdr_channel(net_, host_, *endpoint);
    case wsdl::BindingKind::kHttp:
      return net::make_http_channel(net_, host_, *endpoint);
    case wsdl::BindingKind::kMime:
      return net::make_mime_channel(net_, host_, *endpoint, defs.target_ns);
    case wsdl::BindingKind::kSoap:
      return net::make_soap_channel(net_, host_, *endpoint, defs.target_ns);
  }
  return err::unsupported("unknown binding kind");
}

Result<std::unique_ptr<net::Channel>> Container::open_channel(
    const wsdl::Definitions& defs, std::span<const wsdl::BindingKind> preference) {
  std::optional<Error> last_error;
  for (wsdl::BindingKind kind : preference) {
    for (const auto& service : defs.services) {
      for (const auto& port : service.ports) {
        const wsdl::Binding* binding = defs.find_binding(port.binding);
        if (binding == nullptr || binding->kind != kind) continue;
        auto channel = try_open(defs, *binding, port);
        if (channel.ok()) return channel;
        last_error = channel.error();
      }
    }
  }
  if (last_error.has_value()) return *last_error;
  return err::not_found("no feasible binding for service '" + defs.name + "'");
}

Result<std::unique_ptr<net::Channel>> Container::open_resilient_channel(
    const wsdl::Definitions& defs, const resil::CallPolicy& policy,
    std::span<const wsdl::BindingKind> preference) {
  auto channel = open_channel(defs, preference);
  if (!channel.ok()) return channel;
  const net::Endpoint* remote = (*channel)->remote();
  if (remote == nullptr) return channel;  // in-process: nothing to retry
  std::string key = remote->host;
  resil::CircuitBreaker& breaker =
      resil::BreakerRegistry::of(net_).for_endpoint(key);
  return resil::make_resilient_channel(std::move(*channel), net_, policy, &breaker,
                                       std::move(key));
}

}  // namespace h2::container
