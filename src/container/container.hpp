// The component container — the middle abstraction layer of Figure 6.
// "A component container defines a local name space, lookup service and a
// management service for other components ... a local shared environment
// [that] can be leveraged by smart computational components to locally
// aggregate available services and take advantage of local bindings to
// achieve high performance."
//
// A container wraps a Harness kernel (the backplane with the baseline
// plugin set) and adds what the kernel lacks:
//   - multiple component *instances* per type (the kernel holds one plugin
//     per name; the container instantiates freely and names each instance)
//   - automated deployment (Fig 3's three steps — publish interface,
//     publish access points, deploy runtime code — collapse into one call)
//   - per-instance binding endpoints: soap (mounted on the container's
//     HTTP server), xdr (own port), local, and the paper's novel
//     localobject instance binding
//   - a local XML registry and runtime-reviewable exposure control
//     (private <-> published, per instance)
//   - binding negotiation: open_channel() picks the cheapest feasible
//     binding (localobject > local > xdr > soap), reproducing Fig 5.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernel/kernel.hpp"
#include "registry/xml_registry.hpp"
#include "resilience/dedup.hpp"
#include "resilience/policy.hpp"
#include "transport/rpc.hpp"
#include "wsdl/io.hpp"

namespace h2::container {

/// Management service port (the container is itself a service).
inline constexpr std::uint16_t kContainerPort = 7200;
/// Default HTTP port for SOAP endpoints.
inline constexpr std::uint16_t kSoapPort = 8080;
/// First port handed to per-instance XDR endpoints.
inline constexpr std::uint16_t kXdrPortBase = 9100;

enum class Exposure { kPrivate, kPublished };

/// Which endpoints a deployed component exposes, and how.
struct DeployOptions {
  bool expose_soap = false;
  bool expose_http = false;  ///< raw HTTP binding (XDR body, no SOAP)
  bool expose_mime = false;  ///< SOAP-with-Attachments multipart binding
  bool expose_xdr = false;
  bool expose_local = true;
  bool expose_localobject = true;
  Exposure exposure = Exposure::kPrivate;
  Nanos lease = 0;          ///< local-registry lease; 0 = permanent
  std::string version;      ///< plugin version ("" = latest)
};

/// Everything the container knows about one deployed instance.
struct ComponentRecord {
  std::string instance_id;
  std::string plugin_name;
  wsdl::Definitions wsdl;
  Exposure exposure = Exposure::kPrivate;
};

class Container {
 public:
  /// `repo` and `net` must outlive the container. The container creates
  /// its own kernel named after itself on `host`.
  Container(std::string name, const kernel::PluginRepository& repo,
            net::SimNetwork& net, net::HostId host);
  ~Container();

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  // ---- identity -----------------------------------------------------------

  const std::string& name() const { return name_; }
  kernel::Kernel& kernel() { return kernel_; }
  net::SimNetwork& network() { return net_; }
  net::HostId host() const { return host_; }

  /// The container's dispatch loop (shared with its kernel): deploy
  /// notifications, coherency completions, and per-container timers run
  /// here. Eager until a driver is attached.
  loop::EventLoop& loop() { return kernel_.loop(); }
  const loop::EventLoop& loop() const { return kernel_.loop(); }

  // ---- component lifecycle ---------------------------------------------------

  /// Deploys a new instance of `plugin_name`: instantiates it from the
  /// repository, initializes it against this container's kernel, binds the
  /// requested endpoints, generates its WSDL, and registers it in the
  /// local name space. Returns the instance id.
  Result<std::string> deploy(std::string_view plugin_name,
                             const DeployOptions& options = {});

  /// deploy() plus restore_state(state) on the fresh instance before its
  /// endpoints go live — the receiving half of component migration.
  Result<std::string> deploy_with_state(std::string_view plugin_name,
                                        const DeployOptions& options,
                                        const Value& state);

  /// Stops an instance: unbinds endpoints, removes it from the local
  /// registry (and leaves any external registrations to their leases).
  Status undeploy(std::string_view instance_id);

  std::vector<ComponentRecord> components() const;
  std::size_t component_count() const { return components_.size(); }

  // ---- crash/restart (simulation lifecycle) -----------------------------------

  /// Abrupt failure: every network endpoint of this container goes dark at
  /// once — per-instance XDR servers and the shared HTTP server. Unlike
  /// undeploy(), nothing is unregistered: component instances, WSDL and
  /// registry bookkeeping survive in memory, modeling a node whose network
  /// presence died but whose state is recoverable. Idempotent.
  Status crash();

  /// Re-binds every endpoint crash() tore down, on the original
  /// addresses, and notifies plugins via on_restart(). No-op when the
  /// container is not crashed.
  Status restart();

  bool crashed() const { return crashed_; }

  /// The WSDL document for one instance.
  Result<wsdl::Definitions> describe(std::string_view instance_id) const;

  // ---- local name space / lookup ------------------------------------------------

  /// The container's local lookup service.
  reg::XmlRegistry& local_registry() { return registry_; }
  const reg::XmlRegistry& local_registry() const { return registry_; }

  /// Finds a *local* instance providing WSDL service `service_name`
  /// ("MatMulService"); most recently deployed wins.
  Result<ComponentRecord> find_local(std::string_view service_name) const;

  // ---- exposure control ------------------------------------------------------------

  /// Publishes an instance's WSDL into an external registry. The decision
  /// is reviewable: unpublish() later removes it. Returns the external key.
  Result<std::string> publish(std::string_view instance_id,
                              reg::XmlRegistry& external, Nanos lease = 0);
  Status unpublish(std::string_view instance_id, reg::XmlRegistry& external);

  /// Flip exposure without touching any registry (bookkeeping only).
  Status set_exposure(std::string_view instance_id, Exposure exposure);

  // ---- instance access (the localobject binding) --------------------------------------

  /// The dispatcher of a specific live instance — what the localobject
  /// scheme resolves to ("the binding not only defines the object type but
  /// also a specific instance"). Success means the instance is live.
  Result<net::Dispatcher&> instance(std::string_view instance_id);

  /// The live plugin object itself (mobility hooks live on it).
  Result<kernel::Plugin&> component(std::string_view instance_id);

  // ---- binding negotiation -----------------------------------------------------------

  /// Opens the cheapest feasible channel to a service described by `defs`,
  /// trying binding kinds in `preference` order. localobject and local
  /// are only feasible when the port's address names *this* container and
  /// the instance/type is present.
  Result<std::unique_ptr<net::Channel>> open_channel(
      const wsdl::Definitions& defs,
      std::span<const wsdl::BindingKind> preference = kDefaultPreference);

  /// open_channel() plus fault tolerance: network channels (those with a
  /// remote endpoint) come back wrapped in a resil::ResilientChannel with
  /// `policy` and this network's shared per-host circuit breaker. Local
  /// and localobject channels are returned as-is — in-process dispatch
  /// cannot lose messages, so retries would only mask bugs.
  Result<std::unique_ptr<net::Channel>> open_resilient_channel(
      const wsdl::Definitions& defs, const resil::CallPolicy& policy,
      std::span<const wsdl::BindingKind> preference = kDefaultPreference);

  /// This container's server-side dedup cache (shared by its SOAP server
  /// and every per-instance XDR endpoint).
  resil::DedupCache& dedup() { return *dedup_; }
  std::shared_ptr<resil::DedupCache> dedup_handle() const { return dedup_; }
  /// Planted-bug hook for the simulator: turning dedup off re-exposes the
  /// duplicate-execution hazard the retry-storm invariant looks for.
  void set_dedup_enabled(bool enabled) { dedup_->set_enabled(enabled); }

  /// localobject > local > xdr > http > mime > soap — Fig 5's cost order.
  static constexpr wsdl::BindingKind kDefaultPreference[] = {
      wsdl::BindingKind::kLocalObject, wsdl::BindingKind::kLocal,
      wsdl::BindingKind::kXdr, wsdl::BindingKind::kHttp,
      wsdl::BindingKind::kMime, wsdl::BindingKind::kSoap};

 private:
  struct Deployed {
    ComponentRecord record;
    std::unique_ptr<kernel::Plugin> plugin;
    std::optional<net::ServerHandle> xdr_server;
    std::uint16_t xdr_port = 0;  // 0 = no xdr endpoint; kept for restart()
    std::string soap_path;  // empty if no soap endpoint
    std::string http_path;  // empty if no raw http endpoint
    std::string mime_path;  // empty if no mime endpoint
  };

  Result<std::string> deploy_impl(std::string_view plugin_name,
                                  const DeployOptions& options, const Value* state);

  Result<std::unique_ptr<net::Channel>> try_open(const wsdl::Definitions& defs,
                                                 const wsdl::Binding& binding,
                                                 const wsdl::Port& port);

  std::string name_;
  const kernel::PluginRepository& repo_;
  net::SimNetwork& net_;
  net::HostId host_;
  kernel::Kernel kernel_;
  reg::XmlRegistry registry_;
  std::shared_ptr<resil::DedupCache> dedup_;
  net::SoapHttpServer soap_server_;
  std::map<std::string, Deployed, std::less<>> components_;
  std::map<std::string, std::string, std::less<>> registry_keys_;  // instance -> local reg key
  std::map<std::string, std::string, std::less<>> published_keys_;  // instance -> external key
  std::uint16_t next_xdr_port_ = kXdrPortBase;
  std::uint64_t next_instance_ = 1;
  bool crashed_ = false;
  bool soap_was_running_ = false;  // restore the HTTP server on restart()
  // Lifecycle metrics (h2.container.<name>.*), handles cached at
  // construction so lifecycle paths never hit the metrics name map.
  obs::Counter& c_deploys_;
  obs::Counter& c_undeploys_;
  obs::Counter& c_crashes_;
  obs::Counter& c_restarts_;
  obs::Gauge& g_components_;
};

}  // namespace h2::container
