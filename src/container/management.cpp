#include "container/management.hpp"

#include "transport/marshal.hpp"
#include "util/strings.hpp"

namespace h2::container {

ManagementService::ManagementService(Container& container)
    : container_(container), mux_(std::make_shared<net::DispatcherMux>()) {
  Container* c = &container_;
  mux_->add("deploy", [c](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 3) {
      return err::invalid_argument("deploy(plugin, expose_soap, expose_xdr)");
    }
    auto plugin = params[0].as_string();
    if (!plugin.ok()) return plugin.error();
    auto expose_soap = params[1].as_bool();
    if (!expose_soap.ok()) return expose_soap.error();
    auto expose_xdr = params[2].as_bool();
    if (!expose_xdr.ok()) return expose_xdr.error();
    DeployOptions options;
    options.expose_soap = *expose_soap;
    options.expose_xdr = *expose_xdr;
    auto id = c->deploy(*plugin, options);
    if (!id.ok()) return id.error();
    return Value::of_string(std::move(*id), "return");
  });
  mux_->add("deploy_with_state", [c](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 4) {
      return err::invalid_argument("deploy_with_state(plugin, soap, xdr, state)");
    }
    auto plugin = params[0].as_string();
    if (!plugin.ok()) return plugin.error();
    auto expose_soap = params[1].as_bool();
    if (!expose_soap.ok()) return expose_soap.error();
    auto expose_xdr = params[2].as_bool();
    if (!expose_xdr.ok()) return expose_xdr.error();
    auto state_bytes = params[3].as_bytes();
    if (!state_bytes.ok()) return state_bytes.error();
    enc::XdrReader reader(*state_bytes);
    auto state = net::unmarshal_value(reader);
    if (!state.ok()) return state.error().context("migrated state");
    DeployOptions options;
    options.expose_soap = *expose_soap;
    options.expose_xdr = *expose_xdr;
    auto id = c->deploy_with_state(*plugin, options, *state);
    if (!id.ok()) return id.error();
    return Value::of_string(std::move(*id), "return");
  });
  mux_->add("undeploy", [c](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("undeploy(instance)");
    auto id = params[0].as_string();
    if (!id.ok()) return id.error();
    if (auto status = c->undeploy(*id); !status.ok()) return status.error();
    return Value::of_void();
  });
  mux_->add("describe", [c](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("describe(instance)");
    auto id = params[0].as_string();
    if (!id.ok()) return id.error();
    auto defs = c->describe(*id);
    if (!defs.ok()) return defs.error();
    return Value::of_string(wsdl::to_xml_string(*defs), "return");
  });
  mux_->add("find", [c](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("find(service)");
    auto name = params[0].as_string();
    if (!name.ok()) return name.error();
    auto record = c->find_local(*name);
    if (!record.ok()) return record.error();
    return Value::of_string(wsdl::to_xml_string(record->wsdl), "return");
  });
  mux_->add("list", [c](std::span<const Value>) -> Result<Value> {
    std::vector<std::string> ids;
    for (const auto& record : c->components()) ids.push_back(record.instance_id);
    return Value::of_string(str::join(ids, ","), "return");
  });
  mux_->add("ping", [c](std::span<const Value>) -> Result<Value> {
    return Value::of_string(c->name(), "return");
  });
}

Status ManagementService::start() {
  if (server_.has_value()) return Status::success();
  auto handle = net::serve_xdr(container_.network(), container_.host(),
                               kContainerPort, mux_, container_.dedup_handle());
  if (!handle.ok()) return handle.error().context("management service");
  server_.emplace(std::move(*handle));
  return Status::success();
}

void ManagementService::stop() { server_.reset(); }

RemoteContainer::RemoteContainer(net::SimNetwork& net, net::HostId from,
                                 std::string container_host) {
  net::Endpoint endpoint{.scheme = "xdr",
                         .host = std::move(container_host),
                         .port = kContainerPort,
                         .path = ""};
  channel_ = net::make_xdr_channel(net, from, endpoint);
}

Result<Value> RemoteContainer::invoke(std::string_view operation,
                                      std::span<const Value> params) {
  return channel_->invoke(operation, params);
}

Result<std::string> RemoteContainer::deploy(std::string_view plugin_name,
                                            bool expose_soap, bool expose_xdr) {
  std::vector<Value> params{Value::of_string(std::string(plugin_name), "plugin"),
                            Value::of_bool(expose_soap, "soap"),
                            Value::of_bool(expose_xdr, "xdr")};
  auto result = invoke("deploy", params);
  if (!result.ok()) return result.error();
  return result->as_string();
}

Result<std::string> RemoteContainer::deploy_with_state(std::string_view plugin_name,
                                                       bool expose_soap, bool expose_xdr,
                                                       const Value& state) {
  enc::XdrWriter writer;
  net::marshal_value(writer, state);
  auto frame = writer.take();
  std::vector<Value> params{
      Value::of_string(std::string(plugin_name), "plugin"),
      Value::of_bool(expose_soap, "soap"), Value::of_bool(expose_xdr, "xdr"),
      Value::of_bytes(std::vector<std::uint8_t>(frame.bytes().begin(), frame.bytes().end()),
                      "state")};
  auto result = invoke("deploy_with_state", params);
  if (!result.ok()) return result.error();
  return result->as_string();
}

Status RemoteContainer::undeploy(std::string_view instance_id) {
  std::vector<Value> params{Value::of_string(std::string(instance_id), "instance")};
  auto result = invoke("undeploy", params);
  if (!result.ok()) return result.error();
  return Status::success();
}

Result<wsdl::Definitions> RemoteContainer::describe(std::string_view instance_id) {
  std::vector<Value> params{Value::of_string(std::string(instance_id), "instance")};
  auto result = invoke("describe", params);
  if (!result.ok()) return result.error();
  auto text = result->as_string();
  if (!text.ok()) return text.error();
  return wsdl::parse(*text);
}

Result<wsdl::Definitions> RemoteContainer::find(std::string_view service_name) {
  std::vector<Value> params{Value::of_string(std::string(service_name), "service")};
  auto result = invoke("find", params);
  if (!result.ok()) return result.error();
  auto text = result->as_string();
  if (!text.ok()) return text.error();
  return wsdl::parse(*text);
}

Result<std::vector<std::string>> RemoteContainer::list() {
  auto result = invoke("list", {});
  if (!result.ok()) return result.error();
  auto text = result->as_string();
  if (!text.ok()) return text.error();
  return str::split_nonempty(*text, ',');
}

Result<std::string> RemoteContainer::ping() {
  auto result = invoke("ping", {});
  if (!result.ok()) return result.error();
  return result->as_string();
}

}  // namespace h2::container
