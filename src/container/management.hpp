// The container's management service. "Containers constitute a special
// category of services ... they are full-fledged services themselves":
// this wraps a Container in a Dispatcher speaking deploy/undeploy/list/
// describe/find, served over the XDR binding on kContainerPort, so remote
// parties (notably the DVM layer and the Section 6 "upload his application
// component to a container residing on that node" scenario) can drive it.
#pragma once

#include <memory>
#include <optional>

#include "container/container.hpp"

namespace h2::container {

class ManagementService {
 public:
  /// Borrows `container`; it must outlive the service.
  explicit ManagementService(Container& container);

  /// Binds on (container host, kContainerPort).
  Status start();
  void stop();
  bool running() const { return server_.has_value(); }

  /// The dispatcher itself (for local/in-process management and tests).
  net::Dispatcher& dispatcher() { return *mux_; }

 private:
  Container& container_;
  std::shared_ptr<net::DispatcherMux> mux_;
  std::optional<net::ServerHandle> server_;
};

/// Client helper: drive a remote container's management service from
/// `from_host`. Thin typed wrapper over an XDR channel.
class RemoteContainer {
 public:
  RemoteContainer(net::SimNetwork& net, net::HostId from, std::string container_host);

  /// Remote deploy; `expose_soap`/`expose_xdr` select network endpoints.
  Result<std::string> deploy(std::string_view plugin_name, bool expose_soap,
                             bool expose_xdr);
  /// Remote deploy of a migrated component: ships `state` over the wire
  /// and restores it into the fresh instance before it goes live.
  Result<std::string> deploy_with_state(std::string_view plugin_name, bool expose_soap,
                                        bool expose_xdr, const Value& state);
  Status undeploy(std::string_view instance_id);
  /// WSDL of a deployed instance.
  Result<wsdl::Definitions> describe(std::string_view instance_id);
  /// WSDL of a service by name from the remote local registry.
  Result<wsdl::Definitions> find(std::string_view service_name);
  /// Instance ids, comma-separated order of the remote container.
  Result<std::vector<std::string>> list();
  /// Liveness probe; returns the remote container name.
  Result<std::string> ping();

 private:
  Result<Value> invoke(std::string_view operation, std::span<const Value> params);
  std::unique_ptr<net::Channel> channel_;
};

}  // namespace h2::container
