#include "core/dynamic_proxy.hpp"

namespace h2 {

namespace {

/// kInt widens to kDouble; everything else must match exactly.
bool kind_compatible(ValueKind have, ValueKind want) {
  if (have == want) return true;
  return have == ValueKind::kInt && want == ValueKind::kDouble;
}

}  // namespace

Result<DynamicProxy> DynamicProxy::create(
    container::Container& from, const wsdl::Definitions& defs,
    std::span<const wsdl::BindingKind> preference) {
  if (auto status = wsdl::validate(defs); !status.ok()) {
    return status.error().context("dynamic proxy");
  }
  auto descriptor = wsdl::descriptor_from(defs);
  if (!descriptor.ok()) return descriptor.error().context("dynamic proxy");
  auto channel = preference.empty() ? from.open_channel(defs)
                                    : from.open_channel(defs, preference);
  if (!channel.ok()) return channel.error().context("dynamic proxy");
  return DynamicProxy(std::move(*descriptor), std::move(*channel),
                      &from.network().tracer());
}

Result<DynamicProxy> DynamicProxy::create(
    container::Container& from, const wsdl::Definitions& defs,
    const resil::CallPolicy& policy, std::span<const wsdl::BindingKind> preference) {
  if (auto status = wsdl::validate(defs); !status.ok()) {
    return status.error().context("dynamic proxy");
  }
  auto descriptor = wsdl::descriptor_from(defs);
  if (!descriptor.ok()) return descriptor.error().context("dynamic proxy");
  auto channel = preference.empty()
                     ? from.open_resilient_channel(defs, policy)
                     : from.open_resilient_channel(defs, policy, preference);
  if (!channel.ok()) return channel.error().context("dynamic proxy");
  return DynamicProxy(std::move(*descriptor), std::move(*channel),
                      &from.network().tracer());
}

Result<Value> DynamicProxy::invoke(std::string_view operation,
                                   std::span<const Value> params) {
  const wsdl::OperationSpec* spec = descriptor_.find_operation(operation);
  if (spec == nullptr) {
    return err::not_found("proxy: interface " + descriptor_.name +
                          " has no operation '" + std::string(operation) + "'");
  }
  if (params.size() != spec->params.size()) {
    return err::invalid_argument(
        "proxy: " + spec->name + " takes " + std::to_string(spec->params.size()) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  // Validate kinds and auto-name unnamed arguments from the message parts.
  std::vector<Value> named;
  named.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!kind_compatible(params[i].kind(), spec->params[i].type)) {
      return err::invalid_argument(
          "proxy: parameter '" + spec->params[i].name + "' of " + spec->name +
          " wants " + wsdl::type_name(spec->params[i].type) + ", got " +
          to_string(params[i].kind()));
    }
    Value v = params[i];
    if (v.name().empty()) v.set_name(spec->params[i].name);
    named.push_back(std::move(v));
  }

  obs::Span span;
  if (tracer_->enabled()) {
    span = tracer_->start_span("proxy.invoke." + std::string(operation));
    span.annotate(std::string("binding=") + channel_->binding_name());
  }
  auto result = channel_->invoke(operation, named);
  span.set_ok(result.ok());
  span.finish();
  if (!result.ok()) return result;

  if (!kind_compatible(result->kind(), spec->result)) {
    return err::internal("proxy: " + spec->name + " returned " +
                         to_string(result->kind()) + ", interface promises " +
                         wsdl::type_name(spec->result));
  }
  return result;
}

}  // namespace h2
