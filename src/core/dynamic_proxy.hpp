// WSIF-style dynamic stubs. The paper (Section 4) highlights IBM's Web
// Services Invocation Framework: "a skeleton implementation for the
// dynamic, run-time generation of Web Service stubs. Thus, it is possible
// for a client both to select the type of protocol it wants to use to
// access a service or to let the framework dynamically generate the
// required stub."
//
// DynamicProxy is that stub generator: given a WSDL document, it recovers
// the abstract interface (descriptor_from), negotiates a binding through
// the caller's container, and then *type-checks every invocation against
// the WSDL messages before any byte is marshaled* — parameter count,
// parameter kinds (with int->double widening), and the result kind on the
// way back. Unnamed arguments are auto-named from the message parts.
#pragma once

#include "container/container.hpp"
#include "obs/trace.hpp"
#include "wsdl/descriptor.hpp"

namespace h2 {

class DynamicProxy {
 public:
  /// Generates a stub for `defs` usable from `from`. Binding selection
  /// follows `preference` (container default order when empty).
  static Result<DynamicProxy> create(
      container::Container& from, const wsdl::Definitions& defs,
      std::span<const wsdl::BindingKind> preference = {});

  /// As create(), but network bindings are wrapped in the resilience
  /// layer: deadline, retries with backoff, shared circuit breaker, and
  /// idempotency keys per `policy` (see resil::CallPolicy).
  static Result<DynamicProxy> create(
      container::Container& from, const wsdl::Definitions& defs,
      const resil::CallPolicy& policy,
      std::span<const wsdl::BindingKind> preference = {});

  /// Typed invocation: validated against the WSDL before dispatch.
  Result<Value> invoke(std::string_view operation, std::span<const Value> params);
  Result<Value> invoke(std::string_view operation, std::initializer_list<Value> params) {
    return invoke(operation, std::span<const Value>(params.begin(), params.size()));
  }

  /// The recovered abstract interface.
  const wsdl::ServiceDescriptor& interface() const { return descriptor_; }
  /// Which binding the framework selected.
  const char* binding_name() const { return channel_->binding_name(); }
  net::CallStats last_stats() const { return channel_->last_stats(); }

 private:
  DynamicProxy(wsdl::ServiceDescriptor descriptor, std::unique_ptr<net::Channel> channel,
               obs::Tracer* tracer)
      : descriptor_(std::move(descriptor)),
        channel_(std::move(channel)),
        tracer_(tracer) {}

  wsdl::ServiceDescriptor descriptor_;
  std::unique_ptr<net::Channel> channel_;
  obs::Tracer* tracer_;  // borrowed from the caller's SimNetwork
};

}  // namespace h2
