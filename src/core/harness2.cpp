#include "core/harness2.hpp"

#include "plugins/standard.hpp"

namespace h2 {

const char* version() { return "2.0.0"; }

std::unique_ptr<dvm::CoherencyProtocol> make_coherency(CoherencyMode mode,
                                                       std::size_t k) {
  switch (mode) {
    case CoherencyMode::kFullSynchrony: return dvm::make_full_synchrony();
    case CoherencyMode::kDecentralized: return dvm::make_decentralized();
    case CoherencyMode::kNeighborhood: return dvm::make_neighborhood(k);
  }
  return dvm::make_full_synchrony();
}

Framework::Framework() : registry_(net_.clock()), uddi_(registry_) {
  // The "system distribution": standard plugins plus the PVM emulation.
  (void)plugins::register_standard_plugins(repo_);
  (void)pvm::register_pvm_plugin(repo_);
}

Framework::~Framework() {
  // DVMs borrow containers; drop them first.
  dvms_.clear();
  containers_.clear();
}

Result<container::Container*> Framework::create_container(const std::string& name) {
  if (find_container(name) != nullptr) {
    return err::already_exists("framework: container '" + name + "' exists");
  }
  auto host = net_.add_host(name);
  if (!host.ok()) return host.error();
  Managed managed;
  managed.container = std::make_unique<container::Container>(name, repo_, net_, *host);
  managed.management = std::make_unique<container::ManagementService>(*managed.container);
  if (auto status = managed.management->start(); !status.ok()) {
    return status.error();
  }
  containers_.push_back(std::move(managed));
  return containers_.back().container.get();
}

container::Container* Framework::find_container(std::string_view name) {
  for (auto& managed : containers_) {
    if (managed.container->name() == name) return managed.container.get();
  }
  return nullptr;
}

std::vector<std::string> Framework::container_names() const {
  std::vector<std::string> out;
  for (const auto& managed : containers_) out.push_back(managed.container->name());
  return out;
}

Result<dvm::Dvm*> Framework::create_dvm(const std::string& name, CoherencyMode mode,
                                        std::size_t neighborhood_k) {
  if (find_dvm(name) != nullptr) {
    return err::already_exists("framework: dvm '" + name + "' exists");
  }
  dvms_.push_back(std::make_unique<dvm::Dvm>(name, make_coherency(mode, neighborhood_k)));
  dvm_names_.push_back(name);
  return dvms_.back().get();
}

dvm::Dvm* Framework::find_dvm(std::string_view name) {
  for (auto& d : dvms_) {
    if (d->name() == name) return d.get();
  }
  return nullptr;
}

Result<std::unique_ptr<net::Channel>> Framework::connect(container::Container& from,
                                                         std::string_view service_name) {
  auto entry = registry_.find_service(service_name);
  if (!entry.ok()) return entry.error().context("framework connect");
  return from.open_channel(entry->defs);
}

}  // namespace h2
