// harness2::Framework — the public entry point of the library, assembling
// the full Harness II stack of the paper:
//
//   SimNetwork            the (simulated) heterogeneous network of hosts
//   PluginRepository      the plugin distribution (standard set + hpvmd)
//   Container             per-host component containers (Fig 6, middle)
//   Dvm                   distributed component containers (Fig 6, top)
//   XmlRegistry/UddiFacade  the public lookup service (Fig 3/4)
//
// Typical use (see examples/quickstart.cpp):
//
//   h2::Framework fw;
//   auto& a = *fw.create_container("hostA");
//   auto& dvm = *fw.create_dvm("dvm1", h2::CoherencyMode::kFullSynchrony);
//   dvm.add_node(a);
//   auto id = a.deploy("time", {...});
//   a.publish(*id, fw.global_registry());
//   auto channel = fw.connect(b, "WSTimeService");
//   channel->invoke("getTime", {});
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "container/management.hpp"
#include "dvm/dvm.hpp"
#include "pvm/hpvmd.hpp"
#include "registry/uddi.hpp"

namespace h2 {

/// Selects the DVM state-management solution (Section 6). The DVM API is
/// identical for all three.
enum class CoherencyMode { kFullSynchrony, kDecentralized, kNeighborhood };

/// Builds the protocol object for a mode (k is the neighborhood radius).
std::unique_ptr<dvm::CoherencyProtocol> make_coherency(CoherencyMode mode,
                                                       std::size_t k = 2);

/// Library version.
const char* version();

class Framework {
 public:
  /// Creates an empty metacomputing environment: a simulated network, the
  /// standard plugin repository (including hpvmd), and a global registry.
  Framework();
  ~Framework();

  Framework(const Framework&) = delete;
  Framework& operator=(const Framework&) = delete;

  // ---- infrastructure --------------------------------------------------------

  net::SimNetwork& network() { return net_; }
  kernel::PluginRepository& repository() { return repo_; }
  /// The public (UDDI-like) lookup service.
  reg::XmlRegistry& global_registry() { return registry_; }
  reg::UddiFacade& uddi() { return uddi_; }

  // ---- hosts & containers ------------------------------------------------------

  /// Creates a simulated host plus a component container on it, and starts
  /// the container's management service. Returns a stable pointer.
  Result<container::Container*> create_container(const std::string& name);

  container::Container* find_container(std::string_view name);
  std::vector<std::string> container_names() const;

  // ---- DVMs --------------------------------------------------------------------

  /// Creates a named DVM with the chosen coherency mode.
  Result<dvm::Dvm*> create_dvm(const std::string& name, CoherencyMode mode,
                               std::size_t neighborhood_k = 2);
  dvm::Dvm* find_dvm(std::string_view name);

  // ---- service resolution ---------------------------------------------------------

  /// Looks `service_name` up in the global registry and opens the best
  /// channel from `from`'s vantage point (Fig 4 + Fig 5 combined).
  Result<std::unique_ptr<net::Channel>> connect(container::Container& from,
                                                std::string_view service_name);

 private:
  net::SimNetwork net_;
  kernel::PluginRepository repo_;
  reg::XmlRegistry registry_;
  reg::UddiFacade uddi_;

  struct Managed {
    std::unique_ptr<container::Container> container;
    std::unique_ptr<container::ManagementService> management;
  };
  std::vector<Managed> containers_;
  std::vector<std::unique_ptr<dvm::Dvm>> dvms_;
  std::vector<std::string> dvm_names_;
};

}  // namespace h2
