#include "core/mobility.hpp"

namespace h2::mobility {

Result<MigrationReport> migrate_component(container::Container& from,
                                          std::string_view instance_id,
                                          const std::string& to_host,
                                          bool expose_soap, bool expose_xdr) {
  auto plugin = from.component(instance_id);
  if (!plugin.ok()) return plugin.error().context("migrate");
  std::string plugin_name = plugin->info().name;

  auto state = plugin->save_state();
  if (!state.ok()) return state.error().context("migrate: snapshot");

  MigrationReport report;
  report.state_bytes = state->bytes_view().size();

  container::RemoteContainer target(from.network(), from.host(), to_host);
  Nanos t0 = from.network().clock().now();
  auto new_id = target.deploy_with_state(plugin_name, expose_soap, expose_xdr, *state);
  if (!new_id.ok()) {
    return new_id.error().context("migrate: target deployment (source untouched)");
  }
  report.wire_time = from.network().clock().now() - t0;
  report.new_instance_id = std::move(*new_id);

  // Only retire the source once the replacement is live.
  if (auto status = from.undeploy(instance_id); !status.ok()) {
    return status.error().context("migrate: retiring source after successful copy");
  }
  return report;
}

}  // namespace h2::mobility
