// Component mobility: "In mobile component frameworks the active
// component (or agent) can sometimes avoid exchanging large amounts of
// data by instead moving itself, and performing computations on the host
// where data is stored" (Section 5) — and the Section 6 walkthrough ends
// with the user "upload[ing] his application component to a container
// residing on that node".
//
// migrate_component() performs the move: snapshot the instance's state
// (Plugin::save_state), ship it over the wire to the target container's
// management service, restore it into a fresh instance there, and retire
// the original. The state travels through the real XDR channel, so the
// cost of moving the component is charged to the virtual network exactly
// like any other payload — which is what makes "move the code to the
// data" a measurable trade-off rather than a free action.
#pragma once

#include "container/management.hpp"

namespace h2::mobility {

struct MigrationReport {
  std::string new_instance_id;   ///< instance id inside the target container
  std::size_t state_bytes = 0;   ///< size of the serialized state snapshot
  Nanos wire_time = 0;           ///< virtual time the move cost on the wire
};

/// Moves instance `instance_id` from `from` into the container whose
/// management service runs on host `to_host`. The new instance exposes
/// network endpoints per `expose_soap`/`expose_xdr` (local/localobject are
/// always exposed). On success the source instance is undeployed; on any
/// failure the source is left untouched.
Result<MigrationReport> migrate_component(container::Container& from,
                                          std::string_view instance_id,
                                          const std::string& to_host,
                                          bool expose_soap = false,
                                          bool expose_xdr = true);

}  // namespace h2::mobility
