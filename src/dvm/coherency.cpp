#include "dvm/coherency.hpp"

namespace h2::dvm {

std::vector<KV> coalesce_writes(std::span<const KV> writes) {
  std::vector<KV> out;
  out.reserve(writes.size());
  std::map<std::string_view, std::size_t> index;
  for (const KV& kv : writes) {
    auto [it, inserted] = index.try_emplace(kv.key, out.size());
    if (inserted) {
      out.push_back(kv);
    } else {
      out[it->second].value = kv.value;
    }
  }
  return out;
}

namespace {

class FullSynchrony : public CoherencyProtocol {
 public:
  const char* name() const override { return "full-synchrony"; }

  Status update(std::span<DvmNode* const> members, std::size_t origin,
                std::string_view key, std::string_view value) override {
    members[origin]->state().set(std::string(key), std::string(value));
    std::size_t fan_out = replication_cutoff(members.size());
    for (std::size_t i = 0; i < fan_out; ++i) {
      if (i == origin) continue;
      if (auto status = members[origin]->remote_set(*members[i], key, value);
          !status.ok()) {
        return status.error().context("full-synchrony replication to " +
                                      members[i]->name());
      }
    }
    return Status::success();
  }

  Status update_batch(std::span<DvmNode* const> members, std::size_t origin,
                      std::span<const KV> writes) override {
    const std::vector<KV> coalesced = coalesce_writes(writes);
    for (const KV& kv : coalesced) {
      members[origin]->state().set(std::string(kv.key), std::string(kv.value));
    }
    std::size_t fan_out = replication_cutoff(members.size());
    for (std::size_t i = 0; i < fan_out; ++i) {
      if (i == origin) continue;
      if (auto status = members[origin]->remote_set_batch(*members[i], coalesced);
          !status.ok()) {
        return status.error().context("full-synchrony batch replication to " +
                                      members[i]->name());
      }
    }
    return Status::success();
  }

  Result<std::string> query(std::span<DvmNode* const> members, std::size_t origin,
                            std::string_view key) override {
    auto value = members[origin]->state().get(key);
    if (!value.has_value()) {
      return err::not_found("state: no key '" + std::string(key) + "'");
    }
    return *value;
  }

  Status erase(std::span<DvmNode* const> members, std::size_t origin,
               std::string_view key) override {
    members[origin]->state().erase(key);
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i == origin) continue;
      if (auto status = members[origin]->remote_del(*members[i], key); !status.ok()) {
        return status.error().context("full-synchrony erase");
      }
    }
    return Status::success();
  }

  Status on_join(std::span<DvmNode* const> members, std::size_t joined) override {
    // Back-fill the newcomer so "the entire state information is
    // replicated across all participating nodes" stays true after joins.
    if (members.size() < 2) return Status::success();
    std::size_t donor = joined == 0 ? 1 : 0;
    for (const std::string& key : members[donor]->state().keys()) {
      auto value = members[donor]->state().get(key);
      if (!value.has_value()) continue;
      if (auto status = members[donor]->remote_set(*members[joined], key, *value);
          !status.ok()) {
        return status.error().context("full-synchrony join back-fill");
      }
    }
    return Status::success();
  }

 protected:
  /// How many leading members the update fan-out covers. The correct
  /// protocol covers all of them; the test-only buggy variant overrides
  /// this to plant a stale replica.
  virtual std::size_t replication_cutoff(std::size_t member_count) const {
    return member_count;
  }
};

/// TEST ONLY — see make_full_synchrony_buggy_for_test().
class FullSynchronyBuggy final : public FullSynchrony {
 protected:
  std::size_t replication_cutoff(std::size_t member_count) const override {
    // Planted bug: the last member never receives updates.
    return member_count > 1 ? member_count - 1 : member_count;
  }
};

class Decentralized final : public CoherencyProtocol {
 public:
  const char* name() const override { return "decentralized"; }

  Status update(std::span<DvmNode* const> members, std::size_t origin,
                std::string_view key, std::string_view value) override {
    // "State change events are not propagated to other nodes."
    members[origin]->state().set(std::string(key), std::string(value));
    return Status::success();
  }

  Result<std::string> query(std::span<DvmNode* const> members, std::size_t origin,
                            std::string_view key) override {
    if (auto value = members[origin]->state().get(key); value.has_value()) {
      return *value;
    }
    // "Every request for state information triggers a distributed query
    // spanning across the DVM."
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i == origin) continue;
      auto value = members[origin]->remote_get(*members[i], key);
      if (value.ok()) return value;
      if (value.error().code() != ErrorCode::kNotFound) return value.error();
    }
    return err::not_found("state: no key '" + std::string(key) + "' anywhere");
  }

  Status erase(std::span<DvmNode* const> members, std::size_t origin,
               std::string_view key) override {
    members[origin]->state().erase(key);
    return Status::success();
  }
};

class Neighborhood final : public CoherencyProtocol {
 public:
  explicit Neighborhood(std::size_t k) : k_(k) {}

  const char* name() const override { return "neighborhood"; }

  Status update(std::span<DvmNode* const> members, std::size_t origin,
                std::string_view key, std::string_view value) override {
    members[origin]->state().set(std::string(key), std::string(value));
    for (std::size_t step = 1; step <= k_ && step < members.size(); ++step) {
      std::size_t neighbor = (origin + step) % members.size();
      if (auto status = members[origin]->remote_set(*members[neighbor], key, value);
          !status.ok()) {
        return status.error().context("neighborhood replication");
      }
    }
    return Status::success();
  }

  Status update_batch(std::span<DvmNode* const> members, std::size_t origin,
                      std::span<const KV> writes) override {
    const std::vector<KV> coalesced = coalesce_writes(writes);
    for (const KV& kv : coalesced) {
      members[origin]->state().set(std::string(kv.key), std::string(kv.value));
    }
    for (std::size_t step = 1; step <= k_ && step < members.size(); ++step) {
      std::size_t neighbor = (origin + step) % members.size();
      if (auto status = members[origin]->remote_set_batch(*members[neighbor], coalesced);
          !status.ok()) {
        return status.error().context("neighborhood batch replication");
      }
    }
    return Status::success();
  }

  Result<std::string> query(std::span<DvmNode* const> members, std::size_t origin,
                            std::string_view key) override {
    if (auto value = members[origin]->state().get(key); value.has_value()) {
      return *value;
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i == origin) continue;
      auto value = members[origin]->remote_get(*members[i], key);
      if (value.ok()) return value;
      if (value.error().code() != ErrorCode::kNotFound) return value.error();
    }
    return err::not_found("state: no key '" + std::string(key) + "' anywhere");
  }

  Status erase(std::span<DvmNode* const> members, std::size_t origin,
               std::string_view key) override {
    members[origin]->state().erase(key);
    for (std::size_t step = 1; step <= k_ && step < members.size(); ++step) {
      std::size_t neighbor = (origin + step) % members.size();
      if (auto status = members[origin]->remote_del(*members[neighbor], key);
          !status.ok()) {
        return status.error().context("neighborhood erase");
      }
    }
    return Status::success();
  }

 private:
  std::size_t k_;
};

}  // namespace

std::unique_ptr<CoherencyProtocol> make_full_synchrony() {
  return std::make_unique<FullSynchrony>();
}

std::unique_ptr<CoherencyProtocol> make_decentralized() {
  return std::make_unique<Decentralized>();
}

std::unique_ptr<CoherencyProtocol> make_neighborhood(std::size_t k) {
  return std::make_unique<Neighborhood>(k);
}

std::unique_ptr<CoherencyProtocol> make_full_synchrony_buggy_for_test() {
  return std::make_unique<FullSynchronyBuggy>();
}

}  // namespace h2::dvm
