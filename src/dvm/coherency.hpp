// Global-state coherency protocols (paper Section 6):
//
//   "In the full synchrony scheme, the entire state information is
//    replicated across all participating nodes. All system events are
//    synchronously distributed to maintain coherency. ... may be
//    appropriate for relatively small DVMs running applications with many
//    critical components.
//
//    In contrast, in a fully decentralized scheme state change events are
//    not propagated to other nodes. Instead, every request for state
//    information triggers a distributed query spanning across the DVM. ...
//    appropriate for loosely coupled, massively distributed applications
//    such as Seti@home.
//
//    Mixed solutions are possible as well. For example, mesh-structured
//    applications may benefit from a scheme that provides full synchrony
//    across small neighborhoods but facilitates distributed queries for
//    farther hosts."
//
// All three are implemented behind one interface; the DVM API never
// depends on which is plugged in ("they always expose the same functional
// interface ... so that applications can be deployed and run on any
// Harness II DVM regardless of the underlying state management solution").
// bench_state_coherency (EXP-COHER) measures the update/query crossovers.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dvm/hints.hpp"
#include "dvm/ring.hpp"
#include "dvm/state.hpp"

namespace h2::dvm {

/// What one anti-entropy pass did (sharded mode; zeroes elsewhere).
struct AntiEntropyReport {
  std::size_t shards_checked = 0;    ///< shards with ≥2 alive owners examined
  std::size_t shards_divergent = 0;  ///< shards whose digests disagreed
  std::size_t entries_repaired = 0;  ///< LWW merges applied across all replicas
  std::size_t exchange_failures = 0; ///< pairwise syncs that errored (tolerated)
  std::size_t buckets_diverged = 0;  ///< Merkle leaf buckets that transferred
  std::size_t bytes_transferred = 0; ///< blob bytes moved by the repairs
  std::size_t max_buckets = 0;       ///< largest adaptive Merkle leaf count used
};

class CoherencyProtocol {
 public:
  virtual ~CoherencyProtocol() = default;
  virtual const char* name() const = 0;

  /// A state change originated at members[origin].
  virtual Status update(std::span<DvmNode* const> members, std::size_t origin,
                        std::string_view key, std::string_view value) = 0;

  /// A storm of state changes originated at members[origin], presented
  /// together so the protocol can coalesce the wire traffic. The default
  /// keeps exact update() semantics — one call per write. Replicating
  /// protocols override it to send each destination ONE batched message
  /// carrying the last-written value per key (first-write order), cutting
  /// an N-write storm from N×M messages to M.
  virtual Status update_batch(std::span<DvmNode* const> members, std::size_t origin,
                              std::span<const KV> writes) {
    for (const KV& kv : writes) {
      if (auto status = update(members, origin, kv.key, kv.value); !status.ok()) {
        return status;
      }
    }
    return Status::success();
  }

  /// A state query issued at members[origin].
  virtual Result<std::string> query(std::span<DvmNode* const> members,
                                    std::size_t origin, std::string_view key) = 0;

  /// A deletion originated at members[origin].
  virtual Status erase(std::span<DvmNode* const> members, std::size_t origin,
                       std::string_view key) = 0;

  /// A new member joined as members[joined]. Protocols that replicate
  /// state proactively back-fill the newcomer here; the default does
  /// nothing (decentralized semantics).
  virtual Status on_join(std::span<DvmNode* const> members, std::size_t joined) {
    (void)members;
    (void)joined;
    return Status::success();
  }

  /// A member left (graceful leave or declared failure); `members` is the
  /// surviving membership. Protocols that place state by membership (the
  /// sharded ring) hand off the departed member's shards here; the default
  /// does nothing.
  virtual Status on_leave(std::span<DvmNode* const> members,
                          std::string_view departed) {
    (void)members;
    (void)departed;
    return Status::success();
  }

  /// Which members the heartbeat prober at members[origin] should contact.
  /// The default is every other member (broadcast heartbeat); the sharded
  /// protocol narrows it to replica-set peers.
  virtual std::vector<std::size_t> heartbeat_peers(
      std::span<DvmNode* const> members, std::size_t origin) {
    std::vector<std::size_t> out;
    out.reserve(members.size() > 0 ? members.size() - 1 : 0);
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i != origin) out.push_back(i);
    }
    return out;
  }

  /// One anti-entropy repair pass over `members`. Replica digests are
  /// compared per shard and divergent shards LWW-merged to byte-equal.
  /// Default: nothing to repair (broadcast protocols converge on write).
  virtual Result<AntiEntropyReport> anti_entropy(std::span<DvmNode* const> members) {
    (void)members;
    return AntiEntropyReport{};
  }

  /// The live shard→owners map, or nullptr when the protocol does not
  /// shard (everything except make_sharded). The shard-routed resilient
  /// channel reads placement through this.
  virtual const ShardMap* shard_map() const { return nullptr; }

  /// Parks a hinted-handoff entry at `coordinator` for a replication leg
  /// that never reached `target` (sharded mode). The shard-routed
  /// resilient channel calls this when a replica write fails; the default
  /// drops it — non-sharded protocols converge through their own fan-out.
  virtual void park_hint(std::string_view coordinator, std::string_view target,
                         const VersionedEntry& entry) {
    (void)coordinator;
    (void)target;
    (void)entry;
  }

  /// One hint-replay pass: each alive coordinator redelivers its parked
  /// hints to their targets, within the rebalance budget (one refill per
  /// pass). Default: nothing pending.
  virtual Result<HintReplayReport> replay_hints(std::span<DvmNode* const> members) {
    (void)members;
    return HintReplayReport{};
  }

  /// Hints currently parked across all coordinators (sharded mode).
  virtual std::size_t pending_hints() const { return 0; }

  /// Distinct keys with a parked hint (sharded mode): their replication
  /// debt is recorded and will be paid by replay, so durability checks
  /// must not count them as lost.
  virtual std::vector<std::string> hinted_keys() const { return {}; }
};

/// Last-write-wins per key, first-occurrence order: what a destination
/// must end up storing after an in-order write storm, minus the
/// overwritten intermediates it never needs to see. Shared by every
/// protocol's update_batch override.
std::vector<KV> coalesce_writes(std::span<const KV> writes);

/// Full replication, synchronous fan-out on every change; local reads.
std::unique_ptr<CoherencyProtocol> make_full_synchrony();

/// No propagation; every non-local read is a DVM-spanning query.
std::unique_ptr<CoherencyProtocol> make_decentralized();

/// Full synchrony within a ring k-neighborhood, distributed query beyond.
std::unique_ptr<CoherencyProtocol> make_neighborhood(std::size_t k);

/// Sharded mode: consistent-hash ring placement, LWW deltas to the R
/// shard owners only, periodic anti-entropy digest exchange for repair.
std::unique_ptr<CoherencyProtocol> make_sharded(ShardConfig config);

/// TEST ONLY. Sharded mode with a deliberately planted repair bug: the
/// anti-entropy pass silently skips `skip_shard`, so divergence in that
/// shard is never repaired. `drop_hints` additionally discards parked
/// hints (see make_sharded_hint_drop_for_test) — the AE-skip sweeps set
/// it so hinted handoff cannot repair what the broken AE pass left
/// behind. The shard sim sweeps use this to prove the
/// shard-convergence/no-lost-keys invariants catch real repair gaps.
std::unique_ptr<CoherencyProtocol> make_sharded_buggy_for_test(
    ShardConfig config, std::size_t skip_shard, bool drop_hints = false);

/// TEST ONLY. Sharded mode with a deliberately planted durability bug:
/// park_hint silently discards every hint, so a write that missed an
/// owner is never redelivered by replay — only anti-entropy can repair
/// it. The hint-drop sim scenario uses it to prove the
/// no-under-replicated-writes invariant catches real handoff gaps.
std::unique_ptr<CoherencyProtocol> make_sharded_hint_drop_for_test(ShardConfig config);

/// TEST ONLY. Full synchrony with a deliberately planted coherency bug:
/// the replication fan-out silently skips the last member, so its replica
/// goes stale on every update. The simulation suite uses this to prove
/// the invariant checkers catch real coherency violations (and that a
/// failing seed replays them). Never wire into production paths.
std::unique_ptr<CoherencyProtocol> make_full_synchrony_buggy_for_test();

}  // namespace h2::dvm
