#include "dvm/dvm.hpp"

#include "util/log.hpp"
#include "util/strings.hpp"

namespace h2::dvm {

namespace {
Logger& logger() {
  static Logger log("dvm");
  return log;
}
}  // namespace

Dvm::Dvm(std::string name, std::unique_ptr<CoherencyProtocol> protocol)
    : name_(std::move(name)), protocol_(std::move(protocol)),
      loop_("dvm/" + name_) {}

Dvm::~Dvm() {
  for (auto& member : members_) {
    if (member.node) member.node->stop();
  }
}

std::vector<DvmNode*> Dvm::alive_members() const {
  std::vector<DvmNode*> out;
  for (const auto& member : members_) {
    if (member.node && member.node->alive()) out.push_back(member.node.get());
  }
  return out;
}

Result<std::size_t> Dvm::alive_index(std::string_view node_name) const {
  auto alive = alive_members();
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (alive[i]->name() == node_name) return i;
  }
  return err::not_found("dvm " + name_ + ": no alive node '" + std::string(node_name) +
                        "'");
}

void Dvm::announce(std::string_view topic, const std::string& message) {
  for (DvmNode* node : alive_members()) {
    node->container().kernel().events().publish(topic, Value::of_string(message));
  }
}

Result<std::size_t> Dvm::add_node(container::Container& container) {
  for (const auto& member : members_) {
    if (member.node && member.node->name() == container.name()) {
      return err::already_exists("dvm " + name_ + ": node '" + container.name() +
                                 "' already enrolled");
    }
  }
  auto node = std::make_unique<DvmNode>(container);
  if (auto status = node->start(); !status.ok()) {
    return status.error().context("dvm " + name_);
  }
  members_.push_back(Member{std::move(node)});

  auto alive = alive_members();
  std::size_t index = alive.size() - 1;
  if (auto status = protocol_->on_join(alive, index); !status.ok()) {
    return status.error();
  }
  if (auto status = protocol_->update(alive, index, "node/" + container.name(), "alive");
      !status.ok()) {
    return status.error();
  }
  ++epoch_;
  announce("dvm/membership", "joined:" + container.name());
  logger().debug(name_ + ": node " + container.name() + " joined");
  return index;
}

Status Dvm::remove_node(std::string_view node_name) {
  auto index = alive_index(node_name);
  if (!index.ok()) return index.error();
  auto alive = alive_members();
  // Record the departure while the node can still participate in the
  // protocol, then take it out of the membership.
  (void)protocol_->update(alive, *index, "node/" + std::string(node_name), "left");
  DvmNode* node = alive[*index];
  node->stop();
  node->set_alive(false);
  (void)protocol_->on_leave(alive_members(), node_name);
  ++epoch_;
  announce("dvm/membership", "left:" + std::string(node_name));
  return Status::success();
}

Status Dvm::mark_failed(std::string_view node_name) {
  auto index = alive_index(node_name);
  if (!index.ok()) return index.error();
  DvmNode* failed = alive_members()[*index];
  failed->set_alive(false);  // exclude first: it may be unreachable
  failed->stop();
  auto survivors = alive_members();
  if (!survivors.empty()) {
    // Placement first: the ring must stop counting the dead member before
    // the failure record is written (else the record could be addressed to
    // the member that just died).
    (void)protocol_->on_leave(survivors, node_name);
    // Any survivor records the failure; errors here are secondary.
    (void)protocol_->update(survivors, 0, "node/" + std::string(node_name), "failed");
  }
  ++epoch_;
  announce("dvm/membership", "failed:" + std::string(node_name));
  logger().warn(name_ + ": node " + std::string(node_name) + " marked failed");
  return Status::success();
}

Status Dvm::crash_node(std::string_view node_name) {
  auto index = alive_index(node_name);
  if (!index.ok()) return index.error();
  DvmNode* victim = alive_members()[*index];
  // Endpoints first: once the container is dark, mark_failed cannot
  // accidentally talk to the victim.
  if (auto status = victim->container().crash(); !status.ok()) return status;
  return mark_failed(node_name);
}

Result<std::size_t> Dvm::rejoin(std::string_view node_name) {
  for (auto& member : members_) {
    if (!member.node || member.node->name() != node_name) continue;
    if (member.node->alive()) {
      return err::already_exists("dvm " + name_ + ": node '" + std::string(node_name) +
                                 "' is already alive");
    }
    if (auto status = member.node->container().restart(); !status.ok()) {
      return status.error().context("dvm " + name_ + " rejoin");
    }
    if (auto status = member.node->start(); !status.ok()) {
      return status.error().context("dvm " + name_ + " rejoin");
    }
    member.node->set_alive(true);
    auto alive = alive_members();
    auto index = alive_index(node_name);
    if (!index.ok()) return index.error();
    // Back-fill the returnee exactly like a fresh join, then put the
    // membership record right again.
    if (auto status = protocol_->on_join(alive, *index); !status.ok()) {
      // Half-joined is worse than failed: drop the node back out.
      member.node->set_alive(false);
      member.node->stop();
      (void)member.node->container().crash();
      return status.error().context("dvm " + name_ + " rejoin back-fill");
    }
    (void)protocol_->update(alive, *index, "node/" + std::string(node_name), "alive");
    ++epoch_;
    announce("dvm/membership", "rejoined:" + std::string(node_name));
    logger().debug(name_ + ": node " + std::string(node_name) + " rejoined");
    return index;
  }
  return err::not_found("dvm " + name_ + ": node '" + std::string(node_name) +
                        "' was never enrolled");
}

void Dvm::post_probe(std::string_view from_node, ProbeCompletion done) {
  loop_.dispatch([this, from = std::string(from_node), done = std::move(done)] {
    auto result = probe_now(from);
    if (done) done(std::move(result));
  });
}

loop::TimerId Dvm::start_heartbeat(
    Nanos period, std::function<void(const std::vector<std::string>&)> on_failures) {
  return loop_.schedule_periodic(period, [this, on_failures = std::move(on_failures)] {
    auto alive = alive_members();
    if (alive.empty()) return;
    DvmNode* prober = alive[heartbeat_rr_++ % alive.size()];
    auto failed = probe_now(prober->name());
    if (failed.ok() && on_failures) on_failures(*failed);
  });
}

Result<std::vector<std::string>> Dvm::probe_now(std::string_view from_node) {
  auto index = alive_index(from_node);
  if (!index.ok()) return index.error();
  auto alive = alive_members();
  DvmNode* prober = alive[*index];
  std::vector<std::string> failed;
  // The protocol chooses the probe set: broadcast for the classic modes,
  // replica-set peers only for the sharded ring.
  for (std::size_t peer_index : protocol_->heartbeat_peers(alive, *index)) {
    DvmNode* peer = alive[peer_index];
    if (peer == prober) continue;
    if (prober->remote_ping(*peer).ok()) continue;
    failed.push_back(peer->name());
  }
  for (const std::string& name : failed) {
    (void)mark_failed(name);
  }
  return failed;
}

std::size_t Dvm::node_count() const { return alive_members().size(); }

std::vector<std::string> Dvm::node_names() const {
  std::vector<std::string> out;
  for (DvmNode* node : alive_members()) out.push_back(node->name());
  return out;
}

DvmNode* Dvm::lookup_alive(std::string_view node_name) {
  for (DvmNode* n : alive_members()) {
    if (n->name() == node_name) return n;
  }
  return nullptr;
}

Result<DvmNode&> Dvm::member(std::string_view node_name) {
  DvmNode* found = lookup_alive(node_name);
  if (found == nullptr) {
    return err::not_found("dvm " + name_ + ": no node '" + std::string(node_name) + "'");
  }
  return *found;
}

DvmNode* Dvm::node(std::string_view node_name) { return lookup_alive(node_name); }

bool Dvm::is_member(std::string_view node_name) const {
  return alive_index(node_name).ok();
}

std::vector<const DvmNode*> Dvm::all_members() const {
  std::vector<const DvmNode*> out;
  for (const auto& member : members_) {
    if (member.node) out.push_back(member.node.get());
  }
  return out;
}

void Dvm::record_round(net::SimNetwork& net, std::uint64_t messages_before, Nanos t0) {
  if (metrics_net_ != &net) {
    metrics_net_ = &net;
    const std::string prefix = "h2.dvm." + name_ + ".coherency.";
    c_rounds_ = &net.metrics().counter(prefix + "rounds");
    c_fanout_ = &net.metrics().counter(prefix + "fanout");
    h_convergence_ = &net.metrics().histogram(prefix + "convergence_ns");
  }
  c_rounds_->add();
  c_fanout_->add(net.stats().messages - messages_before);
  h_convergence_->observe(net.clock().now() - t0);
}

Status Dvm::set(std::string_view node_name, std::string_view key,
                std::string_view value) {
  auto index = alive_index(node_name);
  if (!index.ok()) return index.error();
  auto alive = alive_members();
  net::SimNetwork& net = alive[*index]->network();
  const std::uint64_t before = net.stats().messages;
  const Nanos t0 = net.clock().now();
  auto status = protocol_->update(alive, *index, key, value);
  record_round(net, before, t0);
  return status;
}

Status Dvm::set_batch(std::string_view node_name, std::span<const KV> writes) {
  auto index = alive_index(node_name);
  if (!index.ok()) return index.error();
  auto alive = alive_members();
  net::SimNetwork& net = alive[*index]->network();
  const std::uint64_t before = net.stats().messages;
  const Nanos t0 = net.clock().now();
  auto status = protocol_->update_batch(alive, *index, writes);
  record_round(net, before, t0);
  return status;
}

Result<std::string> Dvm::get(std::string_view node_name, std::string_view key) {
  auto index = alive_index(node_name);
  if (!index.ok()) return index.error();
  auto alive = alive_members();
  net::SimNetwork& net = alive[*index]->network();
  const std::uint64_t before = net.stats().messages;
  const Nanos t0 = net.clock().now();
  auto value = protocol_->query(alive, *index, key);
  record_round(net, before, t0);
  return value;
}

Status Dvm::erase(std::string_view node_name, std::string_view key) {
  auto index = alive_index(node_name);
  if (!index.ok()) return index.error();
  auto alive = alive_members();
  net::SimNetwork& net = alive[*index]->network();
  const std::uint64_t before = net.stats().messages;
  const Nanos t0 = net.clock().now();
  auto status = protocol_->erase(alive, *index, key);
  record_round(net, before, t0);
  return status;
}

void Dvm::post_anti_entropy(AntiEntropyCompletion done) {
  loop_.dispatch([this, done = std::move(done)] {
    auto report = anti_entropy_now();
    if (done) done(std::move(report));
  });
}

loop::TimerId Dvm::start_anti_entropy(
    Nanos period, std::function<void(const AntiEntropyReport&)> on_report) {
  return loop_.schedule_periodic(period, [this, on_report = std::move(on_report)] {
    auto report = anti_entropy_now();
    if (report.ok() && on_report) on_report(*report);
  });
}

Result<AntiEntropyReport> Dvm::anti_entropy_now() {
  auto alive = alive_members();
  if (alive.empty()) return AntiEntropyReport{};
  net::SimNetwork& net = alive.front()->network();
  const std::uint64_t before = net.stats().messages;
  const Nanos t0 = net.clock().now();
  auto report = protocol_->anti_entropy(alive);
  record_round(net, before, t0);
  return report;
}

void Dvm::post_hint_replay(HintReplayCompletion done) {
  loop_.dispatch([this, done = std::move(done)] {
    auto report = hint_replay_now();
    if (done) done(std::move(report));
  });
}

loop::TimerId Dvm::start_hint_replay(
    Nanos period, std::function<void(const HintReplayReport&)> on_report) {
  return loop_.schedule_periodic(period, [this, on_report = std::move(on_report)] {
    auto report = hint_replay_now();
    if (report.ok() && on_report) on_report(*report);
  });
}

Result<HintReplayReport> Dvm::hint_replay_now() {
  auto alive = alive_members();
  if (alive.empty()) return HintReplayReport{};
  net::SimNetwork& net = alive.front()->network();
  const std::uint64_t before = net.stats().messages;
  const Nanos t0 = net.clock().now();
  auto report = protocol_->replay_hints(alive);
  record_round(net, before, t0);
  return report;
}

Result<std::string> Dvm::deploy(std::string_view node_name, std::string_view plugin,
                                const container::DeployOptions& options) {
  auto target = member(node_name);
  if (!target.ok()) return target.error();
  auto instance = target->container().deploy(plugin, options);
  if (!instance.ok()) return instance.error();
  std::string qualified = name_ + "/" + std::string(node_name) + "/" + *instance;
  if (auto status = set(node_name, "component/" + qualified, std::string(node_name));
      !status.ok()) {
    return status.error();
  }
  ++components_;
  return qualified;
}

Status Dvm::deploy_everywhere(std::string_view plugin,
                              const container::DeployOptions& options) {
  for (const std::string& node_name : node_names()) {
    auto qualified = deploy(node_name, plugin, options);
    if (!qualified.ok()) {
      return qualified.error().context("deploy_everywhere(" + std::string(plugin) + ")");
    }
  }
  return Status::success();
}

Status Dvm::undeploy(std::string_view qualified_name) {
  auto parts = str::split(std::string(qualified_name), '/');
  if (parts.size() != 3 || parts[0] != name_) {
    return err::invalid_argument("bad qualified component name '" +
                                 std::string(qualified_name) + "'");
  }
  auto target = member(parts[1]);
  if (!target.ok()) return target.error();
  if (auto status = target->container().undeploy(parts[2]); !status.ok()) return status;
  (void)erase(parts[1], "component/" + std::string(qualified_name));
  --components_;
  return Status::success();
}

Result<std::string> Dvm::locate(std::string_view from_node,
                                std::string_view qualified_name) {
  return get(from_node, "component/" + std::string(qualified_name));
}

Result<wsdl::Definitions> Dvm::find_service(std::string_view service_name) const {
  for (DvmNode* node : alive_members()) {
    auto record = node->container().find_local(service_name);
    if (record.ok()) return record->wsdl;
  }
  return err::not_found("dvm " + name_ + ": no service '" + std::string(service_name) +
                        "' on any node");
}

std::vector<wsdl::Definitions> Dvm::find_all_services(
    std::string_view service_name) const {
  std::vector<wsdl::Definitions> out;
  for (DvmNode* node : alive_members()) {
    auto record = node->container().find_local(service_name);
    if (record.ok()) out.push_back(record->wsdl);
  }
  return out;
}

void Dvm::announce_failover(std::string_view service_name, std::string_view from_node,
                            std::string_view to_node) {
  announce("dvm/failover", std::string(service_name) + ":" + std::string(from_node) +
                               "->" + std::string(to_node));
}

DvmStatus Dvm::status() const {
  DvmStatus out;
  out.name = name_;
  out.coherency = protocol_->name();
  out.components = components_;
  for (const auto& member : members_) {
    if (!member.node) continue;
    if (member.node->alive()) {
      ++out.nodes_alive;
    } else {
      ++out.nodes_failed;
    }
  }
  return out;
}

}  // namespace h2::dvm
