// The Distributed Virtual Machine — the distributed component container of
// Figure 6 (top layer) and the execution context of Figure 1. "It supplies
// a unified name space, status query, lookup service and a management
// point for a set of component containers. In effect, that level of
// abstraction introduces the notion of a distributed global state."
//
// The DVM is constructed exactly as the paper describes: created with a
// symbolic name, then nodes are added, then plugins/components are
// deployed on nodes. Global state lives behind a pluggable
// CoherencyProtocol; the DVM API is identical for all protocols.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dvm/coherency.hpp"
#include "obs/metrics.hpp"

namespace h2::dvm {

/// Status snapshot returned by Dvm::status().
struct DvmStatus {
  std::string name;
  std::size_t nodes_alive = 0;
  std::size_t nodes_failed = 0;
  std::size_t components = 0;
  std::string coherency;
};

class Dvm {
 public:
  /// `name` is the DVM's symbolic name, unique in the Harness name space.
  Dvm(std::string name, std::unique_ptr<CoherencyProtocol> protocol);
  ~Dvm();

  Dvm(const Dvm&) = delete;
  Dvm& operator=(const Dvm&) = delete;

  const std::string& name() const { return name_; }
  const char* coherency() const { return protocol_->name(); }

  // ---- membership ------------------------------------------------------------

  /// Enrolls a container as a DVM node: starts its state service, records
  /// membership in global state, and announces a "dvm/membership" event on
  /// every member's kernel event bus. Container must outlive the DVM.
  Result<std::size_t> add_node(container::Container& container);

  /// Graceful removal: departure is recorded and announced.
  Status remove_node(std::string_view node_name);

  /// Failure handling: marks the node dead without talking to it (it may
  /// be unreachable); membership state is updated on the survivors.
  Status mark_failed(std::string_view node_name);

  /// Heartbeat sweep: `from_node` probes every other alive member's state
  /// service; unreachable members are marked failed (robustness — the
  /// original Harness goal the plugin architecture serves). Returns the
  /// names of nodes newly declared failed.
  Result<std::vector<std::string>> probe(std::string_view from_node);

  /// Abrupt node death: the member's container endpoints go dark
  /// (container::Container::crash()) and the node is marked failed — the
  /// simulation harness's "kill -9". Survivors record the failure.
  Status crash_node(std::string_view node_name);

  /// Brings a failed member back: its container restarts on the original
  /// addresses, the state service re-binds, and the coherency protocol's
  /// join back-fill runs so the returnee converges with the survivors.
  /// Returns the node's index among the alive members.
  Result<std::size_t> rejoin(std::string_view node_name);

  std::size_t node_count() const;  ///< alive nodes
  std::vector<std::string> node_names() const;

  /// Alive member by name. The primary lookup: success means the node is
  /// enrolled and alive.
  Result<DvmNode&> member(std::string_view node_name);

  /// Alive member by name, or nullptr.
  [[deprecated("use member(); nullptr-returning lookups are being retired")]]
  DvmNode* node(std::string_view node_name);

  bool is_member(std::string_view node_name) const;

  /// Every enrolled member, dead ones included — the observable membership
  /// history the simulation invariants check against.
  std::vector<const DvmNode*> all_members() const;

  /// Monotonic membership epoch: bumped by every join, departure, failure
  /// and rejoin. Never decreases; simulation invariants assert exactly
  /// one bump per membership event.
  std::uint64_t epoch() const { return epoch_; }

  // ---- distributed global state ------------------------------------------------

  /// Writes a global state entry, originated at `node_name`.
  Status set(std::string_view node_name, std::string_view key, std::string_view value);

  /// Applies all of `writes` as one coherency round from `node_name`.
  /// Replicating protocols coalesce the storm (last write per key) and
  /// send each destination ONE batched message instead of one per write.
  Status set_batch(std::string_view node_name, std::span<const KV> writes);
  /// Reads a global state entry from the vantage point of `node_name`.
  Result<std::string> get(std::string_view node_name, std::string_view key);
  /// Deletes a global state entry.
  Status erase(std::string_view node_name, std::string_view key);

  /// One anti-entropy repair pass over the alive membership (sharded
  /// coherency; a no-op report under the broadcast protocols). The sim
  /// harness drives this periodically and at settle time.
  Result<AntiEntropyReport> anti_entropy();

  /// Live shard→owners placement, or nullptr when the plugged-in protocol
  /// does not shard. The shard-routed resilient channel reads this.
  const ShardMap* shard_map() const { return protocol_->shard_map(); }

  // ---- component deployment and the unified name space ---------------------------

  /// Deploys a plugin on one node and records it in global state under
  /// "component/<qualified-name>". Returns the qualified name
  /// "<dvm>/<node>/<instance>".
  Result<std::string> deploy(std::string_view node_name, std::string_view plugin,
                             const container::DeployOptions& options = {});

  /// Deploys a plugin on every alive node (the replicated baseline set of
  /// Fig 1: message passing, process management, ... on all nodes).
  Status deploy_everywhere(std::string_view plugin,
                           const container::DeployOptions& options = {});

  /// Undeploys a component by qualified name.
  Status undeploy(std::string_view qualified_name);

  /// Which node hosts a component (queried from `from_node`'s vantage).
  Result<std::string> locate(std::string_view from_node,
                             std::string_view qualified_name);

  /// DVM-wide service lookup: searches every alive member's local registry
  /// and returns the first WSDL match (the Fig 4 lookup service).
  Result<wsdl::Definitions> find_service(std::string_view service_name) const;

  /// All alive replicas of a service, in membership order — the candidate
  /// list a FailoverChannel walks when its primary endpoint dies. Empty
  /// vector (not an error) when nothing matches.
  std::vector<wsdl::Definitions> find_all_services(std::string_view service_name) const;

  /// Announces a completed client failover on every member's event bus
  /// (topic "dvm/failover", payload "service:from->to"). Emitted by the
  /// resilience layer, observable by tests and operators alike.
  void announce_failover(std::string_view service_name, std::string_view from_node,
                         std::string_view to_node);

  // ---- status -----------------------------------------------------------------

  DvmStatus status() const;

 private:
  struct Member {
    std::unique_ptr<DvmNode> node;
  };

  std::vector<DvmNode*> alive_members() const;
  Result<std::size_t> alive_index(std::string_view node_name) const;
  void announce(std::string_view topic, const std::string& message);
  DvmNode* lookup_alive(std::string_view node_name);
  /// Records one coherency round (h2.dvm.<name>.coherency.*): round count,
  /// message fan-out (net-stats delta across the protocol call) and
  /// convergence time (virtual ns the round consumed).
  void record_round(net::SimNetwork& net, std::uint64_t messages_before, Nanos t0);

  std::string name_;
  std::unique_ptr<CoherencyProtocol> protocol_;
  std::vector<Member> members_;
  std::size_t components_ = 0;
  std::uint64_t epoch_ = 0;
  // Coherency metric handles, cached on first use (all members share one
  // SimNetwork; re-resolved if the network ever differs).
  net::SimNetwork* metrics_net_ = nullptr;
  obs::Counter* c_rounds_ = nullptr;
  obs::Counter* c_fanout_ = nullptr;
  obs::Histogram* h_convergence_ = nullptr;
};

}  // namespace h2::dvm
