// The Distributed Virtual Machine — the distributed component container of
// Figure 6 (top layer) and the execution context of Figure 1. "It supplies
// a unified name space, status query, lookup service and a management
// point for a set of component containers. In effect, that level of
// abstraction introduces the notion of a distributed global state."
//
// The DVM is constructed exactly as the paper describes: created with a
// symbolic name, then nodes are added, then plugins/components are
// deployed on nodes. Global state lives behind a pluggable
// CoherencyProtocol; the DVM API is identical for all protocols.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dvm/coherency.hpp"
#include "loop/event_loop.hpp"
#include "obs/metrics.hpp"

namespace h2::dvm {

/// Status snapshot returned by Dvm::status().
struct DvmStatus {
  std::string name;
  std::size_t nodes_alive = 0;
  std::size_t nodes_failed = 0;
  std::size_t components = 0;
  std::string coherency;
};

class Dvm {
 public:
  /// `name` is the DVM's symbolic name, unique in the Harness name space.
  Dvm(std::string name, std::unique_ptr<CoherencyProtocol> protocol);
  ~Dvm();

  Dvm(const Dvm&) = delete;
  Dvm& operator=(const Dvm&) = delete;

  const std::string& name() const { return name_; }
  const char* coherency() const { return protocol_->name(); }

  // ---- membership ------------------------------------------------------------

  /// Enrolls a container as a DVM node: starts its state service, records
  /// membership in global state, and announces a "dvm/membership" event on
  /// every member's kernel event bus. Container must outlive the DVM.
  Result<std::size_t> add_node(container::Container& container);

  /// Graceful removal: departure is recorded and announced.
  Status remove_node(std::string_view node_name);

  /// Failure handling: marks the node dead without talking to it (it may
  /// be unreachable); membership state is updated on the survivors.
  Status mark_failed(std::string_view node_name);

  /// Abrupt node death: the member's container endpoints go dark
  /// (container::Container::crash()) and the node is marked failed — the
  /// simulation harness's "kill -9". Survivors record the failure.
  Status crash_node(std::string_view node_name);

  /// Brings a failed member back: its container restarts on the original
  /// addresses, the state service re-binds, and the coherency protocol's
  /// join back-fill runs so the returnee converges with the survivors.
  /// Returns the node's index among the alive members.
  Result<std::size_t> rejoin(std::string_view node_name);

  std::size_t node_count() const;  ///< alive nodes
  std::vector<std::string> node_names() const;

  /// Alive member by name. The primary lookup: success means the node is
  /// enrolled and alive.
  Result<DvmNode&> member(std::string_view node_name);

  /// Alive member by name, or nullptr.
  [[deprecated("use member(); nullptr-returning lookups are being retired")]]
  DvmNode* node(std::string_view node_name);

  bool is_member(std::string_view node_name) const;

  /// Every enrolled member, dead ones included — the observable membership
  /// history the simulation invariants check against.
  std::vector<const DvmNode*> all_members() const;

  /// Monotonic membership epoch: bumped by every join, departure, failure
  /// and rejoin. Never decreases; simulation invariants assert exactly
  /// one bump per membership event.
  std::uint64_t epoch() const { return epoch_; }

  // ---- distributed global state ------------------------------------------------

  /// Writes a global state entry, originated at `node_name`.
  Status set(std::string_view node_name, std::string_view key, std::string_view value);

  /// Applies all of `writes` as one coherency round from `node_name`.
  /// Replicating protocols coalesce the storm (last write per key) and
  /// send each destination ONE batched message instead of one per write.
  Status set_batch(std::string_view node_name, std::span<const KV> writes);
  /// Reads a global state entry from the vantage point of `node_name`.
  Result<std::string> get(std::string_view node_name, std::string_view key);
  /// Deletes a global state entry.
  Status erase(std::string_view node_name, std::string_view key);

  // ---- event-loop dispatch -------------------------------------------------------

  /// The DVM's dispatch loop: probe / anti-entropy completions and the
  /// periodic membership timers run here. Eager (inline) until a driver
  /// is attached — the sim harness attaches its SimDriver, real
  /// deployments an EpollDriver.
  loop::EventLoop& loop() { return loop_; }
  const loop::EventLoop& loop() const { return loop_; }

  using ProbeCompletion = std::function<void(Result<std::vector<std::string>>)>;
  using AntiEntropyCompletion = std::function<void(Result<AntiEntropyReport>)>;
  using HintReplayCompletion = std::function<void(Result<HintReplayReport>)>;

  /// Loop-posted heartbeat sweep: `from_node` probes its heartbeat peers
  /// on the DVM loop; the names of nodes newly declared failed are
  /// delivered to `done` there. Eager mode completes before returning;
  /// under a driver the completion runs when the loop is next pumped.
  void post_probe(std::string_view from_node, ProbeCompletion done);

  /// Loop-posted anti-entropy pass; the repair report reaches `done` on
  /// the DVM loop (sharded coherency; a no-op report under the
  /// broadcast protocols).
  void post_anti_entropy(AntiEntropyCompletion done);

  /// Arms a periodic heartbeat on the timer wheel: each firing probes
  /// from the next alive member (round-robin) and reports the names of
  /// nodes the sweep newly declared failed — usually empty — to
  /// `on_failures`, so the owner can account for membership changes.
  /// Cancel with loop().cancel_timer().
  loop::TimerId start_heartbeat(
      Nanos period,
      std::function<void(const std::vector<std::string>&)> on_failures = {});

  /// Arms periodic anti-entropy repair on the timer wheel.
  loop::TimerId start_anti_entropy(
      Nanos period, std::function<void(const AntiEntropyReport&)> on_report = {});

  /// Loop-posted hint-replay pass: the coherency protocol's parked
  /// hinted-handoff entries are redelivered (within the rebalance budget)
  /// and the report reaches `done` on the DVM loop. A no-op report under
  /// protocols without hinted handoff.
  void post_hint_replay(HintReplayCompletion done);

  /// Arms periodic hint replay on the timer wheel — the loop half of
  /// hinted handoff: each firing drains one budget's worth of parked
  /// hints back to owners that have come back.
  loop::TimerId start_hint_replay(
      Nanos period, std::function<void(const HintReplayReport&)> on_report = {});

  /// Hinted-handoff entries currently parked (0 for protocols without
  /// hinted handoff).
  std::size_t pending_hints() const { return protocol_->pending_hints(); }

  /// Distinct keys with a parked hint: replication debt that replay still
  /// owes. Durability invariants exempt these from full-replication checks.
  std::vector<std::string> hinted_keys() const { return protocol_->hinted_keys(); }

  /// Parks a hint at `coordinator` for a replica write that never reached
  /// `target` — the resilience layer's entry point when a shard-routed
  /// replication leg fails.
  void park_hint(std::string_view coordinator, std::string_view target,
                 const VersionedEntry& entry) {
    protocol_->park_hint(coordinator, target, entry);
  }

  /// Live shard→owners placement, or nullptr when the plugged-in protocol
  /// does not shard. The shard-routed resilient channel reads this.
  const ShardMap* shard_map() const { return protocol_->shard_map(); }

  // ---- component deployment and the unified name space ---------------------------

  /// Deploys a plugin on one node and records it in global state under
  /// "component/<qualified-name>". Returns the qualified name
  /// "<dvm>/<node>/<instance>".
  Result<std::string> deploy(std::string_view node_name, std::string_view plugin,
                             const container::DeployOptions& options = {});

  /// Deploys a plugin on every alive node (the replicated baseline set of
  /// Fig 1: message passing, process management, ... on all nodes).
  Status deploy_everywhere(std::string_view plugin,
                           const container::DeployOptions& options = {});

  /// Undeploys a component by qualified name.
  Status undeploy(std::string_view qualified_name);

  /// Which node hosts a component (queried from `from_node`'s vantage).
  Result<std::string> locate(std::string_view from_node,
                             std::string_view qualified_name);

  /// DVM-wide service lookup: searches every alive member's local registry
  /// and returns the first WSDL match (the Fig 4 lookup service).
  Result<wsdl::Definitions> find_service(std::string_view service_name) const;

  /// All alive replicas of a service, in membership order — the candidate
  /// list a FailoverChannel walks when its primary endpoint dies. Empty
  /// vector (not an error) when nothing matches.
  std::vector<wsdl::Definitions> find_all_services(std::string_view service_name) const;

  /// Announces a completed client failover on every member's event bus
  /// (topic "dvm/failover", payload "service:from->to"). Emitted by the
  /// resilience layer, observable by tests and operators alike.
  void announce_failover(std::string_view service_name, std::string_view from_node,
                         std::string_view to_node);

  // ---- status -----------------------------------------------------------------

  DvmStatus status() const;

 private:
  struct Member {
    std::unique_ptr<DvmNode> node;
  };

  std::vector<DvmNode*> alive_members() const;
  Result<std::size_t> alive_index(std::string_view node_name) const;
  /// Blocking bodies behind the loop-posted entry points (which run them
  /// with loop affinity).
  Result<std::vector<std::string>> probe_now(std::string_view from_node);
  Result<AntiEntropyReport> anti_entropy_now();
  Result<HintReplayReport> hint_replay_now();
  void announce(std::string_view topic, const std::string& message);
  DvmNode* lookup_alive(std::string_view node_name);
  /// Records one coherency round (h2.dvm.<name>.coherency.*): round count,
  /// message fan-out (net-stats delta across the protocol call) and
  /// convergence time (virtual ns the round consumed).
  void record_round(net::SimNetwork& net, std::uint64_t messages_before, Nanos t0);

  std::string name_;
  std::unique_ptr<CoherencyProtocol> protocol_;
  loop::EventLoop loop_;
  std::vector<Member> members_;
  std::size_t components_ = 0;
  std::uint64_t epoch_ = 0;
  std::size_t heartbeat_rr_ = 0;  ///< round-robin prober for start_heartbeat
  // Coherency metric handles, cached on first use (all members share one
  // SimNetwork; re-resolved if the network ever differs).
  net::SimNetwork* metrics_net_ = nullptr;
  obs::Counter* c_rounds_ = nullptr;
  obs::Counter* c_fanout_ = nullptr;
  obs::Histogram* h_convergence_ = nullptr;
};

}  // namespace h2::dvm
