#include "dvm/hints.hpp"

#include <algorithm>

namespace h2::dvm {

bool HintStore::park(std::string_view coordinator, std::string_view target,
                     const VersionedEntry& entry,
                     std::vector<std::string> owners_at_park) {
  auto it = hints_.find(coordinator);
  if (it == hints_.end()) {
    it = hints_.emplace(std::string(coordinator), std::deque<Hint>{}).first;
  }
  auto& queue = it->second;
  ++parked_total_;
  for (auto& hint : queue) {
    if (hint.target == target && hint.entry.key == entry.key) {
      if (hint.entry.version < entry.version) {
        hint.entry = entry;
        hint.owners_at_park = std::move(owners_at_park);
      }
      return false;
    }
  }
  queue.push_back(Hint{std::string(target), entry, std::move(owners_at_park)});
  if (queue.size() > max_per_coordinator_) {
    queue.pop_front();
    ++evicted_;
  }
  return true;
}

std::size_t HintStore::pending() const {
  std::size_t total = 0;
  for (const auto& [name, queue] : hints_) total += queue.size();
  return total;
}

std::size_t HintStore::pending_for(std::string_view coordinator) const {
  auto it = hints_.find(coordinator);
  return it == hints_.end() ? 0 : it->second.size();
}

std::vector<std::string> HintStore::coordinators() const {
  std::vector<std::string> names;
  for (const auto& [name, queue] : hints_) {
    if (!queue.empty()) names.push_back(name);
  }
  return names;
}

std::vector<std::string> HintStore::keys() const {
  std::vector<std::string> out;
  for (const auto& [name, queue] : hints_) {
    for (const Hint& hint : queue) out.push_back(hint.entry.key);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void HintStore::drop_coordinator(std::string_view coordinator) {
  auto it = hints_.find(coordinator);
  if (it != hints_.end()) hints_.erase(it);
}

}  // namespace h2::dvm
