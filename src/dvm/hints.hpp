// Hinted handoff (Dynamo-style, scaled to this repo): when a sharded
// write cannot reach one of its R replica-set owners, the coordinator
// applies the write wherever it can and parks a *hint* — the versioned
// entry plus the owner it never reached. A periodic replay pass drains
// hints back to their targets once those are reachable again, restoring
// R-replication without waiting for the next anti-entropy round. Hints
// live in coordinator memory: while the coordinator is down its hints are
// not replayable and anti-entropy is the backstop.
//
// The TokenBucket is the shared recovery budget: hint replay and
// join/leave handoff both draw from it, so repair traffic is bounded per
// tick and cannot starve foreground writes (the "bounded rebalance" half
// of the degraded-mode story).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dvm/state.hpp"

namespace h2::dvm {

/// One parked write: the versioned entry and the owner it must reach.
/// `owners_at_park` records the key's owner set when the hint was parked:
/// every owner in it either took the write or got a hint of its own, so
/// replay only needs to reach `target` plus owners that joined the set
/// afterwards (those may have been seeded by a stale donor). An empty
/// set means "unknown" and replay falls back to the whole owner set.
struct Hint {
  std::string target;  ///< member the replication leg never reached
  VersionedEntry entry;
  std::vector<std::string> owners_at_park;
};

/// What one hint-replay pass did (sharded mode; zeroes elsewhere).
struct HintReplayReport {
  std::size_t attempted = 0;  ///< hints a delivery was tried for
  std::size_t delivered = 0;  ///< hints applied at their target(s) and retired
  std::size_t requeued = 0;   ///< delivery failed; kept for the next pass
  std::size_t skipped = 0;    ///< coordinator dead or budget exhausted this tick
};

/// Per-tick recovery budget: `refill()` starts a tick, `try_consume()`
/// charges one message of `bytes` against it. A zero cap means unlimited
/// on that axis. Both axes must have room for a consume to succeed.
class TokenBucket {
 public:
  TokenBucket(std::size_t bytes_per_tick, std::size_t msgs_per_tick)
      : bytes_cap_(bytes_per_tick), msgs_cap_(msgs_per_tick) {
    refill();
  }

  void refill() {
    bytes_left_ = bytes_cap_;
    msgs_left_ = msgs_cap_;
  }

  bool try_consume(std::size_t bytes) {
    if (bytes_cap_ != 0 && bytes > bytes_left_) return false;
    if (msgs_cap_ != 0 && msgs_left_ == 0) return false;
    if (bytes_cap_ != 0) bytes_left_ -= bytes;
    if (msgs_cap_ != 0) --msgs_left_;
    return true;
  }

  /// Split-axis consumes for batched senders: entries charge bytes as
  /// they are collected, the one wire frame that carries them charges a
  /// single message. try_consume() remains the combined form for
  /// unbatched per-entry sends.
  bool try_consume_bytes(std::size_t bytes) {
    if (bytes_cap_ != 0 && bytes > bytes_left_) return false;
    if (bytes_cap_ != 0) bytes_left_ -= bytes;
    return true;
  }
  bool try_consume_msg() {
    if (msgs_cap_ != 0 && msgs_left_ == 0) return false;
    if (msgs_cap_ != 0) --msgs_left_;
    return true;
  }

  std::size_t bytes_left() const { return bytes_cap_ == 0 ? SIZE_MAX : bytes_left_; }
  std::size_t msgs_left() const { return msgs_cap_ == 0 ? SIZE_MAX : msgs_left_; }

 private:
  std::size_t bytes_cap_;
  std::size_t msgs_cap_;
  std::size_t bytes_left_ = 0;
  std::size_t msgs_left_ = 0;
};

/// Hints parked per coordinator (the member that originated the write).
/// Bounded: each coordinator holds at most `max_per_coordinator` hints;
/// overflow evicts the oldest (counted in `evicted()` — anti-entropy must
/// then repair what the evicted hint would have delivered). Parking a
/// newer version of a (target, key) pair already hinted replaces the old
/// hint in place — replaying the superseded version would be a wasted
/// message, the LWW merge at the target drops it anyway.
class HintStore {
 public:
  static constexpr std::size_t kDefaultMaxPerCoordinator = 1024;

  explicit HintStore(std::size_t max_per_coordinator = kDefaultMaxPerCoordinator)
      : max_per_coordinator_(max_per_coordinator) {}

  /// Returns false when the hint superseded an existing one (no growth).
  /// `owners_at_park` is the key's owner set at park time (may be empty
  /// when the caller does not know it — see Hint).
  bool park(std::string_view coordinator, std::string_view target,
            const VersionedEntry& entry,
            std::vector<std::string> owners_at_park = {});

  std::size_t pending() const;
  std::size_t pending_for(std::string_view coordinator) const;
  std::uint64_t parked_total() const { return parked_total_; }
  std::uint64_t evicted() const { return evicted_; }

  /// Coordinators with at least one parked hint, in name order (the
  /// deterministic replay order).
  std::vector<std::string> coordinators() const;

  /// Distinct keys with at least one parked hint anywhere, sorted. These
  /// are the keys whose replication debt is recorded but not yet paid —
  /// invariant checkers exempt them from full-replication checks.
  std::vector<std::string> keys() const;

  /// Mutable FIFO queue of one coordinator's hints; replay walks it and
  /// erases what it delivered.
  std::deque<Hint>& hints_for(const std::string& coordinator) {
    return hints_[coordinator];
  }

  /// Drops every hint parked at `coordinator` (its memory is gone).
  void drop_coordinator(std::string_view coordinator);

 private:
  std::size_t max_per_coordinator_;
  std::map<std::string, std::deque<Hint>, std::less<>> hints_;
  std::uint64_t parked_total_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace h2::dvm
