#include "dvm/merkle.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace h2::dvm {

namespace {

constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ULL;

std::uint64_t chain_entry(std::uint64_t h, const VersionedEntry& entry) {
  h = mix64(h ^ hash64(entry.key));
  h = mix64(h ^ entry.version.ts);
  h = mix64(h ^ entry.version.writer);
  h = mix64(h ^ (entry.deleted ? 1u : 0u));
  if (!entry.deleted) h = mix64(h ^ hash64(entry.value));
  return h;
}

std::uint64_t combine(std::uint64_t left, std::uint64_t right) {
  std::uint64_t h = kDigestSeed;
  h = mix64(h ^ left);
  h = mix64(h ^ right);
  return h;
}

std::string shard_label(std::size_t shard) {
  return "merkle, shard " + std::to_string(shard);
}

}  // namespace

MerkleTree::MerkleTree(std::vector<std::uint64_t> leaves) {
  std::size_t buckets = leaves.size();
  depth_ = 0;
  while ((std::size_t{1} << depth_) < buckets) ++depth_;
  nodes_.resize(2 * buckets - 1);
  std::copy(leaves.begin(), leaves.end(), nodes_.begin() + (buckets - 1));
  for (std::size_t i = buckets - 1; i-- > 0;) {
    nodes_[i] = combine(nodes_[2 * i + 1], nodes_[2 * i + 2]);
  }
}

MerkleTree build_merkle_tree(const StateStore& store, std::size_t shard,
                             std::size_t shard_count, std::size_t buckets) {
  std::vector<std::uint64_t> leaves(buckets, kDigestSeed);
  for (const VersionedEntry& entry : store.shard_snapshot(shard, shard_count)) {
    std::size_t bucket = bucket_of_key(entry.key, buckets);
    leaves[bucket] = chain_entry(leaves[bucket], entry);
  }
  return MerkleTree(std::move(leaves));
}

Result<MerkleSyncStats> merkle_sync_shard_with_peer(net::Channel& peer,
                                                    StateStore& local,
                                                    std::size_t shard,
                                                    std::size_t shard_count,
                                                    std::size_t buckets) {
  MerkleSyncStats stats;
  buckets = merkle_bucket_count(buckets);
  MerkleTree tree = build_merkle_tree(local, shard, shard_count, buckets);

  auto mnode_params = [&](std::size_t level, std::size_t index) {
    return std::vector<Value>{
        Value::of_int(static_cast<std::int64_t>(shard), "shard"),
        Value::of_int(static_cast<std::int64_t>(shard_count), "shards"),
        Value::of_int(static_cast<std::int64_t>(buckets), "buckets"),
        Value::of_int(static_cast<std::int64_t>(level), "level"),
        Value::of_int(static_cast<std::int64_t>(index), "index")};
  };

  auto root = peer.invoke("mnode", mnode_params(0, 0));
  ++stats.digest_queries;
  if (!root.ok()) return root.error().context(shard_label(shard) + " root");
  auto root_digest = root->as_int();
  if (!root_digest.ok()) return root_digest.error();
  if (static_cast<std::uint64_t>(*root_digest) == tree.root()) {
    return stats;  // replicas already byte-equal
  }
  stats.differed = true;

  // Top-down descent: ONE packed "mnodes" call per level — child indexes
  // as an 8-byte big-endian blob, digests back the same way — keeping
  // only the children whose digests disagree. The frontier that survives
  // to the leaf level is exactly the set of diverged buckets. (The named
  // per-node "mnode" framing stays for the root probe and point queries;
  // packing the descent keeps its wire cost at ~16 bytes per node, which
  // is what makes the exchange O(diff) in bytes and not just in entries.)
  std::vector<std::size_t> frontier{0};
  for (std::size_t level = 1; level <= tree.depth() && !frontier.empty(); ++level) {
    std::vector<std::size_t> children;
    children.reserve(2 * frontier.size());
    std::string indexes;
    indexes.reserve(16 * frontier.size());
    for (std::size_t parent : frontier) {
      for (std::size_t child : {2 * parent, 2 * parent + 1}) {
        children.push_back(child);
        auto index = static_cast<std::uint64_t>(child);
        for (std::size_t b = 8; b-- > 0;) {
          indexes.push_back(static_cast<char>((index >> (8 * b)) & 0xFF));
        }
      }
    }
    std::vector<Value> params{
        Value::of_int(static_cast<std::int64_t>(shard), "shard"),
        Value::of_int(static_cast<std::int64_t>(shard_count), "shards"),
        Value::of_int(static_cast<std::int64_t>(buckets), "buckets"),
        Value::of_int(static_cast<std::int64_t>(level), "level"),
        Value::of_string(std::move(indexes), "indexes")};
    auto reply = peer.invoke("mnodes", params);
    if (!reply.ok()) return reply.error().context(shard_label(shard) + " descent");
    stats.digest_queries += children.size();
    auto digests = reply->as_string();
    if (!digests.ok()) return digests.error();
    if (digests->size() != 8 * children.size()) {
      return err::internal(shard_label(shard) + " descent: digest blob size " +
                           std::to_string(digests->size()) + ", expected " +
                           std::to_string(8 * children.size()));
    }
    std::vector<std::size_t> next;
    for (std::size_t i = 0; i < children.size(); ++i) {
      std::uint64_t digest = 0;
      for (std::size_t b = 0; b < 8; ++b) {
        digest = (digest << 8) | static_cast<std::uint8_t>((*digests)[8 * i + b]);
      }
      if (digest != tree.node(level, children[i])) {
        next.push_back(children[i]);
      }
    }
    frontier = std::move(next);
  }
  stats.buckets_diverged = frontier.size();
  if (frontier.empty()) return stats;  // divergence resolved under us

  // Pull only the diverged buckets (one batch frame) and LWW-merge them;
  // newer local entries survive. Remember the exact version the peer sent
  // for every key — those entries are the peer's current state, and
  // pushing them back would be pure echo.
  std::map<std::string, Version, std::less<>> peer_has;
  {
    std::vector<net::BatchItem> calls;
    calls.reserve(frontier.size());
    for (std::size_t bucket : frontier) {
      net::BatchItem item;
      item.operation = "mpull";
      item.params = {Value::of_int(static_cast<std::int64_t>(shard), "shard"),
                     Value::of_int(static_cast<std::int64_t>(shard_count), "shards"),
                     Value::of_int(static_cast<std::int64_t>(buckets), "buckets"),
                     Value::of_int(static_cast<std::int64_t>(bucket), "bucket")};
      calls.push_back(std::move(item));
    }
    std::vector<Result<Value>> results;
    if (auto status = peer.invoke_batch(calls, results); !status.ok()) {
      return status.error().context(shard_label(shard) + " pull");
    }
    for (const auto& result : results) {
      if (!result.ok()) return result.error().context(shard_label(shard) + " pull");
      auto blob = result->as_string();
      if (!blob.ok()) return blob.error();
      stats.bytes_pulled += blob->size();
      auto entries = decode_entries(*blob);
      if (!entries.ok()) return entries.error();
      stats.pulled += entries->size();
      for (const VersionedEntry& entry : *entries) {
        peer_has.insert_or_assign(entry.key, entry.version);
        if (local.apply(entry)) ++stats.merged;
      }
    }
  }

  // Push back only what the peer is actually missing: entries in the
  // diverged buckets whose version differs from the copy the peer just
  // sent (or that the peer never sent at all). Re-sending the rest would
  // double the exchange for nothing — the peer's LWW merge would drop
  // every one of them.
  std::set<std::size_t> diverged(frontier.begin(), frontier.end());
  std::vector<VersionedEntry> push;
  for (VersionedEntry& entry : local.shard_snapshot(shard, shard_count)) {
    if (!diverged.contains(bucket_of_key(entry.key, buckets))) continue;
    if (auto it = peer_has.find(entry.key);
        it != peer_has.end() && it->second == entry.version) {
      continue;  // peer already holds this exact version
    }
    push.push_back(std::move(entry));
  }
  if (!push.empty()) {
    stats.bytes_pushed += encode_entries(push).size();
    if (auto status =
            push_entries_batched(peer, push, shard_label(shard) + " push");
        !status.ok()) {
      return status.error();
    }
    stats.pushed = push.size();
  }
  return stats;
}

}  // namespace h2::dvm
