// Merkle-tree anti-entropy for the sharded DVM. A shard's entries are
// hashed into a fixed number of leaf buckets (key → bucket by a second,
// decorrelated hash); leaf digests chain the bucket's key-sorted entries
// and internal nodes combine their children, so two replicas with equal
// roots hold byte-equal shards. Repair probes the root (`mnode`), then
// walks the tree top-down with one packed `mnodes` frame per level —
// child indexes and digests as 8-byte big-endian blobs, so the descent
// costs ~16 wire bytes per node instead of a named-param call each —
// descending only into subtrees whose digests disagree, and finally
// transfers just the diverged leaf buckets (`mpull` + a vset push-back
// of what the peer was shown to be missing) — bandwidth O(diff), where
// the flat digest/pull exchange in sync_shard_with_peer moves the whole
// shard.
#pragma once

#include <cstdint>
#include <vector>

#include "dvm/state.hpp"

namespace h2::dvm {

/// Rounds a requested leaf count up to a power of two (minimum 1) so the
/// tree is a complete binary tree and node indexing is pure arithmetic.
constexpr std::size_t merkle_bucket_count(std::size_t requested) {
  std::size_t buckets = 1;
  while (buckets < requested) buckets <<= 1;
  return buckets;
}

/// Upper bound on adaptive bucket counts: a 64k-leaf tree is ~1MB of
/// digests per shard, plenty of resolution for any shard the sim runs.
constexpr std::size_t kMaxMerkleBuckets = std::size_t{1} << 16;

/// Bucket count for a shard of `entries` entries aiming at about
/// `target_per_bucket` entries per leaf: the power of two covering
/// entries/target, floored at `floor_buckets` (the fixed config count, so
/// small shards keep their old trees bit-for-bit) and capped at
/// kMaxMerkleBuckets. target 0 = adaptation off, returns the floor.
constexpr std::size_t adaptive_merkle_buckets(std::size_t entries,
                                              std::size_t target_per_bucket,
                                              std::size_t floor_buckets) {
  std::size_t floor = merkle_bucket_count(floor_buckets);
  if (target_per_bucket == 0) return floor;
  std::size_t want =
      merkle_bucket_count((entries + target_per_bucket - 1) / target_per_bucket);
  if (want < floor) want = floor;
  return want < kMaxMerkleBuckets ? want : kMaxMerkleBuckets;
}

/// Which leaf bucket a key hashes into. mix64 decorrelates this from the
/// shard placement hash (shard_of_key uses raw hash64), so keys of one
/// shard spread evenly over the buckets. `buckets` must be a power of two.
constexpr std::size_t bucket_of_key(std::string_view key, std::size_t buckets) {
  return static_cast<std::size_t>(mix64(hash64(key))) & (buckets - 1);
}

/// A complete binary hash tree over one shard's leaf buckets. Level 0 is
/// the root; level `depth()` holds the `buckets()` leaves; node (L, i)
/// covers leaves [i << (depth-L), (i+1) << (depth-L)).
class MerkleTree {
 public:
  /// `leaves.size()` must be a power of two (use merkle_bucket_count).
  explicit MerkleTree(std::vector<std::uint64_t> leaves);

  std::size_t buckets() const { return (nodes_.size() + 1) / 2; }
  std::size_t depth() const { return depth_; }
  std::uint64_t node(std::size_t level, std::size_t index) const {
    return nodes_[(std::size_t{1} << level) - 1 + index];
  }
  std::uint64_t root() const { return nodes_[0]; }

 private:
  std::vector<std::uint64_t> nodes_;  ///< heap layout: level L starts at 2^L - 1
  std::size_t depth_;
};

/// Hashes one shard of `store` into a tree of `buckets` leaves (power of
/// two). Leaf digests chain entries in key order with the same per-entry
/// mixing as StateStore::shard_digest, so equal leaves ⇔ byte-equal
/// bucket contents (keys, values, versions, tombstones).
MerkleTree build_merkle_tree(const StateStore& store, std::size_t shard,
                             std::size_t shard_count, std::size_t buckets);

/// Stats of one Merkle-repaired shard synchronization.
struct MerkleSyncStats {
  bool differed = false;           ///< roots disagreed before the exchange
  std::size_t digest_queries = 0;  ///< tree nodes queried (root + descent)
  std::size_t buckets_diverged = 0;
  std::size_t pulled = 0;  ///< entries fetched from the peer's diverged buckets
  std::size_t merged = 0;  ///< pulled entries that won locally (LWW)
  std::size_t pushed = 0;  ///< entries sent back to the peer
  std::size_t bytes_pulled = 0;  ///< blob bytes of the pulled buckets
  std::size_t bytes_pushed = 0;  ///< blob-equivalent bytes of the push-back
};

/// One Merkle anti-entropy exchange against a peer's state service:
/// compare roots, descend into disagreeing subtrees level by level (one
/// packed mnodes frame per level), then pull the diverged leaf buckets,
/// LWW-merge them into `local` and push back only the entries the pull
/// showed the peer to be missing or behind on. After a clean exchange
/// both replicas hold identical shard snapshots — same postcondition as
/// sync_shard_with_peer, at O(diff) transfer cost.
Result<MerkleSyncStats> merkle_sync_shard_with_peer(net::Channel& peer,
                                                    StateStore& local,
                                                    std::size_t shard,
                                                    std::size_t shard_count,
                                                    std::size_t buckets);

}  // namespace h2::dvm
