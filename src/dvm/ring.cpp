#include "dvm/ring.hpp"

#include <algorithm>

namespace h2::dvm {

HashRing::HashRing(std::size_t vnodes, std::uint64_t seed)
    : vnodes_(vnodes == 0 ? 1 : vnodes), seed_(seed) {}

std::uint64_t HashRing::point_of(std::string_view member, std::size_t vnode) const {
  // Each virtual node gets its own decorrelated ring position; the seed
  // shifts the whole placement so property tests can sweep layouts.
  return mix64(hash64(member) ^ (seed_ + 0x9e3779b97f4a7c15ULL * (vnode + 1)));
}

void HashRing::rebuild_points() {
  points_.clear();
  points_.reserve(members_.size() * vnodes_);
  for (std::uint32_t m = 0; m < members_.size(); ++m) {
    for (std::size_t v = 0; v < vnodes_; ++v) {
      points_.emplace_back(point_of(members_[m], v), m);
    }
  }
  std::sort(points_.begin(), points_.end());
}

void HashRing::add(std::string member) {
  auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it != members_.end() && *it == member) return;
  members_.insert(it, std::move(member));
  rebuild_points();
}

void HashRing::remove(std::string_view member) {
  auto it = std::lower_bound(members_.begin(), members_.end(), member);
  if (it == members_.end() || *it != member) return;
  members_.erase(it);
  rebuild_points();
}

bool HashRing::contains(std::string_view member) const {
  return std::binary_search(members_.begin(), members_.end(), member);
}

std::vector<std::string> HashRing::owners(std::string_view token,
                                          std::size_t count) const {
  std::vector<std::string> out;
  if (points_.empty() || count == 0) return out;
  count = std::min(count, members_.size());
  out.reserve(count);
  const std::uint64_t pos = mix64(hash64(token) ^ seed_);
  auto start = std::lower_bound(
      points_.begin(), points_.end(), pos,
      [](const auto& point, std::uint64_t p) { return point.first < p; });
  std::vector<bool> taken(members_.size(), false);
  for (std::size_t walked = 0; walked < points_.size() && out.size() < count;
       ++walked) {
    if (start == points_.end()) start = points_.begin();
    std::uint32_t m = start->second;
    if (!taken[m]) {
      taken[m] = true;
      out.push_back(members_[m]);
    }
    ++start;
  }
  return out;
}

std::string HashRing::primary(std::string_view token) const {
  auto one = owners(token, 1);
  return one.empty() ? std::string() : std::move(one.front());
}

ShardMap::ShardMap(ShardConfig config)
    : config_(config), ring_(config.vnodes, config.seed) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.replicas == 0) config_.replicas = 1;
  owners_.resize(config_.shards);
}

void ShardMap::rebuild(std::span<const std::string> members) {
  HashRing fresh(config_.vnodes, config_.seed);
  for (const std::string& member : members) fresh.add(member);
  ring_ = std::move(fresh);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    owners_[s] = ring_.owners("shard/" + std::to_string(s), config_.replicas);
  }
}

std::span<const std::string> ShardMap::owners(std::size_t shard) const {
  if (shard >= owners_.size()) return {};
  return owners_[shard];
}

bool ShardMap::is_owner(std::size_t shard, std::string_view member) const {
  for (const std::string& owner : owners(shard)) {
    if (owner == member) return true;
  }
  return false;
}

}  // namespace h2::dvm
