// Consistent-hash ring and shard map for the sharded DVM coherency mode.
// The keyspace is split into a fixed number of shards (key → shard by
// hash); each shard token is placed on a ring of member virtual nodes, and
// the R distinct members clockwise from the token own the shard's
// replicas. Virtual nodes smooth the load (balance within a few percent at
// vnodes ≈ 8–64); seeded placement keeps simulation runs deterministic and
// lets the property tests sweep placements. Joins and leaves move only the
// shards whose owner set actually changed — the "minimal remapping"
// property test pins the ≈1/M bound.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace h2::dvm {

/// FNV-1a, the ring's stable key hash. Never change the constants: shard
/// placement (and therefore which replicas hold which keys) depends on it.
constexpr std::uint64_t hash64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Finalizing mix (splitmix64) — decorrelates vnode points that share a
/// member-name prefix so each virtual node lands independently.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Which shard a state key belongs to.
constexpr std::size_t shard_of_key(std::string_view key, std::size_t shard_count) {
  return shard_count == 0 ? 0 : static_cast<std::size_t>(hash64(key) % shard_count);
}

/// The ring proper: members × vnodes points sorted by position; owners()
/// walks clockwise from a token collecting distinct members.
class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 8, std::uint64_t seed = 0x4841524e45535332ULL);

  void add(std::string member);
  void remove(std::string_view member);
  bool contains(std::string_view member) const;
  std::size_t size() const { return members_.size(); }
  const std::vector<std::string>& members() const { return members_; }

  /// Up to `count` distinct members clockwise from hash(token); fewer when
  /// the ring has fewer members. The first entry is the token's primary.
  std::vector<std::string> owners(std::string_view token, std::size_t count) const;
  /// owners(token, 1).front(), or "" on an empty ring.
  std::string primary(std::string_view token) const;

 private:
  std::uint64_t point_of(std::string_view member, std::size_t vnode) const;
  void rebuild_points();

  std::size_t vnodes_;
  std::uint64_t seed_;
  std::vector<std::string> members_;                        ///< sorted
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;  ///< (pos, member idx), sorted
};

/// Sharded-mode placement parameters. Defaults suit the 4–8 node clusters
/// the tests and sim scenarios run; bench_sharding scales them up.
struct ShardConfig {
  std::size_t shards = 16;    ///< fixed shard count (key → shard by hash)
  std::size_t replicas = 2;   ///< R owners per shard
  std::size_t vnodes = 8;     ///< virtual nodes per member on the ring
  std::uint64_t seed = 0x4841524e45535332ULL;  ///< ring placement seed

  /// Merkle anti-entropy: leaf buckets per shard tree (rounded up to a
  /// power of two). More buckets → finer diffs → fewer bytes repaired per
  /// diverged key, at the cost of a deeper digest exchange. Acts as the
  /// *floor*: when merkle_target_per_bucket is set, bucket count adapts
  /// upward with shard size and never drops below this.
  std::size_t merkle_buckets = 32;

  /// Adaptive bucket sizing: aim for about this many entries per leaf
  /// bucket, choosing the nearest power of two ≥ entries/target (floored
  /// at merkle_buckets, capped at kMaxMerkleBuckets in merkle.hpp). 0
  /// disables adaptation and pins the fixed merkle_buckets count.
  std::size_t merkle_target_per_bucket = 8;

  /// Hinted-handoff capacity per coordinator (entries kept for each
  /// unreachable owner before the oldest are evicted). Matches the
  /// HintStore default; lowered in tests to force evictions.
  std::size_t hint_capacity = 1024;

  /// Rebalance budget: bytes/messages of recovery traffic (join/leave
  /// handoff + hint replay) allowed per tick. 0 = unlimited on that axis.
  /// Handoff entries beyond the budget are deferred as hints and drained
  /// by later replay ticks instead of moving in one burst.
  std::size_t rebalance_bytes_per_tick = 0;
  std::size_t rebalance_msgs_per_tick = 0;
};

/// shard → owner-list map derived from a HashRing over the current
/// membership. rebuild() recomputes all owner lists (shard tokens are
/// fixed strings "shard/<i>", so only membership changes move them).
class ShardMap {
 public:
  explicit ShardMap(ShardConfig config);

  const ShardConfig& config() const { return config_; }
  std::size_t shard_count() const { return config_.shards; }
  std::size_t shard_of(std::string_view key) const {
    return shard_of_key(key, config_.shards);
  }

  void rebuild(std::span<const std::string> members);
  const std::vector<std::string>& members() const { return ring_.members(); }

  /// Owner names of a shard, primary first. Size min(R, members).
  std::span<const std::string> owners(std::size_t shard) const;
  bool is_owner(std::size_t shard, std::string_view member) const;

 private:
  ShardConfig config_;
  HashRing ring_;
  std::vector<std::vector<std::string>> owners_;  ///< per shard
};

}  // namespace h2::dvm
