// Sharded coherency mode: the keyspace is split into fixed shards placed
// on a consistent-hash ring (dvm/ring.hpp); every write becomes a
// last-write-wins delta sent only to the R shard owners, reads walk the
// owner list, and a periodic Merkle anti-entropy pass (top-down digest
// descent + per-bucket pull/push, merkle.cpp) repairs replicas that
// diverged across partitions or crashes. A replication leg that cannot
// reach its owner parks a hint at the coordinator (hints.hpp); replay
// redelivers those once the owner is back, so R-replication is restored
// without waiting for anti-entropy. Versions are stamped from one
// protocol-global counter, so the order writes are acknowledged in IS
// their LWW order — a write can never be silently shadowed by an earlier
// acknowledged one.
#include <algorithm>
#include <map>
#include <optional>

#include "dvm/coherency.hpp"
#include "dvm/merkle.hpp"
#include "obs/metrics.hpp"

namespace h2::dvm {

namespace {

/// Budget charge of one replicated entry: payload plus framing overhead.
std::size_t entry_wire_size(const VersionedEntry& entry) {
  return entry.key.size() + entry.value.size() + 32;
}

class ShardedCoherency final : public CoherencyProtocol {
 public:
  explicit ShardedCoherency(ShardConfig config,
                            std::optional<std::size_t> skip_shard = std::nullopt,
                            bool drop_hints = false)
      : map_(config),
        skip_shard_(skip_shard),
        drop_hints_(drop_hints),
        hints_(config.hint_capacity),
        budget_(config.rebalance_bytes_per_tick, config.rebalance_msgs_per_tick) {}

  const char* name() const override { return "sharded"; }

  Status update(std::span<DvmNode* const> members, std::size_t origin,
                std::string_view key, std::string_view value) override {
    ensure(members);
    return write_one(members, origin, key, value, /*deleted=*/false);
  }

  Status update_batch(std::span<DvmNode* const> members, std::size_t origin,
                      std::span<const KV> writes) override {
    ensure(members);
    const std::vector<KV> coalesced = coalesce_writes(writes);
    if (coalesced.empty()) return Status::success();
    DvmNode* origin_node = members[origin];
    bind_metrics(*origin_node);
    counter_ = std::max(counter_, origin_node->state().clock());

    // One version per write; group remote deltas into ONE batched vset
    // frame per destination owner (the PR 5 coalescing discipline).
    struct TargetBatch {
      DvmNode* node;
      std::vector<VersionedEntry> entries;
      std::vector<std::size_t> write_idx;
    };
    std::vector<TargetBatch> batches;
    std::map<std::string_view, std::size_t> batch_index;
    std::vector<std::size_t> applied(coalesced.size(), 0);

    for (std::size_t i = 0; i < coalesced.size(); ++i) {
      const KV& kv = coalesced[i];
      Version v{++counter_, writer_id(origin_node->name())};
      VersionedEntry entry{std::string(kv.key), std::string(kv.value), v, false};
      for (const std::string& owner : map_.owners(map_.shard_of(kv.key))) {
        DvmNode* target = find_member(members, owner);
        if (target == nullptr) continue;
        if (target == origin_node) {
          (void)origin_node->state().apply(entry);
          ++applied[i];
          continue;
        }
        auto [it, inserted] = batch_index.try_emplace(target->name(), batches.size());
        if (inserted) batches.push_back(TargetBatch{target, {}, {}});
        batches[it->second].entries.push_back(entry);
        batches[it->second].write_idx.push_back(i);
      }
      c_writes_->add();
    }
    for (TargetBatch& batch : batches) {
      if (origin_node->remote_vset_batch(*batch.node, batch.entries).ok()) {
        for (std::size_t idx : batch.write_idx) ++applied[idx];
      } else {
        c_write_misses_->add(batch.entries.size());
        for (const VersionedEntry& entry : batch.entries) {
          park(origin_node->name(), batch.node->name(), entry);
        }
      }
    }
    for (std::size_t i = 0; i < coalesced.size(); ++i) {
      if (applied[i] == 0) {
        return err::unavailable("sharded batch write of '" +
                                std::string(coalesced[i].key) +
                                "': no shard owner reachable");
      }
    }
    return Status::success();
  }

  Result<std::string> query(std::span<DvmNode* const> members, std::size_t origin,
                            std::string_view key) override {
    ensure(members);
    DvmNode* origin_node = members[origin];
    bind_metrics(*origin_node);
    const std::size_t shard = map_.shard_of(key);
    const bool origin_owns = map_.is_owner(shard, origin_node->name());
    if (origin_owns) {
      // Fast path: an owner serving its own copy answers locally with no
      // wire traffic. A *stale* (older-version) local hit is invisible
      // here by design — detecting it would cost a remote round per read;
      // anti-entropy bounds that window instead.
      if (auto value = origin_node->state().get(key); value.has_value()) {
        return *value;
      }
    }
    // Slow path: walk the other owners with versioned reads. Owners that
    // answer not-found while a later owner holds the key are stale — a
    // rejoin/handoff gap — and get an immediate per-key repair scheduled
    // on their container loop (the dispatch is inline until a driver is
    // attached, queued under one).
    std::optional<Error> hard_failure;
    std::vector<DvmNode*> stale;
    for (const std::string& owner : map_.owners(shard)) {
      DvmNode* target = find_member(members, owner);
      if (target == nullptr || target == origin_node) continue;
      auto entry = origin_node->remote_vget(*target, key);
      if (!entry.ok()) {
        if (entry.error().code() == ErrorCode::kNotFound) {
          stale.push_back(target);  // reachable but missing the key
        } else {
          hard_failure = entry.error();  // replica unreachable ≠ key absent
        }
        continue;
      }
      if (entry->deleted) continue;  // tombstone: the key is gone here
      if (origin_owns) stale.push_back(origin_node);  // local miss, remote hit
      for (DvmNode* node : stale) {
        schedule_read_repair(*node, *entry);
      }
      return entry->value;
    }
    if (hard_failure.has_value()) return *hard_failure;
    return err::not_found("state: no key '" + std::string(key) +
                          "' on any shard owner");
  }

  Status erase(std::span<DvmNode* const> members, std::size_t origin,
               std::string_view key) override {
    ensure(members);
    // Tombstone, not removal: the version must survive so a stale write
    // that lost the race cannot resurrect the key.
    return write_one(members, origin, key, "", /*deleted=*/true);
  }

  Status on_join(std::span<DvmNode* const> members, std::size_t joined) override {
    (void)joined;
    handoff(members);
    return Status::success();
  }

  Status on_leave(std::span<DvmNode* const> members,
                  std::string_view departed) override {
    (void)departed;
    handoff(members);
    return Status::success();
  }

  std::vector<std::size_t> heartbeat_peers(std::span<DvmNode* const> members,
                                           std::size_t origin) override {
    ensure(members);
    // Probe only replica-set peers: members sharing at least one shard
    // with the prober. O(R·shards) probes instead of O(M) broadcast.
    const std::string& self = members[origin]->name();
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (i == origin) continue;
      const std::string& peer = members[i]->name();
      for (std::size_t s = 0; s < map_.shard_count(); ++s) {
        if (map_.is_owner(s, self) && map_.is_owner(s, peer)) {
          out.push_back(i);
          break;
        }
      }
    }
    if (out.empty()) {
      // Owner of nothing (tiny ring slice): fall back to broadcast so the
      // member still participates in failure detection.
      return CoherencyProtocol::heartbeat_peers(members, origin);
    }
    return out;
  }

  Result<AntiEntropyReport> anti_entropy(std::span<DvmNode* const> members) override {
    ensure(members);
    AntiEntropyReport report;
    if (members.empty()) return report;
    bind_metrics(*members[0]);
    for (std::size_t s = 0; s < map_.shard_count(); ++s) {
      if (skip_shard_.has_value() && s == *skip_shard_) continue;  // TEST ONLY bug
      std::vector<DvmNode*> owners;
      for (const std::string& owner : map_.owners(s)) {
        if (DvmNode* node = find_member(members, owner)) owners.push_back(node);
      }
      if (owners.size() < 2) continue;
      ++report.shards_checked;
      DvmNode* primary = owners.front();
      // Adaptive tree resolution: size the leaf count to the shard as the
      // primary sees it, so a shard that grew 100x diffs at the same
      // per-bucket granularity instead of transferring 100x per diverged
      // leaf. The count rides the wire with every mnode/mnodes/mpull call,
      // so both sides always build the same tree.
      const std::size_t buckets = adaptive_merkle_buckets(
          primary->state().shard_entry_count(s, map_.shard_count()),
          map_.config().merkle_target_per_bucket, map_.config().merkle_buckets);
      report.max_buckets = std::max(report.max_buckets, buckets);
      bool divergent = false;
      // Two passes: round one accumulates every replica's entries into the
      // primary (it ends holding the shard-wide LWW maximum), round two
      // pushes that maximum back out. After a clean double pass all owner
      // snapshots are byte-equal. Each pairwise exchange is a Merkle
      // descent, so only diverged buckets cross the wire.
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t r = 1; r < owners.size(); ++r) {
          auto channel = primary->open_state_channel(*owners[r]);
          auto stats = merkle_sync_shard_with_peer(*channel, primary->state(), s,
                                                   map_.shard_count(), buckets);
          if (!stats.ok()) {
            ++report.exchange_failures;
            continue;
          }
          if (stats->differed) divergent = true;
          report.entries_repaired += stats->merged;
          report.buckets_diverged += stats->buckets_diverged;
          report.bytes_transferred += stats->bytes_pulled + stats->bytes_pushed;
        }
      }
      if (divergent) ++report.shards_divergent;
      counter_ = std::max(counter_, primary->state().clock());
    }
    c_ae_rounds_->add();
    c_ae_divergent_->add(report.shards_divergent);
    c_ae_repaired_->add(report.entries_repaired);
    c_ae_bytes_->add(report.bytes_transferred);
    return report;
  }

  void park_hint(std::string_view coordinator, std::string_view target,
                 const VersionedEntry& entry) override {
    park(coordinator, target, entry);
  }

  std::size_t pending_hints() const override { return hints_.pending(); }

  std::vector<std::string> hinted_keys() const override { return hints_.keys(); }

  Result<HintReplayReport> replay_hints(std::span<DvmNode* const> members) override {
    HintReplayReport report;
    if (members.empty() || hints_.pending() == 0) return report;
    ensure(members);
    bind_metrics(*members[0]);
    budget_.refill();
    bool exhausted = false;
    for (const std::string& coordinator : hints_.coordinators()) {
      if (exhausted) {
        report.skipped += hints_.pending_for(coordinator);
        continue;
      }
      DvmNode* coord = find_member(members, coordinator);
      if (coord == nullptr) {
        // The coordinator is out of the membership; its hints live in its
        // memory and replay when it rejoins. Anti-entropy is the backstop
        // for anything lost with it.
        report.skipped += hints_.pending_for(coordinator);
        continue;
      }
      auto& queue = hints_.hints_for(coordinator);
      // Collect one budget's worth of hints, grouping every remote leg
      // into a single batched vset frame per target: the pass then costs
      // O(distinct targets) round trips, not O(hints x R), which is what
      // keeps a throttled replay slice comparable to one foreground
      // write. Entries charge the byte axis as they are collected; each
      // frame charges one message when it is sent. Self-legs (the
      // coordinator is itself an owner) apply locally for free.
      std::size_t taken = 0;
      std::vector<bool> complete;  // hint's every leg resolved and afforded
      std::map<std::string, std::vector<std::size_t>, std::less<>> legs;
      for (std::size_t i = 0; i < queue.size() && !exhausted; ++i) {
        const Hint& hint = queue[i];
        ++report.attempted;
        ++taken;
        const std::size_t shard = map_.shard_of(hint.entry.key);
        // Deliver to the hint's target plus any owner that joined the set
        // after the hint was parked: ownership may have moved, and a new
        // owner seeded by a donor that was itself missing this entry has
        // no hint of its own. Owners already present at park time took
        // the write or carry their own hint, so re-sending to them would
        // only burn budget. A hint with no park-time stamp falls back to
        // the whole owner set. LWW apply makes duplicates harmless.
        auto owners = map_.owners(shard);
        std::vector<std::string> targets;
        for (const std::string& name : owners) {
          const bool joined_since =
              !hint.owners_at_park.empty() &&
              std::find(hint.owners_at_park.begin(), hint.owners_at_park.end(),
                        name) == hint.owners_at_park.end();
          if (hint.owners_at_park.empty() || name == hint.target ||
              joined_since) {
            targets.push_back(name);
          }
        }
        bool ok = true;
        for (const std::string& name : targets) {
          DvmNode* target = find_member(members, name);
          if (target == nullptr) {
            ok = false;
            continue;
          }
          if (target == coord) {
            (void)coord->state().apply(hint.entry);
            continue;
          }
          if (!budget_.try_consume_bytes(entry_wire_size(hint.entry))) {
            exhausted = true;
            ok = false;
            break;
          }
          legs[name].push_back(i);
        }
        complete.push_back(ok);
      }
      if (exhausted) report.skipped += queue.size() - taken;
      // Send the frames; a frame that fails (or that the message budget
      // cannot afford) requeues every hint that had a leg in it.
      std::vector<bool> delivered(complete);
      for (auto& [name, indexes] : legs) {
        DvmNode* target = find_member(members, name);
        bool sent = false;
        if (budget_.try_consume_msg()) {
          std::vector<VersionedEntry> entries;
          entries.reserve(indexes.size());
          for (std::size_t i : indexes) entries.push_back(queue[i].entry);
          sent = target != nullptr &&
                 coord->remote_vset_batch(*target, entries).ok();
        } else {
          exhausted = true;
        }
        if (!sent) {
          for (std::size_t i : indexes) delivered[i] = false;
        }
      }
      // Retire delivered hints back-to-front so stored indexes stay valid.
      for (std::size_t i = taken; i-- > 0;) {
        if (delivered[i]) {
          queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
          ++report.delivered;
          if (c_hints_replayed_ != nullptr) c_hints_replayed_->add();
        } else {
          ++report.requeued;
          if (c_hints_requeued_ != nullptr) c_hints_requeued_->add();
        }
      }
    }
    return report;
  }

  const ShardMap* shard_map() const override { return &map_; }

 private:
  static DvmNode* find_member(std::span<DvmNode* const> members,
                              std::string_view name) {
    for (DvmNode* node : members) {
      if (node->name() == name) return node;
    }
    return nullptr;
  }

  void ensure(std::span<DvmNode* const> members) {
    std::vector<std::string> names;
    names.reserve(members.size());
    for (DvmNode* node : members) names.push_back(node->name());
    std::sort(names.begin(), names.end());
    if (names == map_.members()) return;
    map_.rebuild(names);
  }

  /// Read-repair: the stale owner's loop applies the winning entry with
  /// loop affinity (inline in eager mode, on the next pump under a
  /// driver). LWW apply keeps it safe against a racing newer write.
  void schedule_read_repair(DvmNode& stale_owner, const VersionedEntry& entry) {
    obs::Counter* repairs = c_read_repairs_;
    StateStore* store = &stale_owner.state();
    stale_owner.container().loop().dispatch([store, entry, repairs] {
      if (store->apply(entry) && repairs != nullptr) repairs->add();
    });
  }

  void bind_metrics(DvmNode& any_member) {
    net::SimNetwork& net = any_member.network();
    if (metrics_net_ == &net) return;
    metrics_net_ = &net;
    c_writes_ = &net.metrics().counter("h2.dvm.shard.writes");
    c_write_misses_ = &net.metrics().counter("h2.dvm.shard.write_owner_misses");
    c_ae_rounds_ = &net.metrics().counter("h2.dvm.shard.ae_rounds");
    c_ae_divergent_ = &net.metrics().counter("h2.dvm.shard.ae_shards_divergent");
    c_ae_repaired_ = &net.metrics().counter("h2.dvm.shard.ae_entries_repaired");
    c_ae_bytes_ = &net.metrics().counter("h2.dvm.shard.ae_bytes");
    c_handoff_ = &net.metrics().counter("h2.dvm.shard.handoff.entries");
    c_handoff_bytes_ = &net.metrics().counter("h2.dvm.shard.handoff.bytes");
    c_handoff_deferred_ = &net.metrics().counter("h2.dvm.shard.handoff.deferred");
    c_hints_parked_ = &net.metrics().counter("h2.dvm.shard.hints.parked");
    c_hints_replayed_ = &net.metrics().counter("h2.dvm.shard.hints.replayed");
    c_hints_requeued_ = &net.metrics().counter("h2.dvm.shard.hints.requeued");
    c_hint_evictions_ = &net.metrics().counter("h2.dvm.shard.hint_evictions");
    c_read_repairs_ = &net.metrics().counter("h2.dvm.shard.read_repairs");
  }

  /// The one parking point (write misses, failed handoff legs, the
  /// resilience channel via park_hint). The TEST-ONLY drop bug lives
  /// here: it silently discards instead of parking.
  void park(std::string_view coordinator, std::string_view target,
            const VersionedEntry& entry) {
    if (drop_hints_) return;  // TEST ONLY planted durability bug
    // Stamp the owner set as of now: every one of these owners either
    // took the write or is getting a hint of its own, so replay can skip
    // them and reach only `target` plus owners that join later.
    auto owners = map_.owners(map_.shard_of(entry.key));
    hints_.park(coordinator, target, entry,
                std::vector<std::string>(owners.begin(), owners.end()));
    if (c_hints_parked_ != nullptr) c_hints_parked_->add();
    // Surface capacity-pressure drops: each eviction is durability lost
    // until anti-entropy catches it, so operators need the count.
    const std::uint64_t evicted = hints_.evicted();
    if (c_hint_evictions_ != nullptr && evicted > hint_evictions_seen_) {
      c_hint_evictions_->add(evicted - hint_evictions_seen_);
      hint_evictions_seen_ = evicted;
    }
  }

  Status write_one(std::span<DvmNode* const> members, std::size_t origin,
                   std::string_view key, std::string_view value, bool deleted) {
    DvmNode* origin_node = members[origin];
    bind_metrics(*origin_node);
    counter_ = std::max(counter_, origin_node->state().clock());
    Version v{++counter_, writer_id(origin_node->name())};
    VersionedEntry entry{std::string(key), std::string(value), v, deleted};
    std::size_t applied = 0;
    for (const std::string& owner : map_.owners(map_.shard_of(key))) {
      DvmNode* target = find_member(members, owner);
      if (target == nullptr) continue;
      if (target == origin_node) {
        (void)origin_node->state().apply(entry);
        ++applied;
        continue;
      }
      if (origin_node->remote_vset(*target, entry).ok()) {
        ++applied;
      } else {
        c_write_misses_->add();
        park(origin_node->name(), owner, entry);
      }
    }
    c_writes_->add();
    if (applied == 0) {
      // Every owner unreachable: the write definitively did not land, the
      // caller must treat the key as dirty.
      return err::unavailable("sharded write of '" + std::string(key) +
                              "': no shard owner reachable");
    }
    // Partial landings are acknowledged — the parked hints restore
    // R-replication at the next replay tick, anti-entropy backstops.
    return Status::success();
  }

  /// Rebuild placement for a changed membership and push the shards whose
  /// owner set changed from a surviving old owner to each new owner,
  /// within the rebalance budget (one refill per membership event).
  /// Entries past the budget — and entries whose transfer failed — are
  /// parked as hints at the donor, so replay ticks finish the move
  /// instead of one unbounded burst; anti-entropy backstops the rest.
  void handoff(std::span<DvmNode* const> members) {
    const bool had_map = !map_.members().empty();
    std::vector<std::vector<std::string>> old_owners;
    old_owners.reserve(map_.shard_count());
    for (std::size_t s = 0; s < map_.shard_count(); ++s) {
      auto owners = map_.owners(s);
      old_owners.emplace_back(owners.begin(), owners.end());
    }
    ensure(members);
    if (!had_map) return;
    budget_.refill();
    for (std::size_t s = 0; s < map_.shard_count(); ++s) {
      auto new_owners = map_.owners(s);
      if (std::equal(new_owners.begin(), new_owners.end(), old_owners[s].begin(),
                     old_owners[s].end())) {
        continue;
      }
      DvmNode* donor = nullptr;
      for (const std::string& owner : old_owners[s]) {
        if (DvmNode* node = find_member(members, owner)) {
          donor = node;
          break;
        }
      }
      if (donor == nullptr) continue;  // every old owner gone; AE must rebuild
      // The donor may itself be missing exactly the writes that are
      // hint-covered (its own hint is still parked somewhere), so a
      // snapshot seed can hand a new owner stale data with no record.
      // Re-target every pending hint whose key lives in this shard at
      // each added owner: replay then delivers the authoritative copy
      // regardless of how stale the donor was.
      std::vector<std::string> added;
      for (const std::string& owner : new_owners) {
        if (std::find(old_owners[s].begin(), old_owners[s].end(), owner) ==
                old_owners[s].end() &&
            find_member(members, owner) != nullptr) {
          added.push_back(owner);
        }
      }
      if (!added.empty()) {
        for (const std::string& coordinator : hints_.coordinators()) {
          auto& queue = hints_.hints_for(coordinator);
          const std::size_t existing = queue.size();  // park() may append here
          for (std::size_t i = 0; i < existing && i < queue.size(); ++i) {
            const Hint hint = queue[i];  // copy: park() can evict from the deque
            if (map_.shard_of(hint.entry.key) != s) continue;
            for (const std::string& owner : added) {
              if (owner != hint.target) park(coordinator, owner, hint.entry);
            }
          }
        }
      }
      auto entries = donor->state().shard_snapshot(s, map_.shard_count());
      if (entries.empty()) continue;
      for (const std::string& owner : new_owners) {
        if (std::find(old_owners[s].begin(), old_owners[s].end(), owner) !=
            old_owners[s].end()) {
          continue;  // already held the shard
        }
        DvmNode* target = find_member(members, owner);
        if (target == nullptr || target == donor) continue;
        std::vector<VersionedEntry> send;
        std::size_t send_bytes = 0;
        std::size_t deferred = 0;
        for (const VersionedEntry& entry : entries) {
          if (budget_.try_consume(entry_wire_size(entry))) {
            send.push_back(entry);
            send_bytes += entry_wire_size(entry);
          } else {
            park(donor->name(), owner, entry);
            ++deferred;
          }
        }
        if (deferred > 0 && c_handoff_deferred_ != nullptr) {
          c_handoff_deferred_->add(deferred);
        }
        if (send.empty()) continue;
        if (donor->remote_vset_batch(*target, send).ok()) {
          if (c_handoff_ != nullptr) c_handoff_->add(send.size());
          if (c_handoff_bytes_ != nullptr) c_handoff_bytes_->add(send_bytes);
        } else {
          // The burst never landed: park it so replay retries leg by leg.
          for (const VersionedEntry& entry : send) park(donor->name(), owner, entry);
        }
      }
    }
  }

  ShardMap map_;
  std::optional<std::size_t> skip_shard_;  ///< TEST ONLY: AE skips this shard
  bool drop_hints_;                        ///< TEST ONLY: park() discards hints
  std::uint64_t counter_ = 0;  ///< global LWW timestamp source (see header comment)
  HintStore hints_;
  TokenBucket budget_;  ///< shared handoff + replay budget (one refill per tick)
  net::SimNetwork* metrics_net_ = nullptr;
  obs::Counter* c_writes_ = nullptr;
  obs::Counter* c_write_misses_ = nullptr;
  obs::Counter* c_ae_rounds_ = nullptr;
  obs::Counter* c_ae_divergent_ = nullptr;
  obs::Counter* c_ae_repaired_ = nullptr;
  obs::Counter* c_ae_bytes_ = nullptr;
  obs::Counter* c_handoff_ = nullptr;
  obs::Counter* c_handoff_bytes_ = nullptr;
  obs::Counter* c_handoff_deferred_ = nullptr;
  obs::Counter* c_hints_parked_ = nullptr;
  obs::Counter* c_hints_replayed_ = nullptr;
  obs::Counter* c_hints_requeued_ = nullptr;
  obs::Counter* c_hint_evictions_ = nullptr;
  obs::Counter* c_read_repairs_ = nullptr;
  std::uint64_t hint_evictions_seen_ = 0;  ///< HintStore::evicted() already counted
};

}  // namespace

std::unique_ptr<CoherencyProtocol> make_sharded(ShardConfig config) {
  return std::make_unique<ShardedCoherency>(config);
}

std::unique_ptr<CoherencyProtocol> make_sharded_buggy_for_test(
    ShardConfig config, std::size_t skip_shard, bool drop_hints) {
  return std::make_unique<ShardedCoherency>(config, skip_shard, drop_hints);
}

std::unique_ptr<CoherencyProtocol> make_sharded_hint_drop_for_test(ShardConfig config) {
  return std::make_unique<ShardedCoherency>(config, std::nullopt,
                                            /*drop_hints=*/true);
}

}  // namespace h2::dvm
