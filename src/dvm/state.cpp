#include "dvm/state.hpp"

namespace h2::dvm {

DvmNode::DvmNode(container::Container& container)
    : container_(container),
      state_(std::make_shared<StateStore>()),
      service_(std::make_shared<net::DispatcherMux>()) {
  auto state = state_;
  service_->add("set", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 2) return err::invalid_argument("set(key, value)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    auto value = params[1].as_string();
    if (!value.ok()) return value.error();
    state->set(std::move(*key), std::move(*value));
    return Value::of_void();
  });
  service_->add("get", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("get(key)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    auto value = state->get(*key);
    if (!value.has_value()) return err::not_found("state: no key '" + *key + "'");
    return Value::of_string(std::move(*value), "return");
  });
  service_->add("ping", [](std::span<const Value>) -> Result<Value> {
    return Value::of_bool(true, "return");
  });
  service_->add("del", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("del(key)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    return Value::of_bool(state->erase(*key), "return");
  });
}

Status DvmNode::start() {
  if (server_.has_value()) return Status::success();
  auto handle = net::serve_xdr(network(), host(), kStatePort, service_);
  if (!handle.ok()) return handle.error().context("dvm node " + name());
  server_.emplace(std::move(*handle));
  return Status::success();
}

void DvmNode::stop() { server_.reset(); }

Result<Value> DvmNode::invoke_on(DvmNode& target, std::string_view operation,
                                 std::span<const Value> params) {
  net::Endpoint endpoint{.scheme = "xdr",
                         .host = target.name(),
                         .port = kStatePort,
                         .path = ""};
  auto channel = net::make_xdr_channel(network(), host(), endpoint);
  return channel->invoke(operation, params);
}

Status DvmNode::remote_set(DvmNode& target, std::string_view key,
                           std::string_view value) {
  std::vector<Value> params{Value::of_string(std::string(key), "key"),
                            Value::of_string(std::string(value), "value")};
  auto result = invoke_on(target, "set", params);
  if (!result.ok()) return result.error();
  return Status::success();
}

Status DvmNode::remote_set_batch(DvmNode& target, std::span<const KV> writes) {
  if (writes.empty()) return Status::success();
  std::vector<net::BatchItem> calls;
  calls.reserve(writes.size());
  for (const KV& kv : writes) {
    net::BatchItem item;
    item.operation = "set";
    item.params.push_back(Value::of_string(std::string(kv.key), "key"));
    item.params.push_back(Value::of_string(std::string(kv.value), "value"));
    calls.push_back(std::move(item));
  }
  net::Endpoint endpoint{.scheme = "xdr",
                         .host = target.name(),
                         .port = kStatePort,
                         .path = ""};
  auto channel = net::make_xdr_channel(network(), host(), endpoint);
  std::vector<Result<Value>> results;
  if (auto status = channel->invoke_batch(calls, results); !status.ok()) {
    return status.error().context("batched set to " + target.name());
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      return results[i].error().context("batched set of '" +
                                        std::string(writes[i].key) + "'");
    }
  }
  return Status::success();
}

Result<std::string> DvmNode::remote_get(DvmNode& target, std::string_view key) {
  std::vector<Value> params{Value::of_string(std::string(key), "key")};
  auto result = invoke_on(target, "get", params);
  if (!result.ok()) return result.error();
  return result->as_string();
}

Status DvmNode::remote_ping(DvmNode& target) {
  auto result = invoke_on(target, "ping", {});
  if (!result.ok()) return result.error();
  return Status::success();
}

Status DvmNode::remote_del(DvmNode& target, std::string_view key) {
  std::vector<Value> params{Value::of_string(std::string(key), "key")};
  auto result = invoke_on(target, "del", params);
  if (!result.ok()) return result.error();
  return Status::success();
}

}  // namespace h2::dvm
