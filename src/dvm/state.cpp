#include "dvm/state.hpp"

#include <algorithm>
#include <charconv>

#include "dvm/merkle.hpp"

namespace h2::dvm {

// ---- StateStore: versioned LWW entries ----------------------------------------

bool StateStore::apply(const VersionedEntry& entry) {
  clock_ = std::max(clock_, entry.version.ts);
  auto it = versions_.find(entry.key);
  if (it != versions_.end() && !(it->second.version < entry.version)) {
    return false;  // we already hold this version or something newer
  }
  if (it != versions_.end()) {
    it->second = Meta{entry.version, entry.deleted};
  } else {
    versions_.emplace(entry.key, Meta{entry.version, entry.deleted});
  }
  if (entry.deleted) {
    map_.erase(entry.key);
  } else {
    map_[entry.key] = entry.value;
  }
  return true;
}

Version StateStore::assign_and_apply(std::string_view key, std::string_view value,
                                     std::uint64_t writer, bool deleted) {
  Version version{++clock_, writer};
  VersionedEntry entry{std::string(key), std::string(value), version, deleted};
  (void)apply(entry);  // always wins: ts is greater than anything seen
  return version;
}

std::optional<Version> StateStore::version_of(std::string_view key) const {
  auto it = versions_.find(key);
  if (it == versions_.end()) return std::nullopt;
  return it->second.version;
}

std::optional<VersionedEntry> StateStore::ventry(std::string_view key) const {
  auto it = versions_.find(key);
  if (it == versions_.end()) return std::nullopt;
  VersionedEntry entry;
  entry.key = std::string(key);
  entry.version = it->second.version;
  entry.deleted = it->second.deleted;
  if (!entry.deleted) {
    if (auto value = map_.find(key); value != map_.end()) entry.value = value->second;
  }
  return entry;
}

std::vector<VersionedEntry> StateStore::shard_snapshot(std::size_t shard,
                                                       std::size_t shard_count) const {
  std::vector<VersionedEntry> out;
  for (const auto& [key, meta] : versions_) {
    if (shard_of_key(key, shard_count) != shard) continue;
    VersionedEntry entry;
    entry.key = key;
    entry.version = meta.version;
    entry.deleted = meta.deleted;
    if (!meta.deleted) {
      if (auto it = map_.find(key); it != map_.end()) entry.value = it->second;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::uint64_t StateStore::shard_digest(std::size_t shard,
                                       std::size_t shard_count) const {
  // Chained mix over the key-sorted snapshot: any difference in keys,
  // values, versions or tombstone flags changes the digest.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& [key, meta] : versions_) {
    if (shard_of_key(key, shard_count) != shard) continue;
    h = mix64(h ^ hash64(key));
    h = mix64(h ^ meta.version.ts);
    h = mix64(h ^ meta.version.writer);
    h = mix64(h ^ (meta.deleted ? 1u : 0u));
    if (!meta.deleted) {
      if (auto it = map_.find(key); it != map_.end()) h = mix64(h ^ hash64(it->second));
    }
  }
  return h;
}

std::size_t StateStore::shard_entry_count(std::size_t shard,
                                          std::size_t shard_count) const {
  std::size_t count = 0;
  for (const auto& [key, meta] : versions_) {
    if (shard_of_key(key, shard_count) == shard) ++count;
  }
  return count;
}

// ---- wire codec for shard transfers --------------------------------------------

std::string encode_entries(std::span<const VersionedEntry> entries) {
  std::string out = "H2SH " + std::to_string(entries.size()) + "\n";
  for (const VersionedEntry& e : entries) {
    out += std::to_string(e.version.ts) + " " + std::to_string(e.version.writer) +
           " " + (e.deleted ? "1" : "0") + " " + std::to_string(e.key.size()) + " " +
           std::to_string(e.value.size()) + "\n";
    out += e.key;
    out += e.value;
  }
  return out;
}

namespace {

Result<std::uint64_t> take_number(std::string_view& rest, char terminator) {
  std::size_t end = rest.find(terminator);
  if (end == std::string_view::npos) return err::invalid_argument("shard blob: truncated");
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + end, value);
  if (ec != std::errc() || ptr != rest.data() + end) {
    return err::invalid_argument("shard blob: bad number");
  }
  rest.remove_prefix(end + 1);
  return value;
}

}  // namespace

Result<std::vector<VersionedEntry>> decode_entries(std::string_view blob) {
  if (!blob.starts_with("H2SH ")) {
    return err::invalid_argument("shard blob: bad magic");
  }
  blob.remove_prefix(5);
  auto count = take_number(blob, '\n');
  if (!count.ok()) return count.error();
  std::vector<VersionedEntry> out;
  out.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto ts = take_number(blob, ' ');
    if (!ts.ok()) return ts.error();
    auto writer = take_number(blob, ' ');
    if (!writer.ok()) return writer.error();
    auto deleted = take_number(blob, ' ');
    if (!deleted.ok()) return deleted.error();
    auto key_len = take_number(blob, ' ');
    if (!key_len.ok()) return key_len.error();
    auto value_len = take_number(blob, '\n');
    if (!value_len.ok()) return value_len.error();
    if (blob.size() < *key_len + *value_len) {
      return err::invalid_argument("shard blob: truncated entry payload");
    }
    VersionedEntry entry;
    entry.version = Version{*ts, *writer};
    entry.deleted = *deleted != 0;
    entry.key = std::string(blob.substr(0, *key_len));
    entry.value = std::string(blob.substr(*key_len, *value_len));
    blob.remove_prefix(*key_len + *value_len);
    out.push_back(std::move(entry));
  }
  return out;
}

// ---- state service dispatcher ---------------------------------------------------

std::shared_ptr<net::DispatcherMux> make_state_service(
    std::shared_ptr<StateStore> store, std::uint64_t self_writer) {
  auto service = std::make_shared<net::DispatcherMux>();
  auto state = std::move(store);
  service->add("set", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 2) return err::invalid_argument("set(key, value)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    auto value = params[1].as_string();
    if (!value.ok()) return value.error();
    state->set(std::move(*key), std::move(*value));
    return Value::of_void();
  });
  service->add("get", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("get(key)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    auto value = state->get(*key);
    if (!value.has_value()) return err::not_found("state: no key '" + *key + "'");
    return Value::of_string(std::move(*value), "return");
  });
  service->add("ping", [](std::span<const Value>) -> Result<Value> {
    return Value::of_bool(true, "return");
  });
  service->add("del", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("del(key)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    return Value::of_bool(state->erase(*key), "return");
  });
  // Sharded-mode surface: LWW deltas and the anti-entropy primitives.
  service->add("vset", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 5) return err::invalid_argument("vset(key, value, ts, writer, deleted)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    auto value = params[1].as_string();
    if (!value.ok()) return value.error();
    auto ts = params[2].as_int();
    if (!ts.ok()) return ts.error();
    auto writer = params[3].as_int();
    if (!writer.ok()) return writer.error();
    auto deleted = params[4].as_bool();
    if (!deleted.ok()) return deleted.error();
    VersionedEntry entry{std::move(*key), std::move(*value),
                         Version{static_cast<std::uint64_t>(*ts),
                                 static_cast<std::uint64_t>(*writer)},
                         *deleted};
    return Value::of_bool(state->apply(entry), "applied");
  });
  service->add("vget", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("vget(key)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    auto entry = state->ventry(*key);
    if (!entry.has_value()) {
      return err::not_found("state: no versioned key '" + *key + "'");
    }
    // Single-entry shard blob: reuses the pull codec (version + tombstone
    // metadata travel with the value).
    return Value::of_string(encode_entries({&*entry, 1}), "entry");
  });
  service->add("wset", [state, self_writer](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 2) return err::invalid_argument("wset(key, value)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    auto value = params[1].as_string();
    if (!value.ok()) return value.error();
    // The serving replica coordinates: it assigns the version (so writes
    // through it are totally ordered by its clock) and the caller
    // replicates the returned version to the other owners.
    Version v = state->assign_and_apply(*key, *value, self_writer);
    return Value::of_string(std::to_string(v.ts) + " " + std::to_string(v.writer),
                            "version");
  });
  service->add("digest", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 2) return err::invalid_argument("digest(shard, shards)");
    auto shard = params[0].as_int();
    if (!shard.ok()) return shard.error();
    auto shards = params[1].as_int();
    if (!shards.ok()) return shards.error();
    std::uint64_t digest = state->shard_digest(static_cast<std::size_t>(*shard),
                                               static_cast<std::size_t>(*shards));
    return Value::of_int(static_cast<std::int64_t>(digest), "digest");
  });
  service->add("pull", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 2) return err::invalid_argument("pull(shard, shards)");
    auto shard = params[0].as_int();
    if (!shard.ok()) return shard.error();
    auto shards = params[1].as_int();
    if (!shards.ok()) return shards.error();
    auto snapshot = state->shard_snapshot(static_cast<std::size_t>(*shard),
                                          static_cast<std::size_t>(*shards));
    return Value::of_string(encode_entries(snapshot), "entries");
  });
  // Merkle anti-entropy surface: node digests for the top-down descent and
  // per-bucket pulls so a diverged shard transfers only diverged buckets.
  service->add("mnode", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 5) {
      return err::invalid_argument("mnode(shard, shards, buckets, level, index)");
    }
    std::int64_t args[5];
    for (std::size_t i = 0; i < 5; ++i) {
      auto value = params[i].as_int();
      if (!value.ok()) return value.error();
      args[i] = *value;
    }
    std::size_t buckets = merkle_bucket_count(static_cast<std::size_t>(args[2]));
    MerkleTree tree = build_merkle_tree(*state, static_cast<std::size_t>(args[0]),
                                        static_cast<std::size_t>(args[1]), buckets);
    auto level = static_cast<std::size_t>(args[3]);
    auto index = static_cast<std::size_t>(args[4]);
    if (level > tree.depth() || index >= (std::size_t{1} << level)) {
      return err::invalid_argument("mnode: node out of range");
    }
    return Value::of_int(static_cast<std::int64_t>(tree.node(level, index)),
                         "digest");
  });
  // Packed variant for the descent's hot path: one call per tree level,
  // indexes as an 8-byte big-endian blob, digests back the same way. The
  // per-node named-param framing of "mnode" would otherwise dominate the
  // exchange's bytes and defeat the O(diff) bandwidth claim.
  service->add("mnodes", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 5) {
      return err::invalid_argument("mnodes(shard, shards, buckets, level, indexes)");
    }
    std::int64_t args[4];
    for (std::size_t i = 0; i < 4; ++i) {
      auto value = params[i].as_int();
      if (!value.ok()) return value.error();
      args[i] = *value;
    }
    auto blob = params[4].as_string();
    if (!blob.ok()) return blob.error();
    if (blob->size() % 8 != 0) {
      return err::invalid_argument("mnodes: index blob not a multiple of 8");
    }
    std::size_t buckets = merkle_bucket_count(static_cast<std::size_t>(args[2]));
    MerkleTree tree = build_merkle_tree(*state, static_cast<std::size_t>(args[0]),
                                        static_cast<std::size_t>(args[1]), buckets);
    auto level = static_cast<std::size_t>(args[3]);
    if (level > tree.depth()) return err::invalid_argument("mnodes: level out of range");
    std::string digests;
    digests.reserve(blob->size());
    for (std::size_t off = 0; off < blob->size(); off += 8) {
      std::uint64_t index = 0;
      for (std::size_t b = 0; b < 8; ++b) {
        index = (index << 8) | static_cast<std::uint8_t>((*blob)[off + b]);
      }
      if (index >= (std::size_t{1} << level)) {
        return err::invalid_argument("mnodes: node out of range");
      }
      std::uint64_t digest = tree.node(level, static_cast<std::size_t>(index));
      for (std::size_t b = 8; b-- > 0;) {
        digests.push_back(static_cast<char>((digest >> (8 * b)) & 0xFF));
      }
    }
    return Value::of_string(std::move(digests), "digests");
  });
  service->add("mpull", [state](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 4) {
      return err::invalid_argument("mpull(shard, shards, buckets, bucket)");
    }
    std::int64_t args[4];
    for (std::size_t i = 0; i < 4; ++i) {
      auto value = params[i].as_int();
      if (!value.ok()) return value.error();
      args[i] = *value;
    }
    std::size_t buckets = merkle_bucket_count(static_cast<std::size_t>(args[2]));
    auto bucket = static_cast<std::size_t>(args[3]);
    if (bucket >= buckets) return err::invalid_argument("mpull: bucket out of range");
    auto snapshot = state->shard_snapshot(static_cast<std::size_t>(args[0]),
                                          static_cast<std::size_t>(args[1]));
    std::vector<VersionedEntry> out;
    for (VersionedEntry& entry : snapshot) {
      if (bucket_of_key(entry.key, buckets) == bucket) out.push_back(std::move(entry));
    }
    return Value::of_string(encode_entries(out), "entries");
  });
  return service;
}

// ---- pairwise anti-entropy exchange --------------------------------------------

namespace {

std::vector<Value> shard_params(std::size_t shard, std::size_t shard_count) {
  return {Value::of_int(static_cast<std::int64_t>(shard), "shard"),
          Value::of_int(static_cast<std::int64_t>(shard_count), "shards")};
}

}  // namespace

net::BatchItem vset_item(const VersionedEntry& entry) {
  net::BatchItem item;
  item.operation = "vset";
  item.params.push_back(Value::of_string(entry.key, "key"));
  item.params.push_back(Value::of_string(entry.value, "value"));
  item.params.push_back(
      Value::of_int(static_cast<std::int64_t>(entry.version.ts), "ts"));
  item.params.push_back(
      Value::of_int(static_cast<std::int64_t>(entry.version.writer), "writer"));
  item.params.push_back(Value::of_bool(entry.deleted, "deleted"));
  return item;
}

Result<ShardSyncStats> sync_shard_with_peer(net::Channel& peer, StateStore& local,
                                            std::size_t shard,
                                            std::size_t shard_count) {
  ShardSyncStats stats;
  const std::vector<Value> params = shard_params(shard, shard_count);
  auto remote_digest = peer.invoke("digest", params);
  if (!remote_digest.ok()) {
    return remote_digest.error().context("anti-entropy digest, shard " +
                                         std::to_string(shard));
  }
  auto digest_value = remote_digest->as_int();
  if (!digest_value.ok()) return digest_value.error();
  if (static_cast<std::uint64_t>(*digest_value) ==
      local.shard_digest(shard, shard_count)) {
    return stats;  // replicas already byte-equal
  }
  stats.differed = true;

  // Pull the peer's shard and LWW-merge it; newer local entries survive.
  auto blob = peer.invoke("pull", params);
  if (!blob.ok()) {
    return blob.error().context("anti-entropy pull, shard " + std::to_string(shard));
  }
  auto blob_str = blob->as_string();
  if (!blob_str.ok()) return blob_str.error();
  auto entries = decode_entries(*blob_str);
  if (!entries.ok()) return entries.error();
  stats.pulled = entries->size();
  for (const VersionedEntry& entry : *entries) {
    if (local.apply(entry)) ++stats.merged;
  }

  // Push the merged shard back in batched frames; the peer's LWW merge
  // drops anything it already holds.
  auto snapshot = local.shard_snapshot(shard, shard_count);
  if (!snapshot.empty()) {
    if (auto status = push_entries_batched(
            peer, snapshot, "anti-entropy push, shard " + std::to_string(shard));
        !status.ok()) {
      return status.error();
    }
    stats.pushed = snapshot.size();
  }
  return stats;
}

Status push_entries_batched(net::Channel& peer,
                            std::span<const VersionedEntry> entries,
                            std::string_view context) {
  for (std::size_t offset = 0; offset < entries.size();
       offset += net::kMaxBatchCalls) {
    const std::size_t count =
        std::min<std::size_t>(net::kMaxBatchCalls, entries.size() - offset);
    std::vector<net::BatchItem> calls;
    calls.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      calls.push_back(vset_item(entries[offset + i]));
    }
    std::vector<Result<Value>> results;
    if (auto status = peer.invoke_batch(calls, results); !status.ok()) {
      return status.error().context(std::string(context));
    }
    for (const auto& result : results) {
      if (!result.ok()) return result.error().context(std::string(context));
    }
  }
  return Status::success();
}

// ---- DvmNode -------------------------------------------------------------------

DvmNode::DvmNode(container::Container& container)
    : container_(container),
      state_(std::make_shared<StateStore>()),
      service_(make_state_service(state_, writer_id(container.name()))) {}

Status DvmNode::start() {
  if (server_.has_value()) return Status::success();
  auto handle = net::serve_xdr(network(), host(), kStatePort, service_);
  if (!handle.ok()) return handle.error().context("dvm node " + name());
  server_.emplace(std::move(*handle));
  return Status::success();
}

void DvmNode::stop() { server_.reset(); }

Result<Value> DvmNode::invoke_on(DvmNode& target, std::string_view operation,
                                 std::span<const Value> params) {
  net::Endpoint endpoint{.scheme = "xdr",
                         .host = target.name(),
                         .port = kStatePort,
                         .path = ""};
  auto channel = net::make_xdr_channel(network(), host(), endpoint);
  return channel->invoke(operation, params);
}

std::unique_ptr<net::Channel> DvmNode::open_state_channel(DvmNode& target) {
  net::Endpoint endpoint{.scheme = "xdr",
                         .host = target.name(),
                         .port = kStatePort,
                         .path = ""};
  return net::make_xdr_channel(network(), host(), endpoint);
}

Status DvmNode::remote_set(DvmNode& target, std::string_view key,
                           std::string_view value) {
  std::vector<Value> params{Value::of_string(std::string(key), "key"),
                            Value::of_string(std::string(value), "value")};
  auto result = invoke_on(target, "set", params);
  if (!result.ok()) return result.error();
  return Status::success();
}

Status DvmNode::remote_set_batch(DvmNode& target, std::span<const KV> writes) {
  if (writes.empty()) return Status::success();
  std::vector<net::BatchItem> calls;
  calls.reserve(writes.size());
  for (const KV& kv : writes) {
    net::BatchItem item;
    item.operation = "set";
    item.params.push_back(Value::of_string(std::string(kv.key), "key"));
    item.params.push_back(Value::of_string(std::string(kv.value), "value"));
    calls.push_back(std::move(item));
  }
  net::Endpoint endpoint{.scheme = "xdr",
                         .host = target.name(),
                         .port = kStatePort,
                         .path = ""};
  auto channel = net::make_xdr_channel(network(), host(), endpoint);
  std::vector<Result<Value>> results;
  if (auto status = channel->invoke_batch(calls, results); !status.ok()) {
    return status.error().context("batched set to " + target.name());
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      return results[i].error().context("batched set of '" +
                                        std::string(writes[i].key) + "'");
    }
  }
  return Status::success();
}

Result<std::string> DvmNode::remote_get(DvmNode& target, std::string_view key) {
  std::vector<Value> params{Value::of_string(std::string(key), "key")};
  auto result = invoke_on(target, "get", params);
  if (!result.ok()) return result.error();
  return result->as_string();
}

Status DvmNode::remote_ping(DvmNode& target) {
  auto result = invoke_on(target, "ping", {});
  if (!result.ok()) return result.error();
  return Status::success();
}

Status DvmNode::remote_del(DvmNode& target, std::string_view key) {
  std::vector<Value> params{Value::of_string(std::string(key), "key")};
  auto result = invoke_on(target, "del", params);
  if (!result.ok()) return result.error();
  return Status::success();
}

Result<bool> DvmNode::remote_vset(DvmNode& target, const VersionedEntry& entry) {
  net::BatchItem item = vset_item(entry);
  auto result = invoke_on(target, "vset", item.params);
  if (!result.ok()) return result.error();
  return result->as_bool();
}

Result<VersionedEntry> DvmNode::remote_vget(DvmNode& target, std::string_view key) {
  std::vector<Value> params{Value::of_string(std::string(key), "key")};
  auto result = invoke_on(target, "vget", params);
  if (!result.ok()) return result.error();
  auto blob = result->as_string();
  if (!blob.ok()) return blob.error();
  auto entries = decode_entries(*blob);
  if (!entries.ok()) return entries.error();
  if (entries->size() != 1) {
    return err::parse("vget: expected one entry, got " +
                      std::to_string(entries->size()));
  }
  return std::move(entries->front());
}

Status DvmNode::remote_vset_batch(DvmNode& target,
                                  std::span<const VersionedEntry> entries) {
  if (entries.empty()) return Status::success();
  std::vector<net::BatchItem> calls;
  calls.reserve(entries.size());
  for (const VersionedEntry& entry : entries) calls.push_back(vset_item(entry));
  auto channel = open_state_channel(target);
  std::vector<Result<Value>> results;
  if (auto status = channel->invoke_batch(calls, results); !status.ok()) {
    return status.error().context("batched vset to " + target.name());
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      return results[i].error().context("batched vset of '" + entries[i].key + "'");
    }
  }
  return Status::success();
}

}  // namespace h2::dvm
