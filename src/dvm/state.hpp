// Per-node DVM state: a string key/value store plus the network service
// that exposes it to peer nodes (set/get/del over the XDR binding). The
// coherency protocols in coherency.hpp are built from exactly these two
// primitives — local access and remote access — combined in different
// proportions.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "transport/rpc.hpp"

namespace h2::dvm {

/// Well-known port of the DVM state service.
inline constexpr std::uint16_t kStatePort = 7400;

/// One key/value write. Batched replication (CoherencyProtocol::
/// update_batch, DvmNode::remote_set_batch) moves spans of these; the
/// views borrow the caller's storage for the duration of the call.
struct KV {
  std::string_view key;
  std::string_view value;
};

/// The local (per-node) slice of global DVM state.
class StateStore {
 public:
  void set(std::string key, std::string value) { map_[std::move(key)] = std::move(value); }
  std::optional<std::string> get(std::string_view key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  bool erase(std::string_view key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    map_.erase(it);
    return true;
  }
  std::size_t size() const { return map_.size(); }
  std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(map_.size());
    for (const auto& [k, v] : map_) out.push_back(k);
    return out;
  }

 private:
  std::map<std::string, std::string, std::less<>> map_;
};

/// One enrolled DVM member: a borrowed container plus this node's state
/// store and its state service endpoint.
class DvmNode {
 public:
  /// Borrows `container`; it must outlive the node.
  explicit DvmNode(container::Container& container);

  /// Binds the state service at (host, kStatePort).
  Status start();
  void stop();

  container::Container& container() { return container_; }
  const std::string& name() const { return container_.name(); }
  net::HostId host() const { return container_.host(); }
  net::SimNetwork& network() { return container_.network(); }
  StateStore& state() { return *state_; }
  const StateStore& state() const { return *state_; }

  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  // ---- remote state access (used by the coherency protocols) -----------------

  /// set on a peer node's store, issued from this node.
  Status remote_set(DvmNode& target, std::string_view key, std::string_view value);
  /// All of `writes` applied on a peer in ONE wire message (an XDR batch
  /// frame of "set" sub-calls) — the transport leg of write coalescing.
  Status remote_set_batch(DvmNode& target, std::span<const KV> writes);
  /// get from a peer node's store, issued from this node.
  Result<std::string> remote_get(DvmNode& target, std::string_view key);
  /// del on a peer node's store, issued from this node.
  Status remote_del(DvmNode& target, std::string_view key);
  /// Liveness probe of a peer's state service (the heartbeat primitive).
  Status remote_ping(DvmNode& target);

 private:
  Result<Value> invoke_on(DvmNode& target, std::string_view operation,
                          std::span<const Value> params);

  container::Container& container_;
  std::shared_ptr<StateStore> state_;
  std::shared_ptr<net::DispatcherMux> service_;
  std::optional<net::ServerHandle> server_;
  bool alive_ = true;
};

}  // namespace h2::dvm
