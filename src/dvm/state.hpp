// Per-node DVM state: a string key/value store plus the network service
// that exposes it to peer nodes (set/get/del over the XDR binding). The
// coherency protocols in coherency.hpp are built from exactly these two
// primitives — local access and remote access — combined in different
// proportions. The sharded mode adds versioned last-write-wins entries
// (logical timestamp + writer id, tombstones for deletes) and per-shard
// digest/pull operations, the wire surface of anti-entropy repair.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "dvm/ring.hpp"
#include "transport/rpc.hpp"

namespace h2::dvm {

/// Well-known port of the DVM state service.
inline constexpr std::uint16_t kStatePort = 7400;

/// One key/value write. Batched replication (CoherencyProtocol::
/// update_batch, DvmNode::remote_set_batch) moves spans of these; the
/// views borrow the caller's storage for the duration of the call.
struct KV {
  std::string_view key;
  std::string_view value;
};

/// Last-write-wins version: logical timestamp ordered first, writer id as
/// the deterministic tiebreak (the paper-adjacent replica-catalog rule).
struct Version {
  std::uint64_t ts = 0;
  std::uint64_t writer = 0;

  friend constexpr bool operator==(const Version&, const Version&) = default;
  friend constexpr bool operator<(const Version& a, const Version& b) {
    return a.ts != b.ts ? a.ts < b.ts : a.writer < b.writer;
  }
};

/// One versioned entry as it crosses the wire (vset, pull) and as the
/// convergence invariant compares replicas. `deleted` entries are
/// tombstones: the version survives so a late stale write loses.
struct VersionedEntry {
  std::string key;
  std::string value;  ///< empty for tombstones
  Version version;
  bool deleted = false;

  friend bool operator==(const VersionedEntry&, const VersionedEntry&) = default;
};

/// Stable id a member stamps into versions it originates.
inline std::uint64_t writer_id(std::string_view member_name) {
  return hash64(member_name);
}

/// The local (per-node) slice of global DVM state.
class StateStore {
 public:
  void set(std::string key, std::string value) { map_[std::move(key)] = std::move(value); }
  std::optional<std::string> get(std::string_view key) const {
    auto it = map_.find(key);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }
  bool erase(std::string_view key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    map_.erase(it);
    return true;
  }
  std::size_t size() const { return map_.size(); }
  std::vector<std::string> keys() const {
    std::vector<std::string> out;
    out.reserve(map_.size());
    for (const auto& [k, v] : map_) out.push_back(k);
    return out;
  }

  // ---- versioned (sharded-mode) access ---------------------------------------

  /// LWW merge: applies iff `entry.version` is newer than what this store
  /// holds for the key (absent counts as oldest). Always advances the
  /// logical clock to at least entry.version.ts. Returns whether applied.
  bool apply(const VersionedEntry& entry);

  /// Locally originated write/delete: stamps the next logical timestamp
  /// (greater than every version this store has seen) and applies.
  Version assign_and_apply(std::string_view key, std::string_view value,
                           std::uint64_t writer, bool deleted = false);

  std::optional<Version> version_of(std::string_view key) const;
  /// Full versioned record of one key (tombstones included), or nullopt
  /// when the key was never versioned here — the unit `vget` serves and
  /// the read-repair path applies.
  std::optional<VersionedEntry> ventry(std::string_view key) const;
  std::uint64_t clock() const { return clock_; }

  /// Every versioned entry of one shard (tombstones included), key-sorted —
  /// the unit anti-entropy digests, pulls and compares.
  std::vector<VersionedEntry> shard_snapshot(std::size_t shard,
                                             std::size_t shard_count) const;
  /// Order-independent-free digest over the (key-sorted) shard snapshot:
  /// equal digests ⇔ byte-equal replicas, version metadata included.
  std::uint64_t shard_digest(std::size_t shard, std::size_t shard_count) const;

  /// How many versioned entries (tombstones included) one shard holds —
  /// what the adaptive Merkle sizing feeds on. O(versioned entries).
  std::size_t shard_entry_count(std::size_t shard, std::size_t shard_count) const;

 private:
  struct Meta {
    Version version;
    bool deleted = false;
  };
  std::map<std::string, std::string, std::less<>> map_;
  std::map<std::string, Meta, std::less<>> versions_;  ///< sharded-mode entries only
  std::uint64_t clock_ = 0;  ///< Lamport: max ts seen or assigned
};

/// Wire codec for shard pulls/pushes: a length-prefixed, binary-safe blob
/// of VersionedEntry records (one "pull" reply carries a whole shard).
std::string encode_entries(std::span<const VersionedEntry> entries);
Result<std::vector<VersionedEntry>> decode_entries(std::string_view blob);

/// One "vset" sub-call of a batched LWW push — shared by the anti-entropy
/// exchanges (flat and Merkle) and the hint-replay path.
net::BatchItem vset_item(const VersionedEntry& entry);

/// Pushes `entries` to the peer as batched "vset" frames, chunked so no
/// frame exceeds the wire's batch-call limit (a whole-shard push can be
/// tens of thousands of entries). Fails on the first frame or sub-call
/// error, with `context` prefixed.
Status push_entries_batched(net::Channel& peer,
                            std::span<const VersionedEntry> entries,
                            std::string_view context);

/// Builds the state service dispatcher over `store`: the classic
/// set/get/ping/del plus the sharded-mode surface — vset (LWW delta),
/// vget (versioned read), wset (server-assigned version, stamped with
/// `self_writer`), digest and pull. Factored out of DvmNode so tests can
/// serve the same service over
/// any Transport (the sim/tcp/uds-parametrized anti-entropy suite).
std::shared_ptr<net::DispatcherMux> make_state_service(
    std::shared_ptr<StateStore> store, std::uint64_t self_writer);

/// Stats of one pairwise shard synchronization (sync_shard_with_peer).
struct ShardSyncStats {
  bool differed = false;       ///< digests disagreed before the exchange
  std::size_t pulled = 0;      ///< entries fetched from the peer
  std::size_t merged = 0;      ///< pulled entries that won locally (LWW)
  std::size_t pushed = 0;      ///< entries sent back to the peer
};

/// One anti-entropy exchange against a peer's state service reachable over
/// `peer` (any binding, any transport): compare per-shard digests, pull
/// the peer's divergent shard and LWW-merge it into `local`, then push the
/// merged shard back. After a clean exchange both replicas hold identical
/// shard snapshots. Used by the sharded coherency protocol over the sim
/// network and by the transport-parametrized tests over real sockets.
Result<ShardSyncStats> sync_shard_with_peer(net::Channel& peer, StateStore& local,
                                            std::size_t shard,
                                            std::size_t shard_count);

/// One enrolled DVM member: a borrowed container plus this node's state
/// store and its state service endpoint.
class DvmNode {
 public:
  /// Borrows `container`; it must outlive the node.
  explicit DvmNode(container::Container& container);

  /// Binds the state service at (host, kStatePort).
  Status start();
  void stop();

  container::Container& container() { return container_; }
  const std::string& name() const { return container_.name(); }
  net::HostId host() const { return container_.host(); }
  net::SimNetwork& network() { return container_.network(); }
  StateStore& state() { return *state_; }
  const StateStore& state() const { return *state_; }

  bool alive() const { return alive_; }
  void set_alive(bool alive) { alive_ = alive; }

  // ---- remote state access (used by the coherency protocols) -----------------

  /// set on a peer node's store, issued from this node.
  Status remote_set(DvmNode& target, std::string_view key, std::string_view value);
  /// All of `writes` applied on a peer in ONE wire message (an XDR batch
  /// frame of "set" sub-calls) — the transport leg of write coalescing.
  Status remote_set_batch(DvmNode& target, std::span<const KV> writes);
  /// get from a peer node's store, issued from this node.
  Result<std::string> remote_get(DvmNode& target, std::string_view key);
  /// del on a peer node's store, issued from this node.
  Status remote_del(DvmNode& target, std::string_view key);
  /// Liveness probe of a peer's state service (the heartbeat primitive).
  Status remote_ping(DvmNode& target);

  /// Versioned LWW delta to a peer (sharded mode). Returns whether the
  /// peer applied it (false: the peer already held something newer).
  Result<bool> remote_vset(DvmNode& target, const VersionedEntry& entry);
  /// Versioned read from a peer (sharded mode): the full entry including
  /// version and tombstone flag — what the read-repair path compares.
  Result<VersionedEntry> remote_vget(DvmNode& target, std::string_view key);
  /// All of `entries` LWW-applied on a peer in ONE wire message.
  Status remote_vset_batch(DvmNode& target, std::span<const VersionedEntry> entries);
  /// Channel to a peer's state service, from this node's vantage — the
  /// handle sync_shard_with_peer and the shard-routing layer drive.
  std::unique_ptr<net::Channel> open_state_channel(DvmNode& target);

 private:
  Result<Value> invoke_on(DvmNode& target, std::string_view operation,
                          std::span<const Value> params);

  container::Container& container_;
  std::shared_ptr<StateStore> state_;
  std::shared_ptr<net::DispatcherMux> service_;
  std::optional<net::ServerHandle> server_;
  bool alive_ = true;
};

}  // namespace h2::dvm
