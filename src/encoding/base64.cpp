#include "encoding/base64.hpp"

#include <array>

namespace h2::enc {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_reverse_table() {
  std::array<std::int8_t, 256> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}

constexpr auto kReverse = make_reverse_table();

}  // namespace

void base64_encode_to(std::string& out, std::span<const std::uint8_t> input) {
  std::size_t old_size = out.size();
  out.resize(old_size + base64_encoded_size(input.size()));
  char* dst = out.data() + old_size;
  const std::uint8_t* src = input.data();
  std::size_t whole = input.size() / 3;
  for (std::size_t b = 0; b < whole; ++b) {
    std::uint32_t triple = (static_cast<std::uint32_t>(src[0]) << 16) |
                           (static_cast<std::uint32_t>(src[1]) << 8) | src[2];
    dst[0] = kAlphabet[(triple >> 18) & 0x3F];
    dst[1] = kAlphabet[(triple >> 12) & 0x3F];
    dst[2] = kAlphabet[(triple >> 6) & 0x3F];
    dst[3] = kAlphabet[triple & 0x3F];
    src += 3;
    dst += 4;
  }
  std::size_t rest = input.size() - whole * 3;
  if (rest == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(src[0]) << 16;
    dst[0] = kAlphabet[(v >> 18) & 0x3F];
    dst[1] = kAlphabet[(v >> 12) & 0x3F];
    dst[2] = '=';
    dst[3] = '=';
  } else if (rest == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(src[0]) << 16) |
                      (static_cast<std::uint32_t>(src[1]) << 8);
    dst[0] = kAlphabet[(v >> 18) & 0x3F];
    dst[1] = kAlphabet[(v >> 12) & 0x3F];
    dst[2] = kAlphabet[(v >> 6) & 0x3F];
    dst[3] = '=';
  }
}

std::string base64_encode(std::span<const std::uint8_t> input) {
  std::string out;
  base64_encode_to(out, input);
  return out;
}

Result<std::vector<std::uint8_t>> base64_decode(std::string_view input) {
  if (input.size() % 4 != 0) {
    return err::parse("base64: length " + std::to_string(input.size()) +
                      " is not a multiple of 4");
  }
  std::vector<std::uint8_t> out(input.size() / 4 * 3);
  std::uint8_t* dst = out.data();
  const char* src = input.data();
  // All groups before the final one can be decoded without padding logic;
  // a '=' there is caught by the table (it maps to -1).
  std::size_t bulk = input.size() >= 4 ? input.size() - 4 : 0;
  std::size_t i = 0;
  for (; i < bulk; i += 4) {
    std::int8_t v0 = kReverse[static_cast<unsigned char>(src[i])];
    std::int8_t v1 = kReverse[static_cast<unsigned char>(src[i + 1])];
    std::int8_t v2 = kReverse[static_cast<unsigned char>(src[i + 2])];
    std::int8_t v3 = kReverse[static_cast<unsigned char>(src[i + 3])];
    if ((v0 | v1 | v2 | v3) < 0) {
      for (std::size_t j = 0; j < 4; ++j) {
        char c = src[i + j];
        if (c == '=') return err::parse("base64: misplaced padding");
        if (kReverse[static_cast<unsigned char>(c)] < 0) {
          return err::parse(std::string("base64: invalid character '") + c + "'");
        }
      }
    }
    std::uint32_t quad = (static_cast<std::uint32_t>(v0) << 18) |
                         (static_cast<std::uint32_t>(v1) << 12) |
                         (static_cast<std::uint32_t>(v2) << 6) |
                         static_cast<std::uint32_t>(v3);
    dst[0] = static_cast<std::uint8_t>((quad >> 16) & 0xFF);
    dst[1] = static_cast<std::uint8_t>((quad >> 8) & 0xFF);
    dst[2] = static_cast<std::uint8_t>(quad & 0xFF);
    dst += 3;
  }
  int pad = 0;
  if (i < input.size()) {
    std::uint32_t quad = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      char c = src[i + j];
      if (c == '=') {
        // Padding only legal at positions 2 or 3, and must be followed
        // only by more '='.
        if (j < 2) return err::parse("base64: misplaced padding");
        ++pad;
        quad <<= 6;
        continue;
      }
      if (pad > 0) return err::parse("base64: data after padding");
      std::int8_t v = kReverse[static_cast<unsigned char>(c)];
      if (v < 0) {
        return err::parse(std::string("base64: invalid character '") + c + "'");
      }
      quad = (quad << 6) | static_cast<std::uint32_t>(v);
    }
    dst[0] = static_cast<std::uint8_t>((quad >> 16) & 0xFF);
    if (pad < 2) dst[1] = static_cast<std::uint8_t>((quad >> 8) & 0xFF);
    if (pad < 1) dst[2] = static_cast<std::uint8_t>(quad & 0xFF);
  }
  out.resize(out.size() - static_cast<std::size_t>(pad));
  return out;
}

}  // namespace h2::enc
