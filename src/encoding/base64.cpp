#include "encoding/base64.hpp"

#include <array>

namespace h2::enc {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

constexpr std::array<std::int8_t, 256> make_reverse_table() {
  std::array<std::int8_t, 256> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}

constexpr auto kReverse = make_reverse_table();

}  // namespace

std::string base64_encode(std::span<const std::uint8_t> input) {
  std::string out;
  out.reserve(base64_encoded_size(input.size()));
  std::size_t i = 0;
  while (i + 3 <= input.size()) {
    std::uint32_t triple = (static_cast<std::uint32_t>(input[i]) << 16) |
                           (static_cast<std::uint32_t>(input[i + 1]) << 8) |
                           input[i + 2];
    out.push_back(kAlphabet[(triple >> 18) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3F]);
    out.push_back(kAlphabet[triple & 0x3F]);
    i += 3;
  }
  std::size_t rest = input.size() - i;
  if (rest == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(input[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 0x3F]);
    out.push_back(kAlphabet[(v >> 12) & 0x3F]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(input[i]) << 16) |
                      (static_cast<std::uint32_t>(input[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 0x3F]);
    out.push_back(kAlphabet[(v >> 12) & 0x3F]);
    out.push_back(kAlphabet[(v >> 6) & 0x3F]);
    out.push_back('=');
  }
  return out;
}

Result<std::vector<std::uint8_t>> base64_decode(std::string_view input) {
  if (input.size() % 4 != 0) {
    return err::parse("base64: length " + std::to_string(input.size()) +
                      " is not a multiple of 4");
  }
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 4 * 3);
  for (std::size_t i = 0; i < input.size(); i += 4) {
    int pad = 0;
    std::uint32_t quad = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      char c = input[i + j];
      if (c == '=') {
        // Padding only legal in the last group, positions 2 or 3, and must
        // be followed only by more '='.
        if (i + 4 != input.size() || j < 2) {
          return err::parse("base64: misplaced padding");
        }
        ++pad;
        quad <<= 6;
        continue;
      }
      if (pad > 0) return err::parse("base64: data after padding");
      std::int8_t v = kReverse[static_cast<unsigned char>(c)];
      if (v < 0) {
        return err::parse(std::string("base64: invalid character '") + c + "'");
      }
      quad = (quad << 6) | static_cast<std::uint32_t>(v);
    }
    out.push_back(static_cast<std::uint8_t>((quad >> 16) & 0xFF));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((quad >> 8) & 0xFF));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(quad & 0xFF));
  }
  return out;
}

}  // namespace h2::enc
