// RFC 4648 BASE64 — the encoding whose overhead motivates the paper's
// "data encoding issue" (Section 5): SOAP's default text encoding expands
// binary payloads 4/3x and costs CPU on both ends.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace h2::enc {

/// Standard alphabet, '=' padding.
std::string base64_encode(std::span<const std::uint8_t> input);

/// Appends the encoding to `out`, resizing once and writing blocks through
/// a raw pointer — the hot path for SOAP base64 payloads.
void base64_encode_to(std::string& out, std::span<const std::uint8_t> input);

/// Strict decode: rejects characters outside the alphabet (whitespace
/// included) and malformed padding.
Result<std::vector<std::uint8_t>> base64_decode(std::string_view input);

/// Exact encoded length for `n` input bytes.
constexpr std::size_t base64_encoded_size(std::size_t n) {
  return ((n + 2) / 3) * 4;
}

}  // namespace h2::enc
