#include "encoding/codec.hpp"

#include <charconv>

#include "encoding/base64.hpp"
#include "encoding/xdr.hpp"
#include "util/strings.hpp"
#include "xml/pull_parser.hpp"

namespace h2::enc {

namespace {

class RawCodec final : public Codec {
 public:
  const char* name() const override { return "raw"; }

  ByteBuffer encode(std::span<const double> values) const override {
    ByteBuffer out;
    out.reserve(4 + values.size() * 8);
    out.write_u32_le(static_cast<std::uint32_t>(values.size()));
    for (double v : values) out.write_f64_le(v);
    return out;
  }

  Result<std::vector<double>> decode(const ByteBuffer& wire) const override {
    ByteBuffer buf(std::vector<std::uint8_t>(wire.bytes().begin(), wire.bytes().end()));
    auto count = buf.read_u32_le();
    if (!count.ok()) return count.error();
    if (static_cast<std::size_t>(*count) * 8 != buf.remaining()) {
      return err::parse("raw: count does not match payload size");
    }
    std::vector<double> out;
    out.reserve(*count);
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto v = buf.read_f64_le();
      if (!v.ok()) return v.error();
      out.push_back(*v);
    }
    return out;
  }

  std::size_t wire_size(std::size_t n) const override { return 4 + n * 8; }
};

class XdrCodec final : public Codec {
 public:
  const char* name() const override { return "xdr"; }

  ByteBuffer encode(std::span<const double> values) const override {
    XdrWriter w;
    w.put_f64_array(values);
    return w.take();
  }

  Result<std::vector<double>> decode(const ByteBuffer& wire) const override {
    XdrReader r(wire.bytes());
    auto values = r.get_f64_array();
    if (!values.ok()) return values.error();
    if (!r.exhausted()) return err::parse("xdr: trailing bytes after array");
    return values;
  }

  std::size_t wire_size(std::size_t n) const override { return 4 + n * 8; }
};

class SoapXmlCodec final : public Codec {
 public:
  const char* name() const override { return "soap-xml"; }

  ByteBuffer encode(std::span<const double> values) const override {
    // Hand-rolled emission (no DOM) — this is the fast path a real SOAP
    // stack would use, so the measured cost is the format's, not a DOM's.
    std::string out;
    out.reserve(80 + values.size() * 32);
    char buf[32];
    out += "<array xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"xsd:double[";
    auto [cend, cec] = std::to_chars(buf, buf + sizeof buf, values.size());
    out.append(buf, static_cast<std::size_t>(cend - buf));
    out += "]\">";
    for (double v : values) {
      out += "<item>";
      auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
      out.append(buf, static_cast<std::size_t>(end - buf));
      out += "</item>";
    }
    out += "</array>";
    return ByteBuffer(out);
  }

  Result<std::vector<double>> decode(const ByteBuffer& wire) const override {
    xml::PullParser p(wire.as_string_view());
    auto root = p.next();
    if (!root.ok()) return root.error().context("soap-xml array");
    std::vector<double> out;
    if (auto at = p.raw_attr("SOAP-ENC:arrayType")) {
      auto lb = at->find('[');
      auto rb = at->find(']');
      if (lb != std::string_view::npos && rb != std::string_view::npos && rb > lb + 1) {
        auto n = str::parse_u64(at->substr(lb + 1, rb - lb - 1));
        if (n.ok()) out.reserve(std::min<std::uint64_t>(*n, 1 << 22));
      }
    }
    std::string scratch;
    while (true) {
      auto t = p.next();
      if (!t.ok()) return t.error().context("soap-xml array");
      if (*t == xml::Token::kEndElement && p.depth() == 0) break;
      if (*t != xml::Token::kStartElement) continue;
      if (p.local_name() != "item") {
        auto skipped = p.skip_element();
        if (!skipped.ok()) return skipped.error().context("soap-xml array");
        continue;
      }
      auto text = p.inner_text(scratch);
      if (!text.ok()) return text.error().context("soap-xml array");
      auto v = str::parse_double(str::trim(*text));
      if (!v.ok()) return v.error().context("soap-xml item");
      out.push_back(*v);
    }
    auto tail = p.next();
    if (!tail.ok()) return tail.error().context("soap-xml array");
    return out;
  }

  std::size_t wire_size(std::size_t n) const override {
    // Upper bound: framing + per-item tags + up to 24 chars of decimal text.
    return 80 + n * (13 + 24);
  }
};

class SoapBase64Codec final : public Codec {
 public:
  const char* name() const override { return "soap-base64"; }

  ByteBuffer encode(std::span<const double> values) const override {
    ByteBuffer raw;
    raw.reserve(values.size() * 8);
    for (double v : values) raw.write_f64_le(v);
    std::string out;
    out.reserve(96 + base64_encoded_size(raw.size()));
    out += "<data xsi:type=\"xsd:base64Binary\" count=\"";
    out += std::to_string(values.size());
    out += "\">";
    base64_encode_to(out, raw.bytes());
    out += "</data>";
    return ByteBuffer(out);
  }

  Result<std::vector<double>> decode(const ByteBuffer& wire) const override {
    xml::PullParser p(wire.as_string_view());
    auto root = p.next();
    if (!root.ok()) return root.error().context("soap-base64");
    std::string scratch;
    auto count_attr = p.attr("count", scratch);
    if (!count_attr.ok()) return count_attr.error().context("soap-base64");
    if (!*count_attr) return err::parse("soap-base64: missing count attribute");
    auto count = str::parse_u64(**count_attr);
    if (!count.ok()) return count.error();
    auto text = p.inner_text(scratch);
    if (!text.ok()) return text.error().context("soap-base64");
    auto bytes = base64_decode(str::trim(*text));
    if (!bytes.ok()) return bytes.error();
    auto tail = p.next();
    if (!tail.ok()) return tail.error().context("soap-base64");
    if (bytes->size() != *count * 8) {
      return err::parse("soap-base64: payload size does not match count");
    }
    ByteBuffer buf(std::move(*bytes));
    std::vector<double> out;
    out.reserve(*count);
    for (std::uint64_t i = 0; i < *count; ++i) {
      auto v = buf.read_f64_le();
      if (!v.ok()) return v.error();
      out.push_back(*v);
    }
    return out;
  }

  std::size_t wire_size(std::size_t n) const override {
    return 60 + base64_encoded_size(n * 8);
  }
};

}  // namespace

std::unique_ptr<Codec> make_raw_codec() { return std::make_unique<RawCodec>(); }
std::unique_ptr<Codec> make_xdr_codec() { return std::make_unique<XdrCodec>(); }
std::unique_ptr<Codec> make_soap_xml_codec() { return std::make_unique<SoapXmlCodec>(); }
std::unique_ptr<Codec> make_soap_base64_codec() {
  return std::make_unique<SoapBase64Codec>();
}

std::vector<std::unique_ptr<Codec>> all_codecs() {
  std::vector<std::unique_ptr<Codec>> out;
  out.push_back(make_raw_codec());
  out.push_back(make_xdr_codec());
  out.push_back(make_soap_base64_codec());
  out.push_back(make_soap_xml_codec());
  return out;
}

}  // namespace h2::enc
