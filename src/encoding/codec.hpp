// A uniform interface over the payload encodings the paper compares:
//
//   raw           host-order binary         (lower bound; "local binding")
//   xdr           RFC 4506 big-endian       (the proposed XDR binding)
//   soap-xml      one <item> element per    (SOAP Section-5 array style)
//                 value, decimal text
//   soap-base64   xsd:base64Binary blob of  (SOAP's "default BASE64
//                 IEEE bytes inside XML      encoding for XSD data types")
//
// bench_encoding (EXP-ENC) measures all four on the same double arrays;
// the transport bindings reuse them for their payloads.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace h2::enc {

/// Encodes/decodes a flat array of doubles — the paper's canonical
/// scientific payload ("plain arrays of numbers", Section 5).
class Codec {
 public:
  virtual ~Codec() = default;

  /// Stable identifier ("raw", "xdr", "soap-xml", "soap-base64").
  virtual const char* name() const = 0;

  /// Serializes `values` into wire bytes.
  virtual ByteBuffer encode(std::span<const double> values) const = 0;

  /// Parses wire bytes produced by encode(). Never trusts lengths blindly.
  virtual Result<std::vector<double>> decode(const ByteBuffer& wire) const = 0;

  /// Exact number of wire bytes encode() would produce for n values
  /// (soap-xml is value-dependent, so that one returns an upper bound).
  virtual std::size_t wire_size(std::size_t n) const = 0;
};

/// Little-endian doubles behind a u32 count — what a same-address-space
/// binding effectively pays (plus one memcpy).
std::unique_ptr<Codec> make_raw_codec();

/// XDR: big-endian doubles behind a u32 count, per RFC 4506.
std::unique_ptr<Codec> make_xdr_codec();

/// SOAP-style XML array: <array><item>1.5</item>...</array> with decimal
/// text items, parsed by the real XML parser on decode.
std::unique_ptr<Codec> make_soap_xml_codec();

/// SOAP base64Binary: IEEE-754 LE bytes, base64ed, wrapped in one XML
/// element — the cheaper of the two common SOAP choices, still paying the
/// 4/3 expansion plus XML framing.
std::unique_ptr<Codec> make_soap_base64_codec();

/// All four codecs in comparison order.
std::vector<std::unique_ptr<Codec>> all_codecs();

}  // namespace h2::enc
