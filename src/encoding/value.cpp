#include "encoding/value.hpp"

namespace h2 {

const char* to_string(ValueKind kind) {
  switch (kind) {
    case ValueKind::kVoid: return "void";
    case ValueKind::kBool: return "bool";
    case ValueKind::kInt: return "int";
    case ValueKind::kDouble: return "double";
    case ValueKind::kString: return "string";
    case ValueKind::kDoubleArray: return "double[]";
    case ValueKind::kBytes: return "bytes";
  }
  return "?";
}

namespace {
Error kind_error(ValueKind want, ValueKind have) {
  return err::invalid_argument(std::string("value is ") + to_string(have) +
                               ", expected " + to_string(want));
}
}  // namespace

Result<bool> Value::as_bool() const {
  if (auto* v = std::get_if<bool>(&data_)) return *v;
  return kind_error(ValueKind::kBool, kind());
}

Result<std::int64_t> Value::as_int() const {
  if (auto* v = std::get_if<std::int64_t>(&data_)) return *v;
  return kind_error(ValueKind::kInt, kind());
}

Result<double> Value::as_double() const {
  if (auto* v = std::get_if<double>(&data_)) return *v;
  // Widening int -> double is safe and common for numeric services.
  if (auto* v = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*v);
  return kind_error(ValueKind::kDouble, kind());
}

Result<std::string> Value::as_string() const {
  if (auto* v = std::get_if<std::string>(&data_)) return *v;
  return kind_error(ValueKind::kString, kind());
}

Result<std::vector<double>> Value::as_doubles() const {
  if (auto* v = std::get_if<std::vector<double>>(&data_)) return *v;
  return kind_error(ValueKind::kDoubleArray, kind());
}

Result<std::vector<std::uint8_t>> Value::as_bytes() const {
  if (auto* v = std::get_if<std::vector<std::uint8_t>>(&data_)) return *v;
  return kind_error(ValueKind::kBytes, kind());
}

std::span<const double> Value::doubles_view() const {
  if (auto* v = std::get_if<std::vector<double>>(&data_)) return {v->data(), v->size()};
  return {};
}

std::span<const std::uint8_t> Value::bytes_view() const {
  if (auto* v = std::get_if<std::vector<std::uint8_t>>(&data_)) return {v->data(), v->size()};
  return {};
}

std::string_view Value::string_view() const {
  if (auto* v = std::get_if<std::string>(&data_)) return *v;
  return {};
}

std::string Value::describe() const {
  switch (kind()) {
    case ValueKind::kVoid: return "void";
    case ValueKind::kBool: return std::get<bool>(data_) ? "true" : "false";
    case ValueKind::kInt: return std::to_string(std::get<std::int64_t>(data_));
    case ValueKind::kDouble: return std::to_string(std::get<double>(data_));
    case ValueKind::kString: return "\"" + std::get<std::string>(data_) + "\"";
    case ValueKind::kDoubleArray:
      return "double[" + std::to_string(std::get<std::vector<double>>(data_).size()) + "]";
    case ValueKind::kBytes:
      return "bytes[" + std::to_string(std::get<std::vector<std::uint8_t>>(data_).size()) + "]";
  }
  return "?";
}

}  // namespace h2
