// The cross-binding value model. Every Harness II binding (soap, xdr,
// local, localobject) marshals operation parameters and results as
// h2::Value items; the binding decides the wire representation. The kind
// set mirrors what the paper's services exchange: scalars for control
// operations (WSTime), flat numeric arrays for scientific payloads
// (MatMul, LAPACK), opaque bytes for application messages (PVM).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace h2 {

enum class ValueKind {
  kVoid,
  kBool,
  kInt,     // int64
  kDouble,
  kString,
  kDoubleArray,
  kBytes,
};

const char* to_string(ValueKind kind);

/// A named, typed value. Copyable; arrays use value semantics so bindings
/// can't alias each other's buffers across the (possibly simulated) wire.
class Value {
 public:
  /// Unnamed void value.
  Value() : data_(std::monostate{}) {}

  static Value of_void(std::string name = "") { return Value(std::move(name), std::monostate{}); }
  static Value of_bool(bool v, std::string name = "") { return Value(std::move(name), v); }
  static Value of_int(std::int64_t v, std::string name = "") { return Value(std::move(name), v); }
  static Value of_double(double v, std::string name = "") { return Value(std::move(name), v); }
  static Value of_string(std::string v, std::string name = "") {
    return Value(std::move(name), std::move(v));
  }
  static Value of_doubles(std::vector<double> v, std::string name = "") {
    return Value(std::move(name), std::move(v));
  }
  static Value of_bytes(std::vector<std::uint8_t> v, std::string name = "") {
    return Value(std::move(name), std::move(v));
  }

  ValueKind kind() const {
    return static_cast<ValueKind>(data_.index());
  }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Typed accessors; kInvalidArgument on kind mismatch.
  Result<bool> as_bool() const;
  Result<std::int64_t> as_int() const;
  Result<double> as_double() const;
  Result<std::string> as_string() const;
  Result<std::vector<double>> as_doubles() const;
  Result<std::vector<std::uint8_t>> as_bytes() const;

  /// Borrowing accessors for large payloads (empty span/view on mismatch).
  std::span<const double> doubles_view() const;
  std::span<const std::uint8_t> bytes_view() const;
  std::string_view string_view() const;

  bool operator==(const Value& other) const {
    return name_ == other.name_ && data_ == other.data_;
  }

  /// Short human-readable form for logs/tests ("double[1024]", "42", ...).
  std::string describe() const;

 private:
  using Storage = std::variant<std::monostate, bool, std::int64_t, double,
                               std::string, std::vector<double>,
                               std::vector<std::uint8_t>>;

  Value(std::string name, Storage data)
      : name_(std::move(name)), data_(std::move(data)) {}

  std::string name_;
  Storage data_;
};

}  // namespace h2
