#include "encoding/xdr.hpp"

#include <bit>
#include <cstring>

namespace h2::enc {

void XdrWriter::put_opaque(std::span<const std::uint8_t> bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  put_opaque_fixed(bytes);
}

void XdrWriter::put_opaque_fixed(std::span<const std::uint8_t> bytes) {
  buffer_.write_bytes(bytes);
  buffer_.write_fill(xdr_padded(bytes.size()) - bytes.size());
}

void XdrWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buffer_.write_string(s);
  buffer_.write_fill(xdr_padded(s.size()) - s.size());
}

void XdrWriter::put_f64_array(std::span<const double> values) {
  put_u32(static_cast<std::uint32_t>(values.size()));
  for (double v : values) put_f64(v);
}

void XdrWriter::put_f32_array(std::span<const float> values) {
  put_u32(static_cast<std::uint32_t>(values.size()));
  for (float v : values) put_f32(v);
}

void XdrWriter::put_i32_array(std::span<const std::int32_t> values) {
  put_u32(static_cast<std::uint32_t>(values.size()));
  for (std::int32_t v : values) put_i32(v);
}

Status XdrReader::ensure(std::size_t n) const {
  if (remaining() < n) {
    return err::parse("byte buffer underrun: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
  return Status::success();
}

Result<std::int32_t> XdrReader::get_i32() {
  auto v = get_u32();
  if (!v.ok()) return v.error();
  return static_cast<std::int32_t>(*v);
}

Result<std::uint32_t> XdrReader::get_u32() {
  if (auto s = ensure(4); !s.ok()) return s.error();
  const std::uint8_t* p = cursor();
  pos_ += 4;
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

Result<std::int64_t> XdrReader::get_i64() {
  auto v = get_u64();
  if (!v.ok()) return v.error();
  return static_cast<std::int64_t>(*v);
}

Result<std::uint64_t> XdrReader::get_u64() {
  if (auto s = ensure(8); !s.ok()) return s.error();
  const std::uint8_t* p = cursor();
  pos_ += 8;
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out = (out << 8) | p[i];
  return out;
}

Result<bool> XdrReader::get_bool() {
  auto v = get_u32();
  if (!v.ok()) return v.error();
  if (*v > 1) return err::parse("xdr: boolean must be 0 or 1, got " + std::to_string(*v));
  return *v == 1;
}

Result<float> XdrReader::get_f32() {
  auto v = get_u32();
  if (!v.ok()) return v.error();
  return std::bit_cast<float>(*v);
}

Result<double> XdrReader::get_f64() {
  auto v = get_u64();
  if (!v.ok()) return v.error();
  return std::bit_cast<double>(*v);
}

Status XdrReader::skip_padding(std::size_t payload) {
  std::size_t pad = xdr_padded(payload) - payload;
  if (auto s = ensure(pad); !s.ok()) return s;
  for (std::size_t i = 0; i < pad; ++i) {
    if (cursor()[i] != 0) return err::parse("xdr: nonzero padding byte");
  }
  pos_ += pad;
  return Status::success();
}

Result<std::vector<std::uint8_t>> XdrReader::get_opaque() {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  return get_opaque_fixed(*len);
}

Result<std::vector<std::uint8_t>> XdrReader::get_opaque_fixed(std::size_t n) {
  if (auto s = ensure(n); !s.ok()) return s.error();
  std::vector<std::uint8_t> bytes(cursor(), cursor() + n);
  pos_ += n;
  if (auto s = skip_padding(n); !s.ok()) return s.error();
  return bytes;
}

Result<std::span<const std::uint8_t>> XdrReader::get_opaque_view() {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (auto s = ensure(*len); !s.ok()) return s.error();
  auto out = view_.subspan(pos_, *len);
  pos_ += *len;
  if (auto s = skip_padding(*len); !s.ok()) return s.error();
  return out;
}

Result<std::string> XdrReader::get_string() {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (auto s = ensure(*len); !s.ok()) return s.error();
  std::string out(reinterpret_cast<const char*>(cursor()), *len);
  pos_ += *len;
  if (auto pad = skip_padding(*len); !pad.ok()) return pad.error();
  return out;
}

Result<std::vector<double>> XdrReader::get_f64_array() {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (static_cast<std::size_t>(*len) * 8 > remaining()) {
    return err::parse("xdr: f64 array length " + std::to_string(*len) +
                      " exceeds remaining bytes");
  }
  std::vector<double> out;
  out.reserve(*len);
  for (std::uint32_t i = 0; i < *len; ++i) {
    auto v = get_f64();
    if (!v.ok()) return v.error();
    out.push_back(*v);
  }
  return out;
}

Result<std::vector<float>> XdrReader::get_f32_array() {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (static_cast<std::size_t>(*len) * 4 > remaining()) {
    return err::parse("xdr: f32 array length exceeds remaining bytes");
  }
  std::vector<float> out;
  out.reserve(*len);
  for (std::uint32_t i = 0; i < *len; ++i) {
    auto v = get_f32();
    if (!v.ok()) return v.error();
    out.push_back(*v);
  }
  return out;
}

Result<std::vector<std::int32_t>> XdrReader::get_i32_array() {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (static_cast<std::size_t>(*len) * 4 > remaining()) {
    return err::parse("xdr: i32 array length exceeds remaining bytes");
  }
  std::vector<std::int32_t> out;
  out.reserve(*len);
  for (std::uint32_t i = 0; i < *len; ++i) {
    auto v = get_i32();
    if (!v.ok()) return v.error();
    out.push_back(*v);
  }
  return out;
}

}  // namespace h2::enc
