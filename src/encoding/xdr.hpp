// XDR (RFC 4506 wire format) reader/writer. This is the paper's proposed
// high-performance binding encoding: "an XDR binding capable of delivering
// numerical data on direct socket level connections... the only type of
// complex data available is the array" (Section 5).
//
// All items are big-endian and padded to 4-byte alignment, byte-exact with
// the RFC so the format is interoperable, not an approximation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace h2::enc {

/// Serializes values into a ByteBuffer in XDR order.
class XdrWriter {
 public:
  XdrWriter() = default;
  explicit XdrWriter(ByteBuffer buffer) : buffer_(std::move(buffer)) {}

  void put_i32(std::int32_t v) { buffer_.write_u32_be(static_cast<std::uint32_t>(v)); }
  void put_u32(std::uint32_t v) { buffer_.write_u32_be(v); }
  void put_i64(std::int64_t v) { buffer_.write_u64_be(static_cast<std::uint64_t>(v)); }
  void put_u64(std::uint64_t v) { buffer_.write_u64_be(v); }
  void put_bool(bool v) { put_u32(v ? 1 : 0); }
  void put_f32(float v) { buffer_.write_f32_be(v); }
  void put_f64(double v) { buffer_.write_f64_be(v); }

  /// Variable-length opaque: u32 length + bytes + zero padding to 4.
  void put_opaque(std::span<const std::uint8_t> bytes);
  /// Fixed-length opaque: bytes + zero padding to 4 (no length prefix).
  void put_opaque_fixed(std::span<const std::uint8_t> bytes);
  /// XDR string: same wire shape as variable opaque.
  void put_string(std::string_view s);

  /// Counted arrays (u32 length + items).
  void put_f64_array(std::span<const double> values);
  void put_f32_array(std::span<const float> values);
  void put_i32_array(std::span<const std::int32_t> values);

  const ByteBuffer& buffer() const { return buffer_; }
  /// Mutable access for length backpatching of nested frames (write a
  /// u32 placeholder, emit the payload, patch_u32_be the real length).
  ByteBuffer& buffer() { return buffer_; }
  ByteBuffer take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  ByteBuffer buffer_;
};

/// Deserializes XDR items; every accessor checks bounds and padding.
///
/// Two construction modes: the owning form takes a ByteBuffer and keeps
/// it alive; the span form BORROWS — it decodes in place over the
/// caller's bytes with no copy, so the bytes must outlive the reader
/// (and any view returned by get_opaque_view). Borrowing is what lets a
/// batch frame be split into sub-frames without ever duplicating the
/// payload.
class XdrReader {
 public:
  explicit XdrReader(ByteBuffer buffer)
      : owned_(std::move(buffer)), view_(owned_.unread()) {}
  explicit XdrReader(std::span<const std::uint8_t> bytes) : view_(bytes) {}

  Result<std::int32_t> get_i32();
  Result<std::uint32_t> get_u32();
  Result<std::int64_t> get_i64();
  Result<std::uint64_t> get_u64();
  Result<bool> get_bool();
  Result<float> get_f32();
  Result<double> get_f64();
  Result<std::vector<std::uint8_t>> get_opaque();
  Result<std::vector<std::uint8_t>> get_opaque_fixed(std::size_t n);
  Result<std::string> get_string();
  Result<std::vector<double>> get_f64_array();
  Result<std::vector<float>> get_f32_array();
  Result<std::vector<std::int32_t>> get_i32_array();

  /// Zero-copy variable-length opaque: a view into the reader's bytes
  /// (valid only while the underlying storage lives). Padding is checked
  /// and skipped like get_opaque.
  Result<std::span<const std::uint8_t>> get_opaque_view();

  std::size_t remaining() const { return view_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  Status ensure(std::size_t n) const;
  Status skip_padding(std::size_t payload);
  const std::uint8_t* cursor() const { return view_.data() + pos_; }

  ByteBuffer owned_;  ///< empty in the borrowing mode
  std::span<const std::uint8_t> view_;
  std::size_t pos_ = 0;
};

/// Pad `n` up to the next multiple of 4 (RFC 4506 §3).
constexpr std::size_t xdr_padded(std::size_t n) { return (n + 3) & ~std::size_t{3}; }

}  // namespace h2::enc
