#include "kernel/event_bus.hpp"

#include "loop/event_loop.hpp"

namespace h2::kernel {

EventBus::Subscription EventBus::subscribe(std::string topic, Handler handler) {
  return Subscription(this, add(std::move(topic), std::move(handler)));
}

EventBus::SubscriptionId EventBus::add(std::string topic, Handler handler) {
  std::lock_guard lock(mu_);
  SubscriptionId id = next_id_++;
  topics_[std::move(topic)].push_back({id, std::move(handler)});
  return id;
}

bool EventBus::remove(SubscriptionId id) {
  std::lock_guard lock(mu_);
  for (auto& [topic, subs] : topics_) {
    for (auto it = subs.begin(); it != subs.end(); ++it) {
      if (it->id == id) {
        subs.erase(it);
        return true;
      }
    }
  }
  return false;
}

void EventBus::bind_loop(loop::EventLoop* loop) {
  std::lock_guard lock(mu_);
  loop_ = loop;
}

loop::EventLoop* EventBus::bound_loop() const {
  std::lock_guard lock(mu_);
  return loop_;
}

std::size_t EventBus::publish(std::string_view topic, const Value& payload) {
  // Copy handlers out so subscribers may (un)subscribe from inside a
  // handler without deadlocking.
  std::vector<Handler> handlers;
  loop::EventLoop* loop = nullptr;
  {
    std::lock_guard lock(mu_);
    auto it = topics_.find(topic);
    if (it == topics_.end()) return 0;
    handlers.reserve(it->second.size());
    for (const auto& sub : it->second) handlers.push_back(sub.handler);
    loop = loop_;
  }
  std::size_t count = handlers.size();
  if (loop == nullptr) {
    for (const auto& handler : handlers) handler(payload);
    return count;
  }
  loop->dispatch(
      [handlers = std::move(handlers), payload] {
        for (const auto& handler : handlers) handler(payload);
      });
  return count;
}

std::size_t EventBus::subscriber_count(std::string_view topic) const {
  std::lock_guard lock(mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.size();
}

}  // namespace h2::kernel
