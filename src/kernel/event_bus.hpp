// Topic-based event bus: the "general event management" service plugins
// leverage from each other (Fig 2). Delivery goes through the owning
// kernel's EventLoop (`bind_loop`): with no driver attached the loop
// dispatches inline on the publisher's thread (the original synchronous
// behavior); under a driver, publishes from off the loop thread are
// posted so handlers always run with loop affinity. The bus is
// thread-safe either way.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "encoding/value.hpp"

namespace h2::loop {
class EventLoop;
}

namespace h2::kernel {

class EventBus {
 public:
  using SubscriptionId = std::uint64_t;
  using Handler = std::function<void(const Value& payload)>;

  /// RAII subscription handle: move-only, unsubscribes on destruction.
  /// Holding the handle IS the subscription — dropping it detaches the
  /// handler, so a subscriber can't leak a registration past its own
  /// lifetime. The bus must outlive every handle.
  class [[nodiscard]] Subscription {
   public:
    Subscription() = default;
    Subscription(Subscription&& other) noexcept { *this = std::move(other); }
    Subscription& operator=(Subscription&& other) noexcept {
      if (this != &other) {
        reset();
        bus_ = other.bus_;
        id_ = other.id_;
        other.bus_ = nullptr;
      }
      return *this;
    }
    Subscription(const Subscription&) = delete;
    Subscription& operator=(const Subscription&) = delete;
    ~Subscription() { reset(); }

    bool active() const { return bus_ != nullptr; }
    SubscriptionId id() const { return id_; }

    /// Unsubscribes now. Idempotent.
    void reset() {
      if (bus_ != nullptr) {
        bus_->remove(id_);
        bus_ = nullptr;
      }
    }

   private:
    friend class EventBus;
    Subscription(EventBus* bus, SubscriptionId id) : bus_(bus), id_(id) {}

    EventBus* bus_ = nullptr;
    SubscriptionId id_ = 0;
  };

  /// Subscribes to an exact topic. The returned handle owns the
  /// registration; keep it alive for as long as events should arrive.
  Subscription subscribe(std::string topic, Handler handler);

  /// Id-based subscription: caller must pair with unsubscribe() manually.
  [[deprecated("use subscribe(), whose RAII handle cannot leak the registration")]]
  SubscriptionId subscribe_unmanaged(std::string topic, Handler handler) {
    return add(std::move(topic), std::move(handler));
  }

  /// Removes a subscription by id; false if the id is unknown.
  [[deprecated("use Subscription::reset() on the handle from subscribe()")]]
  bool unsubscribe(SubscriptionId id) { return remove(id); }

  /// Binds delivery to `loop` (nullptr reverts to inline delivery).
  /// Kernel binds its own loop at construction.
  void bind_loop(loop::EventLoop* loop);
  loop::EventLoop* bound_loop() const;

  /// Delivers `payload` to every handler of `topic`, in subscription
  /// order, via the bound loop's dispatch (inline when no loop or no
  /// driver is attached). Returns the number of handlers that will be
  /// invoked — the subscriber snapshot taken at publish time.
  std::size_t publish(std::string_view topic, const Value& payload);

  std::size_t subscriber_count(std::string_view topic) const;

 private:
  struct Entry {
    SubscriptionId id;
    Handler handler;
  };

  SubscriptionId add(std::string topic, Handler handler);
  bool remove(SubscriptionId id);

  mutable std::mutex mu_;
  std::map<std::string, std::vector<Entry>, std::less<>> topics_;
  SubscriptionId next_id_ = 1;
  loop::EventLoop* loop_ = nullptr;
};

}  // namespace h2::kernel
