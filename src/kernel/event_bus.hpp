// Topic-based synchronous event bus: the "general event management"
// service plugins leverage from each other (Fig 2). Handlers run inline
// on the publisher's thread; the bus is thread-safe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "encoding/value.hpp"

namespace h2::kernel {

class EventBus {
 public:
  using SubscriptionId = std::uint64_t;
  using Handler = std::function<void(const Value& payload)>;

  /// Subscribes to an exact topic; returns an id for unsubscribe().
  SubscriptionId subscribe(std::string topic, Handler handler);

  /// Removes a subscription; false if the id is unknown.
  bool unsubscribe(SubscriptionId id);

  /// Delivers `payload` to every handler of `topic`, in subscription
  /// order. Returns the number of handlers invoked.
  std::size_t publish(std::string_view topic, const Value& payload);

  std::size_t subscriber_count(std::string_view topic) const;

 private:
  struct Subscription {
    SubscriptionId id;
    Handler handler;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::vector<Subscription>, std::less<>> topics_;
  SubscriptionId next_id_ = 1;
};

}  // namespace h2::kernel
