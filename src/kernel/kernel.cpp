#include "kernel/kernel.hpp"

#include "util/log.hpp"

namespace h2::kernel {

namespace {
Logger& logger() {
  static Logger log("kernel");
  return log;
}
}  // namespace

Kernel::Kernel(std::string name, const PluginRepository& repo, net::SimNetwork& net,
               net::HostId host)
    : name_(std::move(name)), repo_(repo), net_(net), host_(host) {}

Kernel::~Kernel() {
  for (auto& [name, plugin] : plugins_) plugin->shutdown();
}

Result<Plugin*> Kernel::load(std::string_view plugin_name, std::string_view version) {
  if (plugins_.count(plugin_name)) {
    return err::already_exists("kernel " + name_ + ": plugin '" +
                               std::string(plugin_name) + "' already loaded");
  }
  auto plugin = repo_.create(plugin_name, version);
  if (!plugin.ok()) return plugin.error().context("kernel " + name_);

  if (auto status = (*plugin)->init(*this); !status.ok()) {
    return status.error().context("init of plugin '" + std::string(plugin_name) + "'");
  }
  Plugin* raw = plugin->get();
  plugins_[std::string(plugin_name)] = std::move(*plugin);
  logger().debug(name_ + ": loaded plugin " + std::string(plugin_name));
  return raw;
}

Status Kernel::unload(std::string_view plugin_name) {
  auto it = plugins_.find(plugin_name);
  if (it == plugins_.end()) {
    return err::not_found("kernel " + name_ + ": plugin '" +
                          std::string(plugin_name) + "' not loaded");
  }
  it->second->shutdown();
  plugins_.erase(it);
  logger().debug(name_ + ": unloaded plugin " + std::string(plugin_name));
  return Status::success();
}

Plugin* Kernel::find(std::string_view plugin_name) {
  auto it = plugins_.find(plugin_name);
  return it == plugins_.end() ? nullptr : it->second.get();
}

const Plugin* Kernel::find(std::string_view plugin_name) const {
  auto it = plugins_.find(plugin_name);
  return it == plugins_.end() ? nullptr : it->second.get();
}

std::vector<PluginInfo> Kernel::loaded() const {
  std::vector<PluginInfo> out;
  out.reserve(plugins_.size());
  for (const auto& [name, plugin] : plugins_) out.push_back(plugin->info());
  return out;
}

void Kernel::for_each_plugin(const std::function<void(Plugin&)>& fn) {
  for (auto& [name, plugin] : plugins_) fn(*plugin);
}

Result<net::Dispatcher*> Kernel::service(std::string_view plugin_name) {
  Plugin* plugin = find(plugin_name);
  if (plugin == nullptr) {
    return err::not_found("kernel " + name_ + ": no service '" +
                          std::string(plugin_name) + "'");
  }
  return static_cast<net::Dispatcher*>(plugin);
}

Result<Value> Kernel::call(std::string_view plugin_name, std::string_view operation,
                           std::span<const Value> params) {
  auto dispatcher = service(plugin_name);
  if (!dispatcher.ok()) return dispatcher.error();
  return (*dispatcher)->dispatch(operation, params);
}

}  // namespace h2::kernel
