#include "kernel/kernel.hpp"

#include "util/log.hpp"

namespace h2::kernel {

namespace {
Logger& logger() {
  static Logger log("kernel");
  return log;
}
}  // namespace

Kernel::Kernel(std::string name, const PluginRepository& repo, net::SimNetwork& net,
               net::HostId host)
    : name_(std::move(name)), repo_(repo), net_(net), host_(host),
      loop_("kernel/" + name_) {
  events_.bind_loop(&loop_);
}

Kernel::~Kernel() {
  for (auto& [name, entry] : plugins_) entry.plugin->shutdown();
}

Result<Plugin*> Kernel::load(std::string_view plugin_name, std::string_view version) {
  if (plugins_.count(plugin_name)) {
    return err::already_exists("kernel " + name_ + ": plugin '" +
                               std::string(plugin_name) + "' already loaded");
  }
  auto plugin = repo_.create(plugin_name, version);
  if (!plugin.ok()) return plugin.error().context("kernel " + name_);

  if (auto status = (*plugin)->init(*this); !status.ok()) {
    return status.error().context("init of plugin '" + std::string(plugin_name) + "'");
  }
  Plugin* raw = plugin->get();
  Loaded entry;
  entry.plugin = std::move(*plugin);
  // Register the per-plugin metric handles once, on the cold path; call()
  // then increments through the cached pointers.
  auto& metrics = net_.metrics();
  std::string prefix = "h2.kernel." + name_ + ".";
  std::string pname(plugin_name);
  metrics.counter(prefix + "loads." + pname).add();
  entry.calls = &metrics.counter(prefix + "calls." + pname);
  entry.errors = &metrics.counter(prefix + "errors." + pname);
  entry.latency = &metrics.histogram(prefix + "latency." + pname);
  plugins_[std::move(pname)] = std::move(entry);
  logger().debug(name_ + ": loaded plugin " + std::string(plugin_name));
  return raw;
}

Status Kernel::unload(std::string_view plugin_name) {
  auto it = plugins_.find(plugin_name);
  if (it == plugins_.end()) {
    return err::not_found("kernel " + name_ + ": plugin '" +
                          std::string(plugin_name) + "' not loaded");
  }
  it->second.plugin->shutdown();
  plugins_.erase(it);
  logger().debug(name_ + ": unloaded plugin " + std::string(plugin_name));
  return Status::success();
}

Result<Plugin&> Kernel::get(std::string_view plugin_name) {
  auto it = plugins_.find(plugin_name);
  if (it == plugins_.end()) {
    return err::not_found("kernel " + name_ + ": plugin '" +
                          std::string(plugin_name) + "' not loaded");
  }
  return *it->second.plugin;
}

Result<const Plugin&> Kernel::get(std::string_view plugin_name) const {
  auto it = plugins_.find(plugin_name);
  if (it == plugins_.end()) {
    return err::not_found("kernel " + name_ + ": plugin '" +
                          std::string(plugin_name) + "' not loaded");
  }
  return *it->second.plugin;
}

Plugin* Kernel::find(std::string_view plugin_name) {
  auto it = plugins_.find(plugin_name);
  return it == plugins_.end() ? nullptr : it->second.plugin.get();
}

const Plugin* Kernel::find(std::string_view plugin_name) const {
  auto it = plugins_.find(plugin_name);
  return it == plugins_.end() ? nullptr : it->second.plugin.get();
}

std::vector<PluginInfo> Kernel::loaded() const {
  std::vector<PluginInfo> out;
  out.reserve(plugins_.size());
  for (const auto& [name, entry] : plugins_) out.push_back(entry.plugin->info());
  return out;
}

void Kernel::for_each_plugin(const std::function<void(Plugin&)>& fn) {
  for (auto& [name, entry] : plugins_) fn(*entry.plugin);
}

Result<net::Dispatcher*> Kernel::service(std::string_view plugin_name) {
  auto plugin = get(plugin_name);
  if (!plugin.ok()) return plugin.error();
  return static_cast<net::Dispatcher*>(&*plugin);
}

Result<Value> Kernel::call(std::string_view plugin_name, std::string_view operation,
                           std::span<const Value> params) {
  auto it = plugins_.find(plugin_name);
  if (it == plugins_.end()) {
    return err::not_found("kernel " + name_ + ": no service '" +
                          std::string(plugin_name) + "'");
  }
  Loaded& entry = it->second;
  if (!instrument_) return entry.plugin->dispatch(operation, params);

  // Span first, so the context is current while the dispatch runs and any
  // outbound SOAP call it makes picks the ids up for its Trace header.
  // start_span is a single branch when the tracer is disabled; the name
  // string is only built when it will actually be recorded.
  obs::Span span;
  auto& tracer = net_.tracer();
  if (tracer.enabled()) {
    std::string span_name;
    span_name.reserve(12 + plugin_name.size() + 1 + operation.size());
    span_name.append("kernel.call.").append(plugin_name).append(".").append(operation);
    span = tracer.start_span(span_name);
  }
  Nanos start = net_.clock().now();
  auto result = entry.plugin->dispatch(operation, params);
  entry.calls->add();
  if (!result.ok()) entry.errors->add();
  entry.latency->observe(net_.clock().now() - start);
  span.set_ok(result.ok());
  return result;
}

}  // namespace h2::kernel
