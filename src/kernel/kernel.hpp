// The Harness kernel: the per-host software backplane into which plugins
// are plugged (paper Section 3, Fig 1). It owns loaded plugin instances,
// exposes them to each other through the service table, and carries the
// event bus. A kernel is bound to one SimNetwork host so plugins can send
// and receive network traffic.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/event_bus.hpp"
#include "kernel/plugin.hpp"
#include "loop/event_loop.hpp"
#include "transport/simnet.hpp"

namespace h2::kernel {

class Kernel {
 public:
  /// `repo` and `net` are borrowed and must outlive the kernel.
  Kernel(std::string name, const PluginRepository& repo, net::SimNetwork& net,
         net::HostId host);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- identity ------------------------------------------------------------

  const std::string& name() const { return name_; }
  net::SimNetwork& network() { return net_; }
  net::HostId host() const { return host_; }
  const PluginRepository& repository() const { return repo_; }

  // ---- plugin lifecycle ------------------------------------------------------

  /// Instantiates `plugin_name` from the repository, calls init(), and
  /// registers its service. One instance per plugin name per kernel.
  /// On init() failure the plugin is discarded and the error returned.
  Result<Plugin*> load(std::string_view plugin_name, std::string_view version = "");

  /// Shuts down and removes a loaded plugin.
  Status unload(std::string_view plugin_name);

  /// Loaded plugin by name. The primary lookup: success means the plugin
  /// exists, failure carries a kNotFound error naming it — no nullptr in
  /// the signature.
  Result<Plugin&> get(std::string_view plugin_name);
  Result<const Plugin&> get(std::string_view plugin_name) const;

  /// Loaded plugin by name, or nullptr.
  [[deprecated("use get(); nullptr-returning lookups are being retired")]]
  Plugin* find(std::string_view plugin_name);
  [[deprecated("use get(); nullptr-returning lookups are being retired")]]
  const Plugin* find(std::string_view plugin_name) const;

  std::vector<PluginInfo> loaded() const;
  std::size_t plugin_count() const { return plugins_.size(); }

  /// Deterministic lifecycle fan-out (name order): the container's
  /// crash/restart simulation uses this to notify kernel-loaded plugins.
  void for_each_plugin(const std::function<void(Plugin&)>& fn);

  // ---- inter-plugin services ---------------------------------------------------

  /// The service surface of a loaded plugin — how plugins leverage each
  /// other ("plugins that implement a certain function can exploit the
  /// services provided by other plugins already loaded within the same
  /// Harness DVM").
  Result<net::Dispatcher*> service(std::string_view plugin_name);

  /// Invoke an operation on a sibling plugin in one step.
  Result<Value> call(std::string_view plugin_name, std::string_view operation,
                     std::span<const Value> params);

  /// Brace-list convenience: kernel.call("table", "put", {k, v}).
  Result<Value> call(std::string_view plugin_name, std::string_view operation,
                     std::initializer_list<Value> params) {
    return call(plugin_name, operation,
                std::span<const Value>(params.begin(), params.size()));
  }

  EventBus& events() { return events_; }

  /// The kernel's dispatch loop. Event-bus deliveries, plugin timers,
  /// and DVM completions targeting this kernel run through it. Eager
  /// (inline, synchronous) until a driver is attached — the sim harness
  /// attaches a SimDriver, real deployments an EpollDriver.
  loop::EventLoop& loop() { return loop_; }
  const loop::EventLoop& loop() const { return loop_; }

  // ---- observability ---------------------------------------------------------

  /// When off, call() skips metric and span recording entirely — the
  /// uninstrumented baseline for bench_observability. On by default; the
  /// steady-state cost is a map hit the call made anyway plus three
  /// relaxed atomics on cached handles.
  void set_instrumentation(bool on) { instrument_ = on; }
  bool instrumentation() const { return instrument_; }

 private:
  /// A loaded plugin plus its cached metric handles, so the call hot path
  /// never touches the metrics name map.
  struct Loaded {
    std::unique_ptr<Plugin> plugin;
    obs::Counter* calls = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency = nullptr;
  };

  std::string name_;
  const PluginRepository& repo_;
  net::SimNetwork& net_;
  net::HostId host_;
  loop::EventLoop loop_;
  EventBus events_;
  bool instrument_ = true;
  // map keeps unload order irrelevant; shutdown() is called in unload/dtor.
  std::map<std::string, Loaded, std::less<>> plugins_;
};

}  // namespace h2::kernel
