// The Harness kernel: the per-host software backplane into which plugins
// are plugged (paper Section 3, Fig 1). It owns loaded plugin instances,
// exposes them to each other through the service table, and carries the
// event bus. A kernel is bound to one SimNetwork host so plugins can send
// and receive network traffic.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/event_bus.hpp"
#include "kernel/plugin.hpp"
#include "transport/simnet.hpp"

namespace h2::kernel {

class Kernel {
 public:
  /// `repo` and `net` are borrowed and must outlive the kernel.
  Kernel(std::string name, const PluginRepository& repo, net::SimNetwork& net,
         net::HostId host);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- identity ------------------------------------------------------------

  const std::string& name() const { return name_; }
  net::SimNetwork& network() { return net_; }
  net::HostId host() const { return host_; }
  const PluginRepository& repository() const { return repo_; }

  // ---- plugin lifecycle ------------------------------------------------------

  /// Instantiates `plugin_name` from the repository, calls init(), and
  /// registers its service. One instance per plugin name per kernel.
  /// On init() failure the plugin is discarded and the error returned.
  Result<Plugin*> load(std::string_view plugin_name, std::string_view version = "");

  /// Shuts down and removes a loaded plugin.
  Status unload(std::string_view plugin_name);

  /// Loaded plugin by name, or nullptr.
  Plugin* find(std::string_view plugin_name);
  const Plugin* find(std::string_view plugin_name) const;

  std::vector<PluginInfo> loaded() const;
  std::size_t plugin_count() const { return plugins_.size(); }

  /// Deterministic lifecycle fan-out (name order): the container's
  /// crash/restart simulation uses this to notify kernel-loaded plugins.
  void for_each_plugin(const std::function<void(Plugin&)>& fn);

  // ---- inter-plugin services ---------------------------------------------------

  /// The service surface of a loaded plugin — how plugins leverage each
  /// other ("plugins that implement a certain function can exploit the
  /// services provided by other plugins already loaded within the same
  /// Harness DVM").
  Result<net::Dispatcher*> service(std::string_view plugin_name);

  /// Invoke an operation on a sibling plugin in one step.
  Result<Value> call(std::string_view plugin_name, std::string_view operation,
                     std::span<const Value> params);

  /// Brace-list convenience: kernel.call("table", "put", {k, v}).
  Result<Value> call(std::string_view plugin_name, std::string_view operation,
                     std::initializer_list<Value> params) {
    return call(plugin_name, operation,
                std::span<const Value>(params.begin(), params.size()));
  }

  EventBus& events() { return events_; }

 private:
  std::string name_;
  const PluginRepository& repo_;
  net::SimNetwork& net_;
  net::HostId host_;
  EventBus events_;
  // map keeps unload order irrelevant; shutdown() is called in unload/dtor.
  std::map<std::string, std::unique_ptr<Plugin>, std::less<>> plugins_;
};

}  // namespace h2::kernel
