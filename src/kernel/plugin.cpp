#include "kernel/plugin.hpp"

#include "util/strings.hpp"

namespace h2::kernel {

Status PluginRepository::add(std::string name, std::string version,
                             PluginFactory factory) {
  if (!str::is_identifier(name)) {
    return err::invalid_argument("plugin name '" + name + "' invalid");
  }
  if (factory == nullptr) {
    return err::invalid_argument("plugin '" + name + "' has null factory");
  }
  for (const auto& slot : factories_) {
    if (slot.info.name == name && slot.info.version == version) {
      return err::already_exists("plugin " + name + "@" + version + " already registered");
    }
  }
  factories_.push_back({{std::move(name), std::move(version)}, std::move(factory)});
  return Status::success();
}

Result<std::unique_ptr<Plugin>> PluginRepository::create(std::string_view name,
                                                         std::string_view version) const {
  const Slot* best = nullptr;
  for (const auto& slot : factories_) {
    if (slot.info.name != name) continue;
    if (!version.empty()) {
      if (slot.info.version == version) {
        best = &slot;
        break;
      }
      continue;
    }
    if (best == nullptr || slot.info.version > best->info.version) best = &slot;
  }
  if (best == nullptr) {
    std::string what = "plugin '" + std::string(name) + "'";
    if (!version.empty()) what += " version " + std::string(version);
    return err::not_found(what + " not in repository");
  }
  auto plugin = best->factory();
  if (plugin == nullptr) {
    return err::internal("factory for '" + std::string(name) + "' returned null");
  }
  return plugin;
}

bool PluginRepository::has(std::string_view name) const {
  for (const auto& slot : factories_) {
    if (slot.info.name == name) return true;
  }
  return false;
}

std::vector<PluginInfo> PluginRepository::available() const {
  std::vector<PluginInfo> out;
  out.reserve(factories_.size());
  for (const auto& slot : factories_) out.push_back(slot.info);
  return out;
}

}  // namespace h2::kernel
