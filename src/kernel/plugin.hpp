// The Harness plugin model. A plugin is a component that plugs into a
// kernel's software backplane, exposes a typed service surface (it *is* a
// Dispatcher), publishes its abstract interface as a ServiceDescriptor
// (from which WSDL is generated), and may leverage services of other
// plugins already loaded in the same kernel — the paper's
// "service-based leveraging of functionality among plugins" (Section 3).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "transport/rpc.hpp"
#include "util/error.hpp"
#include "wsdl/descriptor.hpp"

namespace h2::kernel {

class Kernel;

struct PluginInfo {
  std::string name;     ///< unique within a kernel ("p2p", "hpvmd", "mmul")
  std::string version;  ///< semantic-ish version string ("1.0")

  bool operator==(const PluginInfo&) const = default;
};

/// Base class for all Harness II plugins.
class Plugin : public net::Dispatcher {
 public:
  ~Plugin() override = default;

  virtual PluginInfo info() const = 0;

  /// The abstract service interface (becomes the WSDL portType).
  virtual wsdl::ServiceDescriptor descriptor() const = 0;

  /// Called once after the plugin is plugged into `kernel`. This is where
  /// a plugin acquires the services it leverages (Fig 2: hpvmd acquiring
  /// spawn/transport/event/table). The kernel outlives the plugin.
  virtual Status init(Kernel& kernel) {
    (void)kernel;
    return Status::success();
  }

  /// Called before unload; release acquired services here.
  virtual void shutdown() {}

  // ---- crash/restart lifecycle -------------------------------------------------
  // The simulation harness kills and revives containers abruptly. Unlike
  // shutdown(), a crash is not a chance to clean up — it models the
  // process dying mid-flight. Plugins that hold network endpoints or
  // cross-host sessions override these to drop and re-acquire them.

  /// The hosting container just went dark; any network-visible resource
  /// this plugin holds is already unreachable.
  virtual void on_crash() {}

  /// The hosting container came back on its original addresses.
  virtual void on_restart() {}

  // ---- mobility hooks ---------------------------------------------------------
  // "Mobile components may even move from one host to another during run
  // time" (Section 5). A migratable plugin serializes its state into a
  // Value here; the migration machinery ships it and restores it into a
  // fresh instance on the target container. Stateless plugins keep the
  // defaults (void state, trivially restorable).

  /// Snapshot of this instance's state, in a binding-marshalable Value.
  virtual Result<Value> save_state() { return Value::of_void("state"); }

  /// Rebuilds state from a snapshot produced by save_state() of the same
  /// plugin type. Default accepts only the void snapshot.
  virtual Status restore_state(const Value& state) {
    if (state.kind() == ValueKind::kVoid) return Status::success();
    return err::unsupported("plugin '" + info().name + "' cannot restore state");
  }
};

using PluginFactory = std::function<std::unique_ptr<Plugin>()>;

/// A named store of plugin factories — the stand-in for Harness's plugin
/// repositories ("some plug-ins are provided as part of the system
/// distribution ... others might be obtained from third-party
/// repositories"). Loading by name+version models dynamic code loading:
/// it can miss, and versions matter.
class PluginRepository {
 public:
  /// Registers a factory. Duplicate (name, version) is an error.
  Status add(std::string name, std::string version, PluginFactory factory);

  /// Instantiates `name`. Empty `version` selects the highest registered
  /// version (lexicographic, which is fine for "1.0" < "1.1" < "2.0").
  Result<std::unique_ptr<Plugin>> create(std::string_view name,
                                         std::string_view version = "") const;

  bool has(std::string_view name) const;
  std::vector<PluginInfo> available() const;
  std::size_t size() const { return factories_.size(); }

 private:
  struct Slot {
    PluginInfo info;
    PluginFactory factory;
  };
  std::vector<Slot> factories_;
};

}  // namespace h2::kernel
