#include "loop/epoll_driver.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>

#include "util/log.hpp"

namespace h2::loop {

namespace {

const Logger& logger() {
  static Logger instance("loop/epoll");
  return instance;
}

std::uint32_t to_epoll(unsigned interest) {
  std::uint32_t events = 0;
  if ((interest & kFdRead) != 0) events |= EPOLLIN;
  if ((interest & kFdWrite) != 0) events |= EPOLLOUT;
  return events | EPOLLRDHUP;  // always learn about peer half-close
}

unsigned from_epoll(std::uint32_t events) {
  unsigned out = 0;
  if ((events & EPOLLIN) != 0) out |= kFdRead;
  if ((events & EPOLLOUT) != 0) out |= kFdWrite;
  if ((events & EPOLLERR) != 0) out |= kFdError;
  if ((events & (EPOLLHUP | EPOLLRDHUP)) != 0) out |= kFdHangup;
  return out;
}

}  // namespace

EpollDriver::EpollDriver(EventLoop& loop, ThreadPool* pool)
    : loop_(loop), pool_(pool) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    logger().warn("epoll_create1 failed (errno " + std::to_string(errno) +
                  "); loop '" + loop_.name() + "' stays eager");
    return;
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    logger().warn("eventfd failed (errno " + std::to_string(errno) +
                  "); loop '" + loop_.name() + "' stays eager");
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  loop_.attach_driver(this);  // re-registers any already-watched fds
  thread_ = std::thread([this] { run(); });
}

EpollDriver::~EpollDriver() { stop(); }

void EpollDriver::stop() {
  if (thread_.joinable()) {
    stop_.store(true, std::memory_order_release);
    wake();
    thread_.join();
  }
  if (epoll_fd_ >= 0) {
    loop_.detach_driver();
    loop_.drain();  // run anything posted after the final in-thread drain
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

void EpollDriver::wake() {
  if (wake_fd_ < 0) return;
  wake_requests_.fetch_add(1, std::memory_order_relaxed);
  // Coalesce: while one eventfd write is in flight, further wakes skip
  // the syscall — the reactor drains the whole queue on that one wakeup.
  // The flag clears (in run()) after the eventfd is read and before the
  // drain; a post that enqueues after that drain started observes the
  // cleared flag (the task queue's mutex orders it) and writes afresh,
  // so no wakeup is ever lost.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  wake_writes_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t one = 1;
  // The eventfd counter is persistent: a write before epoll_wait still
  // wakes it, so there is no enqueue-vs-wait race to handle.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

Status EpollDriver::fd_add(int fd, unsigned interest) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return err::internal("epoll_ctl(ADD fd " + std::to_string(fd) +
                         "): errno " + std::to_string(errno));
  }
  return {};
}

void EpollDriver::fd_remove(int fd) {
  // Failure (ENOENT/EBADF) is fine: the kernel auto-removes closed fds
  // from the interest list.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EpollDriver::run() {
  running_.store(true, std::memory_order_release);
  loop_.drain();  // work posted between construction and thread start
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    int timeout_ms = -1;
    Nanos next = loop_.next_timer_deadline();
    if (next != kNoDeadline) {
      Nanos gap = next - wall_.now();
      if (gap < 0) gap = 0;
      // Round up so a timer never wakes a hair early and spins.
      timeout_ms = static_cast<int>(
          std::min<Nanos>((gap + kMillisecond - 1) / kMillisecond, 60'000));
    }
    int ready = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      logger().warn("epoll_wait on loop '" + loop_.name() + "': errno " +
                    std::to_string(errno));
      break;
    }
    for (int i = 0; i < ready; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        // Open the next coalescing window before draining, so a post
        // racing the drain below either lands in it or wakes us again.
        wake_pending_.store(false, std::memory_order_release);
        continue;
      }
      loop_.deliver_fd_event(fd, from_epoll(events[i].events));
    }
    loop_.fire_timers(wall_.now());
    std::size_t ran = loop_.drain();
    if (ran > 0) {
      batches_.fetch_add(1, std::memory_order_relaxed);
      tasks_.fetch_add(ran, std::memory_order_relaxed);
      if (ran > max_batch_.load(std::memory_order_relaxed)) {
        max_batch_.store(ran, std::memory_order_relaxed);  // single writer
      }
      if (ran == 1) {
        batch_1_.fetch_add(1, std::memory_order_relaxed);
      } else if (ran < 8) {
        batch_2_7_.fetch_add(1, std::memory_order_relaxed);
      } else if (ran < 64) {
        batch_8_63_.fetch_add(1, std::memory_order_relaxed);
      } else {
        batch_64_plus_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  loop_.drain();  // release run_sync() waiters posted before the stop
  running_.store(false, std::memory_order_release);
}

EpollDriver::WakeStats EpollDriver::wake_stats() const {
  WakeStats out;
  out.wake_requests = wake_requests_.load(std::memory_order_relaxed);
  out.wake_writes = wake_writes_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.tasks = tasks_.load(std::memory_order_relaxed);
  out.max_batch = max_batch_.load(std::memory_order_relaxed);
  out.batch_1 = batch_1_.load(std::memory_order_relaxed);
  out.batch_2_7 = batch_2_7_.load(std::memory_order_relaxed);
  out.batch_8_63 = batch_8_63_.load(std::memory_order_relaxed);
  out.batch_64_plus = batch_64_plus_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace h2::loop
