// EpollDriver — runs one EventLoop on its own OS thread: epoll for fd
// readiness, an eventfd for cross-thread wakeups (post/schedule/stop),
// and the loop's timer-wheel deadline as the wait timeout. An optional
// shared ThreadPool serves EventLoop::offload() so plugin work never
// blocks the reactor.
//
// Lifecycle: the constructor attaches to the loop and starts the
// thread; stop() (or the destructor) signals it, joins, runs one final
// drain so run_sync() waiters posted before the stop complete, and
// detaches — the loop reverts to eager mode with its state intact.
// Shut down the loop's clients (muxes, timers) before stopping the
// driver; a post() that races a completed stop() runs at the next
// eager drain instead of being lost.
#pragma once

#include <atomic>
#include <thread>

#include "loop/event_loop.hpp"

namespace h2 {
class ThreadPool;
}

namespace h2::loop {

class EpollDriver final : public Driver {
 public:
  /// Attaches to `loop` and starts the reactor thread. `pool` (may be
  /// nullptr) is borrowed for offload() work and must outlive stop().
  explicit EpollDriver(EventLoop& loop, ThreadPool* pool = nullptr);
  ~EpollDriver() override;

  EpollDriver(const EpollDriver&) = delete;
  EpollDriver& operator=(const EpollDriver&) = delete;

  /// False when epoll/eventfd setup failed; the loop stays eager.
  bool ok() const { return epoll_fd_ >= 0; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Cross-thread wakeup coalescing counters. `wake_writes <=
  /// wake_requests`: while one eventfd write is in flight, further
  /// posts skip the syscall and ride the same reactor wakeup; the batch
  /// fields record how many queued tasks each reactor drain then ran.
  struct WakeStats {
    std::uint64_t wake_requests = 0;  ///< wake() calls (posts, timers, stop)
    std::uint64_t wake_writes = 0;    ///< eventfd writes actually issued
    std::uint64_t batches = 0;        ///< reactor drains that ran >= 1 task
    std::uint64_t tasks = 0;          ///< tasks run across those drains
    std::uint64_t max_batch = 0;      ///< largest single drain
    std::uint64_t batch_1 = 0;        ///< drains running exactly 1 task
    std::uint64_t batch_2_7 = 0;
    std::uint64_t batch_8_63 = 0;
    std::uint64_t batch_64_plus = 0;
  };
  WakeStats wake_stats() const;

  /// Stops and joins the reactor thread, detaches the loop. Idempotent.
  void stop();

  // --- Driver ---
  void wake() override;
  Nanos now() const override { return wall_.now(); }
  bool threaded() const override { return true; }
  Status fd_add(int fd, unsigned interest) override;
  void fd_remove(int fd) override;
  ThreadPool* worker_pool() override { return pool_; }

 private:
  void run();

  EventLoop& loop_;
  ThreadPool* pool_;
  WallClock wall_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> wake_pending_{false};  ///< an eventfd write is in flight
  std::atomic<std::uint64_t> wake_requests_{0};
  std::atomic<std::uint64_t> wake_writes_{0};
  // Batch stats: written only by the reactor thread, relaxed-read by
  // wake_stats().
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> batch_1_{0};
  std::atomic<std::uint64_t> batch_2_7_{0};
  std::atomic<std::uint64_t> batch_8_63_{0};
  std::atomic<std::uint64_t> batch_64_plus_{0};
  std::thread thread_;
};

}  // namespace h2::loop
