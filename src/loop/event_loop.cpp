#include "loop/event_loop.hpp"

#include <condition_variable>
#include <utility>

#include "util/thread_pool.hpp"

namespace h2::loop {

EventLoop::EventLoop(std::string name) : name_(std::move(name)) {}

EventLoop::~EventLoop() = default;

void EventLoop::post(Task task) {
  Driver* driver = nullptr;
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
    ++stats_.posted;
    driver = driver_;
    if (driver != nullptr && !is_current()) ++stats_.cross_thread_posts;
    // wake() under the lock so a concurrent detach_driver() (which also
    // takes mu_) cannot free the driver out from under us.
    if (driver != nullptr) driver->wake();
  }
  if (driver == nullptr) drain();
}

void EventLoop::dispatch(Task task) {
  {
    std::lock_guard lock(mu_);
    if (driver_ != nullptr && !is_current()) {
      queue_.push_back(std::move(task));
      ++stats_.posted;
      ++stats_.cross_thread_posts;
      driver_->wake();
      return;
    }
    ++stats_.inline_runs;
  }
  CurrentGuard guard(*this);
  task();
}

TimerId EventLoop::schedule_impl(Nanos delay, Nanos period, Task task) {
  std::lock_guard lock(mu_);
  TimerId id = wheel_.add(now_locked(), delay, std::move(task), period);
  ++stats_.timers_scheduled;
  if (driver_ != nullptr) driver_->wake();  // re-derive the wait deadline
  return id;
}

TimerId EventLoop::schedule(Nanos delay, Task task) {
  return schedule_impl(delay, 0, std::move(task));
}

TimerId EventLoop::schedule_periodic(Nanos period, Task task) {
  return schedule_impl(period, period, std::move(task));
}

bool EventLoop::cancel_timer(TimerId id) {
  std::lock_guard lock(mu_);
  if (!wheel_.cancel(id)) return false;
  ++stats_.timers_cancelled;
  return true;
}

Status EventLoop::watch_fd(int fd, unsigned interest, FdCallback cb) {
  std::lock_guard lock(mu_);
  if (fds_.count(fd) != 0) {
    return err::already_exists("fd " + std::to_string(fd) +
                               " already watched on loop " + name_);
  }
  if (driver_ != nullptr) {
    if (auto status = driver_->fd_add(fd, interest); !status.ok()) {
      return status.context("watch_fd(" + name_ + ")");
    }
  }
  fds_.emplace(fd, FdEntry{interest, std::move(cb)});
  stats_.fds_watched = fds_.size();
  return {};
}

Status EventLoop::unwatch_fd(int fd) {
  std::lock_guard lock(mu_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return err::not_found("fd " + std::to_string(fd) + " not watched on loop " +
                          name_);
  }
  if (driver_ != nullptr) driver_->fd_remove(fd);
  fds_.erase(it);
  stats_.fds_watched = fds_.size();
  return {};
}

Status EventLoop::set_fd_interest(int fd, unsigned interest) {
  std::lock_guard lock(mu_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return err::not_found("fd " + std::to_string(fd) + " not watched on loop " +
                          name_);
  }
  if (it->second.interest == interest) return {};
  it->second.interest = interest;
  if (driver_ != nullptr) {
    // Drivers register with ADD-only semantics, so re-register.
    driver_->fd_remove(fd);
    if (auto status = driver_->fd_add(fd, interest); !status.ok()) {
      return status.context("set_fd_interest(" + name_ + ")");
    }
  }
  return {};
}

void EventLoop::run_sync(Task task) {
  bool inline_ok;
  {
    std::lock_guard lock(mu_);
    inline_ok = driver_ == nullptr || !driver_->threaded() || is_current();
  }
  if (inline_ok) {
    CurrentGuard guard(*this);
    task();
    return;
  }
  // Heap-shared rendezvous: the waiter can return (and unwind its stack)
  // the instant `done` flips, while the loop thread may still be inside
  // notify_one() — the state must outlive both sides, not live on the
  // waiting stack.
  struct SyncState {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto state = std::make_shared<SyncState>();
  post([task = std::move(task), state] {
    task();
    {
      std::lock_guard lock(state->mu);
      state->done = true;
    }
    state->cv.notify_one();
  });
  std::unique_lock lock(state->mu);
  state->cv.wait(lock, [&state] { return state->done; });
}

void EventLoop::offload(Task work, Task done) {
  ThreadPool* pool = nullptr;
  {
    std::lock_guard lock(mu_);
    if (driver_ != nullptr) pool = driver_->worker_pool();
  }
  if (pool != nullptr) {
    auto shared_work = std::make_shared<Task>(std::move(work));
    auto shared_done = std::make_shared<Task>(std::move(done));
    if (pool->post([this, shared_work, shared_done] {
          (*shared_work)();
          post(std::move(*shared_done));
        })) {
      return;
    }
    (*shared_work)();  // pool shut down: degrade to inline
    dispatch(std::move(*shared_done));
    return;
  }
  work();  // no pool: run inline
  dispatch(std::move(done));
}

Nanos EventLoop::now_locked() const {
  return driver_ != nullptr ? driver_->now() : wall_.now();
}

Nanos EventLoop::now() const {
  std::lock_guard lock(mu_);
  return now_locked();
}

LoopStats EventLoop::stats() const {
  std::lock_guard lock(mu_);
  LoopStats snapshot = stats_;
  snapshot.pending = queue_.size();
  snapshot.fds_watched = fds_.size();
  return snapshot;
}

void EventLoop::attach_driver(Driver* driver) {
  std::lock_guard lock(mu_);
  driver_ = driver;
  if (driver == nullptr) return;
  for (const auto& [fd, entry] : fds_) {
    (void)driver->fd_add(fd, entry.interest);
  }
}

void EventLoop::detach_driver() {
  std::lock_guard lock(mu_);
  if (driver_ != nullptr) {
    for (const auto& [fd, entry] : fds_) driver_->fd_remove(fd);
  }
  driver_ = nullptr;
}

bool EventLoop::has_driver() const {
  std::lock_guard lock(mu_);
  return driver_ != nullptr;
}

std::size_t EventLoop::drain(std::size_t max) {
  std::unique_lock lock(mu_);
  if (draining_) return 0;  // the draining thread will run our tasks
  draining_ = true;
  std::size_t ran = 0;
  while (ran < max && !queue_.empty()) {
    Task task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    {
      CurrentGuard guard(*this);
      task();
    }
    task = nullptr;  // release captures before re-locking
    lock.lock();
    ++stats_.executed;
    ++ran;
  }
  draining_ = false;
  return ran;
}

std::size_t EventLoop::fire_timers(Nanos now) {
  std::vector<TimerWheel::Due> due;
  {
    std::lock_guard lock(mu_);
    wheel_.collect_due(now, due);
    stats_.timers_fired += due.size();
  }
  if (due.empty()) return 0;
  CurrentGuard guard(*this);
  for (auto& timer : due) timer.task();
  return due.size();
}

Nanos EventLoop::next_timer_deadline() const {
  std::lock_guard lock(mu_);
  return wheel_.next_deadline();
}

void EventLoop::deliver_fd_event(int fd, unsigned events) {
  FdCallback cb;
  {
    std::lock_guard lock(mu_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) return;  // unwatched since the poller saw it
    cb = it->second.callback;
    ++stats_.fd_events;
  }
  CurrentGuard guard(*this);
  cb(events);
}

}  // namespace h2::loop
