// EventLoop — the dispatch seam every kernel, container, and transport
// reactor binds to. One loop owns: an MPSC task queue (cross-loop
// post()), a hashed timer wheel (heartbeats, anti-entropy, backoff),
// and an fd-interest table (socket readiness callbacks). The loop
// itself never starts a thread; a *driver* decides how it runs:
//
//   - no driver ("eager" mode, the default): post()/dispatch() run
//     tasks inline on the calling thread, exactly the synchronous
//     behavior the pre-loop codebase had. Existing call sites keep
//     their semantics (and the sim its byte-identical traces) without
//     opting in to anything.
//   - SimDriver: the sim harness steps every registered loop from one
//     VirtualClock, deterministically (fixed loop order, (deadline,id)
//     timer order, FIFO queues).
//   - EpollDriver: one OS thread per loop, epoll for fd readiness +
//     eventfd wakeup, an optional shared ThreadPool for offload().
//
// Threading contract: post()/dispatch()/schedule()/run_sync() are
// thread-safe. Tasks, timer callbacks, and fd callbacks execute on the
// loop's driving thread (is_current() is true inside them). watch_fd/
// unwatch_fd may be called from any thread, but the state a callback
// touches must only be freed from the loop thread (post the teardown).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "loop/timer_wheel.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace h2 {
class ThreadPool;
}

namespace h2::loop {

using Task = std::function<void()>;

/// Readiness bits delivered to fd callbacks (a poller-neutral subset).
enum FdEvents : unsigned {
  kFdRead = 1u << 0,
  kFdWrite = 1u << 1,
  kFdError = 1u << 2,   // POLLERR/POLLNVAL-class: the connection is gone
  kFdHangup = 1u << 3,  // peer closed; buffered bytes may remain readable
};

using FdCallback = std::function<void(unsigned events)>;

/// Counters for the no-lost-events invariant and loop introspection.
/// At quiescence every loop must satisfy pending == 0 and
/// posted == executed — a queued task that never ran is a lost event.
struct LoopStats {
  std::uint64_t posted = 0;             // tasks enqueued (post or deferred dispatch)
  std::uint64_t executed = 0;           // queued tasks run to completion
  std::uint64_t inline_runs = 0;        // dispatch() calls that ran inline
  std::uint64_t cross_thread_posts = 0; // posts from off the loop thread (driver mode)
  std::uint64_t timers_scheduled = 0;
  std::uint64_t timers_fired = 0;
  std::uint64_t timers_cancelled = 0;
  std::uint64_t fd_events = 0;
  std::size_t fds_watched = 0;
  std::size_t pending = 0;              // queue depth at the snapshot
};

class EventLoop;

/// How a loop is driven. Implementations: SimDriver (virtual time,
/// single-threaded), EpollDriver (own OS thread + epoll).
class Driver {
 public:
  virtual ~Driver() = default;
  /// Called after work is enqueued or a timer armed; must be safe from
  /// any thread and must eventually cause the driver to service the loop.
  virtual void wake() = 0;
  /// The loop's time base (VirtualClock in sim, monotonic wall otherwise).
  virtual Nanos now() const = 0;
  /// True when the driver services the loop from its own thread —
  /// run_sync() from foreign threads then blocks instead of running inline.
  virtual bool threaded() const = 0;
  /// Registers/removes an fd with the driver's poller. Thread-safe.
  virtual Status fd_add(int fd, unsigned interest) = 0;
  virtual void fd_remove(int fd) = 0;
  /// Pool for offload() work; nullptr = run offloaded work inline.
  virtual ThreadPool* worker_pool() { return nullptr; }
};

class EventLoop {
 public:
  explicit EventLoop(std::string name);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  const std::string& name() const { return name_; }

  /// Enqueues `task` to run on the loop (FIFO). In eager mode the
  /// calling thread drains the queue before returning unless another
  /// thread is already draining — ordering is preserved either way.
  void post(Task task);

  /// Runs `task` inline when that cannot break loop affinity (eager
  /// mode, or already on the loop thread); otherwise posts it. This is
  /// the default entry point for "deliver this to the loop's owner".
  void dispatch(Task task);

  /// True while the calling thread is executing this loop's tasks.
  bool is_current() const {
    return running_thread_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

  /// One-shot timer after `delay` (on the driver's time base).
  TimerId schedule(Nanos delay, Task task);
  /// Periodic timer; first fires one `period` from now.
  TimerId schedule_periodic(Nanos period, Task task);
  bool cancel_timer(TimerId id);

  /// Registers a readiness callback for `fd`. kFdError/kFdHangup are
  /// always delivered regardless of `interest`.
  Status watch_fd(int fd, unsigned interest, FdCallback cb);
  Status unwatch_fd(int fd);
  /// Changes a watched fd's readiness interest in place, keeping its
  /// callback — how a connection toggles write interest on and off as its
  /// outbound buffer fills and drains. Thread-safe, like watch_fd.
  Status set_fd_interest(int fd, unsigned interest);

  /// Runs `task` to completion before returning: inline when safe
  /// (eager mode, non-threaded driver, or already on the loop thread),
  /// otherwise posts and blocks until the loop thread ran it.
  void run_sync(Task task);

  /// Runs `work` on the driver's worker pool (or inline without one),
  /// then delivers `done` back through dispatch().
  void offload(Task work, Task done);

  /// Driver time base; monotonic wall clock in eager mode.
  Nanos now() const;

  LoopStats stats() const;

  // --- driver-facing API (also used directly by tests) ---

  /// Binds `driver` and registers every already-watched fd with it.
  void attach_driver(Driver* driver);
  /// Unbinds; the loop reverts to eager mode. Queued tasks survive and
  /// run at the next post()/drain().
  void detach_driver();
  bool has_driver() const;

  /// Runs up to `max` queued tasks on the calling thread; returns the
  /// number run. No-op if another thread is mid-drain.
  std::size_t drain(std::size_t max = SIZE_MAX);
  /// Fires every timer due at `now` in (deadline, id) order.
  std::size_t fire_timers(Nanos now);
  Nanos next_timer_deadline() const;
  /// Routes a poller event to the fd's callback (ignored if unwatched).
  void deliver_fd_event(int fd, unsigned events);

 private:
  struct FdEntry {
    unsigned interest;
    FdCallback callback;
  };

  /// Marks the calling thread as the loop's current executor for the
  /// guard's lifetime. Re-entrant on the same thread (inner guards are
  /// no-ops). In eager mode two threads may race the marker; that only
  /// widens is_current() transiently and eager mode runs inline anyway.
  class CurrentGuard {
   public:
    explicit CurrentGuard(EventLoop& loop) : loop_(loop) {
      auto me = std::this_thread::get_id();
      top_ = loop_.running_thread_.load(std::memory_order_acquire) != me;
      if (top_) loop_.running_thread_.store(me, std::memory_order_release);
    }
    ~CurrentGuard() {
      if (top_) {
        loop_.running_thread_.store(std::thread::id{},
                                    std::memory_order_release);
      }
    }
    CurrentGuard(const CurrentGuard&) = delete;
    CurrentGuard& operator=(const CurrentGuard&) = delete;

   private:
    EventLoop& loop_;
    bool top_;
  };

  TimerId schedule_impl(Nanos delay, Nanos period, Task task);
  Nanos now_locked() const;

  std::string name_;
  WallClock wall_;

  mutable std::mutex mu_;
  std::deque<Task> queue_;
  TimerWheel wheel_;
  std::map<int, FdEntry> fds_;
  Driver* driver_ = nullptr;
  bool draining_ = false;
  LoopStats stats_;

  std::atomic<std::thread::id> running_thread_{};
};

}  // namespace h2::loop
