// Hierarchical (cascading) timing wheel. The single-level TimerWheel is
// sized for short reactor timers: a deadline far beyond one rotation
// shares a slot with near deadlines and gets touched once per rotation,
// so a table of 1M long-lived leases would be rescanned over and over.
// Here level k has slots of width tick * slots^k — a lease lands in the
// coarsest level whose horizon covers it and *cascades* down one level
// at a time as its deadline approaches, so every entry is touched
// O(levels) times total and a collection costs O(elapsed ticks +
// cascaded + due), independent of how many timers are parked. This is
// the registry's lease wheel: 1M leases expire in O(expired) per tick.
//
// The payload is caller data (the registry stores doc ids), not a
// callback, so collections stay allocation-light and the owner resolves
// payloads under its own lock.
//
// Determinism: collect_due() returns entries sorted by (deadline, id),
// the same contract as TimerWheel. A clock leap past a level's whole
// rotation degrades to one full sweep of that level instead of walking
// every elapsed tick.
//
// Not thread-safe: the owner serializes access (XmlRegistry holds its
// write lock across mutations).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "loop/timer_wheel.hpp"
#include "util/clock.hpp"

namespace h2::loop {

template <typename Payload>
class HierWheel {
 public:
  /// `tick` is the finest slot width; each of the `levels` wheels has
  /// `slots` slots and is `slots` times coarser than the one below. The
  /// defaults (1ms x 256 x 4 levels) cover ~50 days before the top level
  /// starts revisiting entries once per top-level rotation.
  explicit HierWheel(Nanos tick = kMillisecond, std::size_t slots = 256,
                     std::size_t levels = 4)
      : tick_(tick > 0 ? tick : kMillisecond) {
    levels_.resize(levels > 0 ? levels : 1);
    for (Level& level : levels_) {
      level.buckets.resize(slots > 0 ? slots : 256);
    }
    Nanos width = tick_;
    for (Level& level : levels_) {
      level.tick = width;
      // Saturate instead of overflowing: a saturated level's horizon is
      // "forever", which only makes placement coarser, never wrong.
      if (width > std::numeric_limits<Nanos>::max() /
                      static_cast<Nanos>(slot_count())) {
        width = std::numeric_limits<Nanos>::max();
      } else {
        width *= static_cast<Nanos>(slot_count());
      }
    }
  }

  /// Arms an entry `delay` from `now` (delay <= 0 is due at the next
  /// collection). Returns an id for cancel().
  TimerId add(Nanos now, Nanos delay, Payload payload) {
    start(now);
    Nanos deadline = saturating_add(now, std::max<Nanos>(delay, 0));
    TimerId id = next_id_++;
    entries_.emplace(id, Entry{deadline, std::move(payload)});
    deadlines_.insert(deadline);
    place(id, deadline);
    return id;
  }

  /// Disarms; false if unknown or already collected. The slot keeps a
  /// stale id that collections drop lazily (same discipline as
  /// TimerWheel), so cancel is O(log n).
  bool cancel(TimerId id) {
    auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    deadlines_.erase(deadlines_.find(it->second.deadline));
    entries_.erase(it);
    return true;
  }

  struct Due {
    TimerId id;
    Nanos deadline;
    Payload payload;
  };

  /// Moves every entry with deadline <= now into `out`, sorted by
  /// (deadline, id). Work is proportional to elapsed ticks + entries
  /// cascaded + entries due — far-future entries are never visited.
  std::size_t collect_due(Nanos now, std::vector<Due>& out) {
    if (!started_) {
      start(now);
      return 0;
    }
    std::size_t before = out.size();
    // Advance every cursor first, then visit coarse levels before fine
    // ones: a cascade from level k places against fully-advanced finer
    // cursors, so it always lands in a bucket the finer level has not
    // passed — and that finer bucket is visited later in this same call,
    // refining it further if its slot has already arrived.
    std::vector<std::uint64_t> old_cursor(levels_.size());
    for (std::size_t k = 0; k < levels_.size(); ++k) {
      old_cursor[k] = levels_[k].cursor;
      std::uint64_t now_tick = tick_of(k, now);
      if (now_tick > levels_[k].cursor) levels_[k].cursor = now_tick;
    }
    for (std::size_t k = levels_.size(); k-- > 0;) {
      visit_level(k, old_cursor[k], now, out);
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
              [](const Due& a, const Due& b) {
                return a.deadline != b.deadline ? a.deadline < b.deadline
                                                : a.id < b.id;
              });
    return out.size() - before;
  }

  /// Earliest armed deadline, or kNoDeadline.
  Nanos next_deadline() const {
    return deadlines_.empty() ? kNoDeadline : *deadlines_.begin();
  }

  std::size_t size() const { return entries_.size(); }
  /// Entries moved between levels so far (observability: each entry
  /// cascades at most levels-1 times over its lifetime).
  std::uint64_t cascades() const { return cascades_; }

 private:
  struct Entry {
    Nanos deadline;
    Payload payload;
  };

  struct Level {
    Nanos tick = 0;                              ///< slot width at this level
    std::vector<std::vector<TimerId>> buckets;
    std::uint64_t cursor = 0;  ///< first tick index not yet fully collected
  };

  static Nanos saturating_add(Nanos a, Nanos b) {
    if (b > 0 && a > std::numeric_limits<Nanos>::max() - b) {
      return std::numeric_limits<Nanos>::max();
    }
    return a + b;
  }

  std::size_t slot_count() const { return levels_[0].buckets.size(); }

  std::uint64_t tick_of(std::size_t level, Nanos t) const {
    return static_cast<std::uint64_t>(t) /
           static_cast<std::uint64_t>(levels_[level].tick);
  }

  void start(Nanos now) {
    if (started_) return;
    started_ = true;
    for (std::size_t k = 0; k < levels_.size(); ++k) {
      levels_[k].cursor = tick_of(k, now);
    }
  }

  /// Hangs `id` in the finest level whose horizon (measured from that
  /// level's cursor) covers the deadline; past-cursor deadlines clamp
  /// into level 0's current tick so they fire at the next collection.
  void place(TimerId id, Nanos deadline) {
    for (std::size_t k = 0; k < levels_.size(); ++k) {
      Level& level = levels_[k];
      std::uint64_t tick = tick_of(k, deadline);
      if (tick < level.cursor) {
        levels_[0]
            .buckets[levels_[0].cursor % slot_count()]
            .push_back(id);
        return;
      }
      if (tick - level.cursor < slot_count() || k + 1 == levels_.size()) {
        level.buckets[tick % slot_count()].push_back(id);
        return;
      }
    }
  }

  /// Visits one bucket of one level: due entries move to `out`, entries
  /// whose level tick arrived but whose deadline has not cascade to a
  /// finer level, future-rotation entries stay.
  void visit_bucket(std::size_t k, std::size_t slot, std::uint64_t tick,
                    bool full_sweep, Nanos now, std::vector<Due>& out) {
    auto& bucket = levels_[k].buckets[slot];
    std::size_t keep = 0;
    // Indexed loop: place() from a cascade may push into this very
    // bucket at level 0; such entries have future deadlines and are kept.
    for (std::size_t r = 0; r < bucket.size(); ++r) {
      TimerId id = bucket[r];
      auto it = entries_.find(id);
      if (it == entries_.end()) continue;  // cancelled: drop the stale id
      Entry& entry = it->second;
      std::uint64_t entry_tick = tick_of(k, entry.deadline);
      if (entry.deadline <= now && (full_sweep || entry_tick == tick)) {
        deadlines_.erase(deadlines_.find(entry.deadline));
        out.push_back({id, entry.deadline, std::move(entry.payload)});
        entries_.erase(it);
        continue;
      }
      bool arrived = full_sweep ? entry_tick <= tick_of(k, now)
                                : entry_tick == tick;
      if (k > 0 && arrived) {
        // Deadline is inside the elapsed coarse slot but still in the
        // future: refine into a lower level.
        ++cascades_;
        place(id, entry.deadline);
        continue;
      }
      bucket[keep++] = id;  // future rotation of this slot
    }
    bucket.resize(keep);
  }

  void visit_level(std::size_t k, std::uint64_t from, Nanos now,
                   std::vector<Due>& out) {
    std::uint64_t now_tick = tick_of(k, now);
    if (now_tick < from) return;
    const std::size_t n = slot_count();
    if (now_tick - from >= n) {
      // Leap past a whole rotation: one full sweep instead of per-tick.
      for (std::size_t s = 0; s < n; ++s) {
        visit_bucket(k, s, 0, /*full_sweep=*/true, now, out);
      }
      return;
    }
    for (std::uint64_t tick = from; tick < now_tick; ++tick) {
      visit_bucket(k, tick % n, tick, false, now, out);
    }
    // The current tick is collected but not passed: a sub-tick deadline
    // later in this tick must still fire from a later collection.
    visit_bucket(k, now_tick % n, now_tick, false, now, out);
  }

  Nanos tick_;
  std::vector<Level> levels_;
  std::map<TimerId, Entry> entries_;
  std::multiset<Nanos> deadlines_;  ///< mirror for next_deadline()
  TimerId next_id_ = 1;
  std::uint64_t cascades_ = 0;
  bool started_ = false;
};

}  // namespace h2::loop
