// SimDriver — drives any number of EventLoops deterministically from
// one VirtualClock, all on the calling thread. The sim harness owns
// one and registers every kernel/container/DVM loop; stepping is:
//
//   run_ready()   - drain queues + fire due timers across all loops,
//                   in registration order, until quiescent
//   advance(d)    - step the clock forward by d, stopping at every
//                   timer deadline on the way and running it (plus any
//                   work it posts) before moving on
//
// Determinism: loops are always serviced in registration order, each
// queue is FIFO, and the timer wheel fires in (deadline, id) order —
// so a (scenario, seed) pair replays the identical schedule.
#pragma once

#include <vector>

#include "loop/event_loop.hpp"
#include "util/clock.hpp"

namespace h2::loop {

class SimDriver final : public Driver {
 public:
  explicit SimDriver(VirtualClock& clock) : clock_(clock) {}
  ~SimDriver() override {
    for (auto* loop : loops_) loop->detach_driver();
  }

  SimDriver(const SimDriver&) = delete;
  SimDriver& operator=(const SimDriver&) = delete;

  /// Registers `loop` and switches it to queued mode under this driver.
  /// Registration order is the service order — keep it fixed per seed.
  void add_loop(EventLoop& loop) {
    loops_.push_back(&loop);
    loop.attach_driver(this);
  }

  /// Runs every loop to quiescence at the current virtual time.
  /// Returns the number of tasks + timers run.
  std::size_t run_ready() {
    std::size_t total = 0;
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto* loop : loops_) {
        std::size_t ran = loop->drain();
        ran += loop->fire_timers(clock_.now());
        if (ran > 0) {
          progressed = true;
          total += ran;
        }
      }
    }
    return total;
  }

  /// Advances virtual time by `delta`, executing every timer deadline
  /// (and the work it triggers) in order along the way.
  std::size_t advance(Nanos delta) {
    Nanos target = clock_.now();
    if (delta > 0) {
      target = delta > std::numeric_limits<Nanos>::max() - target
                   ? std::numeric_limits<Nanos>::max()
                   : target + delta;
    }
    std::size_t total = run_ready();
    for (;;) {
      Nanos next = next_deadline();
      if (next == kNoDeadline || next > target) break;
      clock_.advance_to(next);
      total += run_ready();
    }
    clock_.advance_to(target);
    total += run_ready();
    return total;
  }

  /// Earliest timer deadline across all registered loops.
  Nanos next_deadline() const {
    Nanos next = kNoDeadline;
    for (const auto* loop : loops_) {
      next = std::min(next, loop->next_timer_deadline());
    }
    return next;
  }

  std::size_t loop_count() const { return loops_.size(); }

  // --- Driver ---
  void wake() override {}  // single-threaded: the harness pumps explicitly
  Nanos now() const override { return clock_.now(); }
  bool threaded() const override { return false; }
  Status fd_add(int, unsigned) override {
    return err::unsupported("SimDriver has no fd poller (sim I/O is virtual)");
  }
  void fd_remove(int) override {}

 private:
  VirtualClock& clock_;
  std::vector<EventLoop*> loops_;
};

}  // namespace h2::loop
