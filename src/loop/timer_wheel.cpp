#include "loop/timer_wheel.hpp"

#include <algorithm>

namespace h2::loop {

namespace {

Nanos saturating_add(Nanos a, Nanos b) {
  if (b > 0 && a > std::numeric_limits<Nanos>::max() - b) {
    return std::numeric_limits<Nanos>::max();
  }
  return a + b;
}

}  // namespace

TimerWheel::TimerWheel(Nanos tick, std::size_t slots)
    : tick_(tick > 0 ? tick : kMillisecond),
      slots_(slots > 0 ? slots : 256) {}

void TimerWheel::hang(TimerId id, Nanos deadline) {
  slots_[tick_of(deadline) % slots_.size()].push_back(id);
}

TimerId TimerWheel::add(Nanos now, Nanos delay, TimerTask task, Nanos period) {
  if (!started_) {
    cursor_ = tick_of(now);
    started_ = true;
  }
  Nanos deadline = saturating_add(now, std::max<Nanos>(delay, 0));
  // A caller's `now` must never land a timer in a tick the cursor has
  // already passed (it would wait a full rotation); clamp forward.
  if (tick_of(deadline) < cursor_) {
    deadline = static_cast<Nanos>(cursor_) * tick_;
  }
  TimerId id = next_id_++;
  entries_.emplace(id, Entry{deadline, std::max<Nanos>(period, 0), std::move(task)});
  deadlines_.insert(deadline);
  hang(id, deadline);
  return id;
}

bool TimerWheel::cancel(TimerId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  deadlines_.erase(deadlines_.find(it->second.deadline));
  entries_.erase(it);  // the slot keeps a stale id; collections drop it lazily
  return true;
}

void TimerWheel::collect_bucket(std::size_t slot, std::uint64_t tick,
                                bool full_sweep, Nanos now,
                                std::vector<Due>& out) {
  auto& bucket = slots_[slot];
  std::size_t keep = 0;
  // Indexed loop: a periodic re-hang may push_back into this very
  // bucket; the appended entry's deadline is > now, so it is kept.
  for (std::size_t r = 0; r < bucket.size(); ++r) {
    TimerId id = bucket[r];
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // cancelled: drop the stale id
    Entry& entry = it->second;
    bool due = entry.deadline <= now &&
               (full_sweep || tick_of(entry.deadline) == tick);
    if (!due) {
      bucket[keep++] = id;  // future rotation of this slot
      continue;
    }
    deadlines_.erase(deadlines_.find(entry.deadline));
    if (entry.period > 0) {
      out.push_back({id, entry.deadline, entry.task});
      Nanos next = entry.deadline;
      for (;;) {
        next = saturating_add(next, entry.period);
        if (next > now) break;
        out.push_back({id, next, entry.task});  // catch-up: one per missed period
      }
      entry.deadline = next;
      deadlines_.insert(next);
      hang(id, next);
    } else {
      out.push_back({id, entry.deadline, std::move(entry.task)});
      entries_.erase(it);
    }
  }
  bucket.resize(keep);
}

std::size_t TimerWheel::collect_due(Nanos now, std::vector<Due>& out) {
  if (!started_) {
    cursor_ = tick_of(now);
    started_ = true;
    return 0;
  }
  std::uint64_t now_tick = tick_of(now);
  if (entries_.empty()) {
    cursor_ = std::max(cursor_, now_tick);
    return 0;
  }
  if (now_tick < cursor_) return 0;
  std::size_t before = out.size();
  const std::size_t n = slots_.size();
  if (now_tick - cursor_ >= n) {
    // The whole wheel rotated at least once since the last collection:
    // visit each slot exactly once instead of every elapsed tick.
    for (std::size_t s = 0; s < n; ++s) {
      collect_bucket(s, 0, /*full_sweep=*/true, now, out);
    }
    cursor_ = now_tick;
  } else {
    while (cursor_ < now_tick) {
      collect_bucket(cursor_ % n, cursor_, false, now, out);
      ++cursor_;
    }
    // The current tick is collected but not passed: a sub-tick deadline
    // later in this same tick must still fire from a later collection.
    collect_bucket(now_tick % n, now_tick, false, now, out);
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
            [](const Due& a, const Due& b) {
              return a.deadline != b.deadline ? a.deadline < b.deadline
                                              : a.id < b.id;
            });
  return out.size() - before;
}

}  // namespace h2::loop
