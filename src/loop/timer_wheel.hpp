// Hashed timing wheel backing EventLoop::schedule(). Timers hang in
// slots_[deadline_tick % slots]; firing walks only the ticks that
// elapsed since the last collection, so a collection is O(elapsed
// ticks + fired) rather than O(all timers). A jump larger than one
// rotation (virtual-clock skew can leap years) degrades gracefully to
// a single full sweep of the wheel instead of walking every tick.
//
// Determinism: collect_due() returns timers sorted by (deadline, id) —
// two timers due in the same collection always fire in that order, so
// the sim harness replays byte-identical schedules. Periodic timers
// that fall behind fire once per missed period (catch-up entries are
// emitted inline, still in global deadline order after the sort).
//
// Not thread-safe: EventLoop serializes access under its own mutex.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "util/clock.hpp"

namespace h2::loop {

using TimerId = std::uint64_t;
using TimerTask = std::function<void()>;

/// Sentinel returned by next_deadline() when no timer is armed.
constexpr Nanos kNoDeadline = std::numeric_limits<Nanos>::max();

class TimerWheel {
 public:
  /// `tick` is the wheel granularity (slot width); deadlines keep full
  /// nanosecond precision — the tick only bounds how much bucket
  /// walking a collection does.
  explicit TimerWheel(Nanos tick = kMillisecond, std::size_t slots = 256);

  /// Arms a timer `delay` from `now` (delay <= 0 fires at the next
  /// collection). `period` > 0 makes it periodic: after each firing it
  /// re-arms at deadline + period.
  TimerId add(Nanos now, Nanos delay, TimerTask task, Nanos period = 0);

  /// Disarms; false if the id is unknown or already fired.
  bool cancel(TimerId id);

  /// A timer that became due in a collection. `task` is a copy for
  /// periodic timers (the armed entry keeps its own) and the moved-out
  /// original for one-shots.
  struct Due {
    TimerId id;
    Nanos deadline;
    TimerTask task;
  };

  /// Moves every timer with deadline <= now into `out`, sorted by
  /// (deadline, id); periodic timers are re-armed. Returns the count.
  std::size_t collect_due(Nanos now, std::vector<Due>& out);

  /// Earliest armed deadline, or kNoDeadline.
  Nanos next_deadline() const {
    return deadlines_.empty() ? kNoDeadline : *deadlines_.begin();
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Nanos deadline;
    Nanos period;  // 0 = one-shot
    TimerTask task;
  };

  std::uint64_t tick_of(Nanos t) const {
    return static_cast<std::uint64_t>(t) / static_cast<std::uint64_t>(tick_);
  }
  void hang(TimerId id, Nanos deadline);
  void collect_bucket(std::size_t slot, std::uint64_t tick, bool full_sweep,
                      Nanos now, std::vector<Due>& out);

  Nanos tick_;
  std::vector<std::vector<TimerId>> slots_;
  std::map<TimerId, Entry> entries_;
  std::multiset<Nanos> deadlines_;  // mirror of armed deadlines for next_deadline()
  TimerId next_id_ = 1;
  std::uint64_t cursor_ = 0;  // first tick not yet fully collected
  bool started_ = false;      // cursor_ lazily pinned to the first add/collect
};

}  // namespace h2::loop
