#include "obs/export.hpp"

#include <charconv>

namespace h2::obs {

namespace {
void append_number(std::string& out, std::int64_t v) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, ptr);
}

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out.append(buf, ptr);
}

std::string sanitize(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == '.' || c == '-' || c == '/') c = '_';
  }
  return out;
}
}  // namespace

std::string to_text(const Snapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    out.append(c.name);
    out.push_back(' ');
    append_number(out, c.value);
    out.push_back('\n');
  }
  for (const auto& g : snapshot.gauges) {
    out.append(g.name);
    out.push_back(' ');
    append_number(out, g.value);
    out.push_back('\n');
  }
  for (const auto& h : snapshot.histograms) {
    out.append(h.name);
    out.append(".count ");
    append_number(out, h.count);
    out.push_back('\n');
    out.append(h.name);
    out.append(".sum ");
    append_number(out, h.sum);
    out.push_back('\n');
  }
  return out;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    std::string name = sanitize(c.name);
    out.append("# TYPE ").append(name).append(" counter\n");
    out.append(name);
    out.push_back(' ');
    append_number(out, c.value);
    out.push_back('\n');
  }
  for (const auto& g : snapshot.gauges) {
    std::string name = sanitize(g.name);
    out.append("# TYPE ").append(name).append(" gauge\n");
    out.append(name);
    out.push_back(' ');
    append_number(out, g.value);
    out.push_back('\n');
  }
  for (const auto& h : snapshot.histograms) {
    std::string name = sanitize(h.name);
    out.append("# TYPE ").append(name).append(" histogram\n");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      out.append(name).append("_bucket{le=\"");
      append_number(out, h.bounds[i]);
      out.append("\"} ");
      append_number(out, cumulative);
      out.push_back('\n');
    }
    out.append(name).append("_bucket{le=\"+Inf\"} ");
    append_number(out, h.count);
    out.push_back('\n');
    out.append(name).append("_sum ");
    append_number(out, h.sum);
    out.push_back('\n');
    out.append(name).append("_count ");
    append_number(out, h.count);
    out.push_back('\n');
  }
  return out;
}

}  // namespace h2::obs
