// Text exporters for a metrics Snapshot. Two formats:
//   - to_text: "name value" lines, stable sort order — for logs, the
//     introspection plugin's `metrics` op, and test assertions.
//   - to_prometheus: Prometheus exposition format. Metric names are
//     sanitized ('.' and '-' → '_'); histograms expand to the standard
//     cumulative _bucket{le="..."} series plus _sum and _count.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace h2::obs {

std::string to_text(const Snapshot& snapshot);
std::string to_prometheus(const Snapshot& snapshot);

}  // namespace h2::obs
