#include "obs/metrics.hpp"

#include <algorithm>

namespace h2::obs {

Histogram::Histogram(std::vector<std::int64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = latency_bounds_ns();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(std::int64_t value) {
  std::size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::latency_bounds_ns() {
  return {1'000,          10'000,         100'000,        1'000'000,
          10'000'000,     100'000'000,    1'000'000'000,  10'000'000'000};
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    Snapshot::HistogramSample sample;
    sample.name = name;
    sample.bounds = h->bounds();
    sample.counts.resize(sample.bounds.size() + 1);
    for (std::size_t i = 0; i <= sample.bounds.size(); ++i) {
      sample.counts[i] = h->bucket_count(i);
    }
    sample.count = h->count();
    sample.sum = h->sum();
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

}  // namespace h2::obs
