// MetricsRegistry — the process-local metrics store behind every
// instrumented layer (kernel, container, DVM, transport). Design goals:
//   - hot path ≈ one cache line: Counter/Gauge are a single relaxed
//     atomic; Histogram is a fixed array of atomics indexed by a branchy
//     but allocation-free bucket search.
//   - handles are stable: counter()/gauge()/histogram() take the registry
//     mutex once to register, then return a reference that outlives the
//     call. Instrumented code caches the handle and never touches the
//     name map again.
//   - no globals: each SimNetwork (one simulated world) owns its own
//     registry, so deterministic runs stay deterministic and tests never
//     see each other's counters.
// Names follow "h2.<layer>.<instance>.<metric>" (see DESIGN.md §8).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace h2::obs {

/// Monotonically increasing count. add() is a relaxed fetch-add.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed value (queue depth, live component count).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Buckets are upper bounds (ascending); values
/// above the last bound land in an implicit overflow bucket. Observation
/// is a linear scan over ≤ a dozen bounds plus two relaxed atomics (the
/// bucket and the sum; the total count is derived from the buckets) — no
/// locks, no allocation.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(std::int64_t value);

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Total observations — the sum over all buckets (export path only).
  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i <= bounds_.size(); ++i) total += bucket_count(i);
    return total;
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Default latency bounds in nanoseconds: 1us … 10s, decade steps.
  static std::vector<std::int64_t> latency_bounds_ns();

 private:
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds_.size()+1
  std::atomic<std::int64_t> sum_{0};
};

/// Read-only copy of the registry contents at one instant, for exporters
/// and invariant checks. Values are sampled metric-by-metric (relaxed),
/// which is exact in the single-threaded simulator and approximately
/// consistent under concurrency.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t value;
  };
  struct HistogramSample {
    std::string name;
    std::vector<std::int64_t> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size()+1 (last = overflow)
    std::uint64_t count;
    std::int64_t sum;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference is stable for the registry's
  /// lifetime — cache it and increment without further lookups.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only when the histogram is created; empty means
  /// Histogram::latency_bounds_ns().
  Histogram& histogram(std::string_view name, std::vector<std::int64_t> bounds = {});

  /// Counter value by name, 0 if absent (convenient for tests/invariants).
  std::uint64_t counter_value(std::string_view name) const;

  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;  ///< guards the maps; metric objects are lock-free
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace h2::obs
