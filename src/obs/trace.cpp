#include "obs/trace.hpp"

#include <charconv>

namespace h2::obs {

namespace {
thread_local TraceContext g_current;

void append_hex16(std::string& out, std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kDigits[(v >> shift) & 0xF]);
  }
}

std::optional<std::uint64_t> parse_hex16(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v, 16);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return v;
}
}  // namespace

std::string encode_trace_header(const TraceContext& ctx) {
  std::string out;
  out.reserve(33);
  append_hex16(out, ctx.trace_id);
  out.push_back('-');
  append_hex16(out, ctx.span_id);
  return out;
}

std::optional<TraceContext> parse_trace_header(std::string_view text) {
  if (text.size() != 33 || text[16] != '-') return std::nullopt;
  auto trace = parse_hex16(text.substr(0, 16));
  auto span = parse_hex16(text.substr(17));
  if (!trace || !span || *trace == 0) return std::nullopt;
  return TraceContext{*trace, *span};
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    finish();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    previous_ = other.previous_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::finish() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  record_.end = tracer->now();
  g_current = previous_;
  tracer->record(std::move(record_));
}

TraceContext Tracer::current() { return g_current; }

Span Tracer::start_span(std::string_view name) {
  if (!enabled()) return Span();
  TraceContext parent = g_current;
  return make_span(name, parent, /*fresh_trace=*/!parent.valid());
}

Span Tracer::start_span(std::string_view name, TraceContext parent) {
  if (!enabled()) return Span();
  return make_span(name, parent, /*fresh_trace=*/!parent.valid());
}

Span Tracer::make_span(std::string_view name, TraceContext parent, bool fresh_trace) {
  SpanRecord record;
  record.span_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  record.trace_id = fresh_trace ? record.span_id : parent.trace_id;
  record.parent_span = fresh_trace ? 0 : parent.span_id;
  record.name = std::string(name);
  record.start = now();
  TraceContext previous = g_current;
  g_current = {record.trace_id, record.span_id};
  return Span(this, std::move(record), previous);
}

void Tracer::record(SpanRecord&& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() < kMaxSpans) {
    records_.push_back(std::move(record));
    return;
  }
  records_[ring_head_] = std::move(record);
  ring_head_ = (ring_head_ + 1) % kMaxSpans;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  if (records_.empty()) return out;
  out.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    out.push_back(records_[(ring_head_ + i) % records_.size()]);
  }
  return out;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  ring_head_ = 0;
}

}  // namespace h2::obs
