// Span tracer. A Span measures one logical operation (a kernel.call, a
// DynamicProxy invocation, a server-side dispatch); spans carry a
// (trace_id, span_id) pair that propagates across the wire in a SOAP
// header (`<h2:Trace>` in the h2 trace namespace, mustUnderstand=0), so
// one client call threads a single trace id through every hop.
//
// Cost model: the tracer is *disabled by default*. A disabled tracer
// hands out inert Spans — one branch, no ids, no clock reads, no
// recording — so instrumented hot paths stay within the <5% overhead
// budget (see bench/bench_observability.cpp). Enabled, each span costs
// two clock reads, an id fetch-add, and one mutex-protected append into
// a bounded ring of SpanRecords.
//
// The "current span" is thread-local: starting a span makes it current
// for its lifetime and restores the previous context on finish, which is
// how child spans (and outbound SOAP headers) find their parent without
// explicit plumbing.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"

namespace h2::obs {

/// Identity of the currently-executing span, as propagated on the wire.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// One finished span, as kept in the tracer's ring buffer.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  ///< 0 for a root span
  std::string name;
  std::string note;  ///< free-form annotation (e.g. serving host)
  Nanos start = 0;
  Nanos end = 0;
  bool ok = true;
};

/// SOAP header element carrying the context: name "Trace" in the h2
/// trace namespace, value "<trace_id-hex>-<span_id-hex>".
inline constexpr std::string_view kTraceHeaderName = "Trace";
inline constexpr std::string_view kTraceHeaderNs = "http://harness2/trace";

std::string encode_trace_header(const TraceContext& ctx);
std::optional<TraceContext> parse_trace_header(std::string_view text);

class Tracer;

/// RAII span handle. Move-only; records itself on destruction (or an
/// explicit finish()). A default-constructed / disabled-tracer span is
/// inert and free.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  bool active() const { return tracer_ != nullptr; }
  TraceContext context() const { return {record_.trace_id, record_.span_id}; }
  void set_ok(bool ok) { record_.ok = ok; }
  void annotate(std::string note) { record_.note = std::move(note); }

  /// Ends the span now, records it, and restores the previous
  /// thread-local context. Idempotent.
  void finish();

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record, TraceContext previous)
      : tracer_(tracer), record_(std::move(record)), previous_(previous) {}

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
  TraceContext previous_;  ///< thread-local context to restore on finish
};

class Tracer {
 public:
  /// `clock` supplies span timestamps; null means all timestamps are 0
  /// (spans still carry ids and structure).
  explicit Tracer(Clock* clock = nullptr) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Child of the calling thread's current span (or a new root trace).
  /// Inert span when disabled.
  Span start_span(std::string_view name);
  /// Server-side entry point: continue the trace carried by `parent`
  /// (typically parsed from the wire header).
  Span start_span(std::string_view name, TraceContext parent);

  /// The calling thread's current context; invalid when no span is open.
  static TraceContext current();

  /// Copy of the recorded spans, oldest first.
  std::vector<SpanRecord> spans() const;
  std::size_t span_count() const;
  /// Spans the ring buffer had to evict.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void clear();

 private:
  friend class Span;
  static constexpr std::size_t kMaxSpans = 4096;

  Span make_span(std::string_view name, TraceContext parent, bool fresh_trace);
  void record(SpanRecord&& record);
  Nanos now() const { return clock_ != nullptr ? clock_->now() : 0; }

  std::atomic<bool> enabled_{false};
  Clock* clock_ = nullptr;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;  ///< ring once kMaxSpans is reached
  std::size_t ring_head_ = 0;
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace h2::obs
