// The small standard plugins: ping, time (WSTime, Fig 7), table lookup,
// event-bus facade, and process spawn.
#include <atomic>
#include <map>

#include "encoding/xdr.hpp"
#include "kernel/kernel.hpp"
#include "plugins/mux_plugin.hpp"
#include "plugins/standard.hpp"

namespace h2::plugins {

namespace {

// ---- ping ---------------------------------------------------------------------

class PingPlugin final : public MuxPlugin {
 public:
  PingPlugin() {
    add_op("ping", [this](std::span<const Value> params) -> Result<Value> {
      ++count_;
      if (params.empty()) return Value::of_bytes({}, "return");
      auto payload = params[0].as_bytes();
      if (!payload.ok()) return payload.error();
      return Value::of_bytes(std::move(*payload), "return");
    });
    add_op("count", [this](std::span<const Value>) -> Result<Value> {
      return Value::of_int(count_, "return");
    });
  }

  kernel::PluginInfo info() const override { return {"ping", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "Ping";
    d.operations.push_back({"ping", {{"payload", ValueKind::kBytes}}, ValueKind::kBytes});
    d.operations.push_back({"count", {}, ValueKind::kInt});
    return d;
  }

 private:
  std::int64_t count_ = 0;
};

// ---- time (WSTime) --------------------------------------------------------------

class TimePlugin final : public MuxPlugin {
 public:
  TimePlugin() {
    add_op("getTime", [this](std::span<const Value>) -> Result<Value> {
      // Formats the kernel's (virtual) network time; deterministic in
      // simulation, monotonic in all cases.
      Nanos now = kernel_ != nullptr ? kernel_->network().clock().now() : 0;
      Nanos secs = now / kSecond;
      Nanos millis = (now % kSecond) / kMillisecond;
      char buf[64];
      std::snprintf(buf, sizeof buf, "T+%lld.%03llds", static_cast<long long>(secs),
                    static_cast<long long>(millis));
      return Value::of_string(buf, "return");
    });
  }

  Status init(kernel::Kernel& kernel) override {
    kernel_ = &kernel;
    return Status::success();
  }

  kernel::PluginInfo info() const override { return {"time", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "WSTime";
    d.operations.push_back({"getTime", {}, ValueKind::kString});
    return d;
  }

 private:
  kernel::Kernel* kernel_ = nullptr;
};

// ---- table lookup -----------------------------------------------------------------

class TablePlugin final : public MuxPlugin {
 public:
  TablePlugin() {
    add_op("put", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("put(key, value)");
      auto key = params[0].as_string();
      if (!key.ok()) return key.error();
      auto value = params[1].as_string();
      if (!value.ok()) return value.error();
      table_[std::move(*key)] = std::move(*value);
      return Value::of_void();
    });
    add_op("get", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("get(key)");
      auto key = params[0].as_string();
      if (!key.ok()) return key.error();
      auto it = table_.find(*key);
      if (it == table_.end()) return err::not_found("table: no key '" + *key + "'");
      return Value::of_string(it->second, "return");
    });
    add_op("remove", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("remove(key)");
      auto key = params[0].as_string();
      if (!key.ok()) return key.error();
      return Value::of_bool(table_.erase(*key) > 0, "return");
    });
    add_op("size", [this](std::span<const Value>) -> Result<Value> {
      return Value::of_int(static_cast<std::int64_t>(table_.size()), "return");
    });
  }

  kernel::PluginInfo info() const override { return {"table", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "Table";
    d.operations.push_back({"put",
                            {{"key", ValueKind::kString}, {"value", ValueKind::kString}},
                            ValueKind::kVoid});
    d.operations.push_back({"get", {{"key", ValueKind::kString}}, ValueKind::kString});
    d.operations.push_back({"remove", {{"key", ValueKind::kString}}, ValueKind::kBool});
    d.operations.push_back({"size", {}, ValueKind::kInt});
    return d;
  }

  // Mobility: a lookup table is trivially serializable key/value state.
  Result<Value> save_state() override {
    enc::XdrWriter w;
    w.put_u32(static_cast<std::uint32_t>(table_.size()));
    for (const auto& [key, value] : table_) {
      w.put_string(key);
      w.put_string(value);
    }
    auto bytes = w.take();
    return Value::of_bytes(
        std::vector<std::uint8_t>(bytes.bytes().begin(), bytes.bytes().end()), "state");
  }

  Status restore_state(const Value& state) override {
    if (state.kind() == ValueKind::kVoid) return Status::success();
    auto bytes = state.as_bytes();
    if (!bytes.ok()) return bytes.error().context("table restore");
    enc::XdrReader r(*bytes);
    auto count = r.get_u32();
    if (!count.ok()) return count.error();
    std::map<std::string, std::string> restored;
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto key = r.get_string();
      if (!key.ok()) return key.error();
      auto value = r.get_string();
      if (!value.ok()) return value.error();
      restored[std::move(*key)] = std::move(*value);
    }
    if (!r.exhausted()) return err::parse("table restore: trailing bytes");
    table_ = std::move(restored);
    return Status::success();
  }

 private:
  std::map<std::string, std::string> table_;
};

// ---- event facade -----------------------------------------------------------------

class EventPlugin final : public MuxPlugin {
 public:
  EventPlugin() {
    add_op("publish", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("publish(topic, message)");
      auto topic = params[0].as_string();
      if (!topic.ok()) return topic.error();
      if (kernel_ == nullptr) return err::internal("event plugin not initialized");
      std::size_t delivered = kernel_->events().publish(*topic, params[1]);
      return Value::of_int(static_cast<std::int64_t>(delivered), "return");
    });
    add_op("subscribers", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("subscribers(topic)");
      auto topic = params[0].as_string();
      if (!topic.ok()) return topic.error();
      if (kernel_ == nullptr) return err::internal("event plugin not initialized");
      return Value::of_int(
          static_cast<std::int64_t>(kernel_->events().subscriber_count(*topic)), "return");
    });
  }

  Status init(kernel::Kernel& kernel) override {
    kernel_ = &kernel;
    return Status::success();
  }

  kernel::PluginInfo info() const override { return {"event", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "Event";
    d.operations.push_back({"publish",
                            {{"topic", ValueKind::kString}, {"message", ValueKind::kString}},
                            ValueKind::kInt});
    d.operations.push_back({"subscribers", {{"topic", ValueKind::kString}}, ValueKind::kInt});
    return d;
  }

 private:
  kernel::Kernel* kernel_ = nullptr;
};

// ---- spawn (process management) ------------------------------------------------------

class SpawnPlugin final : public MuxPlugin {
 public:
  SpawnPlugin() {
    add_op("spawn", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("spawn(name)");
      auto name = params[0].as_string();
      if (!name.ok()) return name.error();
      std::int64_t id = next_id_++;
      tasks_[id] = {*name, true};
      return Value::of_int(id, "return");
    });
    add_op("kill", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("kill(id)");
      auto id = params[0].as_int();
      if (!id.ok()) return id.error();
      auto it = tasks_.find(*id);
      if (it == tasks_.end() || !it->second.running) {
        return Value::of_bool(false, "return");
      }
      it->second.running = false;
      return Value::of_bool(true, "return");
    });
    add_op("status", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("status(id)");
      auto id = params[0].as_int();
      if (!id.ok()) return id.error();
      auto it = tasks_.find(*id);
      if (it == tasks_.end()) return Value::of_string("unknown", "return");
      return Value::of_string(it->second.running ? "running" : "dead", "return");
    });
    add_op("count", [this](std::span<const Value>) -> Result<Value> {
      std::int64_t running = 0;
      for (const auto& [id, task] : tasks_) {
        if (task.running) ++running;
      }
      return Value::of_int(running, "return");
    });
  }

  kernel::PluginInfo info() const override { return {"spawn", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "Spawn";
    d.operations.push_back({"spawn", {{"name", ValueKind::kString}}, ValueKind::kInt});
    d.operations.push_back({"kill", {{"id", ValueKind::kInt}}, ValueKind::kBool});
    d.operations.push_back({"status", {{"id", ValueKind::kInt}}, ValueKind::kString});
    d.operations.push_back({"count", {}, ValueKind::kInt});
    return d;
  }

 private:
  struct Task {
    std::string name;
    bool running = false;
  };
  std::map<std::int64_t, Task> tasks_;
  std::int64_t next_id_ = 1;
};

}  // namespace

std::unique_ptr<kernel::Plugin> make_ping_plugin() { return std::make_unique<PingPlugin>(); }
std::unique_ptr<kernel::Plugin> make_time_plugin() { return std::make_unique<TimePlugin>(); }
std::unique_ptr<kernel::Plugin> make_table_plugin() { return std::make_unique<TablePlugin>(); }
std::unique_ptr<kernel::Plugin> make_event_plugin() { return std::make_unique<EventPlugin>(); }
std::unique_ptr<kernel::Plugin> make_spawn_plugin() { return std::make_unique<SpawnPlugin>(); }

}  // namespace h2::plugins
