// Compute plugins: the MatMul service of the paper's Figure 8 and a
// stateful LAPACK-lite service for the Section 6 locality scenario. The
// LAPACK plugin is the canonical target for the localobject binding: a
// *specific instance* holds the factorized matrix, so clients must bind to
// that instance, not merely to the type.
#include "encoding/xdr.hpp"
#include "kernel/kernel.hpp"
#include "plugins/linalg.hpp"
#include "plugins/mux_plugin.hpp"
#include "plugins/standard.hpp"

namespace h2::plugins {

namespace {

Result<std::pair<std::vector<double>, std::size_t>> square_arg(const Value& value) {
  auto data = value.as_doubles();
  if (!data.ok()) return data.error();
  auto n = linalg::square_dim(data->size());
  if (!n.ok()) return n.error();
  return std::make_pair(std::move(*data), *n);
}

// ---- MatMul (Fig 8) -----------------------------------------------------------

class MatMulPlugin final : public MuxPlugin {
 public:
  MatMulPlugin() {
    add_op("getResult", [](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("getResult(mata, matb)");
      auto a = square_arg(params[0]);
      if (!a.ok()) return a.error().context("mata");
      auto b = square_arg(params[1]);
      if (!b.ok()) return b.error().context("matb");
      if (a->second != b->second) {
        return err::invalid_argument("matrix dimensions differ: " +
                                     std::to_string(a->second) + " vs " +
                                     std::to_string(b->second));
      }
      return Value::of_doubles(linalg::matmul_naive(a->first, b->first, a->second),
                               "return");
    });
  }

  kernel::PluginInfo info() const override { return {"mmul", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "MatMul";
    d.operations.push_back({"getResult",
                            {{"mata", ValueKind::kDoubleArray},
                             {"matb", ValueKind::kDoubleArray}},
                            ValueKind::kDoubleArray});
    return d;
  }
};

// ---- LAPACK-lite ---------------------------------------------------------------

class LapackPlugin final : public MuxPlugin {
 public:
  LapackPlugin() {
    add_op("matmul", [](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("matmul(a, b)");
      auto a = square_arg(params[0]);
      if (!a.ok()) return a.error().context("a");
      auto b = square_arg(params[1]);
      if (!b.ok()) return b.error().context("b");
      if (a->second != b->second) return err::invalid_argument("dimension mismatch");
      return Value::of_doubles(linalg::matmul_blocked(a->first, b->first, a->second),
                               "return");
    });
    add_op("setMatrix", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("setMatrix(a)");
      auto a = square_arg(params[0]);
      if (!a.ok()) return a.error();
      matrix_ = std::move(a->first);
      n_ = a->second;
      factored_ = false;
      return Value::of_void();
    });
    add_op("factor", [this](std::span<const Value>) -> Result<Value> {
      if (n_ == 0) return err::invalid_argument("factor: no matrix set");
      if (auto status = linalg::lu_factor(matrix_, n_, pivots_); !status.ok()) {
        factored_ = false;
        return status.error();
      }
      factored_ = true;
      return Value::of_void();
    });
    add_op("solve", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("solve(b)");
      if (!factored_) return err::invalid_argument("solve: matrix not factored");
      auto b = params[0].as_doubles();
      if (!b.ok()) return b.error();
      if (b->size() != n_) {
        return err::invalid_argument("solve: rhs has " + std::to_string(b->size()) +
                                     " entries, matrix is " + std::to_string(n_) + "x" +
                                     std::to_string(n_));
      }
      return Value::of_doubles(linalg::lu_solve(matrix_, pivots_, *b, n_), "return");
    });
    add_op("norm", [](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("norm(a)");
      auto a = params[0].as_doubles();
      if (!a.ok()) return a.error();
      return Value::of_double(linalg::frobenius_norm(*a), "return");
    });
    add_op("dim", [this](std::span<const Value>) -> Result<Value> {
      return Value::of_int(static_cast<std::int64_t>(n_), "return");
    });
  }

  kernel::PluginInfo info() const override { return {"lapack", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "Lapack";
    d.operations.push_back({"matmul",
                            {{"a", ValueKind::kDoubleArray}, {"b", ValueKind::kDoubleArray}},
                            ValueKind::kDoubleArray});
    d.operations.push_back({"setMatrix", {{"a", ValueKind::kDoubleArray}}, ValueKind::kVoid});
    d.operations.push_back({"factor", {}, ValueKind::kVoid});
    d.operations.push_back({"solve", {{"b", ValueKind::kDoubleArray}}, ValueKind::kDoubleArray});
    d.operations.push_back({"norm", {{"a", ValueKind::kDoubleArray}}, ValueKind::kDouble});
    d.operations.push_back({"dim", {}, ValueKind::kInt});
    return d;
  }

  // Mobility: the whole point of the paper's localobject binding is that
  // this instance is stateful — so it is also the canonical migratable
  // component. The snapshot is an XDR-encoded blob.
  Result<Value> save_state() override {
    enc::XdrWriter w;
    w.put_u32(static_cast<std::uint32_t>(n_));
    w.put_bool(factored_);
    w.put_f64_array(matrix_);
    w.put_u32(static_cast<std::uint32_t>(pivots_.size()));
    for (std::size_t p : pivots_) w.put_u32(static_cast<std::uint32_t>(p));
    auto bytes = w.take();
    return Value::of_bytes(
        std::vector<std::uint8_t>(bytes.bytes().begin(), bytes.bytes().end()), "state");
  }

  Status restore_state(const Value& state) override {
    if (state.kind() == ValueKind::kVoid) return Status::success();
    auto bytes = state.as_bytes();
    if (!bytes.ok()) return bytes.error().context("lapack restore");
    enc::XdrReader r(*bytes);
    auto n = r.get_u32();
    if (!n.ok()) return n.error();
    auto factored = r.get_bool();
    if (!factored.ok()) return factored.error();
    auto matrix = r.get_f64_array();
    if (!matrix.ok()) return matrix.error();
    auto pivot_count = r.get_u32();
    if (!pivot_count.ok()) return pivot_count.error();
    std::vector<std::size_t> pivots;
    pivots.reserve(*pivot_count);
    for (std::uint32_t i = 0; i < *pivot_count; ++i) {
      auto p = r.get_u32();
      if (!p.ok()) return p.error();
      pivots.push_back(*p);
    }
    if (!r.exhausted()) return err::parse("lapack restore: trailing bytes");
    if (matrix->size() != static_cast<std::size_t>(*n) * *n) {
      return err::parse("lapack restore: matrix size mismatch");
    }
    n_ = *n;
    factored_ = *factored;
    matrix_ = std::move(*matrix);
    pivots_ = std::move(pivots);
    return Status::success();
  }

 private:
  std::vector<double> matrix_;   // holds LU after factor()
  std::vector<std::size_t> pivots_;
  std::size_t n_ = 0;
  bool factored_ = false;
};

}  // namespace

std::unique_ptr<kernel::Plugin> make_mmul_plugin() {
  return std::make_unique<MatMulPlugin>();
}
std::unique_ptr<kernel::Plugin> make_lapack_plugin() {
  return std::make_unique<LapackPlugin>();
}

}  // namespace h2::plugins
