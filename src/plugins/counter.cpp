// Counter plugin — the resilience layer's side-effect witness. Its one
// mutating operation, add(id, delta), is deliberately NOT idempotent: the
// total moves on every execution, and the plugin remembers every id it
// has applied. If a retried call ever reaches dispatch twice (dedup
// disabled, or a broken idempotency key), the repeat is tallied in dups —
// which is exactly what the retry-storm scenario's at-most-once invariant
// inspects on every replica.
#include <set>

#include "plugins/mux_plugin.hpp"
#include "plugins/standard.hpp"

namespace h2::plugins {

namespace {

class CounterPlugin final : public MuxPlugin {
 public:
  CounterPlugin() {
    add_op("add", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) {
        return err::invalid_argument("counter.add wants (id, delta)");
      }
      auto id = params[0].as_string();
      if (!id.ok()) return id.error();
      auto delta = params[1].as_int();
      if (!delta.ok()) return delta.error();
      if (!seen_.insert(*id).second) {
        ++dups_;  // the same logical operation executed again
      }
      ++applied_;
      total_ += *delta;
      return Value::of_int(total_, "return");
    });
    add_op("total", [this](std::span<const Value>) -> Result<Value> {
      return Value::of_int(total_, "return");
    });
    add_op("applied", [this](std::span<const Value>) -> Result<Value> {
      return Value::of_int(applied_, "return");
    });
    add_op("dups", [this](std::span<const Value>) -> Result<Value> {
      return Value::of_int(dups_, "return");
    });
  }

  kernel::PluginInfo info() const override { return {"counter", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "Counter";
    d.operations.push_back({"add",
                            {{"id", ValueKind::kString}, {"delta", ValueKind::kInt}},
                            ValueKind::kInt});
    d.operations.push_back({"total", {}, ValueKind::kInt});
    d.operations.push_back({"applied", {}, ValueKind::kInt});
    d.operations.push_back({"dups", {}, ValueKind::kInt});
    return d;
  }

 private:
  std::set<std::string> seen_;  ///< logical-operation ids already applied
  std::int64_t total_ = 0;
  std::int64_t applied_ = 0;  ///< executions, duplicates included
  std::int64_t dups_ = 0;     ///< executions with an already-seen id
};

}  // namespace

std::unique_ptr<kernel::Plugin> make_counter_plugin() {
  return std::make_unique<CounterPlugin>();
}

}  // namespace h2::plugins
