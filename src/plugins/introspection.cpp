// The introspection plugin: the observability layer made queryable through
// the same plugin/RPC machinery it observes. Deploy it on a container and
// any peer can pull the node's full metrics snapshot (text or Prometheus
// exposition format), a single metric value, or the recorded trace spans
// over SOAP or XDR — no side channel, no special transport.
#include <string>

#include "kernel/kernel.hpp"
#include "obs/export.hpp"
#include "plugins/mux_plugin.hpp"
#include "plugins/standard.hpp"

namespace h2::plugins {

namespace {

class IntrospectionPlugin final : public MuxPlugin {
 public:
  IntrospectionPlugin() {
    add_op("metrics", [this](std::span<const Value>) -> Result<Value> {
      auto reg = registry();
      if (!reg.ok()) return reg.error();
      return Value::of_string(obs::to_text(reg->snapshot()), "return");
    });
    add_op("prometheus", [this](std::span<const Value>) -> Result<Value> {
      auto reg = registry();
      if (!reg.ok()) return reg.error();
      return Value::of_string(obs::to_prometheus(reg->snapshot()), "return");
    });
    add_op("metric", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("metric(name)");
      auto name = params[0].as_string();
      if (!name.ok()) return name.error();
      auto reg = registry();
      if (!reg.ok()) return reg.error();
      // Counters and gauges resolve to their value, histograms to their
      // observation count.
      auto snapshot = reg->snapshot();
      for (const auto& counter : snapshot.counters) {
        if (counter.name == *name) {
          return Value::of_int(static_cast<std::int64_t>(counter.value), "return");
        }
      }
      for (const auto& gauge : snapshot.gauges) {
        if (gauge.name == *name) return Value::of_int(gauge.value, "return");
      }
      for (const auto& histogram : snapshot.histograms) {
        if (histogram.name == *name) {
          return Value::of_int(static_cast<std::int64_t>(histogram.count), "return");
        }
      }
      return err::not_found("introspection: no metric '" + *name + "'");
    });
    add_op("spans", [this](std::span<const Value>) -> Result<Value> {
      if (kernel_ == nullptr) return err::internal("introspection not initialized");
      std::string out;
      for (const auto& span : kernel_->network().tracer().spans()) {
        out += obs::encode_trace_header({span.trace_id, span.span_id});
        out += ' ';
        out += span.name;
        out += span.ok ? " ok" : " error";
        out += '\n';
      }
      return Value::of_string(std::move(out), "return");
    });
  }

  Status init(kernel::Kernel& kernel) override {
    kernel_ = &kernel;
    return Status::success();
  }

  kernel::PluginInfo info() const override { return {"introspection", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "Introspection";
    d.operations.push_back({"metrics", {}, ValueKind::kString});
    d.operations.push_back({"prometheus", {}, ValueKind::kString});
    d.operations.push_back({"metric", {{"name", ValueKind::kString}}, ValueKind::kInt});
    d.operations.push_back({"spans", {}, ValueKind::kString});
    return d;
  }

 private:
  Result<obs::MetricsRegistry&> registry() {
    if (kernel_ == nullptr) return err::internal("introspection not initialized");
    return kernel_->network().metrics();
  }

  kernel::Kernel* kernel_ = nullptr;
};

}  // namespace

std::unique_ptr<kernel::Plugin> make_introspection_plugin() {
  return std::make_unique<IntrospectionPlugin>();
}

}  // namespace h2::plugins
