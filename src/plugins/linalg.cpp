#include "plugins/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace h2::linalg {

Result<std::size_t> square_dim(std::size_t elements) {
  auto n = static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(elements))));
  if (n * n != elements) {
    return err::invalid_argument("array of " + std::to_string(elements) +
                                 " elements is not a square matrix");
  }
  return n;
}

std::vector<double> matmul_naive(std::span<const double> a, std::span<const double> b,
                                 std::size_t n) {
  std::vector<double> c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = sum;
    }
  }
  return c;
}

std::vector<double> matmul_blocked(std::span<const double> a, std::span<const double> b,
                                   std::size_t n, std::size_t block) {
  std::vector<double> c(n * n, 0.0);
  if (block == 0) block = 48;
  // ikj order inside blocks keeps B accesses sequential.
  for (std::size_t ii = 0; ii < n; ii += block) {
    std::size_t imax = std::min(ii + block, n);
    for (std::size_t kk = 0; kk < n; kk += block) {
      std::size_t kmax = std::min(kk + block, n);
      for (std::size_t jj = 0; jj < n; jj += block) {
        std::size_t jmax = std::min(jj + block, n);
        for (std::size_t i = ii; i < imax; ++i) {
          for (std::size_t k = kk; k < kmax; ++k) {
            double aik = a[i * n + k];
            const double* brow = b.data() + k * n;
            double* crow = c.data() + i * n;
            for (std::size_t j = jj; j < jmax; ++j) {
              crow[j] += aik * brow[j];
            }
          }
        }
      }
    }
  }
  return c;
}

Status lu_factor(std::vector<double>& a, std::size_t n, std::vector<std::size_t>& pivots) {
  pivots.resize(n);
  for (std::size_t i = 0; i < n; ++i) pivots[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column at/below the diagonal.
    std::size_t pivot_row = col;
    double best = std::abs(a[col * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      double mag = std::abs(a[row * n + col]);
      if (mag > best) {
        best = mag;
        pivot_row = row;
      }
    }
    if (best < 1e-12) {
      return err::invalid_argument("lu_factor: matrix is singular at column " +
                                   std::to_string(col));
    }
    if (pivot_row != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[col * n + j], a[pivot_row * n + j]);
      }
      std::swap(pivots[col], pivots[pivot_row]);
    }
    double diag = a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      double factor = a[row * n + col] / diag;
      a[row * n + col] = factor;  // L below the diagonal
      for (std::size_t j = col + 1; j < n; ++j) {
        a[row * n + j] -= factor * a[col * n + j];
      }
    }
  }
  return Status::success();
}

std::vector<double> lu_solve(std::span<const double> lu, std::span<const std::size_t> pivots,
                             std::span<const double> b, std::size_t n) {
  // Apply the permutation, then forward- and back-substitute.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[pivots[i]];
  for (std::size_t i = 1; i < n; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lu[i * n + j] * x[j];
    x[i] = sum;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu[ii * n + j] * x[j];
    x[ii] = sum / lu[ii * n + ii];
  }
  return x;
}

double frobenius_norm(std::span<const double> a) {
  double sum = 0.0;
  for (double v : a) sum += v * v;
  return std::sqrt(sum);
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

std::vector<double> matvec(std::span<const double> a, std::span<const double> x,
                           std::size_t n) {
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += a[i * n + j] * x[j];
    y[i] = sum;
  }
  return y;
}

}  // namespace h2::linalg
