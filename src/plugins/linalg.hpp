// Dense linear algebra kernels backing the MatMul (Fig 8) and LAPACK-lite
// plugins. Matrices are square, row-major, stored in flat double vectors.
// Real computation, not stubs: the Section 6 scenario needs a service
// whose cost grows O(n^3) so locality decisions matter.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace h2::linalg {

/// Side length if `elements` is a square matrix, error otherwise.
Result<std::size_t> square_dim(std::size_t elements);

/// C = A * B, straightforward triple loop (the baseline "mmul" plugin).
std::vector<double> matmul_naive(std::span<const double> a, std::span<const double> b,
                                 std::size_t n);

/// C = A * B with loop-order + blocking optimizations (the "highly
/// optimized LAPACK service" of Section 6).
std::vector<double> matmul_blocked(std::span<const double> a, std::span<const double> b,
                                   std::size_t n, std::size_t block = 48);

/// In-place LU factorization with partial pivoting (Doolittle). `pivots`
/// receives the row permutation. Fails on (numerically) singular input.
Status lu_factor(std::vector<double>& a, std::size_t n, std::vector<std::size_t>& pivots);

/// Solves LUx = Pb given a factorization from lu_factor.
std::vector<double> lu_solve(std::span<const double> lu, std::span<const std::size_t> pivots,
                             std::span<const double> b, std::size_t n);

/// Frobenius norm.
double frobenius_norm(std::span<const double> a);

/// max_i |a_i - b_i| ; infinity if sizes differ.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// y = A x (matrix-vector).
std::vector<double> matvec(std::span<const double> a, std::span<const double> x,
                           std::size_t n);

}  // namespace h2::linalg
