// MPI emulation plugin. Section 3: "users may first load plugins that
// emulate distributed computing environments (currently PVM, MPI, and
// JavaSpaces plugins are available), thereby creating a framework within
// which their legacy codes may run."
//
// The plugin provides the MPI point-to-point core over the p2p transport
// plugin (one rank per configured host): rank/size, tagged send/recv
// addressed by (source, destination, tag), and probe. Collective
// operations are built *on top of* these primitives by the MpiComm facade
// (see mpi_comm.hpp), mirroring how real MPI implementations layer
// collectives over point-to-point.
//
// Mailbox key layout (p2p tags are i64):
//   key = ((dest_rank * kMaxRanks + src_rank) << kTagBits) | user_tag
#include "plugins/mpi_comm.hpp"

#include "kernel/kernel.hpp"
#include "plugins/mux_plugin.hpp"
#include "plugins/standard.hpp"
#include "util/strings.hpp"

namespace h2::plugins {

namespace {

class MpiPlugin final : public MuxPlugin {
 public:
  MpiPlugin() {
    add_op("init", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("init(hosts_csv)");
      auto csv = params[0].as_string();
      if (!csv.ok()) return csv.error();
      auto hosts = str::split_nonempty(*csv, ',');
      if (hosts.empty() || hosts.size() > mpi::kMaxRanks) {
        return err::invalid_argument("init: 1.." + std::to_string(mpi::kMaxRanks) +
                                     " hosts required");
      }
      std::string own = kernel_->network().host_name(kernel_->host());
      rank_ = -1;
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (hosts[i] == own) rank_ = static_cast<std::int64_t>(i);
      }
      if (rank_ < 0) {
        return err::invalid_argument("init: own host '" + own + "' not in communicator");
      }
      hosts_ = std::move(hosts);
      return Value::of_int(rank_, "return");
    });
    add_op("rank", [this](std::span<const Value>) -> Result<Value> {
      if (auto status = require_init(); !status.ok()) return status.error();
      return Value::of_int(rank_, "return");
    });
    add_op("size", [this](std::span<const Value>) -> Result<Value> {
      if (auto status = require_init(); !status.ok()) return status.error();
      return Value::of_int(static_cast<std::int64_t>(hosts_.size()), "return");
    });
    add_op("send", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 3) return err::invalid_argument("send(dest, tag, payload)");
      auto dest = params[0].as_int();
      if (!dest.ok()) return dest.error();
      auto tag = params[1].as_int();
      if (!tag.ok()) return tag.error();
      if (auto status = check_rank(*dest); !status.ok()) return status.error();
      if (auto status = check_tag(*tag); !status.ok()) return status.error();
      std::vector<Value> p2p_params{
          Value::of_string(hosts_[static_cast<std::size_t>(*dest)], "dest"),
          Value::of_int(mpi::mailbox_key(*dest, rank_, *tag), "tag"), params[2]};
      return kernel_->call("p2p", "send", p2p_params);
    });
    add_op("recv", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("recv(src, tag)");
      return mailbox_op("recv", params);
    });
    add_op("probe", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("probe(src, tag)");
      return mailbox_op("pending", params);
    });
  }

  Status init(kernel::Kernel& kernel) override {
    kernel_ = &kernel;
    // Like hpvmd, the MPI emulation leverages the p2p transport plugin.
    if (!kernel.service("p2p").ok()) {
      return err::unavailable("mpi requires the 'p2p' plugin to be loaded");
    }
    return Status::success();
  }

  kernel::PluginInfo info() const override { return {"mpi", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "Mpi";
    d.operations.push_back({"init", {{"hosts", ValueKind::kString}}, ValueKind::kInt});
    d.operations.push_back({"rank", {}, ValueKind::kInt});
    d.operations.push_back({"size", {}, ValueKind::kInt});
    d.operations.push_back({"send",
                            {{"dest", ValueKind::kInt},
                             {"tag", ValueKind::kInt},
                             {"payload", ValueKind::kBytes}},
                            ValueKind::kVoid});
    d.operations.push_back(
        {"recv", {{"src", ValueKind::kInt}, {"tag", ValueKind::kInt}}, ValueKind::kBytes});
    d.operations.push_back(
        {"probe", {{"src", ValueKind::kInt}, {"tag", ValueKind::kInt}}, ValueKind::kInt});
    return d;
  }

 private:
  Status require_init() const {
    if (rank_ < 0) return err::invalid_argument("mpi: communicator not initialized");
    return Status::success();
  }
  Status check_rank(std::int64_t rank) const {
    if (auto status = require_init(); !status.ok()) return status;
    if (rank < 0 || rank >= static_cast<std::int64_t>(hosts_.size())) {
      return err::invalid_argument("mpi: rank " + std::to_string(rank) + " out of range");
    }
    return Status::success();
  }
  static Status check_tag(std::int64_t tag) {
    if (tag < 0 || tag > mpi::kMaxTag) {
      return err::invalid_argument("mpi: tag out of range");
    }
    return Status::success();
  }

  Result<Value> mailbox_op(std::string_view p2p_op, std::span<const Value> params) {
    auto src = params[0].as_int();
    if (!src.ok()) return src.error();
    auto tag = params[1].as_int();
    if (!tag.ok()) return tag.error();
    if (auto status = check_rank(*src); !status.ok()) return status.error();
    if (auto status = check_tag(*tag); !status.ok()) return status.error();
    std::vector<Value> p2p_params{
        Value::of_int(mpi::mailbox_key(rank_, *src, *tag), "tag")};
    return kernel_->call("p2p", std::string(p2p_op), p2p_params);
  }

  kernel::Kernel* kernel_ = nullptr;
  std::vector<std::string> hosts_;
  std::int64_t rank_ = -1;
};

}  // namespace

std::unique_ptr<kernel::Plugin> make_mpi_plugin() { return std::make_unique<MpiPlugin>(); }

}  // namespace h2::plugins
