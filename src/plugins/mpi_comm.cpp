#include "plugins/mpi_comm.hpp"

#include <cstring>

namespace h2::plugins::mpi {

Result<MpiComm> MpiComm::init(kernel::Kernel& kernel, const std::string& hosts_csv) {
  std::vector<Value> params{Value::of_string(hosts_csv, "hosts")};
  auto rank = kernel.call("mpi", "init", params);
  if (!rank.ok()) return rank.error().context("MpiComm::init");
  auto size = kernel.call("mpi", "size", {});
  if (!size.ok()) return size.error();
  return MpiComm(kernel, *rank->as_int(), *size->as_int());
}

Result<Value> MpiComm::call(std::string_view op, std::span<const Value> params) {
  return kernel_->call("mpi", op, params);
}

Status MpiComm::send(std::int64_t dest, std::int64_t tag,
                     std::vector<std::uint8_t> payload) {
  std::vector<Value> params{Value::of_int(dest, "dest"), Value::of_int(tag, "tag"),
                            Value::of_bytes(std::move(payload), "payload")};
  auto result = call("send", params);
  if (!result.ok()) return result.error();
  return Status::success();
}

Result<std::vector<std::uint8_t>> MpiComm::recv(std::int64_t src, std::int64_t tag) {
  std::vector<Value> params{Value::of_int(src, "src"), Value::of_int(tag, "tag")};
  auto result = call("recv", params);
  if (!result.ok()) return result.error();
  return result->as_bytes();
}

Result<std::int64_t> MpiComm::probe(std::int64_t src, std::int64_t tag) {
  std::vector<Value> params{Value::of_int(src, "src"), Value::of_int(tag, "tag")};
  auto result = call("probe", params);
  if (!result.ok()) return result.error();
  return result->as_int();
}

Status MpiComm::bcast(std::span<MpiComm> comms, std::int64_t root,
                      std::vector<std::uint8_t>& buffer) {
  auto n = static_cast<std::int64_t>(comms.size());
  if (root < 0 || root >= n) return err::invalid_argument("bcast: bad root");
  // Binomial tree over ranks relative to the root: in round k, ranks with
  // relative index < 2^k forward to relative index + 2^k.
  std::vector<std::vector<std::uint8_t>> staged(static_cast<std::size_t>(n));
  staged[static_cast<std::size_t>(root)] = buffer;
  for (std::int64_t span = 1; span < n; span *= 2) {
    for (std::int64_t relative = 0; relative < span; ++relative) {
      std::int64_t peer_relative = relative + span;
      if (peer_relative >= n) break;
      std::int64_t sender = (root + relative) % n;
      std::int64_t receiver = (root + peer_relative) % n;
      if (auto status = comms[static_cast<std::size_t>(sender)].send(
              receiver, kCollectiveTag, staged[static_cast<std::size_t>(sender)]);
          !status.ok()) {
        return status;
      }
      auto received = comms[static_cast<std::size_t>(receiver)].recv(sender, kCollectiveTag);
      if (!received.ok()) return received.error();
      staged[static_cast<std::size_t>(receiver)] = std::move(*received);
    }
  }
  buffer = staged[0];
  for (std::size_t i = 0; i < comms.size(); ++i) {
    if (staged[i] != buffer) {
      return err::internal("bcast: rank " + std::to_string(i) + " diverged");
    }
  }
  return Status::success();
}

Status MpiComm::barrier(std::span<MpiComm> comms) {
  auto n = static_cast<std::int64_t>(comms.size());
  // Gather-to-0...
  for (std::int64_t rank = 1; rank < n; ++rank) {
    if (auto status = comms[static_cast<std::size_t>(rank)].send(0, kCollectiveTag, {1});
        !status.ok()) {
      return status;
    }
    auto token = comms[0].recv(rank, kCollectiveTag);
    if (!token.ok()) return token.error();
  }
  // ...then release.
  for (std::int64_t rank = 1; rank < n; ++rank) {
    if (auto status = comms[0].send(rank, kCollectiveTag, {2}); !status.ok()) {
      return status;
    }
    auto token = comms[static_cast<std::size_t>(rank)].recv(0, kCollectiveTag);
    if (!token.ok()) return token.error();
  }
  return Status::success();
}

namespace {
std::vector<std::uint8_t> pack_double(double v) {
  std::vector<std::uint8_t> out(sizeof(double));
  std::memcpy(out.data(), &v, sizeof(double));
  return out;
}
double unpack_double(std::span<const std::uint8_t> bytes) {
  double v = 0;
  std::memcpy(&v, bytes.data(), sizeof(double));
  return v;
}
}  // namespace

Result<double> MpiComm::reduce_sum(std::span<MpiComm> comms, std::int64_t root,
                                   std::span<const double> contributions) {
  auto n = static_cast<std::int64_t>(comms.size());
  if (root < 0 || root >= n) return err::invalid_argument("reduce: bad root");
  if (contributions.size() != comms.size()) {
    return err::invalid_argument("reduce: one contribution per rank required");
  }
  double sum = contributions[static_cast<std::size_t>(root)];
  for (std::int64_t rank = 0; rank < n; ++rank) {
    if (rank == root) continue;
    if (auto status = comms[static_cast<std::size_t>(rank)].send(
            root, kCollectiveTag, pack_double(contributions[static_cast<std::size_t>(rank)]));
        !status.ok()) {
      return status.error();
    }
    auto bytes = comms[static_cast<std::size_t>(root)].recv(rank, kCollectiveTag);
    if (!bytes.ok()) return bytes.error();
    if (bytes->size() != sizeof(double)) return err::parse("reduce: bad payload");
    sum += unpack_double(*bytes);
  }
  return sum;
}

Result<double> MpiComm::allreduce_sum(std::span<MpiComm> comms,
                                      std::span<const double> contributions) {
  auto sum = reduce_sum(comms, 0, contributions);
  if (!sum.ok()) return sum;
  auto buffer = pack_double(*sum);
  if (auto status = bcast(comms, 0, buffer); !status.ok()) return status.error();
  return unpack_double(buffer);
}

Result<std::vector<std::vector<std::uint8_t>>> MpiComm::gather(
    std::span<MpiComm> comms, std::int64_t root,
    std::span<const std::vector<std::uint8_t>> contributions) {
  auto n = static_cast<std::int64_t>(comms.size());
  if (root < 0 || root >= n) return err::invalid_argument("gather: bad root");
  if (contributions.size() != comms.size()) {
    return err::invalid_argument("gather: one contribution per rank required");
  }
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(n));
  out[static_cast<std::size_t>(root)] = contributions[static_cast<std::size_t>(root)];
  for (std::int64_t rank = 0; rank < n; ++rank) {
    if (rank == root) continue;
    if (auto status = comms[static_cast<std::size_t>(rank)].send(
            root, kCollectiveTag, contributions[static_cast<std::size_t>(rank)]);
        !status.ok()) {
      return status.error();
    }
    auto bytes = comms[static_cast<std::size_t>(root)].recv(rank, kCollectiveTag);
    if (!bytes.ok()) return bytes.error();
    out[static_cast<std::size_t>(rank)] = std::move(*bytes);
  }
  return out;
}

}  // namespace h2::plugins::mpi
