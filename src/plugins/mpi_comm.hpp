// MpiComm: the per-rank client facade over the "mpi" plugin, plus the
// collective operations layered on point-to-point, the way real MPI
// libraries do it. Because the simulation is single-threaded and
// deterministic, collectives are expressed as *static* functions driven
// over all ranks at once — the message patterns (binomial bcast, root
// gather/reduce, barrier = gather + bcast) are the real ones and the wire
// traffic is charged normally.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernel/kernel.hpp"

namespace h2::plugins {

/// Factory (registered as "mpi" in the standard repository).
std::unique_ptr<kernel::Plugin> make_mpi_plugin();

namespace mpi {

inline constexpr std::int64_t kMaxRanks = 1024;
inline constexpr std::int64_t kTagBits = 20;
inline constexpr std::int64_t kMaxTag = (1 << kTagBits) - 1;

/// The p2p mailbox key for messages src -> dest with user tag.
constexpr std::int64_t mailbox_key(std::int64_t dest, std::int64_t src,
                                   std::int64_t tag) {
  return ((dest * kMaxRanks + src) << kTagBits) | tag;
}

/// Reserved tag used by the collective implementations.
inline constexpr std::int64_t kCollectiveTag = kMaxTag;

class MpiComm {
 public:
  /// Initializes the local rank against `kernel` (which must have the
  /// "mpi" and "p2p" plugins loaded). `hosts_csv` lists the communicator
  /// hosts in rank order, identical on every member.
  static Result<MpiComm> init(kernel::Kernel& kernel, const std::string& hosts_csv);

  std::int64_t rank() const { return rank_; }
  std::int64_t size() const { return size_; }

  /// MPI_Send (eager, non-blocking in the simulation).
  Status send(std::int64_t dest, std::int64_t tag, std::vector<std::uint8_t> payload);
  /// Non-blocking receive; kNotFound when nothing has arrived.
  Result<std::vector<std::uint8_t>> recv(std::int64_t src, std::int64_t tag);
  /// Number of waiting messages from (src, tag).
  Result<std::int64_t> probe(std::int64_t src, std::int64_t tag);

  // ---- collectives (drive all ranks: comms[i].rank() must equal i) -----------

  /// MPI_Bcast of raw bytes via a binomial tree rooted at `root`.
  static Status bcast(std::span<MpiComm> comms, std::int64_t root,
                      std::vector<std::uint8_t>& buffer);

  /// MPI_Barrier: gather-to-0 then broadcast-release.
  static Status barrier(std::span<MpiComm> comms);

  /// MPI_Reduce(sum) of one double per rank to `root`; returns the sum.
  static Result<double> reduce_sum(std::span<MpiComm> comms, std::int64_t root,
                                   std::span<const double> contributions);

  /// MPI_Allreduce(sum) = reduce + bcast.
  static Result<double> allreduce_sum(std::span<MpiComm> comms,
                                      std::span<const double> contributions);

  /// MPI_Gather of byte payloads to `root` (rank order preserved).
  static Result<std::vector<std::vector<std::uint8_t>>> gather(
      std::span<MpiComm> comms, std::int64_t root,
      std::span<const std::vector<std::uint8_t>> contributions);

 private:
  MpiComm(kernel::Kernel& kernel, std::int64_t rank, std::int64_t size)
      : kernel_(&kernel), rank_(rank), size_(size) {}

  Result<Value> call(std::string_view op, std::span<const Value> params);

  kernel::Kernel* kernel_;
  std::int64_t rank_;
  std::int64_t size_;
};

}  // namespace mpi
}  // namespace h2::plugins
