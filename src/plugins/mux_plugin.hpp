// Convenience base: a Plugin whose dispatch() routes through an internal
// DispatcherMux. Subclasses register operations in their constructor (or
// init()) and fill in info()/descriptor().
#pragma once

#include "kernel/plugin.hpp"

namespace h2::plugins {

class MuxPlugin : public kernel::Plugin {
 public:
  Result<Value> dispatch(std::string_view operation,
                         std::span<const Value> params) override {
    return mux_.dispatch(operation, params);
  }

 protected:
  void add_op(std::string operation, net::DispatcherMux::Fn handler) {
    mux_.add(std::move(operation), std::move(handler));
  }

 private:
  net::DispatcherMux mux_;
};

}  // namespace h2::plugins
