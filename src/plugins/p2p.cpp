// p2p: kernel-to-kernel message passing — the primitive transport service
// every other distributed plugin (notably hpvmd, Fig 2) leverages.
// Messages are (tag, bytes) pairs delivered into per-tag FIFO mailboxes on
// the destination kernel; remote delivery travels the XDR binding over a
// well-known port.
#include <deque>
#include <map>

#include "kernel/kernel.hpp"
#include "plugins/mux_plugin.hpp"
#include "plugins/standard.hpp"

namespace h2::plugins {

namespace {

class P2pPlugin final : public MuxPlugin {
 public:
  P2pPlugin() {
    add_op("send", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 3) return err::invalid_argument("send(dest, tag, payload)");
      auto dest = params[0].as_string();
      if (!dest.ok()) return dest.error();
      auto tag = params[1].as_int();
      if (!tag.ok()) return tag.error();
      auto payload = params[2].as_bytes();
      if (!payload.ok()) return payload.error();
      return send(*dest, *tag, std::move(*payload));
    });
    add_op("deliver", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("deliver(tag, payload)");
      auto tag = params[0].as_int();
      if (!tag.ok()) return tag.error();
      auto payload = params[1].as_bytes();
      if (!payload.ok()) return payload.error();
      mailbox_[*tag].push_back(std::move(*payload));
      return Value::of_void();
    });
    add_op("recv", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("recv(tag)");
      auto tag = params[0].as_int();
      if (!tag.ok()) return tag.error();
      auto it = mailbox_.find(*tag);
      if (it == mailbox_.end() || it->second.empty()) {
        return err::not_found("p2p: no message with tag " + std::to_string(*tag));
      }
      Value out = Value::of_bytes(std::move(it->second.front()), "return");
      it->second.pop_front();
      return out;
    });
    add_op("pending", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("pending(tag)");
      auto tag = params[0].as_int();
      if (!tag.ok()) return tag.error();
      auto it = mailbox_.find(*tag);
      std::int64_t n = it == mailbox_.end() ? 0 : static_cast<std::int64_t>(it->second.size());
      return Value::of_int(n, "return");
    });
  }

  Status init(kernel::Kernel& kernel) override {
    kernel_ = &kernel;
    // Expose the deliver operation to remote p2p peers. The forwarding
    // dispatcher holds only a raw pointer; shutdown() (always invoked by
    // the kernel before destruction) unbinds the port first.
    auto forwarder = std::make_shared<net::DispatcherMux>();
    forwarder->add("deliver", [this](std::span<const Value> params) {
      return dispatch("deliver", params);
    });
    auto handle = net::serve_xdr(kernel.network(), kernel.host(), kP2pPort, forwarder);
    if (!handle.ok()) return handle.error().context("p2p init");
    server_.emplace(std::move(*handle));
    return Status::success();
  }

  void shutdown() override { server_.reset(); }

  kernel::PluginInfo info() const override { return {"p2p", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "P2p";
    d.operations.push_back({"send",
                            {{"dest", ValueKind::kString},
                             {"tag", ValueKind::kInt},
                             {"payload", ValueKind::kBytes}},
                            ValueKind::kVoid});
    d.operations.push_back({"recv", {{"tag", ValueKind::kInt}}, ValueKind::kBytes});
    d.operations.push_back({"pending", {{"tag", ValueKind::kInt}}, ValueKind::kInt});
    return d;
  }

 private:
  Result<Value> send(const std::string& dest, std::int64_t tag,
                     std::vector<std::uint8_t> payload) {
    if (kernel_ == nullptr) return err::internal("p2p not initialized");
    // Local fast path: same kernel host delivers straight into the mailbox
    // (the local-binding argument applied to messaging).
    if (dest == kernel_->network().host_name(kernel_->host())) {
      mailbox_[tag].push_back(std::move(payload));
      return Value::of_void();
    }
    net::Endpoint endpoint{.scheme = "xdr", .host = dest, .port = kP2pPort, .path = ""};
    auto channel = net::make_xdr_channel(kernel_->network(), kernel_->host(), endpoint);
    std::vector<Value> params{Value::of_int(tag, "tag"),
                              Value::of_bytes(std::move(payload), "payload")};
    auto result = channel->invoke("deliver", params);
    if (!result.ok()) return result.error().context("p2p send to " + dest);
    return Value::of_void();
  }

  kernel::Kernel* kernel_ = nullptr;
  std::map<std::int64_t, std::deque<std::vector<std::uint8_t>>> mailbox_;
  std::optional<net::ServerHandle> server_;
};

}  // namespace

std::unique_ptr<kernel::Plugin> make_p2p_plugin() { return std::make_unique<P2pPlugin>(); }

}  // namespace h2::plugins
