#include "plugins/standard.hpp"

#include "plugins/mpi_comm.hpp"

namespace h2::plugins {

Status register_standard_plugins(kernel::PluginRepository& repo) {
  struct Spec {
    const char* name;
    std::unique_ptr<kernel::Plugin> (*factory)();
  };
  static constexpr Spec kSpecs[] = {
      {"ping", make_ping_plugin},   {"time", make_time_plugin},
      {"table", make_table_plugin}, {"event", make_event_plugin},
      {"spawn", make_spawn_plugin}, {"p2p", make_p2p_plugin},
      {"mmul", make_mmul_plugin},   {"lapack", make_lapack_plugin},
      {"mpi", make_mpi_plugin},     {"space", make_tuplespace_plugin},
      {"introspection", make_introspection_plugin},
      {"counter", make_counter_plugin},
  };
  for (const auto& spec : kSpecs) {
    if (auto status = repo.add(spec.name, "1.0", spec.factory); !status.ok()) {
      return status.error().context("registering standard plugins");
    }
  }
  return Status::success();
}

}  // namespace h2::plugins
