// The standard plugin distribution (paper Fig 1): the baseline services
// replicated on every node of a DVM (p2p message passing, process spawn,
// table lookup, event management, ping) plus the paper's example services
// (WSTime from Fig 7, MatMul from Fig 8) and a LAPACK-lite compute plugin
// for the Section 6 locality scenario.
//
// Each factory is registered into a PluginRepository under these names:
//   "ping"    echo / liveness               "time"   WSTime service
//   "p2p"     kernel-to-kernel messaging    "mmul"   MatMul service
//   "spawn"   process management            "lapack" dense linear algebra
//   "table"   key/value lookup              "event"  event-bus facade
#pragma once

#include "kernel/plugin.hpp"

namespace h2::plugins {

/// Registers every standard plugin (version "1.0") into `repo`.
Status register_standard_plugins(kernel::PluginRepository& repo);

/// Individual factories (exposed for tests and custom repositories).
std::unique_ptr<kernel::Plugin> make_ping_plugin();
std::unique_ptr<kernel::Plugin> make_time_plugin();
std::unique_ptr<kernel::Plugin> make_table_plugin();
std::unique_ptr<kernel::Plugin> make_event_plugin();
std::unique_ptr<kernel::Plugin> make_spawn_plugin();
std::unique_ptr<kernel::Plugin> make_p2p_plugin();
std::unique_ptr<kernel::Plugin> make_mmul_plugin();
std::unique_ptr<kernel::Plugin> make_lapack_plugin();
/// JavaSpaces-style tuple space ("space"). See tuplespace.cpp.
std::unique_ptr<kernel::Plugin> make_tuplespace_plugin();
/// Metrics/trace introspection service ("introspection"). See introspection.cpp.
std::unique_ptr<kernel::Plugin> make_introspection_plugin();
/// Non-idempotent counter with duplicate-execution detection ("counter"),
/// the witness service for the resilience scenarios. See counter.cpp.
std::unique_ptr<kernel::Plugin> make_counter_plugin();

/// Well-known port of the p2p plugin's inter-kernel message server.
inline constexpr std::uint16_t kP2pPort = 7100;

}  // namespace h2::plugins
