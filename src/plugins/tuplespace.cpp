// JavaSpaces-style tuple space plugin — the third environment emulation
// the paper names ("currently PVM, MPI, and JavaSpaces plugins are
// available"). Entries are (name, payload) tuples in per-name FIFO order:
//
//   write(name, payload)        -> entry id
//   read(name)                  -> copy of the oldest matching entry
//   take(name)                  -> removes and returns the oldest match
//   count(name)                 -> matching entries
//   writeLease(name, payload, lease_ns) -> entry id (expires)
//
// Leases follow the JavaSpaces model: entries written with a lease
// disappear once the (virtual) clock passes their expiry.
#include <deque>
#include <map>

#include "kernel/kernel.hpp"
#include "plugins/mux_plugin.hpp"
#include "plugins/standard.hpp"

namespace h2::plugins {

namespace {

class TupleSpacePlugin final : public MuxPlugin {
 public:
  TupleSpacePlugin() {
    add_op("write", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("write(name, payload)");
      return write(params, /*lease=*/0);
    });
    add_op("writeLease", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 3) {
        return err::invalid_argument("writeLease(name, payload, lease_ns)");
      }
      auto lease = params[2].as_int();
      if (!lease.ok()) return lease.error();
      if (*lease <= 0) return err::invalid_argument("writeLease: lease must be > 0");
      return write(params.subspan(0, 2), *lease);
    });
    add_op("read", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("read(name)");
      return fetch(params[0], /*remove=*/false);
    });
    add_op("take", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("take(name)");
      return fetch(params[0], /*remove=*/true);
    });
    add_op("count", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("count(name)");
      auto name = params[0].as_string();
      if (!name.ok()) return name.error();
      expire();
      auto it = space_.find(*name);
      std::int64_t n = it == space_.end() ? 0 : static_cast<std::int64_t>(it->second.size());
      return Value::of_int(n, "return");
    });
  }

  Status init(kernel::Kernel& kernel) override {
    kernel_ = &kernel;
    return Status::success();
  }

  kernel::PluginInfo info() const override { return {"space", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "TupleSpace";
    d.operations.push_back({"write",
                            {{"name", ValueKind::kString}, {"payload", ValueKind::kBytes}},
                            ValueKind::kInt});
    d.operations.push_back({"writeLease",
                            {{"name", ValueKind::kString},
                             {"payload", ValueKind::kBytes},
                             {"lease_ns", ValueKind::kInt}},
                            ValueKind::kInt});
    d.operations.push_back({"read", {{"name", ValueKind::kString}}, ValueKind::kBytes});
    d.operations.push_back({"take", {{"name", ValueKind::kString}}, ValueKind::kBytes});
    d.operations.push_back({"count", {{"name", ValueKind::kString}}, ValueKind::kInt});
    return d;
  }

 private:
  struct Entry {
    std::int64_t id;
    std::vector<std::uint8_t> payload;
    Nanos expires;  // 0 = forever
  };

  Nanos now() const {
    return kernel_ != nullptr ? kernel_->network().clock().now() : 0;
  }

  void expire() {
    Nanos t = now();
    for (auto& [name, entries] : space_) {
      std::erase_if(entries,
                    [t](const Entry& e) { return e.expires != 0 && e.expires <= t; });
    }
  }

  Result<Value> write(std::span<const Value> params, Nanos lease) {
    auto name = params[0].as_string();
    if (!name.ok()) return name.error();
    auto payload = params[1].as_bytes();
    if (!payload.ok()) return payload.error();
    std::int64_t id = next_id_++;
    space_[*name].push_back(
        Entry{id, std::move(*payload), lease == 0 ? 0 : now() + lease});
    return Value::of_int(id, "return");
  }

  Result<Value> fetch(const Value& name_param, bool remove) {
    auto name = name_param.as_string();
    if (!name.ok()) return name.error();
    expire();
    auto it = space_.find(*name);
    if (it == space_.end() || it->second.empty()) {
      return err::not_found("space: no entry named '" + *name + "'");
    }
    Value out = Value::of_bytes(it->second.front().payload, "return");
    if (remove) it->second.pop_front();
    return out;
  }

  kernel::Kernel* kernel_ = nullptr;
  std::map<std::string, std::deque<Entry>> space_;
  std::int64_t next_id_ = 1;
};

}  // namespace

std::unique_ptr<kernel::Plugin> make_tuplespace_plugin() {
  return std::make_unique<TupleSpacePlugin>();
}

}  // namespace h2::plugins
