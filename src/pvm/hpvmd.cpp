#include "pvm/hpvmd.hpp"

#include "plugins/standard.hpp"
#include "util/strings.hpp"

namespace h2::pvm {

namespace {

class HpvmdPlugin final : public plugins::MuxPlugin {
 public:
  HpvmdPlugin() {
    add_op("config", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("config(hosts_csv)");
      auto csv = params[0].as_string();
      if (!csv.ok()) return csv.error();
      auto hosts = str::split_nonempty(*csv, ',');
      if (hosts.empty()) return err::invalid_argument("config: empty host list");
      std::string own = kernel_->network().host_name(kernel_->host());
      my_index_ = -1;
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        if (hosts[i] == own) my_index_ = static_cast<std::int64_t>(i);
      }
      if (my_index_ < 0) {
        return err::invalid_argument("config: own host '" + own +
                                     "' not in virtual machine list");
      }
      hosts_ = std::move(hosts);
      return Value::of_void();
    });

    add_op("local_spawn", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("local_spawn(task)");
      auto task = params[0].as_string();
      if (!task.ok()) return task.error();
      return local_spawn(*task);
    });

    add_op("spawn", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("spawn(task, host)");
      auto task = params[0].as_string();
      if (!task.ok()) return task.error();
      auto host = params[1].as_string();
      if (!host.ok()) return host.error();
      if (auto status = require_config(); !status.ok()) return status.error();
      if (*host == hosts_[static_cast<std::size_t>(my_index_)]) {
        return local_spawn(*task);
      }
      // Daemon-to-daemon: ask the remote hpvmd to spawn locally there.
      auto channel = daemon_channel(*host);
      if (!channel.ok()) return channel.error();
      std::vector<Value> remote_params{Value::of_string(*task, "task")};
      return (*channel)->invoke("local_spawn", remote_params);
    });

    add_op("send", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 3) return err::invalid_argument("send(dst_tid, tag, payload)");
      auto dst = params[0].as_int();
      if (!dst.ok()) return dst.error();
      auto tag = params[1].as_int();
      if (!tag.ok()) return tag.error();
      if (*tag < 0 || *tag > kMaxUserTag) {
        return err::invalid_argument("send: tag out of range");
      }
      auto host = host_of(*dst);
      if (!host.ok()) return host.error();
      // Leverage the p2p plugin for the actual transport.
      std::vector<Value> p2p_params{Value::of_string(*host, "dest"),
                                    Value::of_int(combined_tag(*dst, *tag), "tag"),
                                    params[2]};
      return kernel_->call("p2p", "send", p2p_params);
    });

    add_op("recv", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("recv(my_tid, tag)");
      auto tid = params[0].as_int();
      if (!tid.ok()) return tid.error();
      auto tag = params[1].as_int();
      if (!tag.ok()) return tag.error();
      std::vector<Value> p2p_params{Value::of_int(combined_tag(*tid, *tag), "tag")};
      return kernel_->call("p2p", "recv", p2p_params);
    });

    add_op("probe", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 2) return err::invalid_argument("probe(my_tid, tag)");
      auto tid = params[0].as_int();
      if (!tid.ok()) return tid.error();
      auto tag = params[1].as_int();
      if (!tag.ok()) return tag.error();
      std::vector<Value> p2p_params{Value::of_int(combined_tag(*tid, *tag), "tag")};
      return kernel_->call("p2p", "pending", p2p_params);
    });

    add_op("local_kill", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("local_kill(tid)");
      return local_control(params[0], "kill");
    });

    add_op("kill", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("kill(tid)");
      return route_control(params[0], "local_kill");
    });

    add_op("local_status", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("local_status(tid)");
      return local_control(params[0], "status");
    });

    add_op("status", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("status(tid)");
      return route_control(params[0], "local_status");
    });

    add_op("host_of", [this](std::span<const Value> params) -> Result<Value> {
      if (params.size() != 1) return err::invalid_argument("host_of(tid)");
      auto tid = params[0].as_int();
      if (!tid.ok()) return tid.error();
      auto host = host_of(*tid);
      if (!host.ok()) return host.error();
      return Value::of_string(std::move(*host), "return");
    });
  }

  Status init(kernel::Kernel& kernel) override {
    kernel_ = &kernel;
    // Fig 2: hpvmd *leverages* these services; refuse to start without them.
    for (const char* dep : {"p2p", "spawn", "table", "event"}) {
      if (!kernel.service(dep).ok()) {
        return err::unavailable(std::string("hpvmd requires the '") + dep +
                                "' plugin to be loaded");
      }
    }
    auto forwarder = std::make_shared<net::DispatcherMux>();
    for (const char* op : {"local_spawn", "local_kill", "local_status"}) {
      forwarder->add(op, [this, op](std::span<const Value> params) {
        return dispatch(op, params);
      });
    }
    auto handle = net::serve_xdr(kernel.network(), kernel.host(), kPvmPort, forwarder);
    if (!handle.ok()) return handle.error().context("hpvmd init");
    server_.emplace(std::move(*handle));
    return Status::success();
  }

  void shutdown() override { server_.reset(); }

  kernel::PluginInfo info() const override { return {"hpvmd", "1.0"}; }

  wsdl::ServiceDescriptor descriptor() const override {
    wsdl::ServiceDescriptor d;
    d.name = "Hpvmd";
    d.operations.push_back({"config", {{"hosts", ValueKind::kString}}, ValueKind::kVoid});
    d.operations.push_back({"spawn",
                            {{"task", ValueKind::kString}, {"host", ValueKind::kString}},
                            ValueKind::kInt});
    d.operations.push_back({"send",
                            {{"dst", ValueKind::kInt},
                             {"tag", ValueKind::kInt},
                             {"payload", ValueKind::kBytes}},
                            ValueKind::kVoid});
    d.operations.push_back(
        {"recv", {{"tid", ValueKind::kInt}, {"tag", ValueKind::kInt}}, ValueKind::kBytes});
    d.operations.push_back(
        {"probe", {{"tid", ValueKind::kInt}, {"tag", ValueKind::kInt}}, ValueKind::kInt});
    d.operations.push_back({"kill", {{"tid", ValueKind::kInt}}, ValueKind::kBool});
    d.operations.push_back({"status", {{"tid", ValueKind::kInt}}, ValueKind::kString});
    d.operations.push_back({"host_of", {{"tid", ValueKind::kInt}}, ValueKind::kString});
    return d;
  }

 private:
  Status require_config() const {
    if (hosts_.empty() || my_index_ < 0) {
      return err::invalid_argument("hpvmd: virtual machine not configured");
    }
    return Status::success();
  }

  Result<std::string> host_of(std::int64_t tid) const {
    if (auto status = require_config(); !status.ok()) return status.error();
    std::int64_t index = (tid >> kTidHostShift) - 1;
    if (index < 0 || index >= static_cast<std::int64_t>(hosts_.size())) {
      return err::invalid_argument("hpvmd: tid " + std::to_string(tid) +
                                   " names no configured host");
    }
    return hosts_[static_cast<std::size_t>(index)];
  }

  Result<Value> local_spawn(const std::string& task) {
    if (auto status = require_config(); !status.ok()) return status.error();
    // Leverage the spawn plugin for process management.
    std::vector<Value> spawn_params{Value::of_string(task, "name")};
    auto job = kernel_->call("spawn", "spawn", spawn_params);
    if (!job.ok()) return job.error().context("hpvmd spawn");
    std::int64_t tid = ((my_index_ + 1) << kTidHostShift) | next_task_++;
    // Leverage the table plugin for tid bookkeeping.
    std::vector<Value> name_row{Value::of_string("pvm/tid/" + std::to_string(tid)),
                                Value::of_string(task)};
    if (auto status = kernel_->call("table", "put", name_row); !status.ok()) {
      return status.error();
    }
    std::vector<Value> job_row{Value::of_string("pvm/job/" + std::to_string(tid)),
                               Value::of_string(std::to_string(*job->as_int()))};
    if (auto status = kernel_->call("table", "put", job_row); !status.ok()) {
      return status.error();
    }
    // Leverage event management for notification.
    kernel_->events().publish("pvm/spawn",
                              Value::of_string(task + ":" + std::to_string(tid)));
    return Value::of_int(tid, "return");
  }

  /// Dispatches kill/status for a *local* tid via the spawn plugin.
  Result<Value> local_control(const Value& tid_value, std::string_view action) {
    auto tid = tid_value.as_int();
    if (!tid.ok()) return tid.error();
    std::vector<Value> key{Value::of_string("pvm/job/" + std::to_string(*tid))};
    auto job_text = kernel_->call("table", "get", key);
    if (!job_text.ok()) {
      if (action == "status") return Value::of_string("unknown", "return");
      return Value::of_bool(false, "return");
    }
    auto job = str::parse_i64(*job_text->as_string());
    if (!job.ok()) return job.error();
    std::vector<Value> job_params{Value::of_int(*job)};
    auto result = kernel_->call("spawn", std::string(action), job_params);
    if (result.ok() && action == "kill") {
      kernel_->events().publish("pvm/kill", Value::of_int(*tid));
    }
    return result;
  }

  /// Routes kill/status to the tid's owning daemon.
  Result<Value> route_control(const Value& tid_value, std::string_view local_op) {
    auto tid = tid_value.as_int();
    if (!tid.ok()) return tid.error();
    auto host = host_of(*tid);
    if (!host.ok()) return host.error();
    if (*host == hosts_[static_cast<std::size_t>(my_index_)]) {
      std::vector<Value> params{tid_value};
      return dispatch(local_op, params);
    }
    auto channel = daemon_channel(*host);
    if (!channel.ok()) return channel.error();
    std::vector<Value> params{tid_value};
    return (*channel)->invoke(local_op, params);
  }

  Result<std::unique_ptr<net::Channel>> daemon_channel(const std::string& host) {
    net::Endpoint endpoint{.scheme = "xdr", .host = host, .port = kPvmPort, .path = ""};
    return net::make_xdr_channel(kernel_->network(), kernel_->host(), endpoint);
  }

  kernel::Kernel* kernel_ = nullptr;
  std::vector<std::string> hosts_;
  std::int64_t my_index_ = -1;
  std::int64_t next_task_ = 1;
  std::optional<net::ServerHandle> server_;
};

}  // namespace

std::unique_ptr<kernel::Plugin> make_hpvmd_plugin() {
  return std::make_unique<HpvmdPlugin>();
}

Status register_pvm_plugin(kernel::PluginRepository& repo) {
  return repo.add("hpvmd", "1.0", make_hpvmd_plugin);
}

Result<PvmTask> PvmTask::enroll(kernel::Kernel& kernel, const std::string& task_name) {
  std::vector<Value> params{Value::of_string(task_name, "task")};
  auto tid = kernel.call("hpvmd", "local_spawn", params);
  if (!tid.ok()) return tid.error().context("pvm enroll");
  auto id = tid->as_int();
  if (!id.ok()) return id.error();
  return PvmTask(kernel, *id);
}

Result<Value> PvmTask::call(std::string_view op, std::span<const Value> params) {
  return kernel_->call("hpvmd", op, params);
}

Result<std::int64_t> PvmTask::spawn(const std::string& task_name,
                                    const std::string& host) {
  std::vector<Value> params{Value::of_string(task_name, "task"),
                            Value::of_string(host, "host")};
  auto result = call("spawn", params);
  if (!result.ok()) return result.error();
  return result->as_int();
}

Status PvmTask::send(std::int64_t dest_tid, std::int64_t tag,
                     std::vector<std::uint8_t> payload) {
  std::vector<Value> params{Value::of_int(dest_tid, "dst"), Value::of_int(tag, "tag"),
                            Value::of_bytes(std::move(payload), "payload")};
  auto result = call("send", params);
  if (!result.ok()) return result.error();
  return Status::success();
}

Result<std::vector<std::uint8_t>> PvmTask::recv(std::int64_t tag) {
  std::vector<Value> params{Value::of_int(tid_, "tid"), Value::of_int(tag, "tag")};
  auto result = call("recv", params);
  if (!result.ok()) return result.error();
  return result->as_bytes();
}

Result<std::int64_t> PvmTask::probe(std::int64_t tag) {
  std::vector<Value> params{Value::of_int(tid_, "tid"), Value::of_int(tag, "tag")};
  auto result = call("probe", params);
  if (!result.ok()) return result.error();
  return result->as_int();
}

Result<bool> PvmTask::kill(std::int64_t tid) {
  std::vector<Value> params{Value::of_int(tid, "tid")};
  auto result = call("kill", params);
  if (!result.ok()) return result.error();
  return result->as_bool();
}

Result<std::string> PvmTask::status(std::int64_t tid) {
  std::vector<Value> params{Value::of_int(tid, "tid")};
  auto result = call("status", params);
  if (!result.ok()) return result.error();
  return result->as_string();
}

Result<std::string> PvmTask::host_of(std::int64_t tid) {
  std::vector<Value> params{Value::of_int(tid, "tid")};
  auto result = call("host_of", params);
  if (!result.ok()) return result.error();
  return result->as_string();
}

}  // namespace h2::pvm
