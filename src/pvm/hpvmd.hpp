// PVM emulation for Harness II — the paper's flagship demonstration of
// plugin synergy (Section 3, Fig 2): "The hpvmd plugin emulates the PVM
// daemon on each host, but leverages process spawning, message transport,
// general event management, and table lookup from other plugins — both
// within the same address space as well as in remote Harness kernels."
//
// Faithfully to that figure, HpvmdPlugin::init() *requires* the sibling
// plugins "p2p", "spawn", "table" and "event" to be loaded in the same
// kernel, and implements every PVM operation in terms of them:
//
//   pvm operation     leverages
//   --------------    -------------------------------------------------
//   spawn             spawn plugin (local), remote hpvmd via XDR binding
//   send/recv/probe   p2p plugin mailboxes (combined tid+tag keys)
//   tid bookkeeping   table plugin ("pvm/tid/<tid>" -> task name)
//   notifications     event plugin / kernel event bus ("pvm/spawn", ...)
//
// Task ids follow PVM's encoding idea: tid = (host_index+1) << 18 | seq,
// where host_index comes from the configured virtual machine host list.
#pragma once

#include <memory>

#include "kernel/kernel.hpp"
#include "plugins/mux_plugin.hpp"

namespace h2::pvm {

/// Port of the hpvmd daemon-to-daemon control channel.
inline constexpr std::uint16_t kPvmPort = 7500;

/// tid layout: high bits select the host, low 18 bits the per-host task.
inline constexpr std::int64_t kTidHostShift = 18;
/// p2p tag layout: combined = tid << 20 | user_tag (user tags < 2^20).
inline constexpr std::int64_t kTagBits = 20;
inline constexpr std::int64_t kMaxUserTag = (1 << kTagBits) - 1;

/// Computes the p2p mailbox tag for (destination tid, user tag).
constexpr std::int64_t combined_tag(std::int64_t tid, std::int64_t tag) {
  return (tid << kTagBits) | tag;
}

/// Factory for the hpvmd plugin (register as "hpvmd" in a repository).
std::unique_ptr<kernel::Plugin> make_hpvmd_plugin();

/// Registers hpvmd@1.0 into `repo`.
Status register_pvm_plugin(kernel::PluginRepository& repo);

/// Typed client facade over a loaded hpvmd plugin — the pvm_*() API an
/// application task would link against.
class PvmTask {
 public:
  /// `kernel` must have hpvmd loaded (plus its Fig-2 dependencies).
  static Result<PvmTask> enroll(kernel::Kernel& kernel, const std::string& task_name);

  std::int64_t tid() const { return tid_; }

  /// pvm_spawn: start `task_name` on `host` (a configured VM member).
  Result<std::int64_t> spawn(const std::string& task_name, const std::string& host);
  /// pvm_send: tagged bytes to another task.
  Status send(std::int64_t dest_tid, std::int64_t tag,
              std::vector<std::uint8_t> payload);
  /// pvm_nrecv: non-blocking receive; kNotFound when no message waits.
  Result<std::vector<std::uint8_t>> recv(std::int64_t tag);
  /// pvm_probe: number of waiting messages for (my tid, tag).
  Result<std::int64_t> probe(std::int64_t tag);
  /// pvm_kill.
  Result<bool> kill(std::int64_t tid);
  /// Task status ("running"/"dead"/"unknown") resolved on the owning host.
  Result<std::string> status(std::int64_t tid);
  /// Which configured host owns a tid.
  Result<std::string> host_of(std::int64_t tid);

 private:
  PvmTask(kernel::Kernel& kernel, std::int64_t tid) : kernel_(&kernel), tid_(tid) {}
  Result<Value> call(std::string_view op, std::span<const Value> params);

  kernel::Kernel* kernel_;
  std::int64_t tid_;
};

}  // namespace h2::pvm
