#include "registry/index.hpp"

#include <algorithm>

namespace h2::reg {

namespace {

/// Short lists erase dead ids in place; longer ones defer to amortized
/// compaction so a hot term's unlink stays O(1).
constexpr std::size_t kEagerEraseLimit = 64;

std::string element_term(std::string_view elem) {
  return "e:" + std::string(elem);
}

std::string attr_term(std::string_view elem, std::string_view attr) {
  std::string out = "a:";
  if (elem != "*") out += elem;
  out += '@';
  out += attr;
  return out;
}

std::string value_term(std::string_view elem, std::string_view attr,
                       std::string_view value) {
  std::string out = "v:";
  if (elem != "*") out += elem;
  out += '@';
  out += attr;
  out += '=';
  out += value;
  return out;
}

}  // namespace

void RegistryIndex::collect_doc_terms(const xml::Node& node,
                                      std::vector<std::string>& out) {
  if (!node.is_element()) return;
  std::string_view elem = node.local_name();
  out.push_back(element_term(elem));
  for (const xml::Attribute& attr : node.attributes()) {
    // Both the scoped and the unscoped ("any element") spellings, so
    // queries over "*" steps still hit the index.
    out.push_back(attr_term(elem, attr.name));
    out.push_back(attr_term("*", attr.name));
    out.push_back(value_term(elem, attr.name, attr.value));
    out.push_back(value_term("*", attr.name, attr.value));
  }
  for (const auto& child : node.children()) {
    collect_doc_terms(*child, out);
  }
}

RegistryIndex::TermId RegistryIndex::intern(std::string term) {
  auto it = term_ids_.find(term);
  if (it != term_ids_.end()) return it->second;
  TermId id = static_cast<TermId>(lists_.size());
  lists_.emplace_back();
  term_ids_.emplace(std::move(term), id);
  return id;
}

const RegistryIndex::PostingList* RegistryIndex::find(std::string_view term) const {
  auto it = term_ids_.find(term);
  if (it == term_ids_.end()) return nullptr;
  return &lists_[it->second];
}

void RegistryIndex::add(DocId id, const wsdl::Definitions& defs,
                        const xml::Node& doc) {
  std::vector<std::string> terms;
  for (const wsdl::Service& service : defs.services) {
    terms.push_back("s:" + service.name);
  }
  for (const wsdl::Binding& binding : defs.bindings) {
    terms.push_back("t:" + std::string(wsdl::to_string(binding.kind)));
  }
  collect_doc_terms(doc, terms);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  std::vector<TermId>& doc_terms = docs_[id];
  doc_terms.reserve(terms.size());
  for (std::string& term : terms) {
    TermId term_id = intern(std::move(term));
    lists_[term_id].ids.push_back(id);  // ids are monotonic: stays sorted
    doc_terms.push_back(term_id);
  }
  postings_ += doc_terms.size();
}

void RegistryIndex::unlink(TermId term, DocId id) {
  PostingList& list = lists_[term];
  if (list.ids.size() <= kEagerEraseLimit) {
    auto it = std::find(list.ids.begin(), list.ids.end(), id);
    if (it != list.ids.end()) {
      list.ids.erase(it);
      --postings_;
    }
    return;
  }
  ++list.dead;
  ++dead_;
  if (list.dead * 2 < list.ids.size()) return;
  // Compact: a posting is live iff its doc is still indexed. Other
  // pending-dead ids of this list drop along the way.
  std::size_t kept = 0;
  for (DocId candidate : list.ids) {
    if (docs_.count(candidate) != 0) list.ids[kept++] = candidate;
  }
  std::size_t dropped = list.ids.size() - kept;
  list.ids.resize(kept);
  list.ids.shrink_to_fit();
  postings_ -= dropped;
  dead_ -= list.dead;
  list.dead = 0;
  ++compactions_;
}

void RegistryIndex::remove(DocId id) {
  auto it = docs_.find(id);
  if (it == docs_.end()) return;
  std::vector<TermId> terms = std::move(it->second);
  // Erase the doc first: compaction inside unlink treats "not in docs_"
  // as dead, which must include the id being removed right now.
  docs_.erase(it);
  for (TermId term : terms) unlink(term, id);
}

std::span<const RegistryIndex::DocId> RegistryIndex::service_postings(
    std::string_view service_name) const {
  const PostingList* list = find("s:" + std::string(service_name));
  return list == nullptr ? std::span<const DocId>() : std::span(list->ids);
}

std::span<const RegistryIndex::DocId> RegistryIndex::tmodel_postings(
    std::string_view tmodel) const {
  const PostingList* list = find("t:" + std::string(tmodel));
  return list == nullptr ? std::span<const DocId>() : std::span(list->ids);
}

std::optional<std::vector<RegistryIndex::DocId>> RegistryIndex::candidates(
    const xml::XPath& query) const {
  auto terms = query.required_terms();
  if (terms.empty()) return std::nullopt;  // nothing indexable: caller scans
  std::vector<const PostingList*> lists;
  lists.reserve(terms.size());
  for (const auto& term : terms) {
    std::string key;
    switch (term.kind) {
      case xml::XPath::IndexTerm::Kind::kElement:
        key = element_term(term.element);
        break;
      case xml::XPath::IndexTerm::Kind::kAttrExists:
        key = attr_term(term.element, term.attr);
        break;
      case xml::XPath::IndexTerm::Kind::kAttrEquals:
        key = value_term(term.element, term.attr, term.value);
        break;
    }
    const PostingList* list = find(key);
    // A required term no live-or-dead doc ever produced: provably empty.
    if (list == nullptr) return std::vector<DocId>();
    lists.push_back(list);
  }
  // Intersect starting from the shortest list — the usual case is one
  // highly selective value term against a couple of broad element terms.
  std::sort(lists.begin(), lists.end(),
            [](const PostingList* a, const PostingList* b) {
              return a->ids.size() < b->ids.size();
            });
  std::vector<DocId> result(lists[0]->ids);
  std::vector<DocId> next;
  for (std::size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    next.clear();
    next.reserve(result.size());
    std::set_intersection(result.begin(), result.end(), lists[i]->ids.begin(),
                          lists[i]->ids.end(), std::back_inserter(next));
    result.swap(next);
  }
  return result;
}

RegistryIndex::Stats RegistryIndex::stats() const {
  return Stats{term_ids_.size(), postings_, dead_, compactions_};
}

}  // namespace h2::reg
