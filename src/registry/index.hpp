// Inverted index over the registry's stored WSDL documents. Three
// families of postings share one interned term table:
//
//   s:<service name>                 dedicated service-name index
//   t:<binding kind>                 dedicated tModel/binding-kind index
//   e:<elem> / a:[<elem>]@<attr> /   XML structure terms extracted from
//   v:[<elem>]@<attr>=<value>        the document's serialized form
//
// A query's XPath::required_terms() map onto the same strings, so
// candidate documents are the *intersection* of a few posting lists
// instead of a walk over every stored document; the compiled query then
// runs only on the candidates (terms are necessary, not sufficient).
//
// Posting-list lifecycle: ids append in ascending order (doc ids are
// monotonic), so lists stay sorted and intersect by merge. Removal is
// eager for short lists (erase in place) and amortized for long ones —
// a dead counter marks the entry and the list compacts once dead ids
// reach half its length, so unlink cost stays O(1) amortized while
// readers tolerate (and re-check liveness of) a bounded number of
// stale ids. The registry re-checks liveness anyway: lease expiry makes
// any id stale between wheel ticks.
//
// Not thread-safe: XmlRegistry guards it with its shared_mutex
// (exclusive on mutation, shared on lookup).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "wsdl/model.hpp"
#include "xml/dom.hpp"
#include "xml/xpath.hpp"

namespace h2::reg {

class RegistryIndex {
 public:
  using DocId = std::uint64_t;

  /// Indexes one document: structure terms from its XML form `doc`,
  /// service-name and binding-kind terms from `defs`.
  void add(DocId id, const wsdl::Definitions& defs, const xml::Node& doc);

  /// Unlinks every posting of `id`. No-op for unknown ids.
  void remove(DocId id);

  /// Posting list of documents defining <service name="...">, ascending
  /// doc id. May include a bounded number of removed ids awaiting
  /// compaction — callers filter by liveness (they must regardless).
  std::span<const DocId> service_postings(std::string_view service_name) const;

  /// Posting list of documents carrying a binding of this kind name.
  std::span<const DocId> tmodel_postings(std::string_view tmodel) const;

  /// Candidate doc ids for a compiled query: the intersection of every
  /// required term's postings, ascending. nullopt = the query has no
  /// indexable terms and the caller must scan; an empty vector is a
  /// proof of no matches (some required term appears in no document).
  std::optional<std::vector<DocId>> candidates(const xml::XPath& query) const;

  struct Stats {
    std::size_t terms = 0;         ///< distinct interned terms
    std::size_t postings = 0;      ///< posting entries incl. pending-dead
    std::size_t dead = 0;          ///< pending-dead posting entries
    std::uint64_t compactions = 0; ///< amortized list rewrites so far
  };
  Stats stats() const;

 private:
  using TermId = std::uint32_t;

  struct PostingList {
    std::vector<DocId> ids;  ///< ascending; may hold dead ids
    std::size_t dead = 0;    ///< how many of `ids` were removed
  };

  TermId intern(std::string term);
  const PostingList* find(std::string_view term) const;
  void unlink(TermId term, DocId id);
  static void collect_doc_terms(const xml::Node& node,
                                std::vector<std::string>& out);

  std::map<std::string, TermId, std::less<>> term_ids_;
  std::vector<PostingList> lists_;              ///< indexed by TermId
  std::map<DocId, std::vector<TermId>> docs_;   ///< sorted unique terms per doc
  std::size_t postings_ = 0;
  std::size_t dead_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace h2::reg
