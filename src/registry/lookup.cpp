#include "registry/lookup.hpp"

#include "wsdl/io.hpp"

namespace h2::reg {

namespace {

/// Builds the registry-service dispatcher for one node.
std::shared_ptr<net::Dispatcher> make_registry_dispatcher(
    std::shared_ptr<XmlRegistry> registry) {
  auto mux = std::make_shared<net::DispatcherMux>();
  mux->add("publish", [registry](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 2) return err::invalid_argument("publish(wsdl, lease)");
    auto text = params[0].as_string();
    if (!text.ok()) return text.error();
    auto lease = params[1].as_int();
    if (!lease.ok()) return lease.error();
    auto defs = wsdl::parse(*text);
    if (!defs.ok()) return defs.error();
    auto key = registry->add(*defs, *lease);
    if (!key.ok()) return key.error();
    return Value::of_string(std::move(*key), "key");
  });
  mux->add("find", [registry](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("find(service)");
    auto name = params[0].as_string();
    if (!name.ok()) return name.error();
    auto entry = registry->find_service(*name);
    if (!entry.ok()) return entry.error();
    return Value::of_string(wsdl::to_xml_string(entry->defs), "wsdl");
  });
  mux->add("remove", [registry](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("remove(key)");
    auto key = params[0].as_string();
    if (!key.ok()) return key.error();
    if (auto status = registry->remove(*key); !status.ok()) return status.error();
    return Value::of_void();
  });
  return mux;
}

/// Remote publish to `target` from `from` over the XDR binding.
Status remote_publish(net::SimNetwork& net, net::HostId from, RegistryNode& target,
                      const wsdl::Definitions& defs) {
  net::Endpoint endpoint{.scheme = "xdr",
                         .host = net.host_name(target.host()),
                         .port = kRegistryPort,
                         .path = ""};
  auto channel = net::make_xdr_channel(net, from, endpoint);
  std::vector<Value> params{Value::of_string(wsdl::to_xml_string(defs), "wsdl"),
                            Value::of_int(0, "lease")};
  auto result = channel->invoke("publish", params);
  if (!result.ok()) return result.error();
  return Status::success();
}

/// Remote find on `target` from `from`.
Result<wsdl::Definitions> remote_find(net::SimNetwork& net, net::HostId from,
                                      RegistryNode& target,
                                      std::string_view service_name) {
  net::Endpoint endpoint{.scheme = "xdr",
                         .host = net.host_name(target.host()),
                         .port = kRegistryPort,
                         .path = ""};
  auto channel = net::make_xdr_channel(net, from, endpoint);
  std::vector<Value> params{Value::of_string(std::string(service_name), "service")};
  auto result = channel->invoke("find", params);
  if (!result.ok()) return result.error();
  auto text = result->as_string();
  if (!text.ok()) return text.error();
  return wsdl::parse(*text);
}

class CentralizedLookup final : public LookupStrategy {
 public:
  CentralizedLookup(std::vector<RegistryNode*> nodes, std::size_t center)
      : nodes_(std::move(nodes)), center_(center) {}

  Status publish(std::size_t from, const wsdl::Definitions& defs) override {
    return remote_publish(nodes_[from]->network(), nodes_[from]->host(),
                          *nodes_[center_], defs);
  }

  Result<wsdl::Definitions> lookup(std::size_t from,
                                   std::string_view service_name) override {
    return remote_find(nodes_[from]->network(), nodes_[from]->host(),
                       *nodes_[center_], service_name);
  }

  const char* name() const override { return "centralized"; }

 private:
  std::vector<RegistryNode*> nodes_;
  std::size_t center_;
};

class DecentralizedLookup final : public LookupStrategy {
 public:
  explicit DecentralizedLookup(std::vector<RegistryNode*> nodes)
      : nodes_(std::move(nodes)) {}

  Status publish(std::size_t from, const wsdl::Definitions& defs) override {
    // Fully localized registration: no network traffic at all.
    auto key = nodes_[from]->registry().add(defs);
    if (!key.ok()) return key.error();
    return Status::success();
  }

  Result<wsdl::Definitions> lookup(std::size_t from,
                                   std::string_view service_name) override {
    // Local first, then an active distributed query across every node.
    if (auto local = nodes_[from]->registry().find_service(service_name); local.ok()) {
      return local->defs;
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (i == from) continue;
      auto found = remote_find(nodes_[from]->network(), nodes_[from]->host(),
                               *nodes_[i], service_name);
      if (found.ok()) return found;
      if (found.error().code() != ErrorCode::kNotFound) return found.error();
    }
    return err::not_found("decentralized lookup: service '" +
                          std::string(service_name) + "' not found anywhere");
  }

  const char* name() const override { return "decentralized"; }

 private:
  std::vector<RegistryNode*> nodes_;
};

class NeighborhoodLookup final : public LookupStrategy {
 public:
  NeighborhoodLookup(std::vector<RegistryNode*> nodes, std::size_t k)
      : nodes_(std::move(nodes)), k_(k) {}

  Status publish(std::size_t from, const wsdl::Definitions& defs) override {
    // Local registration plus synchronous replication to the k next ring
    // neighbours — full synchrony inside the neighbourhood.
    auto key = nodes_[from]->registry().add(defs);
    if (!key.ok()) return key.error();
    for (std::size_t step = 1; step <= k_ && step < nodes_.size(); ++step) {
      std::size_t neighbor = (from + step) % nodes_.size();
      if (auto status = remote_publish(nodes_[from]->network(), nodes_[from]->host(),
                                       *nodes_[neighbor], defs);
          !status.ok()) {
        return status.error().context("neighborhood replication");
      }
    }
    return Status::success();
  }

  Result<wsdl::Definitions> lookup(std::size_t from,
                                   std::string_view service_name) override {
    // Neighborhood data is already local (the provider replicated to us if
    // we are within k of it); fall back to a distributed query for farther
    // hosts, skipping our own ring-predecessors' replicas last.
    if (auto local = nodes_[from]->registry().find_service(service_name); local.ok()) {
      return local->defs;
    }
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (i == from) continue;
      auto found = remote_find(nodes_[from]->network(), nodes_[from]->host(),
                               *nodes_[i], service_name);
      if (found.ok()) return found;
      if (found.error().code() != ErrorCode::kNotFound) return found.error();
    }
    return err::not_found("neighborhood lookup: service '" +
                          std::string(service_name) + "' not found");
  }

  const char* name() const override { return "neighborhood"; }

 private:
  std::vector<RegistryNode*> nodes_;
  std::size_t k_;
};

}  // namespace

RegistryNode::RegistryNode(net::SimNetwork& net, net::HostId host, const Clock& clock)
    : net_(net),
      host_(host),
      registry_(std::make_shared<XmlRegistry>(clock)),
      dispatcher_(make_registry_dispatcher(registry_)) {
  registry_->bind_metrics(net.metrics());
}

Status RegistryNode::start() {
  if (server_.has_value()) return Status::success();
  auto handle = net::serve_xdr(net_, host_, kRegistryPort, dispatcher_);
  if (!handle.ok()) return handle.error();
  server_.emplace(std::move(*handle));
  return Status::success();
}

void RegistryNode::stop() { server_.reset(); }

std::unique_ptr<LookupStrategy> make_centralized_lookup(
    std::vector<RegistryNode*> nodes, std::size_t center) {
  return std::make_unique<CentralizedLookup>(std::move(nodes), center);
}

std::unique_ptr<LookupStrategy> make_decentralized_lookup(
    std::vector<RegistryNode*> nodes) {
  return std::make_unique<DecentralizedLookup>(std::move(nodes));
}

std::unique_ptr<LookupStrategy> make_neighborhood_lookup(
    std::vector<RegistryNode*> nodes, std::size_t k) {
  return std::make_unique<NeighborhoodLookup>(std::move(nodes), k);
}

}  // namespace h2::reg
