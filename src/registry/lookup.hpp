// Distributed discovery. Section 5 of the paper sketches the spectrum:
// "At one extreme, there are centralized lookup services... a single point
// of failure and a potential scalability bottleneck. At the other extreme,
// a completely decentralized approach leads to a registration phase that
// is fully localized... whereas the discovery phase performs an active
// lookup that can be expensive... Most frameworks provide solutions that
// are intermediate."
//
// This module implements all three points of the spectrum over SimNetwork,
// each node running a RegistryNode (an XmlRegistry behind an XDR server).
// bench_lookup (EXP-LOOKUP) sweeps node count and measures registration
// vs discovery cost for each strategy.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "registry/xml_registry.hpp"
#include "transport/rpc.hpp"

namespace h2::reg {

/// Well-known port for registry service endpoints.
inline constexpr std::uint16_t kRegistryPort = 7000;

/// One per-host registry service: an XmlRegistry exposed over the XDR
/// binding with operations publish(wsdl,lease) -> key and
/// find(service) -> wsdl.
class RegistryNode {
 public:
  RegistryNode(net::SimNetwork& net, net::HostId host, const Clock& clock);

  /// Binds the registry service on kRegistryPort.
  Status start();
  void stop();

  net::HostId host() const { return host_; }
  net::SimNetwork& network() { return net_; }
  XmlRegistry& registry() { return *registry_; }
  const XmlRegistry& registry() const { return *registry_; }

 private:
  net::SimNetwork& net_;
  net::HostId host_;
  std::shared_ptr<XmlRegistry> registry_;
  std::shared_ptr<net::Dispatcher> dispatcher_;
  std::optional<net::ServerHandle> server_;
};

/// A discovery strategy used by components running on node `from`.
class LookupStrategy {
 public:
  virtual ~LookupStrategy() = default;

  /// Registers `defs` as provided by node `from`.
  virtual Status publish(std::size_t from, const wsdl::Definitions& defs) = 0;

  /// Finds the WSDL for `service_name`, querying from node `from`.
  virtual Result<wsdl::Definitions> lookup(std::size_t from,
                                           std::string_view service_name) = 0;

  virtual const char* name() const = 0;
};

/// All registrations and lookups go to one designated center node.
/// Cheap constant-cost lookup; the center is a bottleneck and SPOF.
std::unique_ptr<LookupStrategy> make_centralized_lookup(
    std::vector<RegistryNode*> nodes, std::size_t center);

/// Registration is purely local (zero network traffic); lookup fans out
/// across all nodes until a hit.
std::unique_ptr<LookupStrategy> make_decentralized_lookup(
    std::vector<RegistryNode*> nodes);

/// The paper's "mixed" scheme: full replication within a k-neighborhood
/// (ring topology), distributed queries beyond it.
std::unique_ptr<LookupStrategy> make_neighborhood_lookup(
    std::vector<RegistryNode*> nodes, std::size_t k);

}  // namespace h2::reg
