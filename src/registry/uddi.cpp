#include "registry/uddi.hpp"

namespace h2::reg {

std::vector<BusinessService> UddiFacade::services_of(const Entry& entry) {
  std::vector<BusinessService> out;
  for (const auto& service : entry.defs.services) {
    BusinessService row;
    row.service_key = entry.key;
    row.name = service.name;
    row.business = entry.defs.name;
    for (const auto& port : service.ports) {
      const wsdl::Binding* binding = entry.defs.find_binding(port.binding);
      if (binding == nullptr) continue;
      row.bindings.push_back({port.address, wsdl::to_string(binding->kind)});
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<BusinessService> UddiFacade::find_service(std::string_view name) const {
  // Served off the registry's service-name posting list: only entries
  // actually defining `name` are materialized into rows.
  std::vector<BusinessService> out;
  for (const Entry* entry : registry_.find_service_all(name)) {
    for (auto& row : services_of(*entry)) {
      if (row.name == name) out.push_back(std::move(row));
    }
  }
  return out;
}

std::vector<BusinessService> UddiFacade::find_by_tmodel(wsdl::BindingKind kind) const {
  // tModels are binding kinds, which the registry indexes directly.
  std::string tmodel(wsdl::to_string(kind));
  std::vector<BusinessService> out;
  for (const Entry* entry : registry_.entries_with_tmodel(tmodel)) {
    for (auto& row : services_of(*entry)) {
      bool matches = false;
      for (const auto& binding : row.bindings) {
        if (binding.tmodel == tmodel) {
          matches = true;
          break;
        }
      }
      if (matches) out.push_back(std::move(row));
    }
  }
  return out;
}

Result<BusinessService> UddiFacade::get_service_detail(std::string_view service_key) const {
  auto entry = registry_.find_key(service_key);
  if (!entry.ok()) {
    return err::not_found("uddi: no entry with key '" + std::string(service_key) + "'");
  }
  auto rows = services_of(*entry);
  if (rows.empty()) {
    return err::not_found("uddi: entry has no services");
  }
  return rows.front();
}

std::vector<BusinessService> UddiFacade::all_services() const {
  std::vector<BusinessService> out;
  for (const Entry* entry : registry_.entries()) {
    for (auto& row : services_of(*entry)) out.push_back(std::move(row));
  }
  return out;
}

}  // namespace h2::reg
