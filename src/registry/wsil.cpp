#include "registry/wsil.hpp"

#include "util/strings.hpp"
#include "wsdl/io.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace h2::reg {

std::string to_wsil(std::span<const InspectionEntry> entries) {
  auto root = xml::Node::element("inspection");
  root->set_attr("xmlns", kWsilNs);
  for (const InspectionEntry& entry : entries) {
    xml::Node* service = root->add_element("service");
    service->add_element_with_text("abstract", entry.name);
    xml::Node* description = service->add_element("description");
    description->set_attr("referencedNamespace", "http://schemas.xmlsoap.org/wsdl/");
    description->set_attr("location", entry.wsdl_location);
  }
  xml::WriteOptions options;
  options.pretty = true;
  return xml::write(*root, options);
}

Result<std::vector<InspectionEntry>> parse_wsil(std::string_view text) {
  auto root = xml::parse_element(text);
  if (!root.ok()) return root.error().context("wsil");
  if ((*root)->local_name() != "inspection") {
    return err::parse("wsil: root element is <" + std::string((*root)->name()) +
                      ">, expected inspection");
  }
  std::vector<InspectionEntry> out;
  for (const xml::Node* service : (*root)->children_named("service")) {
    InspectionEntry entry;
    if (const xml::Node* abstract = service->first_child("abstract")) {
      entry.name = abstract->inner_text();
    }
    if (const xml::Node* description = service->first_child("description")) {
      entry.wsdl_location = description->attr_or("location", "");
    }
    if (entry.wsdl_location.empty()) {
      return err::parse("wsil: service '" + entry.name + "' has no description location");
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<InspectionEntry> inspect(const XmlRegistry& registry) {
  std::vector<InspectionEntry> out;
  for (const Entry* entry : registry.entries()) {
    for (const auto& service : entry->defs.services) {
      if (service.ports.empty()) continue;
      out.push_back({service.name, service.ports.front().address + "?wsdl"});
    }
  }
  return out;
}

Result<std::size_t> import_wsil(std::string_view wsil_text, const WsdlResolver& resolver,
                                XmlRegistry& registry, Nanos lease) {
  auto entries = parse_wsil(wsil_text);
  if (!entries.ok()) return entries.error();
  std::size_t imported = 0;
  for (const InspectionEntry& entry : *entries) {
    auto text = resolver(entry.wsdl_location);
    if (!text.ok()) {
      return text.error().context("wsil import of '" + entry.name + "'");
    }
    auto defs = wsdl::parse(*text);
    if (!defs.ok()) {
      return defs.error().context("wsil import of '" + entry.name + "'");
    }
    auto key = registry.add(*defs, lease);
    if (!key.ok()) return key.error();
    ++imported;
  }
  return imported;
}

}  // namespace h2::reg
