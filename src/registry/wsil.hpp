// WS-Inspection (WSIL) support. The paper's deployment discussion names
// WSIL as the other flavour of lookup system next to UDDI ("depends on the
// type of lookup service used (e.g. UDDI, WSIL, etc.)"). Where UDDI is a
// central registry you query, WSIL is a *document you fetch from a
// provider*: a flat list of services pointing at their WSDL descriptions.
//
// This module renders a registry (or any service list) as a WSIL document,
// parses WSIL documents back, and imports them into an XmlRegistry given a
// resolver that fetches the referenced WSDL text — the decentralized
// "crawl the providers" discovery style.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "registry/xml_registry.hpp"

namespace h2::reg {

inline constexpr const char* kWsilNs = "http://schemas.xmlsoap.org/ws/2001/10/inspection/";

/// One <service> row of an inspection document.
struct InspectionEntry {
  std::string name;           ///< <abstract> text (service name)
  std::string wsdl_location;  ///< <description location="...">

  bool operator==(const InspectionEntry&) const = default;
};

/// Renders entries as a WS-Inspection document.
std::string to_wsil(std::span<const InspectionEntry> entries);

/// Parses a WS-Inspection document.
Result<std::vector<InspectionEntry>> parse_wsil(std::string_view text);

/// Builds the inspection view of a registry: one entry per service, the
/// location being the service's first port address suffixed with "?wsdl"
/// (the conventional retrieval URL).
std::vector<InspectionEntry> inspect(const XmlRegistry& registry);

/// Fetches WSDL text for a location (network fetch, file read, ...).
using WsdlResolver = std::function<Result<std::string>(const std::string& location)>;

/// Imports every service listed in a WSIL document into `registry`,
/// resolving each description with `resolver`. Returns the number of
/// services imported; stops at the first resolution/parse failure.
Result<std::size_t> import_wsil(std::string_view wsil_text, const WsdlResolver& resolver,
                                XmlRegistry& registry, Nanos lease = 0);

}  // namespace h2::reg
