#include "registry/xml_registry.hpp"

#include "wsdl/io.hpp"
#include "xml/xpath.hpp"

namespace h2::reg {

XmlRegistry::XmlRegistry(const Clock& clock) : clock_(clock) {}

Result<std::string> XmlRegistry::add(const wsdl::Definitions& defs, Nanos lease) {
  if (auto status = wsdl::validate(defs); !status.ok()) {
    return status.error().context("registry add");
  }
  if (lease < 0) return err::invalid_argument("registry: negative lease");
  std::string key = "reg-" + std::to_string(next_key_++);
  Stored stored;
  stored.entry.key = key;
  stored.entry.defs = defs;
  stored.entry.registered_at = clock_.now();
  stored.entry.lease_expires = lease == 0 ? 0 : clock_.now() + lease;
  stored.doc = wsdl::to_xml(defs);
  stored_[key] = std::move(stored);
  return key;
}

Status XmlRegistry::renew(std::string_view key, Nanos extension) {
  auto it = stored_.find(key);
  if (it == stored_.end()) {
    return err::not_found("registry: no live entry '" + std::string(key) + "'");
  }
  if (!live(it->second)) {
    // An expired lease cannot be revived: purge the corpse so the failed
    // renew also reclaims the slot, and report the entry as gone.
    stored_.erase(it);
    return err::not_found("registry: lease on '" + std::string(key) +
                          "' already expired");
  }
  if (extension <= 0) return err::invalid_argument("registry: non-positive extension");
  it->second.entry.lease_expires = clock_.now() + extension;
  return Status::success();
}

Status XmlRegistry::remove(std::string_view key) {
  auto it = stored_.find(key);
  if (it == stored_.end()) {
    return err::not_found("registry: no entry '" + std::string(key) + "'");
  }
  stored_.erase(it);
  return Status::success();
}

std::vector<const Entry*> XmlRegistry::entries() const {
  std::vector<const Entry*> out;
  for (const auto& [key, stored] : stored_) {
    if (live(stored)) out.push_back(&stored.entry);
  }
  return out;
}

std::size_t XmlRegistry::size() const { return entries().size(); }

Result<std::vector<const Entry*>> XmlRegistry::query(std::string_view xpath) const {
  auto compiled = xml::XPath::compile(xpath);
  if (!compiled.ok()) return compiled.error().context("registry query");
  std::vector<const Entry*> out;
  for (const auto& [key, stored] : stored_) {
    if (!live(stored)) continue;
    if (!compiled->select(*stored.doc).empty()) out.push_back(&stored.entry);
  }
  return out;
}

Result<const Entry&> XmlRegistry::find_service(std::string_view service_name) const {
  const Entry* best = nullptr;
  for (const auto& [key, stored] : stored_) {
    if (!live(stored)) continue;
    if (stored.entry.defs.find_service(service_name) == nullptr) continue;
    if (best == nullptr || stored.entry.registered_at >= best->registered_at) {
      best = &stored.entry;
    }
  }
  if (best == nullptr) {
    return err::not_found("registry: no service '" + std::string(service_name) + "'");
  }
  return *best;
}

std::size_t XmlRegistry::expire() {
  std::size_t dropped = 0;
  for (auto it = stored_.begin(); it != stored_.end();) {
    if (!live(it->second)) {
      it = stored_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace h2::reg
