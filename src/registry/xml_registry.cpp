#include "registry/xml_registry.hpp"

#include <optional>

#include "obs/metrics.hpp"
#include "util/strings.hpp"
#include "wsdl/io.hpp"
#include "xml/xpath.hpp"

namespace h2::reg {

namespace {

constexpr std::string_view kKeyPrefix = "reg-";

/// Keys are "reg-<doc id>"; the id is the storage key, so key lookups
/// are O(log n) instead of a scan.
std::optional<std::uint64_t> parse_key(std::string_view key) {
  if (!str::starts_with(key, kKeyPrefix)) return std::nullopt;
  auto n = str::parse_u64(key.substr(kKeyPrefix.size()));
  if (!n.ok()) return std::nullopt;
  return *n;
}

void bump(obs::Counter* counter, std::uint64_t n = 1) {
  if (counter != nullptr) counter->add(n);
}

}  // namespace

XmlRegistry::XmlRegistry(const Clock& clock) : clock_(clock) {}

Result<std::string> XmlRegistry::add(const wsdl::Definitions& defs, Nanos lease) {
  if (auto status = wsdl::validate(defs); !status.ok()) {
    return status.error().context("registry add");
  }
  if (lease < 0) return err::invalid_argument("registry: negative lease");
  // Serialize outside the lock: the XML form is only needed to extract
  // index terms here, then dropped (queries rebuild it lazily on demand).
  std::unique_ptr<xml::Node> doc = wsdl::to_xml(defs);

  std::unique_lock lock(mu_);
  const std::uint64_t id = next_key_++;
  Stored& stored = stored_[id];  // in place: Stored is not movable
  stored.entry.key = std::string(kKeyPrefix) + std::to_string(id);
  stored.entry.defs = defs;
  stored.entry.registered_at = clock_.now();
  stored.entry.lease_expires = lease == 0 ? 0 : clock_.now() + lease;
  index_.add(id, defs, *doc);
  if (lease > 0) stored.lease_timer = leases_.add(clock_.now(), lease, id);
  bump(c_adds_);
  update_gauges_locked();
  return stored.entry.key;
}

Status XmlRegistry::renew(std::string_view key, Nanos extension) {
  std::unique_lock lock(mu_);
  auto id = parse_key(key);
  auto it = id ? stored_.find(*id) : stored_.end();
  if (it == stored_.end()) {
    return err::not_found("registry: no live entry '" + std::string(key) + "'");
  }
  if (!live(it->second)) {
    // An expired lease cannot be revived: purge the corpse so the failed
    // renew also reclaims the slot, and report the entry as gone.
    purge_locked(it);
    bump(c_expired_);
    update_gauges_locked();
    return err::not_found("registry: lease on '" + std::string(key) +
                          "' already expired");
  }
  if (extension <= 0) return err::invalid_argument("registry: non-positive extension");
  if (it->second.lease_timer != 0) leases_.cancel(it->second.lease_timer);
  it->second.entry.lease_expires = clock_.now() + extension;
  it->second.lease_timer = leases_.add(clock_.now(), extension, it->first);
  bump(c_renews_);
  update_gauges_locked();
  return Status::success();
}

Status XmlRegistry::remove(std::string_view key) {
  std::unique_lock lock(mu_);
  auto id = parse_key(key);
  auto it = id ? stored_.find(*id) : stored_.end();
  if (it == stored_.end()) {
    return err::not_found("registry: no entry '" + std::string(key) + "'");
  }
  purge_locked(it);
  bump(c_removes_);
  update_gauges_locked();
  return Status::success();
}

std::vector<const Entry*> XmlRegistry::entries() const {
  std::shared_lock lock(mu_);
  std::vector<const Entry*> out;
  out.reserve(stored_.size());
  for (const auto& [id, stored] : stored_) {
    if (live(stored)) out.push_back(&stored.entry);
  }
  return out;
}

std::size_t XmlRegistry::size() const { return entries().size(); }

Result<std::vector<const Entry*>> XmlRegistry::query(std::string_view xpath) const {
  auto compiled = xml::XPath::compile(xpath);
  if (!compiled.ok()) return compiled.error().context("registry query");

  std::shared_lock lock(mu_);
  bump(c_queries_);
  std::vector<const Entry*> out;
  auto candidates = index_.candidates(*compiled);
  if (candidates.has_value()) {
    bump(c_index_hits_);
    for (RegistryIndex::DocId id : *candidates) {
      auto it = stored_.find(id);
      // Postings may lag removals (amortized compaction) and leases may
      // lapse between wheel ticks: liveness is re-checked here.
      if (it == stored_.end() || !live(it->second)) continue;
      if (!compiled->select(doc_of(it->second)).empty()) {
        out.push_back(&it->second.entry);
      }
    }
    return out;
  }
  // Query constrains nothing indexable (e.g. "//*"): scan.
  bump(c_index_scans_);
  for (const auto& [id, stored] : stored_) {
    if (!live(stored)) continue;
    if (!compiled->select(doc_of(stored)).empty()) out.push_back(&stored.entry);
  }
  return out;
}

Result<const Entry&> XmlRegistry::find_service(std::string_view service_name) const {
  std::shared_lock lock(mu_);
  bump(c_finds_);
  const Entry* best = nullptr;
  for (RegistryIndex::DocId id : index_.service_postings(service_name)) {
    auto it = stored_.find(id);
    if (it == stored_.end() || !live(it->second)) continue;
    const Entry& entry = it->second.entry;
    if (entry.defs.find_service(service_name) == nullptr) continue;
    // Ascending-id iteration plus ">=" resolves registered_at ties to the
    // highest doc id, so the most recent registration wins even when two
    // land on the same clock tick.
    if (best == nullptr || entry.registered_at >= best->registered_at) {
      best = &entry;
    }
  }
  if (best == nullptr) {
    return err::not_found("registry: no service '" + std::string(service_name) + "'");
  }
  return *best;
}

std::vector<const Entry*> XmlRegistry::find_service_all(
    std::string_view service_name) const {
  std::shared_lock lock(mu_);
  bump(c_finds_);
  std::vector<const Entry*> out;
  for (RegistryIndex::DocId id : index_.service_postings(service_name)) {
    auto it = stored_.find(id);
    if (it == stored_.end() || !live(it->second)) continue;
    if (it->second.entry.defs.find_service(service_name) == nullptr) continue;
    out.push_back(&it->second.entry);
  }
  return out;
}

std::vector<const Entry*> XmlRegistry::entries_with_tmodel(
    std::string_view tmodel) const {
  std::shared_lock lock(mu_);
  bump(c_finds_);
  std::vector<const Entry*> out;
  for (RegistryIndex::DocId id : index_.tmodel_postings(tmodel)) {
    auto it = stored_.find(id);
    if (it == stored_.end() || !live(it->second)) continue;
    bool has_kind = false;
    for (const wsdl::Binding& binding : it->second.entry.defs.bindings) {
      if (wsdl::to_string(binding.kind) == tmodel) {
        has_kind = true;
        break;
      }
    }
    if (has_kind) out.push_back(&it->second.entry);
  }
  return out;
}

Result<const Entry&> XmlRegistry::find_key(std::string_view key) const {
  std::shared_lock lock(mu_);
  auto id = parse_key(key);
  auto it = id ? stored_.find(*id) : stored_.end();
  if (it == stored_.end() || !live(it->second)) {
    return err::not_found("registry: no entry '" + std::string(key) + "'");
  }
  return it->second.entry;
}

std::size_t XmlRegistry::expire() {
  std::unique_lock lock(mu_);
  bump(c_expire_ticks_);
  // The wheel yields exactly the due ids: an expiry tick over a table of
  // a million live leases does work proportional to how many expired.
  std::vector<loop::HierWheel<std::uint64_t>::Due> due;
  leases_.collect_due(clock_.now(), due);
  std::size_t dropped = 0;
  for (const auto& d : due) {
    auto it = stored_.find(d.payload);
    if (it == stored_.end()) continue;
    Stored& stored = it->second;
    if (stored.lease_timer != d.id) continue;  // a newer timer owns the lease
    stored.lease_timer = 0;
    if (live(stored)) {
      // Deadline moved without rearming (should not happen): re-arm.
      stored.lease_timer = leases_.add(
          clock_.now(), stored.entry.lease_expires - clock_.now(), it->first);
      continue;
    }
    purge_locked(it);
    ++dropped;
  }
  bump(c_expired_, dropped);
  update_gauges_locked();
  return dropped;
}

void XmlRegistry::bind_metrics(obs::MetricsRegistry& metrics) {
  std::unique_lock lock(mu_);
  c_adds_ = &metrics.counter("h2.reg.adds");
  c_removes_ = &metrics.counter("h2.reg.removes");
  c_renews_ = &metrics.counter("h2.reg.renews");
  c_expired_ = &metrics.counter("h2.reg.expired");
  c_expire_ticks_ = &metrics.counter("h2.reg.expire_ticks");
  c_finds_ = &metrics.counter("h2.reg.finds");
  c_queries_ = &metrics.counter("h2.reg.queries");
  c_index_hits_ = &metrics.counter("h2.reg.index.hits");
  c_index_scans_ = &metrics.counter("h2.reg.index.scans");
  g_entries_ = &metrics.gauge("h2.reg.entries");
  g_terms_ = &metrics.gauge("h2.reg.index.terms");
  g_postings_ = &metrics.gauge("h2.reg.index.postings");
  g_lease_timers_ = &metrics.gauge("h2.reg.lease.timers");
  update_gauges_locked();
}

RegistryIndex::Stats XmlRegistry::index_stats() const {
  std::shared_lock lock(mu_);
  return index_.stats();
}

std::uint64_t XmlRegistry::lease_cascades() const {
  std::shared_lock lock(mu_);
  return leases_.cascades();
}

const xml::Node& XmlRegistry::doc_of(const Stored& stored) const {
  std::call_once(stored.doc_once,
                 [&stored] { stored.doc = wsdl::to_xml(stored.entry.defs); });
  return *stored.doc;
}

void XmlRegistry::purge_locked(std::map<std::uint64_t, Stored>::iterator it) {
  index_.remove(it->first);
  if (it->second.lease_timer != 0) leases_.cancel(it->second.lease_timer);
  stored_.erase(it);
}

void XmlRegistry::update_gauges_locked() {
  if (g_entries_ == nullptr) return;
  g_entries_->set(static_cast<std::int64_t>(stored_.size()));
  RegistryIndex::Stats stats = index_.stats();
  g_terms_->set(static_cast<std::int64_t>(stats.terms));
  g_postings_->set(static_cast<std::int64_t>(stats.postings));
  g_lease_timers_->set(static_cast<std::int64_t>(leases_.size()));
}

}  // namespace h2::reg
