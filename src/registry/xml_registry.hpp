// The Harness II registry/lookup framework: stores WSDL documents and
// answers queries "for specific nodes and values" of their XML form —
// the paper's deployment plan item (1), verbatim. Designed for volatile
// components: every registration can carry a lease, and expired leases
// are purged, which is exactly what business registries like UDDI lacked
// ("biased towards storing persistent information about long-lived
// services rather than volatile information related to fluid components").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.hpp"
#include "util/error.hpp"
#include "wsdl/model.hpp"
#include "xml/dom.hpp"

namespace h2::reg {

/// One stored registration.
struct Entry {
  std::string key;           ///< registration key (returned by register_service)
  wsdl::Definitions defs;    ///< parsed document
  Nanos registered_at = 0;
  Nanos lease_expires = 0;   ///< 0 = permanent
};

class XmlRegistry {
 public:
  /// `clock` is borrowed and must outlive the registry (virtual time in
  /// simulations, wall time otherwise).
  explicit XmlRegistry(const Clock& clock);

  /// Validates and stores a document. `lease` of 0 means permanent;
  /// otherwise the entry expires `lease` ns from now. Returns the key.
  Result<std::string> add(const wsdl::Definitions& defs, Nanos lease = 0);

  /// Extends an existing lease by `extension` ns from *now*.
  Status renew(std::string_view key, Nanos extension);

  Status remove(std::string_view key);

  /// All live (non-expired) entries.
  std::vector<const Entry*> entries() const;
  std::size_t size() const;

  /// Entries whose WSDL XML matches `xpath` (at least one node selected).
  /// This is the generic query the framework maps onto commercial
  /// registries: e.g. "//binding/binding[@kind='xdr']" finds every
  /// service reachable over the XDR binding.
  Result<std::vector<const Entry*>> query(std::string_view xpath) const;

  /// Convenience: entry whose <service name="..."> matches. Most recent
  /// registration wins if several documents define the same service.
  /// Success means the entry exists; the reference is valid until the
  /// entry is removed or expires.
  Result<const Entry&> find_service(std::string_view service_name) const;

  /// Purges expired leases; returns how many were dropped.
  std::size_t expire();

 private:
  struct Stored {
    Entry entry;
    std::unique_ptr<xml::Node> doc;  ///< cached XML for queries
  };

  bool live(const Stored& stored) const {
    return stored.entry.lease_expires == 0 ||
           stored.entry.lease_expires > clock_.now();
  }

  const Clock& clock_;
  std::map<std::string, Stored, std::less<>> stored_;
  std::uint64_t next_key_ = 1;
};

}  // namespace h2::reg
