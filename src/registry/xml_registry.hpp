// The Harness II registry/lookup framework: stores WSDL documents and
// answers queries "for specific nodes and values" of their XML form —
// the paper's deployment plan item (1), verbatim. Designed for volatile
// components: every registration can carry a lease, and expired leases
// are purged, which is exactly what business registries like UDDI lacked
// ("biased towards storing persistent information about long-lived
// services rather than volatile information related to fluid components").
//
// Built for millions of entries (DESIGN.md §15):
//   - an inverted index (registry/index.hpp) turns find_service, the
//     UDDI facade lookups and XPath-lite queries into posting-list
//     intersections instead of full-document walks;
//   - leases hang on a hierarchical timer wheel (loop/hier_wheel.hpp),
//     so an expiry tick costs O(expired), not O(all leases);
//   - reads take a shared lock and publishes an exclusive one, so finds
//     never serialize behind other finds.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "loop/hier_wheel.hpp"
#include "registry/index.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "wsdl/model.hpp"
#include "xml/dom.hpp"

namespace h2::obs {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace h2::obs

namespace h2::reg {

/// One stored registration.
struct Entry {
  std::string key;           ///< registration key (returned by register_service)
  wsdl::Definitions defs;    ///< parsed document
  Nanos registered_at = 0;
  Nanos lease_expires = 0;   ///< 0 = permanent
};

class XmlRegistry {
 public:
  /// `clock` is borrowed and must outlive the registry (virtual time in
  /// simulations, wall time otherwise).
  explicit XmlRegistry(const Clock& clock);

  /// Validates and stores a document. `lease` of 0 means permanent;
  /// otherwise the entry expires `lease` ns from now. Returns the key.
  Result<std::string> add(const wsdl::Definitions& defs, Nanos lease = 0);

  /// Extends an existing lease by `extension` ns from *now*.
  Status renew(std::string_view key, Nanos extension);

  Status remove(std::string_view key);

  /// All live (non-expired) entries, in registration order.
  std::vector<const Entry*> entries() const;
  std::size_t size() const;

  /// Entries whose WSDL XML matches `xpath` (at least one node selected).
  /// This is the generic query the framework maps onto commercial
  /// registries: e.g. "//binding/binding[@kind='xdr']" finds every
  /// service reachable over the XDR binding. Served from the inverted
  /// index when the query has required terms; the compiled XPath then
  /// runs only on the candidate documents.
  Result<std::vector<const Entry*>> query(std::string_view xpath) const;

  /// Convenience: entry whose <service name="..."> matches. Most recent
  /// registration wins if several documents define the same service.
  /// Success means the entry exists; the reference is valid until the
  /// entry is removed or expires.
  Result<const Entry&> find_service(std::string_view service_name) const;

  /// Every live entry defining <service name="...">, registration order
  /// — the UDDI find_service row source.
  std::vector<const Entry*> find_service_all(std::string_view service_name) const;

  /// Every live entry carrying a binding of kind `tmodel` ("soap",
  /// "xdr", ...), registration order — the UDDI find_by_tmodel source.
  std::vector<const Entry*> entries_with_tmodel(std::string_view tmodel) const;

  /// Live entry by registration key; O(log n).
  Result<const Entry&> find_key(std::string_view key) const;

  /// Purges expired leases; returns how many were dropped. Work is
  /// proportional to the number of entries actually expired (the lease
  /// wheel yields exactly the due ids), not to the table size.
  std::size_t expire();

  /// Binds h2.reg.* counters/gauges; `metrics` must outlive the
  /// registry. Safe to call once at setup (RegistryNode does).
  void bind_metrics(obs::MetricsRegistry& metrics);

  /// Index internals for tests and the bench (terms, postings, pending
  /// dead, compactions).
  RegistryIndex::Stats index_stats() const;
  /// Lease-wheel cascade count (observability; see HierWheel).
  std::uint64_t lease_cascades() const;

 private:
  struct Stored {
    Entry entry;
    /// XML form, built on first query need; call_once makes the lazy
    /// build safe under the shared (read) lock. The registry only ever
    /// needs the DOM for XPath candidates, so a million registrations
    /// that are found by name never pay for a million cached trees.
    mutable std::unique_ptr<xml::Node> doc;
    mutable std::once_flag doc_once;
    loop::TimerId lease_timer = 0;  ///< 0 = permanent (no wheel entry)
  };

  bool live(const Stored& stored) const {
    return stored.entry.lease_expires == 0 ||
           stored.entry.lease_expires > clock_.now();
  }

  const xml::Node& doc_of(const Stored& stored) const;
  void purge_locked(std::map<std::uint64_t, Stored>::iterator it);
  void update_gauges_locked();

  const Clock& clock_;
  mutable std::shared_mutex mu_;
  std::map<std::uint64_t, Stored> stored_;  ///< doc id -> entry, id order
  RegistryIndex index_;
  loop::HierWheel<std::uint64_t> leases_;   ///< payload: doc id
  std::uint64_t next_key_ = 1;

  obs::Counter* c_adds_ = nullptr;
  obs::Counter* c_removes_ = nullptr;
  obs::Counter* c_renews_ = nullptr;
  obs::Counter* c_expired_ = nullptr;
  obs::Counter* c_expire_ticks_ = nullptr;
  obs::Counter* c_finds_ = nullptr;
  obs::Counter* c_queries_ = nullptr;
  obs::Counter* c_index_hits_ = nullptr;
  obs::Counter* c_index_scans_ = nullptr;
  obs::Gauge* g_entries_ = nullptr;
  obs::Gauge* g_terms_ = nullptr;
  obs::Gauge* g_postings_ = nullptr;
  obs::Gauge* g_lease_timers_ = nullptr;
};

}  // namespace h2::reg
