#include "resilience/breaker.hpp"

#include "transport/simnet.hpp"

namespace h2::resil {

CircuitBreaker::CircuitBreaker(BreakerConfig config, obs::Gauge* state_gauge,
                               obs::Counter* open_transitions)
    : config_(config),
      state_gauge_(state_gauge),
      open_transitions_(open_transitions),
      outcomes_(config_.window == 0 ? 1 : config_.window, false) {
  if (state_gauge_ != nullptr) state_gauge_->set(static_cast<std::int64_t>(State::kClosed));
}

bool CircuitBreaker::allow(Nanos now) {
  std::lock_guard lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= config_.cooldown) {
        transition_locked(State::kHalfOpen);
        probe_outstanding_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      // Exactly one probe in flight; everyone else keeps failing fast.
      if (!probe_outstanding_) {
        probe_outstanding_ = true;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::record(bool success, Nanos now) {
  std::lock_guard lock(mu_);
  if (state_ == State::kHalfOpen) {
    probe_outstanding_ = false;
    if (success) {
      // Probe succeeded: fresh start, forget the failure window.
      transition_locked(State::kClosed);
      next_slot_ = 0;
      filled_ = 0;
    } else {
      opened_at_ = now;
      transition_locked(State::kOpen);
      if (open_transitions_ != nullptr) open_transitions_->add();
    }
    return;
  }
  outcomes_[next_slot_] = success;
  next_slot_ = (next_slot_ + 1) % outcomes_.size();
  if (filled_ < outcomes_.size()) ++filled_;
  if (state_ == State::kClosed && filled_ >= config_.min_calls &&
      failure_rate_locked() >= config_.failure_threshold) {
    opened_at_ = now;
    transition_locked(State::kOpen);
    if (open_transitions_ != nullptr) open_transitions_->add();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard lock(mu_);
  return state_;
}

void CircuitBreaker::transition_locked(State next) {
  state_ = next;
  if (state_gauge_ != nullptr) state_gauge_->set(static_cast<std::int64_t>(next));
}

double CircuitBreaker::failure_rate_locked() const {
  if (filled_ == 0) return 0.0;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    if (!outcomes_[i]) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(filled_);
}

CircuitBreaker& BreakerRegistry::for_endpoint(std::string_view key) {
  std::lock_guard lock(mu_);
  auto it = breakers_.find(key);
  if (it != breakers_.end()) return *it->second;
  obs::Gauge* gauge = nullptr;
  obs::Counter* opens = nullptr;
  if (metrics_ != nullptr) {
    gauge = &metrics_->gauge("h2.resil." + std::string(key) + ".breaker_state");
    opens = &metrics_->counter("h2.resil." + std::string(key) + ".breaker_opens");
  }
  auto breaker = std::make_unique<CircuitBreaker>(config_, gauge, opens);
  auto [pos, inserted] =
      breakers_.emplace(std::string(key), std::move(breaker));
  return *pos->second;
}

BreakerRegistry& BreakerRegistry::of(net::Transport& net) {
  if (!net.breaker_registry()) {
    net.set_breaker_registry(std::make_shared<BreakerRegistry>(&net.metrics()));
  }
  return *net.breaker_registry();
}

void BreakerRegistry::set_config(BreakerConfig config) {
  std::lock_guard lock(mu_);
  config_ = config;
}

std::size_t BreakerRegistry::size() const {
  std::lock_guard lock(mu_);
  return breakers_.size();
}

}  // namespace h2::resil
