// CircuitBreaker — per-endpoint failure-rate tripwire. When calls to a
// host keep failing, every further attempt pays a full deadline's worth
// of retries before the caller learns the host is dead. The breaker
// short-circuits that: after the windowed failure rate crosses the
// threshold it *opens* and all calls fail fast (kUnavailable, definitely
// not executed) until a cooldown elapses. Then it goes *half-open* and
// admits exactly one probe; the probe's outcome closes it again or
// re-opens it for another cooldown.
//
//        record(fail) rate >= threshold
//   closed ────────────────────────────► open
//     ▲                                   │ cooldown elapsed
//     │ probe succeeds                    ▼
//     └───────────────────────────── half-open ──► open (probe fails)
//
// Breakers live in a BreakerRegistry owned per network world, so every
// channel talking to the same endpoint shares one breaker: one channel's
// discovery that a host is dead makes all of them fail fast.
//
// Thread safety: a breaker is a mutex around a tiny ring buffer, and the
// registry is a mutex around a node-stable map — both safe for the
// threaded container path and cheap enough for the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/clock.hpp"

namespace h2::net {
class Transport;
}  // namespace h2::net

namespace h2::resil {

struct BreakerConfig {
  /// Sliding window of most-recent call outcomes considered for the rate.
  std::size_t window = 8;
  /// Minimum outcomes in the window before the breaker may trip.
  std::size_t min_calls = 4;
  /// Failure fraction (within the window) at or above which it opens.
  double failure_threshold = 0.5;
  /// How long an open breaker rejects before admitting a half-open probe.
  Nanos cooldown = 10 * kMillisecond;
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(BreakerConfig config = {}, obs::Gauge* state_gauge = nullptr,
                          obs::Counter* open_transitions = nullptr);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// May a call proceed at virtual time `now`? An open breaker past its
  /// cooldown flips to half-open and admits this one call as the probe;
  /// while the probe is outstanding, further calls are rejected.
  bool allow(Nanos now);

  /// Reports the outcome of a call previously admitted by allow().
  void record(bool success, Nanos now);

  State state() const;
  const BreakerConfig& config() const { return config_; }

 private:
  void transition_locked(State next);
  double failure_rate_locked() const;

  BreakerConfig config_;
  obs::Gauge* state_gauge_;        ///< optional: h2.resil.<key>.breaker_state
  obs::Counter* open_transitions_;  ///< optional: counts closed/half-open -> open

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::vector<bool> outcomes_;  ///< ring buffer, true = success
  std::size_t next_slot_ = 0;
  std::size_t filled_ = 0;
  Nanos opened_at_ = 0;
  bool probe_outstanding_ = false;
};

/// One breaker per endpoint key (we key by target host name: all ports on
/// a dead host die together in this world). Returned references are
/// stable for the registry's lifetime.
class BreakerRegistry {
 public:
  explicit BreakerRegistry(obs::MetricsRegistry* metrics = nullptr,
                           BreakerConfig config = {})
      : metrics_(metrics), config_(config) {}

  BreakerRegistry(const BreakerRegistry&) = delete;
  BreakerRegistry& operator=(const BreakerRegistry&) = delete;

  CircuitBreaker& for_endpoint(std::string_view key);

  /// The registry shared by everything on one network world, attached
  /// lazily to the Transport's opaque slot on first use. All channels in
  /// that world share breakers, so one channel learning a host is dead
  /// makes every channel to it fail fast.
  static BreakerRegistry& of(net::Transport& net);

  void set_config(BreakerConfig config);
  std::size_t size() const;

 private:
  obs::MetricsRegistry* metrics_;
  BreakerConfig config_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>, std::less<>> breakers_;
};

}  // namespace h2::resil
