// DedupCache — the server half of at-most-once execution. A retrying
// client cannot tell "request lost" from "reply lost"; for the latter the
// handler already ran, and blindly re-executing a non-idempotent op would
// double-apply its side effect. So the ResilientChannel stamps every
// logical call with an idempotency key (SOAP <h2:CallId> header / XDR
// H2RC frame field) and keeps the SAME key across retries of one call;
// the server caches the serialized reply bytes under that key and replays
// them verbatim for any duplicate arrival. The handler executes at most
// once per key; at-most-once composes with the client's retry loop into
// effectively-once for calls that eventually get a reply through.
//
// Header-only on purpose: h2_transport's serve_xdr/SoapHttpServer include
// this without taking a link dependency on h2_resilience.
//
// Eviction is FIFO with a fixed capacity — in the simulator call ids are
// monotonic serials so FIFO == oldest-call-first. The default capacity is
// deliberately modest: a duplicate can only arrive within one logical
// call's retry window (max_attempts bounded by the CallPolicy deadline),
// so a few hundred entries cover hundreds of concurrent logical calls,
// and keeping the resident set small keeps the per-call reply copy warm
// in cache instead of churning megabytes of cold heap. `set_enabled(false)`
// exists solely for the planted-bug scenario that proves the
// no-duplicate-side-effect invariant has teeth.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/byte_buffer.hpp"

namespace h2::resil {

/// SOAP header carrying the idempotency key (non-mustUnderstand, like the
/// Trace header — servers that predate dedup simply ignore it).
inline constexpr std::string_view kCallIdHeaderName = "CallId";
inline constexpr std::string_view kCallIdHeaderNs = "http://harness2/resilience";

/// Default reply-cache depth: sized to the retry horizon (see the file
/// comment), not to available memory.
inline constexpr std::size_t kDefaultDedupCapacity = 256;

class DedupCache {
 public:
  explicit DedupCache(std::size_t capacity = kDefaultDedupCapacity,
                      obs::Counter* hits = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity), hits_(hits) {}

  DedupCache(const DedupCache&) = delete;
  DedupCache& operator=(const DedupCache&) = delete;

  /// Cached reply for `call_id`, if this id already executed. A hit means
  /// the caller must replay these bytes instead of dispatching.
  std::optional<ByteBuffer> lookup(std::string_view call_id) {
    if (call_id.empty()) return std::nullopt;
    std::lock_guard lock(mu_);
    if (!enabled_) return std::nullopt;
    auto it = replies_.find(call_id);
    if (it == replies_.end()) return std::nullopt;
    ++hit_count_;
    if (hits_ != nullptr) hits_->add();
    return it->second;
  }

  /// Records the serialized reply for `call_id` after the handler ran.
  /// Dispatch *faults* are cached too — the handler executed, and a retry
  /// must observe the same outcome, not a second execution.
  void store(std::string_view call_id, ByteBuffer reply) {
    if (call_id.empty()) return;
    std::lock_guard lock(mu_);
    if (!enabled_) return;
    // Call ids are monotonic serials, so the new key almost always sorts
    // last — the hint turns the usual insert into O(1).
    auto it = replies_.emplace_hint(replies_.end(), std::string(call_id),
                                    std::move(reply));
    if (order_.size() == replies_.size()) return;  // duplicate id: hint was a no-op
    order_.push_back(&it->first);
    while (order_.size() > capacity_) {
      replies_.erase(*order_.front());
      order_.pop_front();
    }
  }

  void set_enabled(bool enabled) {
    std::lock_guard lock(mu_);
    enabled_ = enabled;
  }
  bool enabled() const {
    std::lock_guard lock(mu_);
    return enabled_;
  }

  std::uint64_t hits() const {
    std::lock_guard lock(mu_);
    return hit_count_;
  }
  std::size_t size() const {
    std::lock_guard lock(mu_);
    return replies_.size();
  }

 private:
  std::size_t capacity_;
  obs::Counter* hits_;  ///< optional global h2.resil.dedup_hits
  mutable std::mutex mu_;
  bool enabled_ = true;
  std::uint64_t hit_count_ = 0;
  std::map<std::string, ByteBuffer, std::less<>> replies_;
  std::deque<const std::string*> order_;  ///< insertion order; map nodes are stable
};

}  // namespace h2::resil
