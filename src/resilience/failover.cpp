#include "resilience/failover.hpp"

#include <charconv>

#include "resilience/resilient_channel.hpp"

namespace h2::resil {

FailoverChannel::FailoverChannel(dvm::Dvm& dvm, container::Container& origin,
                                 std::string service_name, CallPolicy policy,
                                 std::vector<wsdl::BindingKind> preference)
    : dvm_(dvm),
      origin_(origin),
      service_(std::move(service_name)),
      policy_(policy),
      preference_(std::move(preference)),
      c_failovers_(origin.network().metrics().counter("h2.resil.failovers")) {}

Result<std::unique_ptr<net::Channel>> FailoverChannel::open_candidate(
    const wsdl::Definitions& defs) {
  if (preference_.empty()) {
    return origin_.open_resilient_channel(defs, policy_);
  }
  return origin_.open_resilient_channel(defs, policy_, preference_);
}

std::string FailoverChannel::node_of(const net::Channel& channel) const {
  const net::Endpoint* remote = channel.remote();
  return remote != nullptr ? remote->host : origin_.name();
}

Result<Value> FailoverChannel::invoke(std::string_view operation,
                                      std::span<const Value> params) {
  std::string failed_node;
  // Sticky primary: keep using the node that last answered until it
  // becomes unavailable — failover is an event, not a per-call lottery.
  if (current_) {
    auto result = current_->invoke(operation, params);
    last_stats_ = current_->last_stats();
    if (result.ok() || result.error().code() != ErrorCode::kUnavailable) {
      // Success, an application answer, or kTimeout ("maybe executed" —
      // switching replicas now could double-apply; the caller decides).
      return result;
    }
    failed_node = current_node_;
    current_.reset();
    current_node_.clear();
  }

  Error last_error =
      err::unavailable("no replica of '" + service_ + "' in dvm " + dvm_.name());
  for (const wsdl::Definitions& defs : dvm_.find_all_services(service_)) {
    auto channel = open_candidate(defs);
    if (!channel.ok()) {
      last_error = channel.error();
      continue;
    }
    std::string node = node_of(**channel);
    if (node == failed_node) continue;  // the replica that just failed us
    auto result = (*channel)->invoke(operation, params);
    last_stats_ = (*channel)->last_stats();
    const bool definitely_not_executed =
        !result.ok() && result.error().code() == ErrorCode::kUnavailable;
    if (definitely_not_executed) {
      last_error = result.error();
      continue;
    }
    // This replica owns the call now (even a kTimeout pins us here: only
    // same-node same-id retries are safe after a maybe-executed attempt).
    if (!failed_node.empty() && node != failed_node) {
      c_failovers_.add();
      dvm_.announce_failover(service_, failed_node, node);
    }
    current_ = std::move(*channel);
    current_node_ = std::move(node);
    return result;
  }

  // Every replica is (currently) unreachable. No handler ran anywhere, but
  // surfacing kUnavailable would leak transport taxonomy into callers that
  // only want "done, answered, or try again later" — so the terminal
  // failure of a logical call is always kTimeout.
  return Error(ErrorCode::kTimeout, "no replica available for '" + service_ + "' (" +
                                        last_error.message() + ")");
}

Status FailoverChannel::invoke_batch(std::span<const net::BatchItem> calls,
                                     std::vector<Result<Value>>& results) {
  if (calls.empty()) {
    results.clear();
    return Status::success();
  }
  std::string failed_node;
  if (current_) {
    Status status = current_->invoke_batch(calls, results);
    last_stats_ = current_->last_stats();
    if (status.ok() || status.error().code() != ErrorCode::kUnavailable) {
      return status;
    }
    failed_node = current_node_;
    current_.reset();
    current_node_.clear();
  }

  Error last_error =
      err::unavailable("no replica of '" + service_ + "' in dvm " + dvm_.name());
  for (const wsdl::Definitions& defs : dvm_.find_all_services(service_)) {
    auto channel = open_candidate(defs);
    if (!channel.ok()) {
      last_error = channel.error();
      continue;
    }
    std::string node = node_of(**channel);
    if (node == failed_node) continue;
    Status status = (*channel)->invoke_batch(calls, results);
    last_stats_ = (*channel)->last_stats();
    if (!status.ok() && status.error().code() == ErrorCode::kUnavailable) {
      last_error = status.error();
      continue;
    }
    if (!failed_node.empty() && node != failed_node) {
      c_failovers_.add();
      dvm_.announce_failover(service_, failed_node, node);
    }
    current_ = std::move(*channel);
    current_node_ = std::move(node);
    return status;
  }

  Error timeout(ErrorCode::kTimeout, "no replica available for '" + service_ +
                                         "' (" + last_error.message() + ")");
  results.assign(calls.size(), Result<Value>(timeout));
  return Status(std::move(timeout));
}

// ---- ShardRoutedChannel ---------------------------------------------------------

namespace {

/// Parses the "ts writer" reply of the state service's wset operation.
std::optional<dvm::Version> parse_version(std::string_view reply) {
  const std::size_t space = reply.find(' ');
  if (space == std::string_view::npos) return std::nullopt;
  dvm::Version v;
  auto [p1, e1] = std::from_chars(reply.data(), reply.data() + space, v.ts);
  auto [p2, e2] =
      std::from_chars(reply.data() + space + 1, reply.data() + reply.size(), v.writer);
  if (e1 != std::errc() || e2 != std::errc()) return std::nullopt;
  return v;
}

std::vector<Value> wset_params(std::string_view key, std::string_view value) {
  return {Value::of_string(std::string(key), "key"),
          Value::of_string(std::string(value), "value")};
}

std::vector<Value> vset_params(const dvm::VersionedEntry& entry) {
  return {Value::of_string(entry.key, "key"), Value::of_string(entry.value, "value"),
          Value::of_int(static_cast<std::int64_t>(entry.version.ts), "ts"),
          Value::of_int(static_cast<std::int64_t>(entry.version.writer), "writer"),
          Value::of_bool(entry.deleted, "deleted")};
}

}  // namespace

ShardRoutedChannel::ShardRoutedChannel(dvm::Dvm& dvm, container::Container& origin,
                                       CallPolicy policy)
    : dvm_(dvm),
      origin_(origin),
      policy_(policy),
      c_failovers_(origin.network().metrics().counter("h2.resil.shard.failovers")) {}

net::Channel& ShardRoutedChannel::channel_to(const std::string& node) {
  auto it = channels_.find(node);
  if (it == channels_.end()) {
    net::Endpoint endpoint{
        .scheme = "xdr", .host = node, .port = dvm::kStatePort, .path = ""};
    auto inner = net::make_xdr_channel(origin_.network(), origin_.host(), endpoint);
    it = channels_
             .emplace(node, make_resilient_channel(
                                std::move(inner), origin_.network(), policy_,
                                /*breaker=*/nullptr,
                                "xdr://" + node + ":" + std::to_string(dvm::kStatePort)))
             .first;
  }
  return *it->second;
}

std::vector<std::string> ShardRoutedChannel::owner_order(
    std::size_t shard, std::span<const std::string> owners) const {
  // Sticky owner first (if it still owns the shard), then ring order.
  std::vector<std::string> out;
  out.reserve(owners.size());
  auto sticky = sticky_.find(shard);
  if (sticky != sticky_.end()) {
    for (const std::string& owner : owners) {
      if (owner == sticky->second) {
        out.push_back(owner);
        break;
      }
    }
  }
  for (const std::string& owner : owners) {
    if (out.empty() || owner != out.front()) out.push_back(owner);
  }
  return out;
}

void ShardRoutedChannel::note_served(std::size_t shard, const std::string& node) {
  auto it = sticky_.find(shard);
  if (it != sticky_.end() && it->second != node) {
    ++failovers_;
    c_failovers_.add();
    dvm_.announce_failover("dvm-state", it->second, node);
  }
  sticky_[shard] = node;
}

std::string ShardRoutedChannel::routed_node(std::string_view key) const {
  const dvm::ShardMap* map = dvm_.shard_map();
  if (map == nullptr) return "";
  auto it = sticky_.find(map->shard_of(key));
  return it == sticky_.end() ? "" : it->second;
}

Result<std::string> ShardRoutedChannel::get(std::string_view key) {
  const dvm::ShardMap* map = dvm_.shard_map();
  if (map == nullptr) {
    return err::unsupported("shard routing requires the sharded coherency mode");
  }
  const std::size_t shard = map->shard_of(key);
  std::vector<Value> params{Value::of_string(std::string(key), "key")};
  bool any_answered = false;
  Error last_error = err::unavailable("shard " + std::to_string(shard) + " has no owners");
  for (const std::string& node : owner_order(shard, map->owners(shard))) {
    auto result = channel_to(node).invoke("get", params);
    if (result.ok()) {
      note_served(shard, node);
      return result->as_string();
    }
    if (result.error().code() == ErrorCode::kNotFound) {
      // This replica is reachable but lacks the key (stale or the key is
      // simply absent); another owner may still hold it.
      any_answered = true;
      continue;
    }
    if (result.error().code() != ErrorCode::kUnavailable) {
      return result.error();  // application answer or maybe-executed
    }
    last_error = result.error();
  }
  if (any_answered) {
    return err::not_found("state: no key '" + std::string(key) +
                          "' on any reachable shard owner");
  }
  return Error(ErrorCode::kTimeout, "no owner of shard " + std::to_string(shard) +
                                        " available (" + last_error.message() + ")");
}

Status ShardRoutedChannel::replicate(const dvm::VersionedEntry& entry,
                                     std::span<const std::string> owners,
                                     const std::string& already_applied) {
  // Fan-out of the assigned version to the remaining owners. A leg that
  // fails parks a hint at this channel's origin — replay redelivers it
  // when the owner is back, so the write regains R-replication without
  // waiting for anti-entropy. The write itself is already acknowledged by
  // the coordinating owner, so this never fails the call.
  for (const std::string& owner : owners) {
    if (owner == already_applied) continue;
    if (!channel_to(owner).invoke("vset", vset_params(entry)).ok()) {
      dvm_.park_hint(origin_.name(), owner, entry);
    }
  }
  return Status::success();
}

Status ShardRoutedChannel::set(std::string_view key, std::string_view value) {
  const dvm::ShardMap* map = dvm_.shard_map();
  if (map == nullptr) {
    return err::unsupported("shard routing requires the sharded coherency mode");
  }
  const std::size_t shard = map->shard_of(key);
  auto owners = map->owners(shard);
  Error last_error = err::unavailable("shard " + std::to_string(shard) + " has no owners");
  for (const std::string& node : owner_order(shard, owners)) {
    auto result = channel_to(node).invoke("wset", wset_params(key, value));
    if (result.ok()) {
      note_served(shard, node);
      auto reply = result->as_string();
      if (!reply.ok()) return reply.error();
      auto version = parse_version(*reply);
      if (!version.has_value()) {
        return err::internal("bad wset version reply '" + *reply + "'");
      }
      dvm::VersionedEntry entry{std::string(key), std::string(value), *version, false};
      return replicate(entry, owners, node);
    }
    if (result.error().code() != ErrorCode::kUnavailable) {
      return result.error();  // kTimeout: maybe executed, do not double-apply
    }
    last_error = result.error();
  }
  return Error(ErrorCode::kTimeout, "no owner of shard " + std::to_string(shard) +
                                        " available (" + last_error.message() + ")");
}

Status ShardRoutedChannel::set_batch(std::span<const dvm::KV> writes) {
  const dvm::ShardMap* map = dvm_.shard_map();
  if (map == nullptr) {
    return err::unsupported("shard routing requires the sharded coherency mode");
  }
  if (writes.empty()) return Status::success();

  // Group writes by the owner each one routes to (sticky/primary of its
  // shard) so each routed owner receives ONE batched wset frame.
  struct Group {
    std::vector<std::size_t> write_idx;
  };
  std::map<std::string, Group> groups;
  for (std::size_t i = 0; i < writes.size(); ++i) {
    const std::size_t shard = map->shard_of(writes[i].key);
    auto order = owner_order(shard, map->owners(shard));
    if (order.empty()) {
      return Error(ErrorCode::kTimeout,
                   "no owner of shard " + std::to_string(shard) + " available");
    }
    groups[order.front()].write_idx.push_back(i);
  }

  // One replication entry per write, accumulated across groups and sent as
  // ONE vset batch per secondary owner at the end (failed legs become
  // hints).
  std::map<std::string, std::vector<dvm::VersionedEntry>> replication;
  for (auto& [node, group] : groups) {
    std::vector<net::BatchItem> calls;
    calls.reserve(group.write_idx.size());
    for (std::size_t idx : group.write_idx) {
      net::BatchItem item;
      item.operation = "wset";
      item.params = wset_params(writes[idx].key, writes[idx].value);
      calls.push_back(std::move(item));
    }
    std::vector<Result<Value>> results;
    Status status = channel_to(node).invoke_batch(calls, results);
    if (!status.ok() && status.error().code() == ErrorCode::kUnavailable) {
      // The whole frame definitely did not execute: re-route each write
      // individually through the owner walk.
      for (std::size_t idx : group.write_idx) {
        if (auto one = set(writes[idx].key, writes[idx].value); !one.ok()) return one;
      }
      continue;
    }
    if (!status.ok()) return status;
    for (std::size_t r = 0; r < results.size(); ++r) {
      const std::size_t idx = group.write_idx[r];
      if (!results[r].ok()) return results[r].error();
      auto reply = results[r]->as_string();
      if (!reply.ok()) return reply.error();
      auto version = parse_version(*reply);
      if (!version.has_value()) {
        return err::internal("bad wset version reply '" + *reply + "'");
      }
      const std::size_t shard = map->shard_of(writes[idx].key);
      note_served(shard, node);
      dvm::VersionedEntry entry{std::string(writes[idx].key),
                                std::string(writes[idx].value), *version, false};
      for (const std::string& owner : map->owners(shard)) {
        if (owner == node) continue;
        replication[owner].push_back(entry);
      }
    }
  }
  for (auto& [owner, entries] : replication) {
    std::vector<net::BatchItem> calls;
    calls.reserve(entries.size());
    for (const dvm::VersionedEntry& entry : entries) {
      net::BatchItem item;
      item.operation = "vset";
      item.params = vset_params(entry);
      calls.push_back(std::move(item));
    }
    std::vector<Result<Value>> results;
    if (!channel_to(owner).invoke_batch(calls, results).ok()) {
      // The whole frame missed this owner: park every leg as a hint.
      for (const dvm::VersionedEntry& entry : entries) {
        dvm_.park_hint(origin_.name(), owner, entry);
      }
      continue;
    }
    for (std::size_t r = 0; r < results.size() && r < entries.size(); ++r) {
      if (!results[r].ok()) dvm_.park_hint(origin_.name(), owner, entries[r]);
    }
  }
  return Status::success();
}

std::unique_ptr<net::Channel> make_failover_channel(
    dvm::Dvm& dvm, container::Container& origin, std::string service_name,
    CallPolicy policy, std::vector<wsdl::BindingKind> preference) {
  return std::make_unique<FailoverChannel>(dvm, origin, std::move(service_name),
                                           policy, std::move(preference));
}

}  // namespace h2::resil
