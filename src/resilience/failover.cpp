#include "resilience/failover.hpp"

namespace h2::resil {

FailoverChannel::FailoverChannel(dvm::Dvm& dvm, container::Container& origin,
                                 std::string service_name, CallPolicy policy,
                                 std::vector<wsdl::BindingKind> preference)
    : dvm_(dvm),
      origin_(origin),
      service_(std::move(service_name)),
      policy_(policy),
      preference_(std::move(preference)),
      c_failovers_(origin.network().metrics().counter("h2.resil.failovers")) {}

Result<std::unique_ptr<net::Channel>> FailoverChannel::open_candidate(
    const wsdl::Definitions& defs) {
  if (preference_.empty()) {
    return origin_.open_resilient_channel(defs, policy_);
  }
  return origin_.open_resilient_channel(defs, policy_, preference_);
}

std::string FailoverChannel::node_of(const net::Channel& channel) const {
  const net::Endpoint* remote = channel.remote();
  return remote != nullptr ? remote->host : origin_.name();
}

Result<Value> FailoverChannel::invoke(std::string_view operation,
                                      std::span<const Value> params) {
  std::string failed_node;
  // Sticky primary: keep using the node that last answered until it
  // becomes unavailable — failover is an event, not a per-call lottery.
  if (current_) {
    auto result = current_->invoke(operation, params);
    last_stats_ = current_->last_stats();
    if (result.ok() || result.error().code() != ErrorCode::kUnavailable) {
      // Success, an application answer, or kTimeout ("maybe executed" —
      // switching replicas now could double-apply; the caller decides).
      return result;
    }
    failed_node = current_node_;
    current_.reset();
    current_node_.clear();
  }

  Error last_error =
      err::unavailable("no replica of '" + service_ + "' in dvm " + dvm_.name());
  for (const wsdl::Definitions& defs : dvm_.find_all_services(service_)) {
    auto channel = open_candidate(defs);
    if (!channel.ok()) {
      last_error = channel.error();
      continue;
    }
    std::string node = node_of(**channel);
    if (node == failed_node) continue;  // the replica that just failed us
    auto result = (*channel)->invoke(operation, params);
    last_stats_ = (*channel)->last_stats();
    const bool definitely_not_executed =
        !result.ok() && result.error().code() == ErrorCode::kUnavailable;
    if (definitely_not_executed) {
      last_error = result.error();
      continue;
    }
    // This replica owns the call now (even a kTimeout pins us here: only
    // same-node same-id retries are safe after a maybe-executed attempt).
    if (!failed_node.empty() && node != failed_node) {
      c_failovers_.add();
      dvm_.announce_failover(service_, failed_node, node);
    }
    current_ = std::move(*channel);
    current_node_ = std::move(node);
    return result;
  }

  // Every replica is (currently) unreachable. No handler ran anywhere, but
  // surfacing kUnavailable would leak transport taxonomy into callers that
  // only want "done, answered, or try again later" — so the terminal
  // failure of a logical call is always kTimeout.
  return Error(ErrorCode::kTimeout, "no replica available for '" + service_ + "' (" +
                                        last_error.message() + ")");
}

Status FailoverChannel::invoke_batch(std::span<const net::BatchItem> calls,
                                     std::vector<Result<Value>>& results) {
  if (calls.empty()) {
    results.clear();
    return Status::success();
  }
  std::string failed_node;
  if (current_) {
    Status status = current_->invoke_batch(calls, results);
    last_stats_ = current_->last_stats();
    if (status.ok() || status.error().code() != ErrorCode::kUnavailable) {
      return status;
    }
    failed_node = current_node_;
    current_.reset();
    current_node_.clear();
  }

  Error last_error =
      err::unavailable("no replica of '" + service_ + "' in dvm " + dvm_.name());
  for (const wsdl::Definitions& defs : dvm_.find_all_services(service_)) {
    auto channel = open_candidate(defs);
    if (!channel.ok()) {
      last_error = channel.error();
      continue;
    }
    std::string node = node_of(**channel);
    if (node == failed_node) continue;
    Status status = (*channel)->invoke_batch(calls, results);
    last_stats_ = (*channel)->last_stats();
    if (!status.ok() && status.error().code() == ErrorCode::kUnavailable) {
      last_error = status.error();
      continue;
    }
    if (!failed_node.empty() && node != failed_node) {
      c_failovers_.add();
      dvm_.announce_failover(service_, failed_node, node);
    }
    current_ = std::move(*channel);
    current_node_ = std::move(node);
    return status;
  }

  Error timeout(ErrorCode::kTimeout, "no replica available for '" + service_ +
                                         "' (" + last_error.message() + ")");
  results.assign(calls.size(), Result<Value>(timeout));
  return Status(std::move(timeout));
}

std::unique_ptr<net::Channel> make_failover_channel(
    dvm::Dvm& dvm, container::Container& origin, std::string service_name,
    CallPolicy policy, std::vector<wsdl::BindingKind> preference) {
  return std::make_unique<FailoverChannel>(dvm, origin, std::move(service_name),
                                           policy, std::move(preference));
}

}  // namespace h2::resil
