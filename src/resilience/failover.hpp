// FailoverChannel — the top of the fault-tolerance stack. Where the
// ResilientChannel fights for one endpoint, the FailoverChannel gives up
// on it: when retries exhaust with the request definitely un-executed
// (kUnavailable) or the endpoint's breaker is open, it re-resolves the
// service through the DVM's lookup (Dvm::find_all_services) and walks the
// other replicas — the ones deploy_everywhere planted — announcing a
// "dvm/failover" event when a different node takes over.
//
// The at-most-once story across replicas: a candidate is only abandoned
// on kUnavailable, which by the transport's classification means no
// handler ran there, so trying the next replica (with a fresh call id)
// cannot double-apply anything. A kTimeout means "maybe executed" and is
// returned to the caller unchanged — the NEXT logical call retries
// through the same machinery, but this one must not touch a second
// replica. When every replica is unavailable the error is reported as
// kTimeout too: from the caller's point of view the operation's fate is
// unknowable-until-later, and callers get the simple contract "calls
// either succeed or fail with kTimeout".
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "dvm/dvm.hpp"
#include "resilience/policy.hpp"
#include "transport/rpc.hpp"

namespace h2::resil {

class FailoverChannel final : public net::Channel {
 public:
  /// `origin` is the calling node's container (channels are opened from
  /// its vantage); `dvm` supplies the replica list. Both must outlive the
  /// channel. Empty `preference` means Container::kDefaultPreference.
  FailoverChannel(dvm::Dvm& dvm, container::Container& origin,
                  std::string service_name, CallPolicy policy,
                  std::vector<wsdl::BindingKind> preference = {});

  Result<Value> invoke(std::string_view operation,
                       std::span<const Value> params) override;
  /// The whole batch fails over as one unit: kUnavailable from a replica
  /// means none of its sub-calls executed, so walking to the next replica
  /// (with the same sub-call ids) cannot double-apply anything.
  Status invoke_batch(std::span<const net::BatchItem> calls,
                      std::vector<Result<Value>>& results) override;
  const char* binding_name() const override { return "failover"; }
  net::CallStats last_stats() const override { return last_stats_; }
  const net::Endpoint* remote() const override {
    return current_ ? current_->remote() : nullptr;
  }

  /// Node currently serving this channel's calls ("" before first use).
  const std::string& current_node() const { return current_node_; }

 private:
  Result<std::unique_ptr<net::Channel>> open_candidate(const wsdl::Definitions& defs);
  std::string node_of(const net::Channel& channel) const;

  dvm::Dvm& dvm_;
  container::Container& origin_;
  std::string service_;
  CallPolicy policy_;
  std::vector<wsdl::BindingKind> preference_;
  std::unique_ptr<net::Channel> current_;
  std::string current_node_;
  net::CallStats last_stats_;
  obs::Counter& c_failovers_;
};

std::unique_ptr<net::Channel> make_failover_channel(
    dvm::Dvm& dvm, container::Container& origin, std::string service_name,
    CallPolicy policy, std::vector<wsdl::BindingKind> preference = {});

/// ShardRoutedChannel — the failover discipline applied to sharded DVM
/// state. Where the FailoverChannel walks *service* replicas, this walks
/// *shard* owners: each get/set/set_batch is routed by the DVM's shard map
/// (dvm::Dvm::shard_map()) to the R members owning the key's shard. Calls
/// are sticky to the shard's primary until it turns kUnavailable, then
/// fail over inside the replica set, counting h2.resil.shard.failovers and
/// announcing "dvm/failover" like its service-level sibling. A set goes to
/// one owner (which assigns the LWW version) and is then replicated
/// best-effort to the remaining owners; anti-entropy repairs whatever the
/// best-effort leg missed. Terminal failures are always kTimeout — the
/// same "done, answered, or try again later" contract as FailoverChannel.
class ShardRoutedChannel final {
 public:
  /// `origin` is the calling node's container; `dvm` must be running the
  /// sharded coherency mode (calls fail with kUnsupported otherwise).
  /// Both must outlive the channel.
  ShardRoutedChannel(dvm::Dvm& dvm, container::Container& origin, CallPolicy policy);

  Result<std::string> get(std::string_view key);
  Status set(std::string_view key, std::string_view value);
  /// Writes grouped into ONE batched wire message per routed owner.
  Status set_batch(std::span<const dvm::KV> writes);

  /// Completed owner switches (sticky primary changed under failure).
  std::uint64_t failovers() const { return failovers_; }
  /// Node that served the last routed call for `key`'s shard ("" if none).
  std::string routed_node(std::string_view key) const;

 private:
  net::Channel& channel_to(const std::string& node);
  std::vector<std::string> owner_order(std::size_t shard,
                                       std::span<const std::string> owners) const;
  void note_served(std::size_t shard, const std::string& node);
  Status replicate(const dvm::VersionedEntry& entry,
                   std::span<const std::string> owners,
                   const std::string& already_applied);

  dvm::Dvm& dvm_;
  container::Container& origin_;
  CallPolicy policy_;
  std::map<std::string, std::unique_ptr<net::Channel>, std::less<>> channels_;
  std::map<std::size_t, std::string> sticky_;  ///< shard → last serving owner
  std::uint64_t failovers_ = 0;
  obs::Counter& c_failovers_;
};

}  // namespace h2::resil
