#include "resilience/policy.hpp"

#include <algorithm>

namespace h2::resil {

bool transient(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout;
}

bool maybe_executed(ErrorCode code) { return code == ErrorCode::kTimeout; }

Nanos backoff_delay(const CallPolicy& policy, int attempt, Rng& rng) {
  double base = static_cast<double>(policy.initial_backoff);
  for (int i = 1; i < attempt; ++i) base *= policy.backoff_multiplier;
  base = std::min(base, static_cast<double>(policy.max_backoff));
  if (policy.jitter > 0.0) {
    // Uniform in [1-jitter, 1+jitter]; one Rng draw per delay keeps the
    // stream consumption independent of the delay magnitude.
    double factor = 1.0 + policy.jitter * (2.0 * rng.next_double() - 1.0);
    base *= factor;
  }
  auto delay = static_cast<Nanos>(base);
  return delay < 1 ? 1 : delay;
}

}  // namespace h2::resil
