// CallPolicy — the declarative half of the fault-tolerance layer. A policy
// says how long a logical call may take (deadline), how many transport
// attempts it gets (retry budget), and how attempts are spaced
// (exponential backoff with seeded jitter). Everything is driven by the
// owning network's VirtualClock and a deterministic per-channel Rng, so a
// simulated run with retries is exactly as reproducible as one without.
//
// Error classification is the load-bearing piece. A failed attempt falls
// into one of three buckets:
//   - kUnavailable: the request *definitely never executed* (partition,
//     connection refused, request lost before delivery). Safe to retry
//     anywhere, including on a different replica.
//   - kTimeout: the request *may have executed* (reply lost, deadline).
//     Safe to retry only on the same endpoint with the same call id —
//     the server-side dedup cache turns the re-send into a replay.
//   - anything else: an application-level answer. Never retried.
// FailoverChannel relies on this split to preserve global at-most-once
// without replicated dedup state: it only moves to a new replica on
// kUnavailable.
#pragma once

#include <cstdint>

#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace h2::resil {

struct CallPolicy {
  /// Total virtual-time budget for one logical call, all attempts and
  /// backoffs included. 0 disables the deadline.
  Nanos deadline = 200 * kMillisecond;
  /// Transport attempts per endpoint (1 = no retries).
  int max_attempts = 4;
  Nanos initial_backoff = kMillisecond;
  Nanos max_backoff = 50 * kMillisecond;
  double backoff_multiplier = 2.0;
  /// Backoff jitter as a fraction: each delay is drawn uniformly from
  /// [base*(1-jitter), base*(1+jitter)]. 0 = fully regular.
  double jitter = 0.2;
  /// Mixed with the channel serial to seed the per-channel jitter Rng, so
  /// retry timing never perturbs the harness's main PRNG stream.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Attach an idempotency key (<h2:CallId> header / XDR frame field) so
  /// the server-side dedup cache can replay instead of re-execute.
  bool attach_call_id = true;
};

/// Transport-level failure: the attempt did not produce an application
/// answer and the policy may retry it.
bool transient(ErrorCode code);

/// The attempt may have reached the dispatcher (reply lost / deadline):
/// retrying is only safe with the same call id on the same endpoint.
bool maybe_executed(ErrorCode code);

/// Backoff before retry number `attempt` (1-based: the delay after the
/// first failed attempt is backoff_delay(policy, 1, rng)). Exponential in
/// `attempt`, clamped to max_backoff, jittered from `rng`.
Nanos backoff_delay(const CallPolicy& policy, int attempt, Rng& rng);

}  // namespace h2::resil
