#include "resilience/resilient_channel.hpp"

#include <charconv>

namespace h2::resil {

namespace {

// "h2c-<serial>" without the std::to_string round trip — this runs on
// every resilient call, so the stamp should cost one SSO string at most.
std::string stamp_call_id(std::uint64_t serial) {
  char buf[24] = {'h', '2', 'c', '-'};
  auto [end, ec] = std::to_chars(buf + 4, buf + sizeof(buf), serial);
  (void)ec;  // 20 digits always fit
  return std::string(buf, end);
}

}  // namespace

ResilientChannel::ResilientChannel(std::unique_ptr<net::Channel> inner,
                                   net::Transport& net, CallPolicy policy,
                                   CircuitBreaker* breaker, std::string endpoint_key)
    : inner_(std::move(inner)),
      net_(net),
      policy_(policy),
      breaker_(breaker),
      endpoint_key_(std::move(endpoint_key)),
      // One serial per channel keeps jitter streams distinct between
      // channels while staying a pure function of construction order.
      rng_(policy.jitter_seed ^ net.next_call_serial()),
      c_retries_(net.metrics().counter("h2.resil.retries")),
      c_deadline_(net.metrics().counter("h2.resil.deadline_exceeded")),
      c_fastfail_(net.metrics().counter("h2.resil.breaker_fastfail")) {}

void ResilientChannel::set_call_id(std::string id) {
  forced_call_id_ = std::move(id);
}

Result<Value> ResilientChannel::invoke(std::string_view operation,
                                       std::span<const Value> params) {
  const Nanos start = net_.now();
  if (policy_.attach_call_id) {
    std::string call_id = forced_call_id_.empty()
                              ? stamp_call_id(net_.next_call_serial())
                              : forced_call_id_;
    // Every retry of this logical call re-sends the SAME id — that is the
    // whole at-most-once contract with the server's DedupCache.
    inner_->set_call_id(std::move(call_id));
  }

  last_attempts_ = 0;
  bool maybe_exec = false;
  Error last_error = err::unavailable("no attempt made");
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (policy_.deadline > 0 && net_.now() - start >= policy_.deadline) {
      c_deadline_.add();
      return Error(ErrorCode::kTimeout,
                   "deadline exceeded calling '" + std::string(operation) +
                       "' on " + endpoint_key_ + " (" + last_error.message() + ")");
    }
    if (breaker_ != nullptr && !breaker_->allow(net_.now())) {
      c_fastfail_.add();
      last_error = err::unavailable("circuit open for " + endpoint_key_);
      // Fall through to backoff: advancing virtual time is what lets the
      // breaker's cooldown elapse and admit a half-open probe.
    } else {
      ++last_attempts_;
      if (last_attempts_ > 1) c_retries_.add();
      auto result = inner_->invoke(operation, params);
      const Nanos after = net_.now();
      if (result.ok()) {
        if (breaker_ != nullptr) breaker_->record(true, after);
        return result;
      }
      const ErrorCode code = result.error().code();
      // Application-level answers (kNotFound, a SOAP fault, ...) mean the
      // host is healthy: success for the breaker, final for the caller.
      if (breaker_ != nullptr) breaker_->record(!transient(code), after);
      if (!transient(code)) return result;
      if (maybe_executed(code)) maybe_exec = true;
      last_error = result.error();
    }
    if (attempt < policy_.max_attempts) {
      net_.sleep_for(backoff_delay(policy_, attempt, rng_));
    }
  }

  if (maybe_exec) {
    // Some attempt may have reached the dispatcher; only a same-id retry
    // (not a failover) would be safe, and the budget is spent.
    return Error(ErrorCode::kTimeout,
                 "retries exhausted calling '" + std::string(operation) + "' on " +
                     endpoint_key_ + "; a reply was lost (" + last_error.message() + ")");
  }
  return last_error.context("retries exhausted calling '" + std::string(operation) +
                            "' on " + endpoint_key_);
}

Status ResilientChannel::invoke_batch(std::span<const net::BatchItem> calls,
                                      std::vector<Result<Value>>& results) {
  if (calls.empty()) {
    results.clear();
    return Status::success();
  }

  // Sub-call ids make a re-sent batch dedup-safe; stamp any the caller
  // (usually a BatchChannel) left empty. One copy, reused by every attempt
  // so all re-sends carry the SAME ids.
  std::vector<net::BatchItem> stamped;
  std::span<const net::BatchItem> effective = calls;
  if (policy_.attach_call_id) {
    bool missing = false;
    for (const net::BatchItem& item : calls) {
      if (item.call_id.empty()) {
        missing = true;
        break;
      }
    }
    if (missing) {
      stamped.assign(calls.begin(), calls.end());
      for (net::BatchItem& item : stamped) {
        if (item.call_id.empty()) item.call_id = stamp_call_id(net_.next_call_serial());
      }
      effective = stamped;
    }
  }

  const std::string label = "batch[" + std::to_string(calls.size()) + "]";
  const Nanos start = net_.now();
  last_attempts_ = 0;
  bool maybe_exec = false;
  Error last_error = err::unavailable("no attempt made");
  auto fail = [&](Error error) -> Status {
    results.assign(calls.size(), Result<Value>(error));
    return Status(std::move(error));
  };
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    if (policy_.deadline > 0 && net_.now() - start >= policy_.deadline) {
      c_deadline_.add();
      return fail(Error(ErrorCode::kTimeout,
                        "deadline exceeded calling '" + label + "' on " +
                            endpoint_key_ + " (" + last_error.message() + ")"));
    }
    if (breaker_ != nullptr && !breaker_->allow(net_.now())) {
      c_fastfail_.add();
      last_error = err::unavailable("circuit open for " + endpoint_key_);
    } else {
      ++last_attempts_;
      if (last_attempts_ > 1) c_retries_.add();
      Status status = inner_->invoke_batch(effective, results);
      const Nanos after = net_.now();
      if (status.ok()) {
        if (breaker_ != nullptr) breaker_->record(true, after);
        return status;
      }
      const ErrorCode code = status.error().code();
      if (breaker_ != nullptr) breaker_->record(!transient(code), after);
      if (!transient(code)) return fail(status.error());
      if (maybe_executed(code)) maybe_exec = true;
      last_error = status.error();
    }
    if (attempt < policy_.max_attempts) {
      net_.sleep_for(backoff_delay(policy_, attempt, rng_));
    }
  }

  if (maybe_exec) {
    return fail(Error(ErrorCode::kTimeout,
                      "retries exhausted calling '" + label + "' on " + endpoint_key_ +
                          "; a reply was lost (" + last_error.message() + ")"));
  }
  return fail(last_error.context("retries exhausted calling '" + label + "' on " +
                                 endpoint_key_));
}

std::unique_ptr<net::Channel> make_resilient_channel(
    std::unique_ptr<net::Channel> inner, net::Transport& net, CallPolicy policy,
    CircuitBreaker* breaker, std::string endpoint_key) {
  return std::make_unique<ResilientChannel>(std::move(inner), net, policy, breaker,
                                            std::move(endpoint_key));
}

}  // namespace h2::resil
