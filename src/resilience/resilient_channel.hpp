// ResilientChannel — the retry/deadline/breaker decorator over any
// net::Channel. One invoke() is a *logical call*: a loop of up to
// policy.max_attempts transport attempts against the same endpoint, all
// stamped with the same idempotency key so the server-side DedupCache
// makes re-sends safe even for non-idempotent operations.
//
// Retry rules (see policy.hpp for the classification):
//   - kUnavailable  → retry after backoff (request never executed)
//   - kTimeout      → retry after backoff (same call id ⇒ dedup-safe)
//   - anything else → application answer; returned immediately
// Between attempts the channel advances the owning network's VirtualClock
// by a jittered exponential backoff — retrying costs virtual time, which
// is what lets the deadline and breaker cooldown mechanics work at all in
// a simulated world.
//
// On exhaustion the error is classified for the caller above (the
// FailoverChannel): kTimeout if ANY attempt may have executed — failing
// over then could double-apply — else kUnavailable, meaning it is safe to
// try a different replica.
#pragma once

#include <memory>
#include <string>

#include "resilience/breaker.hpp"
#include "resilience/policy.hpp"
#include "transport/rpc.hpp"

namespace h2::resil {

class ResilientChannel final : public net::Channel {
 public:
  /// `breaker` may be null (no breaker protection); if non-null it must
  /// outlive the channel (registry-owned). `endpoint_key` names the
  /// target for error messages (typically the remote host name).
  ResilientChannel(std::unique_ptr<net::Channel> inner, net::Transport& net,
                   CallPolicy policy, CircuitBreaker* breaker,
                   std::string endpoint_key);

  Result<Value> invoke(std::string_view operation,
                       std::span<const Value> params) override;
  /// Same retry/deadline/breaker loop around ONE wire message for the
  /// whole batch. Sub-call ids left empty by the caller are stamped once
  /// so re-sent batches stay at-most-once per sub-call.
  Status invoke_batch(std::span<const net::BatchItem> calls,
                      std::vector<Result<Value>>& results) override;
  const char* binding_name() const override { return inner_->binding_name(); }
  net::CallStats last_stats() const override { return inner_->last_stats(); }
  void set_call_id(std::string id) override;
  const net::Endpoint* remote() const override { return inner_->remote(); }

  const CallPolicy& policy() const { return policy_; }
  int last_attempts() const { return last_attempts_; }

 private:
  std::unique_ptr<net::Channel> inner_;
  net::Transport& net_;
  CallPolicy policy_;
  CircuitBreaker* breaker_;
  std::string endpoint_key_;
  Rng rng_;  ///< jitter stream, isolated from the harness main PRNG
  int last_attempts_ = 0;
  std::string forced_call_id_;  ///< non-empty: caller-pinned idempotency key
  obs::Counter& c_retries_;
  obs::Counter& c_deadline_;
  obs::Counter& c_fastfail_;
};

/// Convenience factory mirroring the make_*_channel free functions.
std::unique_ptr<net::Channel> make_resilient_channel(
    std::unique_ptr<net::Channel> inner, net::Transport& net, CallPolicy policy,
    CircuitBreaker* breaker, std::string endpoint_key);

}  // namespace h2::resil
