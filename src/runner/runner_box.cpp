#include "runner/runner_box.hpp"

#include <deque>
#include <map>

namespace h2::runner {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kFinished: return "finished";
    case JobState::kKilled: return "killed";
    case JobState::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

class RshBackend final : public ResourceBackend {
 public:
  explicit RshBackend(ResourceInfo info) : info_(std::move(info)) {}

  const char* kind() const override { return "rsh"; }

  Result<std::int64_t> run(const std::string& command) override {
    if (command.empty()) return err::invalid_argument("rsh: empty command");
    std::int64_t id = next_id_++;
    jobs_[id] = JobState::kRunning;  // starts immediately, runs forever
    return id;
  }

  Status terminate(std::int64_t job) override {
    auto it = jobs_.find(job);
    if (it == jobs_.end() || it->second != JobState::kRunning) {
      return err::not_found("rsh: no running job " + std::to_string(job));
    }
    it->second = JobState::kKilled;
    return Status::success();
  }

  JobState status(std::int64_t job) override {
    auto it = jobs_.find(job);
    return it == jobs_.end() ? JobState::kUnknown : it->second;
  }

  ResourceInfo info() const override { return info_; }

  std::size_t running_count() override {
    std::size_t n = 0;
    for (const auto& [id, state] : jobs_) {
      if (state == JobState::kRunning) ++n;
    }
    return n;
  }

 private:
  ResourceInfo info_;
  std::map<std::int64_t, JobState> jobs_;
  std::int64_t next_id_ = 1;
};

class GridManagerBackend final : public ResourceBackend {
 public:
  GridManagerBackend(const Clock& clock, std::size_t slots, Nanos duration,
                     ResourceInfo info)
      : clock_(clock), slots_(slots == 0 ? 1 : slots), duration_(duration),
        info_(std::move(info)) {}

  const char* kind() const override { return "gridmgr"; }

  Result<std::int64_t> run(const std::string& command) override {
    if (command.empty()) return err::invalid_argument("gridmgr: empty command");
    advance();
    std::int64_t id = next_id_++;
    jobs_[id] = Job{JobState::kQueued, 0};
    queue_.push_back(id);
    advance();  // may start immediately if a slot is free
    return id;
  }

  Status terminate(std::int64_t job) override {
    advance();
    auto it = jobs_.find(job);
    if (it == jobs_.end() ||
        (it->second.state != JobState::kRunning && it->second.state != JobState::kQueued)) {
      return err::not_found("gridmgr: no live job " + std::to_string(job));
    }
    it->second.state = JobState::kKilled;
    return Status::success();
  }

  JobState status(std::int64_t job) override {
    advance();
    auto it = jobs_.find(job);
    return it == jobs_.end() ? JobState::kUnknown : it->second.state;
  }

  ResourceInfo info() const override { return info_; }

  std::size_t running_count() override {
    advance();
    std::size_t n = 0;
    for (const auto& [id, j] : jobs_) {
      if (j.state == JobState::kRunning) ++n;
    }
    return n;
  }

 private:
  struct Job {
    JobState state = JobState::kQueued;
    Nanos started = 0;
  };

  /// Lazy scheduler: retire finished jobs, then promote queued jobs into
  /// free slots. Called on every public entry point.
  void advance() {
    Nanos now = clock_.now();
    std::size_t running = 0;
    for (auto& [id, job] : jobs_) {
      if (job.state == JobState::kRunning) {
        if (now >= job.started + duration_) {
          job.state = JobState::kFinished;
        } else {
          ++running;
        }
      }
    }
    while (running < slots_ && !queue_.empty()) {
      std::int64_t id = queue_.front();
      queue_.pop_front();
      auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second.state != JobState::kQueued) continue;
      it->second.state = JobState::kRunning;
      it->second.started = now;
      ++running;
    }
  }

  const Clock& clock_;
  std::size_t slots_;
  Nanos duration_;
  ResourceInfo info_;
  std::map<std::int64_t, Job> jobs_;
  std::deque<std::int64_t> queue_;
  std::int64_t next_id_ = 1;
};

}  // namespace

std::unique_ptr<ResourceBackend> make_rsh_backend(ResourceInfo info) {
  return std::make_unique<RshBackend>(std::move(info));
}

std::unique_ptr<ResourceBackend> make_grid_manager_backend(const Clock& clock,
                                                           std::size_t slots,
                                                           Nanos job_duration,
                                                           ResourceInfo info) {
  return std::make_unique<GridManagerBackend>(clock, slots, job_duration, std::move(info));
}

RunnerBox::RunnerBox(std::string name, std::unique_ptr<ResourceBackend> backend)
    : name_(std::move(name)),
      backend_(std::move(backend)),
      mux_(std::make_shared<net::DispatcherMux>()) {
  ResourceBackend* b = backend_.get();
  mux_->add("run", [b](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("run(command)");
    auto command = params[0].as_string();
    if (!command.ok()) return command.error();
    auto id = b->run(*command);
    if (!id.ok()) return id.error();
    return Value::of_int(*id, "return");
  });
  mux_->add("control", [b](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 2) return err::invalid_argument("control(id, action)");
    auto id = params[0].as_int();
    if (!id.ok()) return id.error();
    auto action = params[1].as_string();
    if (!action.ok()) return action.error();
    if (*action != "kill") {
      return err::unsupported("runner: unknown control action '" + *action + "'");
    }
    return Value::of_bool(b->terminate(*id).ok(), "return");
  });
  mux_->add("status", [b](std::span<const Value> params) -> Result<Value> {
    if (params.size() != 1) return err::invalid_argument("status(id)");
    auto id = params[0].as_int();
    if (!id.ok()) return id.error();
    return Value::of_string(to_string(b->status(*id)), "return");
  });
  mux_->add("info", [b, this](std::span<const Value>) -> Result<Value> {
    return Value::of_string(name_ + ":" + b->kind() + ":" + b->info().describe(),
                            "return");
  });
}

wsdl::ServiceDescriptor RunnerBox::descriptor() {
  wsdl::ServiceDescriptor d;
  d.name = "RunnerBox";
  d.operations.push_back({"run", {{"command", ValueKind::kString}}, ValueKind::kInt});
  d.operations.push_back({"control",
                          {{"id", ValueKind::kInt}, {"action", ValueKind::kString}},
                          ValueKind::kBool});
  d.operations.push_back({"status", {{"id", ValueKind::kInt}}, ValueKind::kString});
  d.operations.push_back({"info", {}, ValueKind::kString});
  return d;
}

Status RunnerBox::expose(net::SimNetwork& net, net::HostId host) {
  if (server_.has_value()) return Status::success();
  auto handle = net::serve_xdr(net, host, kRunnerPort, mux_);
  if (!handle.ok()) return handle.error().context("runner box " + name_);
  server_.emplace(std::move(*handle));
  return Status::success();
}

void RunnerBox::unexpose() { server_.reset(); }

}  // namespace h2::runner
