// The runner box: the paper's Resource Abstraction Layer (Fig 6, bottom).
// "The runner box defines only the limited functionality required by the
// Harness system to enroll a computational resource. The functionality ...
// is minimized so that existing incompatible implementations of
// computational resources (e.g. rsh daemon, grid resource managers etc.)
// could be modeled as a single runner box Web Service."
//
// Accordingly: the RunnerBox API is run / control / status / info and
// nothing more, and two deliberately *incompatible* backends live behind
// it — an rsh-like daemon (immediate start, runs until killed) and a grid
// manager (slot-limited queue, bounded job durations). Callers cannot
// tell which one they got except through timing behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "transport/rpc.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "wsdl/descriptor.hpp"

namespace h2::runner {

/// Well-known port for exposed runner box services.
inline constexpr std::uint16_t kRunnerPort = 7300;

/// Static description of the underlying computational resource.
struct ResourceInfo {
  std::string arch = "x86_64";
  std::string os = "linux";
  int cpus = 1;

  std::string describe() const {
    return arch + "/" + os + "/" + std::to_string(cpus) + "cpu";
  }
};

/// Job states reported by status().
enum class JobState { kQueued, kRunning, kFinished, kKilled, kUnknown };
const char* to_string(JobState state);

/// One of the "existing incompatible implementations" the runner box
/// papers over.
class ResourceBackend {
 public:
  virtual ~ResourceBackend() = default;
  virtual const char* kind() const = 0;

  /// Submits a command; returns a job id.
  virtual Result<std::int64_t> run(const std::string& command) = 0;
  /// Kills a queued or running job.
  virtual Status terminate(std::int64_t job) = 0;
  virtual JobState status(std::int64_t job) = 0;
  virtual ResourceInfo info() const = 0;
  /// Number of currently running jobs.
  virtual std::size_t running_count() = 0;
};

/// rsh-daemon-like: every run() starts immediately and runs until killed.
std::unique_ptr<ResourceBackend> make_rsh_backend(ResourceInfo info = {});

/// Grid-resource-manager-like: at most `slots` jobs run concurrently, each
/// finishing after `job_duration` of (virtual) time; excess submissions
/// queue. `clock` must outlive the backend.
std::unique_ptr<ResourceBackend> make_grid_manager_backend(
    const Clock& clock, std::size_t slots, Nanos job_duration, ResourceInfo info = {});

/// The runner box service: the uniform minimal surface over any backend.
/// Operations: run(command) -> id, control(id, action) -> bool (actions:
/// "kill"), status(id) -> string, info() -> string.
class RunnerBox {
 public:
  RunnerBox(std::string name, std::unique_ptr<ResourceBackend> backend);

  const std::string& name() const { return name_; }
  ResourceBackend& backend() { return *backend_; }
  net::Dispatcher& dispatcher() { return *mux_; }

  /// The abstract interface, for WSDL generation.
  static wsdl::ServiceDescriptor descriptor();

  /// Exposes the service over the XDR binding at (host, kRunnerPort).
  Status expose(net::SimNetwork& net, net::HostId host);
  void unexpose();

 private:
  std::string name_;
  std::unique_ptr<ResourceBackend> backend_;
  std::shared_ptr<net::DispatcherMux> mux_;
  std::optional<net::ServerHandle> server_;
};

}  // namespace h2::runner
