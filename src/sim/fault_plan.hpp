// Declarative fault plans. A FaultPlan is data, not behaviour: a message
// chaos profile (drop/duplicate/delay probabilities fed to the SimNetwork
// fault hook), a per-step random fault profile (partitions, heals,
// crashes, restarts, clock skew drawn from the harness PRNG), and a list
// of explicitly scheduled actions. SimHarness interprets the plan; the
// same plan + the same seed always produces the same fault schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "util/clock.hpp"

namespace h2::sim {

/// Message-level chaos applied by the SimNetwork fault hook. Probabilities
/// are per message; delayed one-way messages arrive up to `max_delay`
/// late, which is how reordering happens (a later send can overtake them).
struct MessageChaos {
  double drop_p = 0.0;
  double dup_p = 0.0;
  double delay_p = 0.0;
  /// Synchronous calls only: the handler runs but the reply is lost, so the
  /// caller sees kTimeout — the "maybe executed" case retries must handle.
  double drop_reply_p = 0.0;
  Nanos max_delay = 2 * kMillisecond;

  bool enabled() const {
    return drop_p > 0 || dup_p > 0 || delay_p > 0 || drop_reply_p > 0;
  }
};

/// Per-step random fault draws. Each schedule step, the harness rolls
/// these in a fixed order (partition, heal, crash, restart, skew), so a
/// profile is as reproducible as an explicit action list.
struct RandomFaults {
  double partition_p = 0.0;  ///< cut a random reachable pair
  double heal_p = 0.0;       ///< heal a random active partition
  double crash_p = 0.0;      ///< crash a random alive node (respects min_alive)
  double restart_p = 0.0;    ///< rejoin a random crashed node
  double skew_p = 0.0;       ///< jump the virtual clock forward
  Nanos max_skew = kSecond;
  std::size_t min_alive = 2;  ///< crashes never reduce the DVM below this
};

/// One explicitly scheduled fault, fired before schedule step `step`.
struct FaultAction {
  enum class Kind { kPartition, kHeal, kCrash, kRestart, kClockSkew };
  Kind kind = Kind::kPartition;
  std::size_t step = 0;
  std::size_t a = 0;  ///< node index (partition/heal: first endpoint; crash/restart: victim)
  std::size_t b = 0;  ///< partition/heal: second endpoint
  Nanos skew = 0;     ///< kClockSkew only
};

class FaultPlan {
 public:
  FaultPlan& chaos(MessageChaos profile) {
    chaos_ = profile;
    return *this;
  }
  FaultPlan& random(RandomFaults profile) {
    random_ = profile;
    return *this;
  }
  FaultPlan& partition_at(std::size_t step, std::size_t a, std::size_t b) {
    actions_.push_back({FaultAction::Kind::kPartition, step, a, b, 0});
    return *this;
  }
  FaultPlan& heal_at(std::size_t step, std::size_t a, std::size_t b) {
    actions_.push_back({FaultAction::Kind::kHeal, step, a, b, 0});
    return *this;
  }
  FaultPlan& crash_at(std::size_t step, std::size_t node) {
    actions_.push_back({FaultAction::Kind::kCrash, step, node, 0, 0});
    return *this;
  }
  FaultPlan& restart_at(std::size_t step, std::size_t node) {
    actions_.push_back({FaultAction::Kind::kRestart, step, node, 0, 0});
    return *this;
  }
  FaultPlan& skew_at(std::size_t step, Nanos delta) {
    actions_.push_back({FaultAction::Kind::kClockSkew, step, 0, 0, delta});
    return *this;
  }

  const MessageChaos& message_chaos() const { return chaos_; }
  const RandomFaults& random_faults() const { return random_; }
  const std::vector<FaultAction>& actions() const { return actions_; }

  /// Explicit actions scheduled for exactly `step`, in insertion order.
  std::vector<FaultAction> actions_at(std::size_t step) const {
    std::vector<FaultAction> out;
    for (const FaultAction& action : actions_) {
      if (action.step == step) out.push_back(action);
    }
    return out;
  }

 private:
  MessageChaos chaos_;
  RandomFaults random_;
  std::vector<FaultAction> actions_;
};

}  // namespace h2::sim
