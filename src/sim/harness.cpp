#include "sim/harness.hpp"

#include <algorithm>
#include <optional>

#include "plugins/standard.hpp"
#include "resilience/failover.hpp"
#include "sim/invariant.hpp"

namespace h2::sim {

namespace {

/// One-way datagram port the harness's noise traffic targets. Every host
/// gets a counting sink here so dup/delay/reorder chaos is exercised by
/// real deliveries, not just dropped frames.
constexpr std::uint16_t kNoisePort = 7700;

const char* protocol_label(SimConfig::Protocol protocol) {
  switch (protocol) {
    case SimConfig::Protocol::kFullSynchrony:
      return "full-synchrony";
    case SimConfig::Protocol::kDecentralized:
      return "decentralized";
    case SimConfig::Protocol::kNeighborhood:
      return "neighborhood";
    case SimConfig::Protocol::kSharded:
      return "sharded";
  }
  return "?";
}

}  // namespace

SimHarness::SimHarness(SimConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed), rng_(seed) {}

SimHarness::~SimHarness() = default;

void SimHarness::add_invariant(std::unique_ptr<Invariant> invariant) {
  invariants_.push_back(std::move(invariant));
}

std::string SimHarness::node_name(std::size_t index) const {
  return "n" + std::to_string(index);
}

std::string SimHarness::key_name(std::size_t index) const {
  return "k" + std::to_string(index);
}

std::string SimHarness::random_alive_node() {
  auto names = dvm_->node_names();
  return names[rng_.next_below(names.size())];
}

Status SimHarness::setup() {
  if (config_.nodes < 2) return err::invalid_argument("sim: need at least 2 nodes");
  if (auto status = plugins::register_standard_plugins(repo_); !status.ok()) {
    return status;
  }
  std::unique_ptr<dvm::CoherencyProtocol> protocol;
  switch (config_.protocol) {
    case SimConfig::Protocol::kFullSynchrony:
      protocol = config_.buggy_coherency ? dvm::make_full_synchrony_buggy_for_test()
                                         : dvm::make_full_synchrony();
      break;
    case SimConfig::Protocol::kDecentralized:
      protocol = dvm::make_decentralized();
      break;
    case SimConfig::Protocol::kNeighborhood:
      protocol = dvm::make_neighborhood(config_.neighborhood_k);
      break;
    case SimConfig::Protocol::kSharded:
      if (config_.buggy_shard) {
        protocol = dvm::make_sharded_buggy_for_test(
            config_.shard, dvm::shard_of_key(key_name(0), config_.shard.shards),
            config_.buggy_hint_drop);
      } else if (config_.buggy_hint_drop) {
        protocol = dvm::make_sharded_hint_drop_for_test(config_.shard);
      } else {
        protocol = dvm::make_sharded(config_.shard);
      }
      break;
  }
  dvm_ = std::make_unique<dvm::Dvm>(config_.scenario, std::move(protocol));

  trace_.record(0, "boot",
                config_.scenario + " nodes=" + std::to_string(config_.nodes) +
                    " protocol=" + protocol_label(config_.protocol) +
                    (config_.buggy_coherency ? "(buggy)" : "") +
                    (config_.buggy_shard ? "(buggy-ae)" : "") +
                    (config_.buggy_hint_drop ? "(buggy-hints)" : "") +
                    " seed=" + std::to_string(seed_));
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    std::string name = node_name(i);
    auto host = net_.add_host(name);
    if (!host.ok()) return host.error();
    if (auto status = net_.listen(*host, kNoisePort,
                                  [this](std::span<const std::uint8_t>) -> Result<ByteBuffer> {
                                    ++noise_delivered_;
                                    return ByteBuffer{};
                                  });
        !status.ok()) {
      return status;
    }
    containers_.push_back(
        std::make_unique<container::Container>(name, repo_, net_, *host));
    auto index = dvm_->add_node(*containers_.back());
    if (!index.ok()) return index.error();
    ++membership_events_;
    trace_.record(net_.clock().now(), "join", name);
  }

  if (config_.weights.rcall > 0 || config_.weights.batch > 0) {
    // The resilience workload: a counter replica on every node (the
    // side-effect witness), called through one FailoverChannel per origin.
    // The XDR-only preference forces calls onto the simulated network so
    // chaos, retries and the idempotency cache are actually exercised —
    // the local bindings would short-circuit all of it.
    container::DeployOptions options;
    options.expose_xdr = true;
    if (auto status = dvm_->deploy_everywhere("counter", options); !status.ok()) {
      return status.error().context("sim: deploying the counter witness");
    }
    if (config_.disable_dedup) {
      for (auto& c : containers_) c->set_dedup_enabled(false);
    }
    resil::CallPolicy policy;
    for (std::size_t i = 0; i < config_.nodes; ++i) {
      if (config_.weights.rcall > 0) {
        rcall_channels_[node_name(i)] = resil::make_failover_channel(
            *dvm_, *containers_[i], "CounterService", policy,
            {wsdl::BindingKind::kXdr});
      }
      if (config_.weights.batch > 0) {
        // Batched variant of the same stack: the BatchChannel packs each
        // storm into one H2RB frame, the failover/resilient layers below
        // retry and re-route it as a unit under the SAME sub-call ids.
        batch_channels_[node_name(i)] = net::make_batch_channel(
            resil::make_failover_channel(*dvm_, *containers_[i], "CounterService",
                                         policy, {wsdl::BindingKind::kXdr}),
            net_, net::BatchPolicy{.max_batch = 64});
      }
    }
    trace_.record(net_.clock().now(), "rcall-setup",
                  "counter replicas on " + std::to_string(config_.nodes) +
                      " nodes" + (config_.disable_dedup ? " (dedup OFF)" : ""));
  }

  if (config_.loop_driver) {
    // Attach after enrolment so setup traffic matches the eager schedule.
    // Registration order (DVM loop, then containers by index) is the
    // deterministic service order for the whole run.
    loop_driver_ = std::make_unique<loop::SimDriver>(net_.clock());
    loop_driver_->add_loop(dvm_->loop());
    for (auto& container : containers_) loop_driver_->add_loop(container->loop());
    if (config_.heartbeat_period > 0) {
      dvm_->start_heartbeat(config_.heartbeat_period,
                            [this](const std::vector<std::string>& failed) {
                              ++heartbeat_fires_;
                              note_failures(failed);
                              trace_.record(net_.clock().now(), "heartbeat",
                                            "timer sweep found " +
                                                std::to_string(failed.size()) +
                                                " failed");
                            });
    }
    if (config_.anti_entropy_period > 0) {
      dvm_->start_anti_entropy(
          config_.anti_entropy_period, [this](const dvm::AntiEntropyReport& report) {
            ++anti_entropy_fires_;
            trace_.record(net_.clock().now(), "anti-entropy",
                          "timer divergent=" + std::to_string(report.shards_divergent) +
                              " repaired=" + std::to_string(report.entries_repaired));
          });
    }
    if (config_.hint_replay_period > 0) {
      dvm_->start_hint_replay(
          config_.hint_replay_period, [this](const dvm::HintReplayReport& report) {
            ++hint_replay_fires_;
            trace_.record(net_.clock().now(), "hint-replay",
                          "timer delivered=" + std::to_string(report.delivered) +
                              " requeued=" + std::to_string(report.requeued));
          });
    }
    trace_.record(net_.clock().now(), "loop-driver",
                  "sim driver over " + std::to_string(loop_driver_->loop_count()) +
                      " loops");
  }
  return Status::success();
}

void SimHarness::pump_loops() {
  if (loop_driver_ != nullptr) (void)loop_driver_->run_ready();
}

Result<dvm::AntiEntropyReport> SimHarness::run_anti_entropy() {
  auto outcome = std::make_shared<std::optional<Result<dvm::AntiEntropyReport>>>();
  dvm_->post_anti_entropy(
      [outcome](Result<dvm::AntiEntropyReport> report) { *outcome = std::move(report); });
  pump_loops();
  if (!outcome->has_value()) {
    return err::internal("sim: anti-entropy completion never delivered");
  }
  return std::move(**outcome);
}

Result<dvm::HintReplayReport> SimHarness::run_hint_replay() {
  auto outcome = std::make_shared<std::optional<Result<dvm::HintReplayReport>>>();
  dvm_->post_hint_replay(
      [outcome](Result<dvm::HintReplayReport> report) { *outcome = std::move(report); });
  pump_loops();
  if (!outcome->has_value()) {
    return err::internal("sim: hint-replay completion never delivered");
  }
  return std::move(**outcome);
}

void SimHarness::install_chaos() {
  const MessageChaos& chaos = config_.plan.message_chaos();
  if (!chaos.enabled()) return;
  net_.set_fault_hook([this, chaos](const net::MessageInfo& info) {
    net::FaultDecision decision;
    // Fixed draw order (drop, dup, delay, reply-loss) keeps the PRNG
    // stream identical no matter which faults fire.
    decision.drop = rng_.next_bool(chaos.drop_p);
    bool duplicate = rng_.next_bool(chaos.dup_p);
    bool delayed = rng_.next_bool(chaos.delay_p);
    bool reply_lost = rng_.next_bool(chaos.drop_reply_p);
    if (duplicate) decision.duplicates = 1;
    if (info.is_call) {
      // Calls can be refused, duplicated (the handler runs again — what
      // the idempotency cache must absorb), or answered into the void.
      decision.drop_reply = reply_lost;
      return decision;
    }
    if (delayed && chaos.max_delay > 0) {
      decision.delay = static_cast<Nanos>(
          rng_.next_below(static_cast<std::uint64_t>(chaos.max_delay)));
    }
    return decision;
  });
}

void SimHarness::uninstall_chaos() { net_.set_fault_hook(nullptr); }

void SimHarness::prune_ledger_for_dead_node(const std::string& node) {
  // Only full synchrony guarantees a key outlives its origin; the other
  // protocols legitimately lose keys with the node that wrote them.
  if (config_.protocol == SimConfig::Protocol::kFullSynchrony) return;
  // Sharded keys are owned by their shard's replica set, not their origin:
  // they survive the writer. Genuine loss (every owner copy gone) is
  // detected by the settle-time owner scan, which dirties the key so the
  // repair pass rewrites it.
  if (config_.protocol == SimConfig::Protocol::kSharded) return;
  for (auto it = ledger_.begin(); it != ledger_.end();) {
    if (it->second.origin_node == node) {
      it = ledger_.erase(it);
    } else {
      ++it;
    }
  }
}

void SimHarness::note_failures(const std::vector<std::string>& failed) {
  for (const std::string& name : failed) {
    ++membership_events_;
    prune_ledger_for_dead_node(name);
    trace_.record(net_.clock().now(), "failed", name);
  }
}

Status SimHarness::apply_action(const FaultAction& action, std::size_t step) {
  Nanos now = net_.clock().now();
  switch (action.kind) {
    case FaultAction::Kind::kPartition: {
      auto a = static_cast<net::HostId>(action.a);
      auto b = static_cast<net::HostId>(action.b);
      if (auto status = net_.partition(a, b); !status.ok()) return status;
      partitions_.emplace_back(action.a, action.b);
      trace_.record(now, "partition", node_name(action.a) + "|" + node_name(action.b));
      break;
    }
    case FaultAction::Kind::kHeal: {
      auto a = static_cast<net::HostId>(action.a);
      auto b = static_cast<net::HostId>(action.b);
      if (auto status = net_.heal(a, b); !status.ok()) return status;
      std::erase(partitions_, std::make_pair(action.a, action.b));
      trace_.record(now, "heal", node_name(action.a) + "|" + node_name(action.b));
      break;
    }
    case FaultAction::Kind::kCrash: {
      std::string name = node_name(action.a);
      if (!dvm_->is_member(name)) {
        trace_.record(now, "crash-skip", name + " already dead");
        break;
      }
      if (auto status = dvm_->crash_node(name); !status.ok()) return status;
      ++membership_events_;
      prune_ledger_for_dead_node(name);
      trace_.record(now, "crash", name);
      break;
    }
    case FaultAction::Kind::kRestart: {
      std::string name = node_name(action.a);
      if (dvm_->is_member(name)) {
        trace_.record(now, "restart-skip", name + " already alive");
        break;
      }
      auto index = dvm_->rejoin(name);
      if (index.ok()) {
        ++membership_events_;
        trace_.record(now, "restart", name);
      } else {
        // A rejoin blocked by an active partition is chaos, not a bug.
        trace_.record(now, "restart-failed", name + ": " + index.error().message());
      }
      break;
    }
    case FaultAction::Kind::kClockSkew: {
      net_.clock().advance(action.skew);
      trace_.record(net_.clock().now(), "skew", "+" + std::to_string(action.skew) + "ns");
      break;
    }
  }
  ++report_.faults_applied;
  (void)step;
  return Status::success();
}

Status SimHarness::apply_random_faults(std::size_t step) {
  const RandomFaults& profile = config_.plan.random_faults();
  // Fixed roll order, every step, so the PRNG stream only depends on the
  // profile — not on which faults happened to fire.
  bool do_partition = rng_.next_bool(profile.partition_p);
  bool do_heal = rng_.next_bool(profile.heal_p);
  bool do_crash = rng_.next_bool(profile.crash_p);
  bool do_restart = rng_.next_bool(profile.restart_p);
  bool do_skew = rng_.next_bool(profile.skew_p);

  if (do_partition && config_.nodes >= 2) {
    std::size_t a = rng_.next_below(config_.nodes);
    std::size_t b = rng_.next_below(config_.nodes - 1);
    if (b >= a) ++b;
    if (a > b) std::swap(a, b);
    if (std::find(partitions_.begin(), partitions_.end(), std::make_pair(a, b)) ==
        partitions_.end()) {
      if (auto status = apply_action(
              {FaultAction::Kind::kPartition, step, a, b, 0}, step);
          !status.ok()) {
        return status;
      }
    }
  }
  if (do_heal && !partitions_.empty()) {
    auto [a, b] = partitions_[rng_.next_below(partitions_.size())];
    if (auto status = apply_action({FaultAction::Kind::kHeal, step, a, b, 0}, step);
        !status.ok()) {
      return status;
    }
  }
  if (do_crash && dvm_->node_count() > profile.min_alive) {
    auto names = dvm_->node_names();
    const std::string& victim = names[rng_.next_below(names.size())];
    std::size_t index = std::stoul(victim.substr(1));
    if (auto status = apply_action({FaultAction::Kind::kCrash, step, index, 0, 0}, step);
        !status.ok()) {
      return status;
    }
  }
  if (do_restart) {
    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i < config_.nodes; ++i) {
      if (!dvm_->is_member(node_name(i))) dead.push_back(i);
    }
    if (!dead.empty()) {
      std::size_t index = dead[rng_.next_below(dead.size())];
      if (auto status =
              apply_action({FaultAction::Kind::kRestart, step, index, 0, 0}, step);
          !status.ok()) {
        return status;
      }
    }
  }
  if (do_skew && profile.max_skew > 0) {
    auto skew = static_cast<Nanos>(
        rng_.next_below(static_cast<std::uint64_t>(profile.max_skew)));
    if (auto status =
            apply_action({FaultAction::Kind::kClockSkew, step, 0, 0, skew}, step);
        !status.ok()) {
      return status;
    }
  }
  return Status::success();
}

Status SimHarness::run_op(std::size_t step) {
  const OpWeights& w = config_.weights;
  double total = w.set + w.get + w.erase + w.deploy + w.probe + w.noise + w.pump +
                 w.rcall + w.batch;
  double roll = rng_.next_double() * total;
  Nanos now = net_.clock().now();
  ++report_.ops_executed;

  if ((roll -= w.set) < 0) {
    std::string origin = random_alive_node();
    std::string key = key_name(rng_.next_below(config_.key_space));
    std::string value = "v" + std::to_string(step) + "-" +
                        std::to_string(rng_.next_below(1000));
    auto status = dvm_->set(origin, key, value);
    if (status.ok()) {
      ledger_[key] = LedgerEntry{value, origin, true};
      trace_.record(now, "set", origin + " " + key + "=" + value + " ok");
    } else {
      // A failed fan-out may have replicated partially; the key's value is
      // indeterminate until the settle phase rewrites it.
      if (auto it = ledger_.find(key); it != ledger_.end()) it->second.clean = false;
      trace_.record(now, "set", origin + " " + key + " FAILED");
    }
    return Status::success();
  }
  if ((roll -= w.get) < 0) {
    std::string origin = random_alive_node();
    std::string key = key_name(rng_.next_below(config_.key_space));
    auto value = dvm_->get(origin, key);
    trace_.record(now, "get",
                  origin + " " + key + (value.ok() ? "=" + *value : " miss"));
    // Full synchrony promises read-your-writes on every replica for any
    // cleanly acknowledged key — check inline, not just at settle points.
    if (config_.protocol == SimConfig::Protocol::kFullSynchrony) {
      auto it = ledger_.find(key);
      if (it != ledger_.end() && it->second.clean) {
        if (!value.ok()) {
          return violation(step, "read-your-writes",
                           err::internal(origin + " lost key " + key + ": " +
                                         value.error().message()));
        }
        if (*value != it->second.value) {
          return violation(step, "read-your-writes",
                           err::internal(origin + " read stale " + key + "='" +
                                         *value + "', acknowledged '" +
                                         it->second.value + "'"));
        }
      }
    }
    return Status::success();
  }
  if ((roll -= w.erase) < 0) {
    std::string origin = random_alive_node();
    std::string key = key_name(rng_.next_below(config_.key_space));
    auto status = dvm_->erase(origin, key);
    // Deleted (or half-deleted) keys carry no further guarantees.
    ledger_.erase(key);
    trace_.record(now, "erase", origin + " " + key + (status.ok() ? " ok" : " FAILED"));
    return Status::success();
  }
  if ((roll -= w.deploy) < 0) {
    std::string origin = random_alive_node();
    auto qualified = dvm_->deploy(origin, "ping");
    if (qualified.ok()) {
      auto slash = qualified->rfind('/');
      deployed_.push_back(
          DeployedComponent{*qualified, origin, qualified->substr(slash + 1)});
      trace_.record(now, "deploy", *qualified);
    } else {
      trace_.record(now, "deploy", origin + " FAILED");
    }
    return Status::success();
  }
  if ((roll -= w.probe) < 0) {
    std::string prober = random_alive_node();
    auto outcome =
        std::make_shared<std::optional<Result<std::vector<std::string>>>>();
    dvm_->post_probe(prober, [outcome](Result<std::vector<std::string>> r) {
      *outcome = std::move(r);
    });
    pump_loops();  // eager mode already completed inline
    if (!outcome->has_value()) {
      return err::internal("sim: probe completion never delivered");
    }
    auto& failed = **outcome;
    if (!failed.ok()) return failed.error();
    note_failures(*failed);
    trace_.record(now, "probe",
                  prober + " found " + std::to_string(failed->size()) + " failed");
    return Status::success();
  }
  if ((roll -= w.rcall) < 0) {
    std::string origin = random_alive_node();
    auto it = rcall_channels_.find(origin);
    if (it == rcall_channels_.end()) {
      return err::internal("sim: no rcall channel for " + origin);
    }
    // One globally unique logical operation per rcall: if any replica ever
    // applies the same id twice, a retry was double-executed.
    std::string op_id = "op" + std::to_string(rpc_stats_.issued);
    ++rpc_stats_.issued;
    const Value params[] = {Value::of_string(op_id, "id"),
                            Value::of_int(1, "delta")};
    auto result = it->second->invoke("add", params);
    if (result.ok()) {
      ++rpc_stats_.succeeded;
      trace_.record(now, "rcall", origin + " " + op_id + " ok");
    } else if (result.error().code() == ErrorCode::kTimeout) {
      ++rpc_stats_.timed_out;
      trace_.record(now, "rcall", origin + " " + op_id + " timeout");
    } else {
      ++rpc_stats_.failed;
      last_rpc_error_ = result.error().message();
      trace_.record(now, "rcall", origin + " " + op_id + " FAILED");
    }
    return Status::success();
  }
  if ((roll -= w.batch) < 0) {
    std::string origin = random_alive_node();
    auto it = batch_channels_.find(origin);
    if (it == batch_channels_.end()) {
      return err::internal("sim: no batch channel for " + origin);
    }
    // A storm of 2..8 counter adds, packed into one wire message. Each
    // sub-call keeps a globally unique logical id so the at-most-once
    // witness counts a double-applied replayed batch as a dup.
    const std::size_t count = 2 + rng_.next_below(7);
    std::vector<net::BatchChannel::Ticket> tickets;
    tickets.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::string op_id = "op" + std::to_string(rpc_stats_.issued);
      ++rpc_stats_.issued;
      std::vector<Value> params;
      params.push_back(Value::of_string(std::move(op_id), "id"));
      params.push_back(Value::of_int(1, "delta"));
      tickets.push_back(it->second->enqueue("add", std::move(params)));
    }
    (void)it->second->flush();
    std::size_t ok_count = 0, timeouts = 0, failures = 0;
    for (const auto& ticket : tickets) {
      auto result = it->second->take(ticket);
      if (result.ok()) {
        ++rpc_stats_.succeeded;
        ++ok_count;
      } else if (result.error().code() == ErrorCode::kTimeout) {
        ++rpc_stats_.timed_out;
        ++timeouts;
      } else {
        ++rpc_stats_.failed;
        last_rpc_error_ = result.error().message();
        ++failures;
      }
    }
    trace_.record(now, "batch",
                  origin + " n=" + std::to_string(count) + " ok=" +
                      std::to_string(ok_count) + " timeout=" +
                      std::to_string(timeouts) +
                      (failures > 0 ? " FAILED=" + std::to_string(failures) : ""));
    return Status::success();
  }
  if ((roll -= w.noise) < 0) {
    auto from = static_cast<net::HostId>(rng_.next_below(config_.nodes));
    auto to = static_cast<net::HostId>(rng_.next_below(config_.nodes));
    auto payload = rng_.bytes(1 + rng_.next_below(256));
    auto status = net_.send(from, to, kNoisePort, ByteBuffer(std::move(payload)));
    if (status.ok()) ++noise_sent_;
    trace_.record(now, "noise",
                  node_name(from) + ">" + node_name(to) +
                      (status.ok() ? " sent" : " blocked"));
    return Status::success();
  }
  std::size_t delivered = net_.pump();
  trace_.record(net_.clock().now(), "pump", std::to_string(delivered) + " delivered");
  return Status::success();
}

Status SimHarness::settle_and_check(std::size_t step) {
  // Settle: chaos off, all links healed, all in-flight traffic delivered.
  uninstall_chaos();
  for (auto [a, b] : partitions_) {
    (void)net_.heal(static_cast<net::HostId>(a), static_cast<net::HostId>(b));
  }
  partitions_.clear();
  std::size_t delivered = net_.pump();
  pump_loops();  // queued bus deliveries / completions land before checks
  trace_.record(net_.clock().now(), "settle",
                "step=" + std::to_string(step) + " drained=" + std::to_string(delivered));

  if (config_.protocol == SimConfig::Protocol::kSharded) {
    // Owner scan: a sharded key is genuinely lost when no alive owner of
    // its shard holds the acknowledged value any more (e.g. the only owner
    // a partial write reached has crashed, or a membership wave evicted
    // every owner that had a copy before handoff could run). Such keys are
    // dirtied so the repair pass below rewrites them; partial divergence
    // (some owner still has the value) is left for anti-entropy.
    const dvm::ShardMap* map = dvm_->shard_map();
    for (auto& [key, entry] : ledger_) {
      if (!entry.clean) continue;
      bool held = false;
      for (const std::string& owner : map->owners(map->shard_of(key))) {
        auto node = dvm_->member(owner);
        if (!node.ok()) continue;
        if (auto value = node->state().get(key);
            value.has_value() && *value == entry.value) {
          held = true;
          break;
        }
      }
      if (!held) {
        entry.clean = false;
        trace_.record(net_.clock().now(), "shard-lost",
                      key + " no alive owner copy");
      }
    }
    // Same rule for the name-space records of components whose host is
    // still alive: if every owner copy of "component/<q>" died with its
    // replicas, re-seed the record from the (alive) hosting node.
    for (const auto& component : deployed_) {
      if (!dvm_->is_member(component.node)) continue;
      std::string key = "component/" + component.qualified;
      bool held = false;
      for (const std::string& owner : map->owners(map->shard_of(key))) {
        auto node = dvm_->member(owner);
        if (!node.ok()) continue;
        if (node->state().get(key).has_value()) {
          held = true;
          break;
        }
      }
      if (!held) {
        (void)dvm_->set(component.node, key, component.node);
        trace_.record(net_.clock().now(), "shard-reseed", key);
      }
    }
  }

  // Repair: rewrite every indeterminate key so the convergence contract
  // is meaningful again (mirrors "state written after the last failure").
  for (auto& [key, entry] : ledger_) {
    if (entry.clean) continue;
    auto names = dvm_->node_names();
    const std::string& origin = names.front();
    std::string value = "repair" + std::to_string(step) + "-" + key;
    auto status = dvm_->set(origin, key, value);
    if (!status.ok()) {
      return violation(step, "settle-repair",
                       status.error().context("rewrite of dirty key " + key));
    }
    entry = LedgerEntry{value, origin, true};
    trace_.record(net_.clock().now(), "repair", key + "=" + value);
  }

  if (config_.protocol == SimConfig::Protocol::kSharded) {
    // Drain hinted handoff before judging durability: with the network
    // healed, replay must redeliver every parked hint whose coordinator is
    // alive. Budget-limited protocols need several passes (one refill
    // each); stop when a pass makes no progress — what remains is debt
    // parked at dead coordinators, which the invariant exempts.
    std::size_t pending = dvm_->pending_hints();
    for (std::size_t pass = 0; pending > 0 && pass < 32; ++pass) {
      auto replay = run_hint_replay();
      if (!replay.ok()) {
        return violation(step, "settle-hint-replay", replay.error());
      }
      std::size_t still_pending = dvm_->pending_hints();
      trace_.record(net_.clock().now(), "hint-replay",
                    "settle delivered=" + std::to_string(replay->delivered) +
                        " pending=" + std::to_string(still_pending));
      if (still_pending >= pending) break;
      pending = still_pending;
    }
  }

  // Pre-anti-entropy invariants judge what hinted handoff alone restored;
  // running them before the settle repair pass keeps an AE backstop from
  // masking a dropped hint.
  for (auto& invariant : invariants_) {
    if (!invariant->pre_anti_entropy()) continue;
    ++report_.checks_run;
    if (auto status = invariant->check(*this); !status.ok()) {
      return violation(step, invariant->name(), status.error());
    }
  }

  if (config_.protocol == SimConfig::Protocol::kSharded) {
    // Converge the replicas before judging them: with the network healed a
    // full anti-entropy pass must leave every owner set byte-equal (except
    // where a planted bug skips a shard — which the invariants then catch).
    auto report = run_anti_entropy();
    if (!report.ok()) {
      return violation(step, "settle-anti-entropy", report.error());
    }
    trace_.record(net_.clock().now(), "anti-entropy",
                  "settle checked=" + std::to_string(report->shards_checked) +
                      " divergent=" + std::to_string(report->shards_divergent) +
                      " repaired=" + std::to_string(report->entries_repaired));
  }

  for (auto& invariant : invariants_) {
    if (invariant->pre_anti_entropy()) continue;  // already checked above
    ++report_.checks_run;
    if (auto status = invariant->check(*this); !status.ok()) {
      return violation(step, invariant->name(), status.error());
    }
  }
  trace_.record(net_.clock().now(), "check",
                std::to_string(invariants_.size()) + " invariants ok");
  install_chaos();
  return Status::success();
}

Error SimHarness::violation(std::size_t step, const std::string& what,
                            const Error& cause) {
  trace_.record(net_.clock().now(), "violation", what + ": " + cause.message());
  return err::internal("scenario=" + config_.scenario + " seed=" + std::to_string(seed_) +
                       " step=" + std::to_string(step) + " invariant '" + what +
                       "': " + cause.message() + " (replay: simrunner --scenario=" +
                       config_.scenario + " --seed=" + std::to_string(seed_) + ")");
}

Result<RunReport> SimHarness::run() {
  report_ = RunReport{};
  report_.seed = seed_;
  if (auto status = setup(); !status.ok()) {
    return status.error().context("sim setup (scenario=" + config_.scenario +
                                  " seed=" + std::to_string(seed_) + ")");
  }
  install_chaos();
  for (std::size_t step = 0; step < config_.steps; ++step) {
    for (const FaultAction& action : config_.plan.actions_at(step)) {
      if (auto status = apply_action(action, step); !status.ok()) {
        return status.error();
      }
    }
    if (auto status = apply_random_faults(step); !status.ok()) return status.error();
    if (auto status = run_op(step); !status.ok()) return status.error();
    if (loop_driver_ != nullptr) {
      // Queued mode: advance virtual time so wheel timers (heartbeat,
      // anti-entropy) fire, then run everything they triggered.
      if (config_.step_time > 0) {
        (void)loop_driver_->advance(config_.step_time);
      } else {
        pump_loops();
      }
    }
    if (config_.protocol == SimConfig::Protocol::kSharded &&
        config_.anti_entropy_every > 0 &&
        (step + 1) % config_.anti_entropy_every == 0) {
      // Mid-run repair under live chaos; unreachable replicas are simply
      // skipped this round (tolerated exchange failures).
      auto report = run_anti_entropy();
      trace_.record(net_.clock().now(), "anti-entropy",
                    !report.ok()
                        ? "FAILED"
                        : "divergent=" + std::to_string(report->shards_divergent) +
                              " repaired=" +
                              std::to_string(report->entries_repaired) +
                              " failures=" +
                              std::to_string(report->exchange_failures));
    }
    if (config_.protocol == SimConfig::Protocol::kSharded &&
        config_.hint_replay_every > 0 &&
        (step + 1) % config_.hint_replay_every == 0) {
      // Mid-run hint replay under live chaos; legs that still cannot reach
      // their target are requeued for the next tick.
      auto report = run_hint_replay();
      trace_.record(net_.clock().now(), "hint-replay",
                    !report.ok()
                        ? "FAILED"
                        : "delivered=" + std::to_string(report->delivered) +
                              " requeued=" + std::to_string(report->requeued) +
                              " skipped=" + std::to_string(report->skipped));
    }
    ++report_.steps_executed;
    if (config_.check_every > 0 && (step + 1) % config_.check_every == 0) {
      if (auto status = settle_and_check(step); !status.ok()) return status.error();
    }
  }
  if (auto status = settle_and_check(config_.steps); !status.ok()) {
    return status.error();
  }
  std::string done = "ops=" + std::to_string(report_.ops_executed) +
                     " faults=" + std::to_string(report_.faults_applied) +
                     " noise=" + std::to_string(noise_delivered_) + "/" +
                     std::to_string(noise_sent_);
  if (rpc_stats_.issued > 0) {
    done += " rcalls=" + std::to_string(rpc_stats_.succeeded) + "ok/" +
            std::to_string(rpc_stats_.timed_out) + "to/" +
            std::to_string(rpc_stats_.failed) + "err";
  }
  trace_.record(net_.clock().now(), "done", done);
  return report_;
}

}  // namespace h2::sim
