// SimHarness — the deterministic simulation driver (FoundationDB-style,
// scaled to this repo). One harness owns everything nondeterministic:
//   - a seeded PRNG (the *only* randomness source in a run),
//   - a SimNetwork whose VirtualClock is the only notion of time,
//   - the kernel/container/DVM stack under test.
// It executes a randomized schedule of DVM operations, interprets a
// declarative FaultPlan (message chaos, partitions, crashes, restarts,
// clock skew), and at settle points pauses the chaos and runs Invariant
// checkers. Identical (scenario, seed) pairs produce byte-identical event
// traces; a violation reports the seed so any failure replays with
// `simrunner --scenario=X --seed=S`.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "dvm/dvm.hpp"
#include "loop/sim_driver.hpp"
#include "sim/fault_plan.hpp"
#include "sim/trace.hpp"
#include "transport/batch.hpp"
#include "util/rng.hpp"

namespace h2::sim {

class Invariant;

/// Relative frequencies of the schedule operations (normalized internally).
struct OpWeights {
  double set = 0.35;
  double get = 0.25;
  double erase = 0.05;
  double deploy = 0.05;
  double probe = 0.10;
  double noise = 0.10;  ///< one-way datagram traffic (exercises dup/delay/reorder)
  double pump = 0.10;   ///< deliver queued one-way messages
  double rcall = 0.0;   ///< resilient RPC to the replicated counter witness
  double batch = 0.0;   ///< batched resilient RPC storm (BatchChannel over failover)
};

struct SimConfig {
  std::string scenario = "adhoc";  ///< stamped into the trace header
  std::size_t nodes = 4;
  std::size_t steps = 80;
  std::size_t check_every = 20;  ///< settle + invariant check cadence
  std::size_t key_space = 8;     ///< distinct state keys the schedule touches

  enum class Protocol { kFullSynchrony, kDecentralized, kNeighborhood, kSharded };
  Protocol protocol = Protocol::kFullSynchrony;
  std::size_t neighborhood_k = 1;

  /// Sharded-mode placement (protocol == kSharded only).
  dvm::ShardConfig shard;
  /// Periodic anti-entropy cadence in steps (kSharded; 0 = settle-only).
  std::size_t anti_entropy_every = 0;
  /// Periodic hint-replay cadence in steps (kSharded; 0 = settle-only).
  std::size_t hint_replay_every = 0;

  /// Attach a loop::SimDriver: the DVM and every container loop run in
  /// queued mode, pumped deterministically between ops. Off by default —
  /// eager loops reproduce the pre-driver schedules byte-identically.
  bool loop_driver = false;
  /// Virtual time the clock advances per step under the driver (fires
  /// due wheel timers along the way). 0 = no per-step advance.
  Nanos step_time = 0;
  /// Arm Dvm::start_heartbeat at this period (loop_driver only; 0 = off).
  Nanos heartbeat_period = 0;
  /// Arm Dvm::start_anti_entropy at this period (loop_driver only; 0 = off).
  Nanos anti_entropy_period = 0;
  /// Arm Dvm::start_hint_replay at this period (loop_driver only; 0 = off).
  Nanos hint_replay_period = 0;

  /// TEST ONLY: plug the deliberately broken full-synchrony protocol so a
  /// scenario can prove its invariants catch real coherency bugs.
  bool buggy_coherency = false;

  /// TEST ONLY: plug the sharded protocol whose anti-entropy pass skips
  /// the shard holding key "k0", so divergence there is never repaired —
  /// the shard invariants must catch it.
  bool buggy_shard = false;

  /// TEST ONLY: plug the sharded protocol that silently DROPS every hint
  /// instead of parking it, so a write that missed an owner is never
  /// redelivered by replay — the no-under-replicated-writes invariant
  /// must catch it before anti-entropy masks the gap.
  bool buggy_hint_drop = false;

  /// TEST ONLY: disable the server-side idempotency cache on every
  /// container, so the at-most-once invariant can prove it catches
  /// double-applied retries (the retry-storm-nodedup planted bug).
  bool disable_dedup = false;

  OpWeights weights;
  FaultPlan plan;
};

/// Successful-run summary.
struct RunReport {
  std::uint64_t seed = 0;
  std::size_t steps_executed = 0;
  std::size_t ops_executed = 0;
  std::size_t faults_applied = 0;  ///< explicit + random fault actions
  std::size_t checks_run = 0;      ///< invariant evaluations
};

class SimHarness {
 public:
  SimHarness(SimConfig config, std::uint64_t seed);
  ~SimHarness();

  SimHarness(const SimHarness&) = delete;
  SimHarness& operator=(const SimHarness&) = delete;

  void add_invariant(std::unique_ptr<Invariant> invariant);

  /// Builds the cluster and drives the full schedule. On an invariant
  /// violation returns an error carrying scenario, seed and step; the
  /// trace (including the violation event) stays readable afterwards.
  Result<RunReport> run();

  // ---- observable state (used by invariants and tests) -----------------------

  /// Last acknowledged write per key. `clean` means the most recent set of
  /// that key was fully acknowledged; a dirty entry had a failed overwrite
  /// and only supports existence checks until repaired.
  struct LedgerEntry {
    std::string value;
    std::string origin_node;  ///< node that issued the write
    bool clean = true;
  };

  /// One successful Dvm::deploy the schedule performed.
  struct DeployedComponent {
    std::string qualified;  ///< "<dvm>/<node>/<instance>"
    std::string node;
    std::string instance;
  };

  /// Outcomes of the resilient `rcall` operations (weights.rcall > 0):
  /// counter adds issued through a per-node FailoverChannel. The
  /// resilience contract is that every call lands in `succeeded` or (when
  /// its fate is genuinely unknowable) `timed_out`; anything in `failed`
  /// leaked a transient transport error to the caller.
  struct RpcStats {
    std::uint64_t issued = 0;
    std::uint64_t succeeded = 0;
    std::uint64_t timed_out = 0;  ///< failed with kTimeout (maybe executed)
    std::uint64_t failed = 0;     ///< failed with any other code
  };

  dvm::Dvm& dvm() { return *dvm_; }
  net::SimNetwork& net() { return net_; }
  const std::map<std::string, LedgerEntry>& ledger() const { return ledger_; }
  const std::vector<DeployedComponent>& deployed() const { return deployed_; }
  const RpcStats& rpc_stats() const { return rpc_stats_; }
  const std::string& last_rpc_error() const { return last_rpc_error_; }
  std::uint64_t membership_events() const { return membership_events_; }
  /// The deterministic loop driver, or nullptr (eager mode).
  loop::SimDriver* loop_driver() { return loop_driver_.get(); }
  /// Timer-driven sweeps observed via start_heartbeat / start_anti_entropy
  /// / start_hint_replay.
  std::uint64_t heartbeat_fires() const { return heartbeat_fires_; }
  std::uint64_t anti_entropy_fires() const { return anti_entropy_fires_; }
  std::uint64_t hint_replay_fires() const { return hint_replay_fires_; }
  const EventTrace& trace() const { return trace_; }
  const SimConfig& config() const { return config_; }
  std::uint64_t seed() const { return seed_; }

 private:
  std::string node_name(std::size_t index) const;
  std::string random_alive_node();
  std::string key_name(std::size_t index) const;

  Status setup();
  void install_chaos();
  void uninstall_chaos();
  Status apply_action(const FaultAction& action, std::size_t step);
  Status apply_random_faults(std::size_t step);
  Status run_op(std::size_t step);
  Status settle_and_check(std::size_t step);
  /// Runs every registered loop to quiescence (no-op in eager mode, where
  /// posted work already ran inline).
  void pump_loops();
  /// Loop-posted anti-entropy pass: post_anti_entropy + pump, returning
  /// the completion's report.
  Result<dvm::AntiEntropyReport> run_anti_entropy();
  /// Loop-posted hint-replay pass: post_hint_replay + pump, returning the
  /// completion's report.
  Result<dvm::HintReplayReport> run_hint_replay();
  Error violation(std::size_t step, const std::string& what, const Error& cause);
  void prune_ledger_for_dead_node(const std::string& node);
  void note_failures(const std::vector<std::string>& failed);

  SimConfig config_;
  std::uint64_t seed_;
  Rng rng_;
  net::SimNetwork net_;
  kernel::PluginRepository repo_;
  std::vector<std::unique_ptr<container::Container>> containers_;
  std::unique_ptr<dvm::Dvm> dvm_;
  /// Owns queued-mode stepping when config_.loop_driver is set. Declared
  /// after the loop owners so it detaches before they destruct.
  std::unique_ptr<loop::SimDriver> loop_driver_;
  std::uint64_t heartbeat_fires_ = 0;
  std::uint64_t anti_entropy_fires_ = 0;
  std::uint64_t hint_replay_fires_ = 0;
  std::vector<std::unique_ptr<Invariant>> invariants_;
  EventTrace trace_;

  std::map<std::string, LedgerEntry> ledger_;
  std::vector<DeployedComponent> deployed_;
  std::map<std::string, std::unique_ptr<net::Channel>> rcall_channels_;
  std::map<std::string, std::unique_ptr<net::BatchChannel>> batch_channels_;
  RpcStats rpc_stats_;
  std::string last_rpc_error_;  ///< message of the most recent non-timeout failure
  std::vector<std::pair<std::size_t, std::size_t>> partitions_;  ///< active cuts
  std::uint64_t membership_events_ = 0;
  std::uint64_t noise_sent_ = 0;
  std::uint64_t noise_delivered_ = 0;
  RunReport report_;
};

}  // namespace h2::sim
