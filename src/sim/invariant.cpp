#include "sim/invariant.hpp"

#include <algorithm>
#include <set>
#include <span>

#include "sim/harness.hpp"

namespace h2::sim {

namespace {

/// Full-synchrony contract: every alive replica can locally serve the
/// ledger value of every cleanly-acknowledged key. Vacuous for protocols
/// that only promise reachability, not replication.
class CoherencyConvergence final : public Invariant {
 public:
  const char* name() const override { return "coherency-convergence"; }

  Status check(SimHarness& harness) override {
    if (harness.config().protocol != SimConfig::Protocol::kFullSynchrony) {
      return Status::success();
    }
    for (const std::string& node : harness.dvm().node_names()) {
      for (const auto& [key, entry] : harness.ledger()) {
        if (!entry.clean) continue;
        auto value = harness.dvm().get(node, key);
        if (!value.ok()) {
          return err::internal("replica " + node + " is missing key " + key +
                               " (acknowledged '" + entry.value +
                               "'): " + value.error().message());
        }
        if (*value != entry.value) {
          return err::internal("replica " + node + " diverged on " + key + ": holds '" +
                               *value + "', acknowledged '" + entry.value + "'");
        }
      }
    }
    return Status::success();
  }
};

/// No acknowledged write disappears. The vantage point matters: under
/// decentralized/neighborhood coherency an overwrite from node X leaves
/// stale copies on earlier writers, and a distributed query may surface
/// them — that is the protocol's documented trade-off, not a lost key. The
/// one read every protocol guarantees is from the last write's origin
/// (local copy wins), so that is what we check; when the origin is dead
/// (only kept in the ledger under full synchrony) any replica must serve
/// it.
class NoLostKeys final : public Invariant {
 public:
  const char* name() const override { return "no-lost-keys"; }

  Status check(SimHarness& harness) override {
    auto names = harness.dvm().node_names();
    if (names.empty()) return err::internal("no alive nodes to read from");
    for (const auto& [key, entry] : harness.ledger()) {
      if (!entry.clean) continue;
      const std::string& vantage = harness.dvm().is_member(entry.origin_node)
                                       ? entry.origin_node
                                       : names.front();
      auto value = harness.dvm().get(vantage, key);
      if (!value.ok()) {
        return err::internal("key " + key + " (origin " + entry.origin_node +
                             ", acknowledged '" + entry.value +
                             "') is gone: " + value.error().message());
      }
      if (*value != entry.value) {
        return err::internal("key " + key + " holds stale '" + *value +
                             "', acknowledged '" + entry.value + "'");
      }
    }
    return Status::success();
  }
};

/// Every component deployed on a currently-alive node is still locatable
/// through the DVM name space and describable by its hosting container.
class RegistryConsistency final : public Invariant {
 public:
  const char* name() const override { return "registry-consistency"; }

  Status check(SimHarness& harness) override {
    auto names = harness.dvm().node_names();
    if (names.empty()) return err::internal("no alive nodes to query from");
    for (const auto& component : harness.deployed()) {
      if (!harness.dvm().is_member(component.node)) continue;  // host is down
      auto located = harness.dvm().locate(names.front(), component.qualified);
      if (!located.ok()) {
        return err::internal("component " + component.qualified +
                             " vanished from the name space: " +
                             located.error().message());
      }
      auto node = harness.dvm().member(component.node);
      if (!node.ok()) {
        return err::internal("alive node " + component.node + " has no DvmNode");
      }
      auto wsdl = node->container().describe(component.instance);
      if (!wsdl.ok()) {
        return err::internal("container " + component.node + " lost instance " +
                             component.instance + ": " + wsdl.error().message());
      }
    }
    return Status::success();
  }
};

/// The DVM epoch never decreases and matches the number of membership
/// events the schedule performed (joins, failures, rejoins).
class MonotonicEpoch final : public Invariant {
 public:
  const char* name() const override { return "monotonic-epoch"; }

  Status check(SimHarness& harness) override {
    std::uint64_t epoch = harness.dvm().epoch();
    if (epoch < last_seen_) {
      return err::internal("epoch went backwards: " + std::to_string(last_seen_) +
                           " -> " + std::to_string(epoch));
    }
    last_seen_ = epoch;
    if (epoch != harness.membership_events()) {
      return err::internal("epoch " + std::to_string(epoch) + " != " +
                           std::to_string(harness.membership_events()) +
                           " membership events the harness performed");
    }
    return Status::success();
  }

 private:
  std::uint64_t last_seen_ = 0;
};

/// The h2.net.* counters must mirror SimNetwork::stats() exactly. The
/// counters are cumulative since network construction and the harness
/// never calls reset_stats(), so any divergence means an instrumentation
/// path updated one ledger but not the other.
class MetricsConsistency final : public Invariant {
 public:
  const char* name() const override { return "metrics-consistency"; }

  Status check(SimHarness& harness) override {
    const net::NetStats stats = harness.net().stats();
    const auto& metrics = harness.net().metrics();
    const struct {
      const char* metric;
      std::uint64_t expect;
    } pairs[] = {
        {"h2.net.messages", stats.messages}, {"h2.net.bytes", stats.bytes},
        {"h2.net.calls", stats.calls},       {"h2.net.drops", stats.drops},
        {"h2.net.faults", stats.faults},
    };
    for (const auto& pair : pairs) {
      std::uint64_t got = metrics.counter_value(pair.metric);
      if (got != pair.expect) {
        return err::internal(std::string(pair.metric) + " counter reads " +
                             std::to_string(got) + " but NetStats says " +
                             std::to_string(pair.expect));
      }
    }
    return Status::success();
  }
};

/// No-lost-events: checked after the settle pump, when every loop must be
/// quiescent. `pending` catches stuck queues (a task enqueued but never
/// drained); `posted == executed` catches the accounting variant — a
/// cross-loop post that was consumed without running or ran twice.
class NoLostEvents final : public Invariant {
 public:
  const char* name() const override { return "no-lost-events"; }

  Status check(SimHarness& harness) override {
    auto inspect = [](const loop::EventLoop& loop) -> Status {
      const loop::LoopStats stats = loop.stats();
      if (stats.pending != 0) {
        return err::internal("loop '" + std::string(loop.name()) + "' still has " +
                             std::to_string(stats.pending) +
                             " queued tasks after the settle pump");
      }
      if (stats.posted != stats.executed) {
        return err::internal("loop '" + std::string(loop.name()) + "' posted " +
                             std::to_string(stats.posted) + " tasks but executed " +
                             std::to_string(stats.executed));
      }
      return Status::success();
    };
    if (auto status = inspect(harness.dvm().loop()); !status.ok()) return status;
    for (const std::string& name : harness.dvm().node_names()) {
      auto member = harness.dvm().member(name);
      if (!member.ok()) continue;
      if (auto status = inspect(member->container().loop()); !status.ok()) {
        return status;
      }
    }
    return Status::success();
  }
};

/// At-most-once for the resilient RPC workload: ask every alive counter
/// replica (through its own container's local binding — no network, so the
/// check itself cannot be disturbed by chaos) how many duplicate logical
/// operations it has executed. The answer must always be zero: retried and
/// network-duplicated calls are absorbed by the server-side idempotency
/// cache, and failover only ever abandons an endpoint where no handler ran.
class RpcAtMostOnce final : public Invariant {
 public:
  const char* name() const override { return "rpc-at-most-once"; }

  Status check(SimHarness& harness) override {
    for (const std::string& name : harness.dvm().node_names()) {
      auto node = harness.dvm().member(name);
      if (!node.ok()) continue;
      auto record = node->container().find_local("CounterService");
      if (!record.ok()) continue;  // scenario runs no counter witness here
      auto channel = node->container().open_channel(record->wsdl);
      if (!channel.ok()) {
        return err::internal("cannot open counter on " + name + ": " +
                             channel.error().message());
      }
      auto dups = (*channel)->invoke("dups", std::span<const Value>{});
      if (!dups.ok()) {
        return err::internal("cannot read dups on " + name + ": " +
                             dups.error().message());
      }
      auto count = dups->as_int();
      if (!count.ok()) return count.error();
      if (*count != 0) {
        return err::internal("replica " + name + " executed " +
                             std::to_string(*count) +
                             " duplicate add(s) — a retried or duplicated "
                             "call was applied more than once");
      }
    }
    return Status::success();
  }
};

/// The resilience layer's error contract: callers only ever see success or
/// kTimeout. Anything in RpcStats::failed means a transient transport
/// error (kUnavailable and friends) escaped the retry/failover stack.
class RpcTimeoutOnly final : public Invariant {
 public:
  const char* name() const override { return "rpc-timeout-only"; }

  Status check(SimHarness& harness) override {
    const SimHarness::RpcStats& stats = harness.rpc_stats();
    if (stats.failed != 0) {
      return err::internal(std::to_string(stats.failed) + " of " +
                           std::to_string(stats.issued) +
                           " rcall(s) failed with a code other than kTimeout"
                           " (last: " + harness.last_rpc_error() + ")");
    }
    return Status::success();
  }
};

/// Full availability: with at least one replica alive at all times and no
/// reply loss, failover must mask every crash — all rcalls succeed.
class RpcAvailability final : public Invariant {
 public:
  const char* name() const override { return "rpc-availability"; }

  Status check(SimHarness& harness) override {
    const SimHarness::RpcStats& stats = harness.rpc_stats();
    if (stats.succeeded != stats.issued) {
      return err::internal(std::to_string(stats.succeeded) + " of " +
                           std::to_string(stats.issued) +
                           " rcall(s) succeeded (" +
                           std::to_string(stats.timed_out) + " timed out, " +
                           std::to_string(stats.failed) + " failed: " +
                           harness.last_rpc_error() + ")");
    }
    return Status::success();
  }
};

/// Sharded replication contract: with anti-entropy settled, every alive
/// owner of a shard holds the identical shard snapshot — same keys, same
/// values, same versions, same tombstones. A skipped or broken repair
/// pass leaves replicas diverged and fails here.
class ShardConvergence final : public Invariant {
 public:
  const char* name() const override { return "shard-convergence"; }

  Status check(SimHarness& harness) override {
    if (harness.config().protocol != SimConfig::Protocol::kSharded) {
      return Status::success();
    }
    const dvm::ShardMap* map = harness.dvm().shard_map();
    if (map == nullptr) {
      return err::internal("sharded protocol exposes no shard map");
    }
    for (std::size_t s = 0; s < map->shard_count(); ++s) {
      std::string reference_owner;
      std::vector<dvm::VersionedEntry> reference;
      for (const std::string& owner : map->owners(s)) {
        auto node = harness.dvm().member(owner);
        if (!node.ok()) continue;  // owner died between map rebuilds
        auto snapshot = node->state().shard_snapshot(s, map->shard_count());
        if (reference_owner.empty()) {
          reference_owner = owner;
          reference = std::move(snapshot);
          continue;
        }
        if (snapshot != reference) {
          return err::internal(
              "shard " + std::to_string(s) + ": replica " + owner + " (" +
              std::to_string(snapshot.size()) + " entries) diverges from " +
              reference_owner + " (" + std::to_string(reference.size()) +
              " entries) after anti-entropy settled");
        }
      }
    }
    return Status::success();
  }
};

/// Sharded no-lost-keys: every cleanly-acknowledged write reads back with
/// its acknowledged value from every alive vantage point — the shard
/// query must route to an owner holding the key no matter where it is
/// issued.
class NoLostKeysSharded final : public Invariant {
 public:
  const char* name() const override { return "no-lost-keys-sharded"; }

  Status check(SimHarness& harness) override {
    if (harness.config().protocol != SimConfig::Protocol::kSharded) {
      return Status::success();
    }
    auto names = harness.dvm().node_names();
    if (names.empty()) return err::internal("no alive nodes to read from");
    for (const auto& [key, entry] : harness.ledger()) {
      if (!entry.clean) continue;
      for (const std::string& vantage : names) {
        auto value = harness.dvm().get(vantage, key);
        if (!value.ok()) {
          return err::internal("key " + key + " (acknowledged '" + entry.value +
                               "') unreadable from " + vantage + ": " +
                               value.error().message());
        }
        if (*value != entry.value) {
          return err::internal("key " + key + " reads '" + *value + "' from " +
                               vantage + ", acknowledged '" + entry.value + "'");
        }
      }
    }
    return Status::success();
  }
};

/// Placement sanity: the protocol's live shard map must equal a freshly
/// rebuilt map over the current membership (no stale routing), and every
/// shard must have exactly min(R, alive) distinct alive owners.
class SingleOwnerPerShard final : public Invariant {
 public:
  const char* name() const override { return "single-owner-per-shard"; }

  Status check(SimHarness& harness) override {
    if (harness.config().protocol != SimConfig::Protocol::kSharded) {
      return Status::success();
    }
    const dvm::ShardMap* map = harness.dvm().shard_map();
    if (map == nullptr) {
      return err::internal("sharded protocol exposes no shard map");
    }
    auto names = harness.dvm().node_names();
    std::sort(names.begin(), names.end());
    dvm::ShardMap fresh(map->config());
    fresh.rebuild(names);
    const std::size_t expected =
        std::min(map->config().replicas, names.size());
    for (std::size_t s = 0; s < map->shard_count(); ++s) {
      auto live = map->owners(s);
      auto want = fresh.owners(s);
      if (!std::equal(live.begin(), live.end(), want.begin(), want.end())) {
        return err::internal("shard " + std::to_string(s) +
                             " has a stale owner list (live map disagrees "
                             "with a rebuild over current membership)");
      }
      if (live.size() != expected) {
        return err::internal("shard " + std::to_string(s) + " has " +
                             std::to_string(live.size()) + " owners, expected " +
                             std::to_string(expected));
      }
      std::set<std::string_view> seen;
      for (const std::string& owner : live) {
        if (!harness.dvm().is_member(owner)) {
          return err::internal("shard " + std::to_string(s) + " owner " + owner +
                               " is not an alive member");
        }
        if (!seen.insert(owner).second) {
          return err::internal("shard " + std::to_string(s) +
                               " lists owner " + owner + " twice");
        }
      }
    }
    return Status::success();
  }
};

/// Degraded-mode durability, checked BEFORE the settle anti-entropy pass
/// (pre_anti_entropy), after the harness drained hint replay: every
/// cleanly-acknowledged key must be held (with the acknowledged value) by
/// every alive owner of its shard, unless a parked hint still records the
/// debt — hints survive while their coordinator is dead or the rebalance
/// budget is exhausted, and that is accounted-for, not lost. A key that is
/// both under-replicated and unhinted means a failed replication leg was
/// silently forgotten: exactly what the planted hint-drop bug does, and
/// what anti-entropy would otherwise quietly mask.
class NoUnderReplicatedWrites final : public Invariant {
 public:
  const char* name() const override { return "no-under-replicated-writes"; }

  bool pre_anti_entropy() const override { return true; }

  Status check(SimHarness& harness) override {
    if (harness.config().protocol != SimConfig::Protocol::kSharded) {
      return Status::success();
    }
    const dvm::ShardMap* map = harness.dvm().shard_map();
    if (map == nullptr) {
      return err::internal("sharded protocol exposes no shard map");
    }
    auto hinted_list = harness.dvm().hinted_keys();
    std::set<std::string_view> hinted(hinted_list.begin(), hinted_list.end());
    for (const auto& [key, entry] : harness.ledger()) {
      if (!entry.clean) continue;
      if (hinted.count(key) != 0) continue;  // debt recorded; replay owes it
      for (const std::string& owner : map->owners(map->shard_of(key))) {
        auto node = harness.dvm().member(owner);
        if (!node.ok()) continue;  // owner died between map rebuilds
        auto value = node->state().get(key);
        if (!value.has_value()) {
          return err::internal(
              "owner " + owner + " is missing key " + key + " (acknowledged '" +
              entry.value +
              "') with no parked hint — the failed replication leg was "
              "forgotten");
        }
        if (*value != entry.value) {
          return err::internal("owner " + owner + " holds stale " + key + "='" +
                               *value + "', acknowledged '" + entry.value +
                               "', with no parked hint");
        }
      }
    }
    return Status::success();
  }
};

}  // namespace

std::unique_ptr<Invariant> make_coherency_convergence() {
  return std::make_unique<CoherencyConvergence>();
}
std::unique_ptr<Invariant> make_no_lost_keys() {
  return std::make_unique<NoLostKeys>();
}
std::unique_ptr<Invariant> make_registry_consistency() {
  return std::make_unique<RegistryConsistency>();
}
std::unique_ptr<Invariant> make_monotonic_epoch() {
  return std::make_unique<MonotonicEpoch>();
}
std::unique_ptr<Invariant> make_metrics_consistency() {
  return std::make_unique<MetricsConsistency>();
}
std::unique_ptr<Invariant> make_no_lost_events() {
  return std::make_unique<NoLostEvents>();
}
std::unique_ptr<Invariant> make_rpc_at_most_once() {
  return std::make_unique<RpcAtMostOnce>();
}
std::unique_ptr<Invariant> make_rpc_timeout_only() {
  return std::make_unique<RpcTimeoutOnly>();
}
std::unique_ptr<Invariant> make_rpc_availability() {
  return std::make_unique<RpcAvailability>();
}
std::unique_ptr<Invariant> make_shard_convergence() {
  return std::make_unique<ShardConvergence>();
}
std::unique_ptr<Invariant> make_no_lost_keys_sharded() {
  return std::make_unique<NoLostKeysSharded>();
}
std::unique_ptr<Invariant> make_single_owner_per_shard() {
  return std::make_unique<SingleOwnerPerShard>();
}
std::unique_ptr<Invariant> make_no_under_replicated_writes() {
  return std::make_unique<NoUnderReplicatedWrites>();
}

Result<std::unique_ptr<Invariant>> make_invariant(std::string_view name) {
  if (name == "coherency-convergence") return make_coherency_convergence();
  if (name == "no-lost-keys") return make_no_lost_keys();
  if (name == "registry-consistency") return make_registry_consistency();
  if (name == "monotonic-epoch") return make_monotonic_epoch();
  if (name == "metrics-consistency") return make_metrics_consistency();
  if (name == "no-lost-events") return make_no_lost_events();
  if (name == "rpc-at-most-once") return make_rpc_at_most_once();
  if (name == "rpc-timeout-only") return make_rpc_timeout_only();
  if (name == "rpc-availability") return make_rpc_availability();
  if (name == "shard-convergence") return make_shard_convergence();
  if (name == "no-lost-keys-sharded") return make_no_lost_keys_sharded();
  if (name == "single-owner-per-shard") return make_single_owner_per_shard();
  if (name == "no-under-replicated-writes") return make_no_under_replicated_writes();
  return err::not_found("unknown invariant '" + std::string(name) + "'");
}

}  // namespace h2::sim
