#include "sim/invariant.hpp"

#include "sim/harness.hpp"

namespace h2::sim {

namespace {

/// Full-synchrony contract: every alive replica can locally serve the
/// ledger value of every cleanly-acknowledged key. Vacuous for protocols
/// that only promise reachability, not replication.
class CoherencyConvergence final : public Invariant {
 public:
  const char* name() const override { return "coherency-convergence"; }

  Status check(SimHarness& harness) override {
    if (harness.config().protocol != SimConfig::Protocol::kFullSynchrony) {
      return Status::success();
    }
    for (const std::string& node : harness.dvm().node_names()) {
      for (const auto& [key, entry] : harness.ledger()) {
        if (!entry.clean) continue;
        auto value = harness.dvm().get(node, key);
        if (!value.ok()) {
          return err::internal("replica " + node + " is missing key " + key +
                               " (acknowledged '" + entry.value +
                               "'): " + value.error().message());
        }
        if (*value != entry.value) {
          return err::internal("replica " + node + " diverged on " + key + ": holds '" +
                               *value + "', acknowledged '" + entry.value + "'");
        }
      }
    }
    return Status::success();
  }
};

/// No acknowledged write disappears. The vantage point matters: under
/// decentralized/neighborhood coherency an overwrite from node X leaves
/// stale copies on earlier writers, and a distributed query may surface
/// them — that is the protocol's documented trade-off, not a lost key. The
/// one read every protocol guarantees is from the last write's origin
/// (local copy wins), so that is what we check; when the origin is dead
/// (only kept in the ledger under full synchrony) any replica must serve
/// it.
class NoLostKeys final : public Invariant {
 public:
  const char* name() const override { return "no-lost-keys"; }

  Status check(SimHarness& harness) override {
    auto names = harness.dvm().node_names();
    if (names.empty()) return err::internal("no alive nodes to read from");
    for (const auto& [key, entry] : harness.ledger()) {
      if (!entry.clean) continue;
      const std::string& vantage = harness.dvm().is_member(entry.origin_node)
                                       ? entry.origin_node
                                       : names.front();
      auto value = harness.dvm().get(vantage, key);
      if (!value.ok()) {
        return err::internal("key " + key + " (origin " + entry.origin_node +
                             ", acknowledged '" + entry.value +
                             "') is gone: " + value.error().message());
      }
      if (*value != entry.value) {
        return err::internal("key " + key + " holds stale '" + *value +
                             "', acknowledged '" + entry.value + "'");
      }
    }
    return Status::success();
  }
};

/// Every component deployed on a currently-alive node is still locatable
/// through the DVM name space and describable by its hosting container.
class RegistryConsistency final : public Invariant {
 public:
  const char* name() const override { return "registry-consistency"; }

  Status check(SimHarness& harness) override {
    auto names = harness.dvm().node_names();
    if (names.empty()) return err::internal("no alive nodes to query from");
    for (const auto& component : harness.deployed()) {
      if (!harness.dvm().is_member(component.node)) continue;  // host is down
      auto located = harness.dvm().locate(names.front(), component.qualified);
      if (!located.ok()) {
        return err::internal("component " + component.qualified +
                             " vanished from the name space: " +
                             located.error().message());
      }
      auto node = harness.dvm().member(component.node);
      if (!node.ok()) {
        return err::internal("alive node " + component.node + " has no DvmNode");
      }
      auto wsdl = node->container().describe(component.instance);
      if (!wsdl.ok()) {
        return err::internal("container " + component.node + " lost instance " +
                             component.instance + ": " + wsdl.error().message());
      }
    }
    return Status::success();
  }
};

/// The DVM epoch never decreases and matches the number of membership
/// events the schedule performed (joins, failures, rejoins).
class MonotonicEpoch final : public Invariant {
 public:
  const char* name() const override { return "monotonic-epoch"; }

  Status check(SimHarness& harness) override {
    std::uint64_t epoch = harness.dvm().epoch();
    if (epoch < last_seen_) {
      return err::internal("epoch went backwards: " + std::to_string(last_seen_) +
                           " -> " + std::to_string(epoch));
    }
    last_seen_ = epoch;
    if (epoch != harness.membership_events()) {
      return err::internal("epoch " + std::to_string(epoch) + " != " +
                           std::to_string(harness.membership_events()) +
                           " membership events the harness performed");
    }
    return Status::success();
  }

 private:
  std::uint64_t last_seen_ = 0;
};

/// The h2.net.* counters must mirror SimNetwork::stats() exactly. The
/// counters are cumulative since network construction and the harness
/// never calls reset_stats(), so any divergence means an instrumentation
/// path updated one ledger but not the other.
class MetricsConsistency final : public Invariant {
 public:
  const char* name() const override { return "metrics-consistency"; }

  Status check(SimHarness& harness) override {
    const net::NetStats stats = harness.net().stats();
    const auto& metrics = harness.net().metrics();
    const struct {
      const char* metric;
      std::uint64_t expect;
    } pairs[] = {
        {"h2.net.messages", stats.messages}, {"h2.net.bytes", stats.bytes},
        {"h2.net.calls", stats.calls},       {"h2.net.drops", stats.drops},
        {"h2.net.faults", stats.faults},
    };
    for (const auto& pair : pairs) {
      std::uint64_t got = metrics.counter_value(pair.metric);
      if (got != pair.expect) {
        return err::internal(std::string(pair.metric) + " counter reads " +
                             std::to_string(got) + " but NetStats says " +
                             std::to_string(pair.expect));
      }
    }
    return Status::success();
  }
};

}  // namespace

std::unique_ptr<Invariant> make_coherency_convergence() {
  return std::make_unique<CoherencyConvergence>();
}
std::unique_ptr<Invariant> make_no_lost_keys() {
  return std::make_unique<NoLostKeys>();
}
std::unique_ptr<Invariant> make_registry_consistency() {
  return std::make_unique<RegistryConsistency>();
}
std::unique_ptr<Invariant> make_monotonic_epoch() {
  return std::make_unique<MonotonicEpoch>();
}
std::unique_ptr<Invariant> make_metrics_consistency() {
  return std::make_unique<MetricsConsistency>();
}

Result<std::unique_ptr<Invariant>> make_invariant(std::string_view name) {
  if (name == "coherency-convergence") return make_coherency_convergence();
  if (name == "no-lost-keys") return make_no_lost_keys();
  if (name == "registry-consistency") return make_registry_consistency();
  if (name == "monotonic-epoch") return make_monotonic_epoch();
  if (name == "metrics-consistency") return make_metrics_consistency();
  return err::not_found("unknown invariant '" + std::string(name) + "'");
}

}  // namespace h2::sim
