// Pluggable invariant checkers. SimHarness runs every registered
// invariant at each settle point (chaos paused, partitions healed, queues
// pumped); a failed check aborts the run with the seed and a replayable
// trace. Invariants observe the system through the harness accessors —
// the DVM's membership/epoch, each node's local state store, and the
// harness's own ledger of acknowledged writes and deployments.
#pragma once

#include <memory>
#include <string>

#include "util/error.hpp"

namespace h2::sim {

class SimHarness;

class Invariant {
 public:
  virtual ~Invariant() = default;
  virtual const char* name() const = 0;

  /// Called at settle points. Returns an error describing the violation;
  /// the harness wraps it with scenario/seed/step context.
  virtual Status check(SimHarness& harness) = 0;

  /// Pre-anti-entropy invariants run after the settle-time hint-replay
  /// drain but BEFORE the settle anti-entropy pass: they judge what
  /// hinted handoff alone restored, so an AE backstop cannot mask a
  /// dropped hint. Default: checked at the normal (post-AE) point.
  virtual bool pre_anti_entropy() const { return false; }
};

/// Every alive replica holds the ledger value of every cleanly-acknowledged
/// key — the replicated-state contract of the full-synchrony protocol.
/// Skipped (vacuously true) under other protocols.
std::unique_ptr<Invariant> make_coherency_convergence();

/// No acknowledged write disappears: every ledger key is still readable
/// from the vantage of the protocol that stored it.
std::unique_ptr<Invariant> make_no_lost_keys();

/// Every component the harness successfully deployed on a currently-alive
/// node is still locatable through the DVM name space and describable by
/// its hosting container.
std::unique_ptr<Invariant> make_registry_consistency();

/// The DVM epoch is monotonic and advances exactly once per membership
/// event the harness performed (join, failure, rejoin).
std::unique_ptr<Invariant> make_monotonic_epoch();

/// The observability layer agrees with the network's own accounting:
/// every h2.net.* counter in the metrics registry equals the matching
/// SimNetwork::stats() field. Catches instrumentation drift — a code path
/// that bumps one but not the other.
std::unique_ptr<Invariant> make_metrics_consistency();

/// No lost events: at a settle point (all loops pumped to quiescence)
/// every event loop in the cluster — the DVM's and each alive member's —
/// has an empty queue and has executed exactly as many tasks as were
/// posted. A gap means a cross-loop post was dropped or double-counted.
std::unique_ptr<Invariant> make_no_lost_events();

/// At-most-once: no counter replica has ever executed the same logical
/// add() twice. Retries, network duplicates and failovers all funnel
/// through the idempotency machinery; a nonzero `dups` reading on any
/// replica means a side effect was double-applied. Vacuous when the
/// scenario deploys no counter witness.
std::unique_ptr<Invariant> make_rpc_at_most_once();

/// Resilience error contract: every rcall the schedule issued either
/// succeeded or failed with kTimeout ("fate unknown"). Any other failure
/// leaked a transient transport error past the retry/failover stack.
std::unique_ptr<Invariant> make_rpc_timeout_only();

/// Availability: every rcall succeeded outright. Only meaningful for
/// scenarios (like failover-cascade) where some replica is always alive
/// and reply loss is off, so failover must mask every crash completely.
std::unique_ptr<Invariant> make_rpc_availability();

/// Sharded replication contract: after the settle-time anti-entropy pass,
/// every alive owner of every shard holds a byte-identical shard snapshot
/// (keys, values, versions and tombstones). Vacuous unless the scenario
/// runs the sharded protocol. This is the invariant the planted
/// skip-one-shard anti-entropy bug must trip.
std::unique_ptr<Invariant> make_shard_convergence();

/// No acknowledged sharded write disappears: every cleanly-acknowledged
/// ledger key reads back with its acknowledged value from EVERY alive
/// node's vantage (the shard query walks the owner set, so this also
/// exercises read routing). Vacuous unless sharded.
std::unique_ptr<Invariant> make_no_lost_keys_sharded();

/// Placement sanity: the live shard map equals a freshly rebuilt map over
/// the current membership, and each shard has exactly min(R, alive)
/// distinct, alive owners. Vacuous unless sharded.
std::unique_ptr<Invariant> make_single_owner_per_shard();

/// Degraded-mode durability (pre-anti-entropy): after the settle-time
/// hint-replay drain, every cleanly-acknowledged key is either held by
/// EVERY alive owner of its shard or still has a parked hint recording
/// the debt. An under-replicated key with no hint means a failed
/// replication leg was silently forgotten — the violation the planted
/// hint-drop bug must produce. Vacuous unless sharded.
std::unique_ptr<Invariant> make_no_under_replicated_writes();

/// By name, for scenario definitions and the simrunner CLI:
/// "coherency-convergence", "no-lost-keys", "registry-consistency",
/// "monotonic-epoch", "metrics-consistency", "rpc-at-most-once",
/// "rpc-timeout-only", "rpc-availability", "shard-convergence",
/// "no-lost-keys-sharded", "single-owner-per-shard",
/// "no-under-replicated-writes".
Result<std::unique_ptr<Invariant>> make_invariant(std::string_view name);

}  // namespace h2::sim
