// Pluggable invariant checkers. SimHarness runs every registered
// invariant at each settle point (chaos paused, partitions healed, queues
// pumped); a failed check aborts the run with the seed and a replayable
// trace. Invariants observe the system through the harness accessors —
// the DVM's membership/epoch, each node's local state store, and the
// harness's own ledger of acknowledged writes and deployments.
#pragma once

#include <memory>
#include <string>

#include "util/error.hpp"

namespace h2::sim {

class SimHarness;

class Invariant {
 public:
  virtual ~Invariant() = default;
  virtual const char* name() const = 0;

  /// Called at settle points. Returns an error describing the violation;
  /// the harness wraps it with scenario/seed/step context.
  virtual Status check(SimHarness& harness) = 0;
};

/// Every alive replica holds the ledger value of every cleanly-acknowledged
/// key — the replicated-state contract of the full-synchrony protocol.
/// Skipped (vacuously true) under other protocols.
std::unique_ptr<Invariant> make_coherency_convergence();

/// No acknowledged write disappears: every ledger key is still readable
/// from the vantage of the protocol that stored it.
std::unique_ptr<Invariant> make_no_lost_keys();

/// Every component the harness successfully deployed on a currently-alive
/// node is still locatable through the DVM name space and describable by
/// its hosting container.
std::unique_ptr<Invariant> make_registry_consistency();

/// The DVM epoch is monotonic and advances exactly once per membership
/// event the harness performed (join, failure, rejoin).
std::unique_ptr<Invariant> make_monotonic_epoch();

/// The observability layer agrees with the network's own accounting:
/// every h2.net.* counter in the metrics registry equals the matching
/// SimNetwork::stats() field. Catches instrumentation drift — a code path
/// that bumps one but not the other.
std::unique_ptr<Invariant> make_metrics_consistency();

/// By name, for scenario definitions and the simrunner CLI:
/// "coherency-convergence", "no-lost-keys", "registry-consistency",
/// "monotonic-epoch", "metrics-consistency".
Result<std::unique_ptr<Invariant>> make_invariant(std::string_view name);

}  // namespace h2::sim
