#include "sim/scenario.hpp"

#include "sim/invariant.hpp"

namespace h2::sim {

namespace {

const std::vector<std::string>& all_invariants() {
  static const std::vector<std::string> names = {
      "coherency-convergence", "no-lost-keys", "registry-consistency",
      "monotonic-epoch", "metrics-consistency"};
  return names;
}

ScenarioDef coherency_storm() {
  ScenarioDef def;
  def.name = "coherency-storm";
  def.description =
      "full-synchrony DVM under message drop/dup/delay chaos and random "
      "partitions; replicas must converge at every settle point";
  def.config.scenario = def.name;
  def.config.nodes = 4;
  def.config.steps = 120;
  def.config.check_every = 20;
  def.config.plan.chaos({.drop_p = 0.03, .dup_p = 0.05, .delay_p = 0.10})
      .random({.partition_p = 0.04, .heal_p = 0.10});
  def.invariants = all_invariants();
  return def;
}

ScenarioDef failover() {
  ScenarioDef def;
  def.name = "failover";
  def.description =
      "scripted crash/restart waves plus random node churn; components on "
      "surviving nodes stay locatable, rejoined nodes converge";
  def.config.scenario = def.name;
  def.config.nodes = 5;
  def.config.steps = 150;
  def.config.check_every = 30;
  def.config.weights.probe = 0.20;
  def.config.weights.get = 0.15;
  def.config.plan.crash_at(25, 1)
      .restart_at(55, 1)
      .crash_at(80, 3)
      .restart_at(110, 3)
      .random({.crash_p = 0.02, .restart_p = 0.10, .min_alive = 3});
  def.invariants = all_invariants();
  return def;
}

ScenarioDef churn() {
  ScenarioDef def;
  def.name = "churn";
  def.description =
      "decentralized protocol under heavy membership churn; origin-local "
      "keys survive while their writer is alive, the name space stays sane";
  def.config.scenario = def.name;
  def.config.nodes = 5;
  def.config.steps = 150;
  def.config.check_every = 25;
  def.config.protocol = SimConfig::Protocol::kDecentralized;
  def.config.plan.chaos({.drop_p = 0.02, .dup_p = 0.03, .delay_p = 0.05})
      .random({.crash_p = 0.05, .restart_p = 0.20, .min_alive = 3});
  def.invariants = all_invariants();
  return def;
}

ScenarioDef mesh_skew() {
  ScenarioDef def;
  def.name = "mesh-skew";
  def.description =
      "neighborhood (ring-1) protocol with clock skew, delays and "
      "partitions; reads through the mesh never return stale state";
  def.config.scenario = def.name;
  def.config.nodes = 6;
  def.config.steps = 120;
  def.config.check_every = 24;
  def.config.protocol = SimConfig::Protocol::kNeighborhood;
  def.config.neighborhood_k = 1;
  def.config.plan.chaos({.dup_p = 0.05, .delay_p = 0.15})
      .random({.partition_p = 0.03, .heal_p = 0.12, .skew_p = 0.10});
  def.invariants = all_invariants();
  return def;
}

ScenarioDef retry_storm() {
  ScenarioDef def;
  def.name = "retry-storm";
  def.description =
      "resilient counter RPC under heavy drop/duplicate/reply-loss chaos; "
      "retries and network duplicates must never double-apply a side "
      "effect, and calls only ever fail with kTimeout";
  def.config.scenario = def.name;
  def.config.nodes = 4;
  def.config.steps = 150;
  def.config.check_every = 30;
  def.config.weights.set = 0.10;
  def.config.weights.get = 0.05;
  def.config.weights.erase = 0.0;
  def.config.weights.deploy = 0.0;
  // No probes: under 25% call drop a prober would mass-evict healthy
  // nodes, which is a membership scenario, not a retry scenario.
  def.config.weights.probe = 0.0;
  def.config.weights.noise = 0.10;
  def.config.weights.pump = 0.15;
  def.config.weights.rcall = 0.60;
  def.config.plan.chaos(
      {.drop_p = 0.25, .dup_p = 0.10, .delay_p = 0.05, .drop_reply_p = 0.10});
  def.invariants = all_invariants();
  def.invariants.push_back("rpc-at-most-once");
  def.invariants.push_back("rpc-timeout-only");
  return def;
}

ScenarioDef batch_storm() {
  ScenarioDef def;
  def.name = "batch-storm";
  def.description =
      "batched resilient counter RPC (multi-call H2RB frames) under "
      "drop/duplicate/reply-loss chaos; a replayed batch frame must be "
      "answered from the dedup cache without re-executing any sub-call, "
      "and sub-calls only ever fail with kTimeout";
  def.config.scenario = def.name;
  def.config.nodes = 4;
  def.config.steps = 150;
  def.config.check_every = 30;
  def.config.weights.set = 0.10;
  def.config.weights.get = 0.05;
  def.config.weights.erase = 0.0;
  def.config.weights.deploy = 0.0;
  // No probes, as in retry-storm: heavy call drop would mass-evict
  // healthy nodes and turn this into a membership scenario.
  def.config.weights.probe = 0.0;
  def.config.weights.noise = 0.10;
  def.config.weights.pump = 0.15;
  def.config.weights.rcall = 0.0;
  def.config.weights.batch = 0.60;
  def.config.plan.chaos(
      {.drop_p = 0.25, .dup_p = 0.10, .delay_p = 0.05, .drop_reply_p = 0.10});
  def.invariants = all_invariants();
  def.invariants.push_back("rpc-at-most-once");
  def.invariants.push_back("rpc-timeout-only");
  return def;
}

ScenarioDef failover_cascade() {
  ScenarioDef def;
  def.name = "failover-cascade";
  def.description =
      "serial scripted crashes plus random churn while resilient counter "
      "calls keep flowing; as long as one replica lives, every call "
      "succeeds and no side effect is applied twice";
  def.config.scenario = def.name;
  def.config.nodes = 5;
  def.config.steps = 150;
  def.config.check_every = 30;
  def.config.weights.set = 0.10;
  def.config.weights.get = 0.05;
  def.config.weights.erase = 0.0;
  def.config.weights.deploy = 0.0;
  def.config.weights.probe = 0.15;
  def.config.weights.noise = 0.05;
  def.config.weights.pump = 0.15;
  def.config.weights.rcall = 0.50;
  def.config.plan.crash_at(20, 1)
      .restart_at(50, 1)
      .crash_at(70, 2)
      .restart_at(100, 2)
      .crash_at(120, 3)
      .random({.crash_p = 0.03, .restart_p = 0.15, .min_alive = 2});
  def.invariants = all_invariants();
  def.invariants.push_back("rpc-at-most-once");
  def.invariants.push_back("rpc-timeout-only");
  def.invariants.push_back("rpc-availability");
  return def;
}

ScenarioDef retry_storm_nodedup() {
  ScenarioDef def = retry_storm();
  def.name = "retry-storm-nodedup";
  def.description =
      "retry-storm with the server-side idempotency cache disabled; the "
      "at-most-once invariant must catch a double-applied retry";
  def.config.scenario = def.name;
  def.config.disable_dedup = true;
  def.invariants = {"rpc-at-most-once"};
  def.expect_violation = true;
  return def;
}

ScenarioDef planted_bug() {
  ScenarioDef def;
  def.name = "planted-bug";
  def.description =
      "full synchrony with a deliberately broken replication fan-out "
      "(skips the last member); an invariant must catch it";
  def.config.scenario = def.name;
  def.config.nodes = 4;
  def.config.steps = 60;
  def.config.check_every = 15;
  def.config.buggy_coherency = true;
  def.invariants = {"coherency-convergence", "no-lost-keys"};
  def.expect_violation = true;
  return def;
}

const std::vector<std::string>& shard_invariants() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> all = all_invariants();
    all.push_back("shard-convergence");
    all.push_back("no-lost-keys-sharded");
    all.push_back("single-owner-per-shard");
    return all;
  }();
  return names;
}

ScenarioDef shard_partition_heal() {
  ScenarioDef def;
  def.name = "shard-partition-heal";
  def.description =
      "sharded DVM (16 shards, R=3) under drop/dup/delay chaos and random "
      "partitions; periodic anti-entropy repairs divergence, and at every "
      "settle point all replica sets are byte-equal and no acknowledged "
      "key is lost";
  def.config.scenario = def.name;
  def.config.nodes = 5;
  def.config.steps = 150;
  def.config.check_every = 25;
  def.config.key_space = 12;
  def.config.protocol = SimConfig::Protocol::kSharded;
  def.config.shard = {.shards = 16, .replicas = 3, .vnodes = 8};
  def.config.anti_entropy_every = 10;
  def.config.plan.chaos({.drop_p = 0.08, .dup_p = 0.05, .delay_p = 0.10})
      .random({.partition_p = 0.05, .heal_p = 0.12});
  def.invariants = shard_invariants();
  return def;
}

ScenarioDef shard_churn() {
  ScenarioDef def;
  def.name = "shard-churn";
  def.description =
      "sharded DVM under crash/restart churn; membership changes trigger "
      "bounded handoff, the shard map tracks the survivors, and "
      "anti-entropy re-converges every replica set";
  def.config.scenario = def.name;
  def.config.nodes = 6;
  def.config.steps = 180;
  def.config.check_every = 30;
  def.config.key_space = 12;
  def.config.protocol = SimConfig::Protocol::kSharded;
  def.config.shard = {.shards = 16, .replicas = 3, .vnodes = 8};
  def.config.anti_entropy_every = 15;
  def.config.plan.chaos({.drop_p = 0.04, .dup_p = 0.04, .delay_p = 0.08})
      .random({.crash_p = 0.04, .restart_p = 0.20, .min_alive = 4});
  def.invariants = shard_invariants();
  return def;
}

ScenarioDef shard_ae_skip() {
  ScenarioDef def;
  def.name = "shard-ae-skip";
  def.description =
      "sharded DVM whose anti-entropy pass silently skips one shard (the "
      "planted repair bug), with hinted handoff also disabled so it "
      "cannot repair what the broken AE pass leaves behind; under "
      "write-heavy drop chaos the skipped shard's replicas diverge and "
      "shard-convergence must catch it";
  def.config.scenario = def.name;
  def.config.nodes = 5;
  def.config.steps = 210;
  def.config.check_every = 15;
  def.config.key_space = 16;
  def.config.protocol = SimConfig::Protocol::kSharded;
  // Few, fat shards: ~4 of the 16 keys land in the skipped shard, so
  // every settle window sees fresh unrepaired divergence there.
  def.config.shard = {.shards = 4, .replicas = 3, .vnodes = 8};
  def.config.anti_entropy_every = 10;
  def.config.buggy_shard = true;
  def.config.buggy_hint_drop = true;
  // Write-heavy, no erases (a tombstone storm could mask divergence), no
  // probes (35% call drop would mass-evict healthy nodes).
  def.config.weights.set = 0.45;
  def.config.weights.get = 0.20;
  def.config.weights.erase = 0.0;
  def.config.weights.deploy = 0.0;
  def.config.weights.probe = 0.0;
  def.config.plan.chaos({.drop_p = 0.35, .dup_p = 0.05, .delay_p = 0.05});
  def.invariants = {"shard-convergence", "no-lost-keys-sharded"};
  def.expect_violation = true;
  return def;
}

ScenarioDef loop_storm() {
  ScenarioDef def;
  def.name = "loop-storm";
  def.description =
      "full-synchrony DVM with every loop in queued mode under a "
      "SimDriver: probes and bus events cross loops as posted tasks, "
      "heartbeat and anti-entropy ride the timer wheel, and after every "
      "settle pump no loop may hold an undelivered event";
  def.config.scenario = def.name;
  def.config.nodes = 4;
  def.config.steps = 120;
  def.config.check_every = 20;
  def.config.loop_driver = true;
  def.config.step_time = 2 * kMillisecond;
  def.config.heartbeat_period = 9 * kMillisecond;
  def.config.plan.chaos({.drop_p = 0.02, .dup_p = 0.04, .delay_p = 0.08})
      .random({.partition_p = 0.03, .heal_p = 0.15});
  def.invariants = all_invariants();
  def.invariants.push_back("no-lost-events");
  return def;
}

ScenarioDef shard_read_repair() {
  ScenarioDef def;
  def.name = "shard-read-repair";
  def.description =
      "sharded DVM, read-heavy under write-drop chaos: owners that missed "
      "a write get per-key repairs scheduled on their loops by the read "
      "path, wheel-timed anti-entropy catches the rest, and replica sets "
      "are byte-equal at every settle point";
  def.config.scenario = def.name;
  def.config.nodes = 5;
  def.config.steps = 150;
  def.config.check_every = 25;
  def.config.key_space = 10;
  def.config.protocol = SimConfig::Protocol::kSharded;
  def.config.shard = {.shards = 16, .replicas = 3, .vnodes = 8};
  def.config.loop_driver = true;
  def.config.step_time = 2 * kMillisecond;
  def.config.anti_entropy_period = 40 * kMillisecond;
  // Read-heavy, lossy writes: dropped vset legs create exactly the
  // stale-owner windows the read-repair path must close.
  def.config.weights.set = 0.30;
  def.config.weights.get = 0.45;
  def.config.weights.erase = 0.02;
  def.config.weights.probe = 0.05;
  def.config.plan.chaos({.drop_p = 0.10, .dup_p = 0.04, .delay_p = 0.08});
  def.invariants = shard_invariants();
  def.invariants.push_back("no-lost-events");
  return def;
}

ScenarioDef shard_owner_down_write() {
  ScenarioDef def;
  def.name = "shard-owner-down-write";
  def.description =
      "sharded DVM writing through partitions, drop chaos and "
      "crash/restart churn: replication legs that miss an owner park "
      "hints, periodic replay redelivers them, and at every settle point "
      "each acknowledged key is fully replicated or its debt is still "
      "hinted — never silently forgotten";
  def.config.scenario = def.name;
  def.config.nodes = 6;
  def.config.steps = 180;
  def.config.check_every = 30;
  def.config.key_space = 12;
  def.config.protocol = SimConfig::Protocol::kSharded;
  def.config.shard = {.shards = 16, .replicas = 3, .vnodes = 8};
  def.config.anti_entropy_every = 15;
  def.config.hint_replay_every = 10;
  // Write-heavy with a modest probe budget: heavy call drop plus frequent
  // probes would mass-evict healthy nodes and drown the handoff story in
  // membership churn.
  def.config.weights.set = 0.40;
  def.config.weights.get = 0.15;
  def.config.weights.probe = 0.05;
  def.config.plan.chaos({.drop_p = 0.15, .dup_p = 0.04, .delay_p = 0.06})
      .partition_at(20, 0, 3)
      .partition_at(25, 1, 4)
      .heal_at(45, 0, 3)
      .heal_at(50, 1, 4)
      .partition_at(90, 2, 5)
      .heal_at(115, 2, 5)
      .random({.crash_p = 0.02, .restart_p = 0.20, .min_alive = 4});
  def.invariants = shard_invariants();
  def.invariants.push_back("no-under-replicated-writes");
  return def;
}

ScenarioDef shard_hint_drop() {
  ScenarioDef def;
  def.name = "shard-hint-drop";
  def.description =
      "sharded DVM that silently DROPS every hinted-handoff entry (the "
      "planted durability bug); writes that miss an owner under drop "
      "chaos leave replicas under-replicated with no recorded debt, and "
      "no-under-replicated-writes must catch it before anti-entropy "
      "masks the gap";
  def.config.scenario = def.name;
  def.config.nodes = 5;
  def.config.steps = 210;
  def.config.check_every = 15;
  def.config.key_space = 16;
  def.config.protocol = SimConfig::Protocol::kSharded;
  // Few, fat shards concentrate the keyspace so most settle windows see a
  // write whose dropped replication leg was never hinted.
  def.config.shard = {.shards = 4, .replicas = 3, .vnodes = 8};
  def.config.anti_entropy_every = 0;  // settle AE runs AFTER the pre-AE check
  def.config.buggy_hint_drop = true;
  // Write-heavy, read-light: reads can mask the bug via read repair, and
  // erases via tombstones. No probes under 35% call drop, no membership
  // churn — the only repair channel in play is the (broken) hint path.
  def.config.weights.set = 0.45;
  def.config.weights.get = 0.10;
  def.config.weights.erase = 0.0;
  def.config.weights.deploy = 0.0;
  def.config.weights.probe = 0.0;
  def.config.plan.chaos({.drop_p = 0.35, .dup_p = 0.05, .delay_p = 0.05});
  def.invariants = {"no-under-replicated-writes"};
  def.expect_violation = true;
  return def;
}

ScenarioDef shard_repair_storm() {
  ScenarioDef def;
  def.name = "shard-repair-storm";
  def.description =
      "sharded DVM in queued-loop mode with a deliberately tight "
      "rebalance budget: crash/restart churn floods handoff and hint "
      "replay, the token bucket spreads the repair traffic over wheel "
      "ticks, and every replica set still converges at settle points";
  def.config.scenario = def.name;
  def.config.nodes = 6;
  def.config.steps = 180;
  def.config.check_every = 30;
  def.config.key_space = 12;
  def.config.protocol = SimConfig::Protocol::kSharded;
  def.config.shard = {.shards = 16, .replicas = 3, .vnodes = 8};
  // Tight per-tick budget: a few KB and a few dozen messages per refill,
  // so a churn wave's handoff must spill into hints and drain over many
  // replay ticks instead of one unbounded burst.
  def.config.shard.rebalance_bytes_per_tick = 4096;
  def.config.shard.rebalance_msgs_per_tick = 64;
  def.config.loop_driver = true;
  def.config.step_time = 2 * kMillisecond;
  def.config.anti_entropy_period = 40 * kMillisecond;
  def.config.hint_replay_period = 10 * kMillisecond;
  def.config.weights.set = 0.40;
  def.config.weights.get = 0.15;
  def.config.weights.probe = 0.05;
  def.config.plan.chaos({.drop_p = 0.06, .dup_p = 0.04, .delay_p = 0.08})
      .random({.crash_p = 0.04, .restart_p = 0.20, .min_alive = 4});
  def.invariants = shard_invariants();
  def.invariants.push_back("no-under-replicated-writes");
  def.invariants.push_back("no-lost-events");
  return def;
}

}  // namespace

const std::vector<ScenarioDef>& scenarios() {
  static const std::vector<ScenarioDef> table = {
      coherency_storm(), failover(),           churn(),
      mesh_skew(),       retry_storm(),        batch_storm(),
      failover_cascade(), planted_bug(),       retry_storm_nodedup(),
      shard_partition_heal(), shard_churn(),   shard_ae_skip(),
      loop_storm(),      shard_read_repair(),  shard_owner_down_write(),
      shard_hint_drop(), shard_repair_storm()};
  return table;
}

Result<const ScenarioDef*> find_scenario(std::string_view name) {
  for (const ScenarioDef& def : scenarios()) {
    if (def.name == name) return &def;
  }
  std::string known;
  for (const ScenarioDef& def : scenarios()) {
    if (!known.empty()) known += ", ";
    known += def.name;
  }
  return err::not_found("unknown scenario '" + std::string(name) +
                        "' (known: " + known + ")");
}

Result<RunReport> run_scenario(const ScenarioDef& scenario, std::uint64_t seed,
                               std::string* trace_out) {
  SimHarness harness(scenario.config, seed);
  for (const std::string& name : scenario.invariants) {
    auto invariant = make_invariant(name);
    if (!invariant.ok()) return invariant.error();
    harness.add_invariant(std::move(*invariant));
  }
  auto report = harness.run();
  if (trace_out != nullptr) *trace_out = harness.trace().to_string();
  return report;
}

SweepResult sweep_scenario(const ScenarioDef& scenario, std::uint64_t first_seed,
                           std::size_t count) {
  SweepResult result;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t seed = first_seed + i;
    auto report = run_scenario(scenario, seed);
    ++result.runs;
    if (!report.ok()) {
      result.failures.push_back({seed, report.error().message()});
    }
  }
  return result;
}

}  // namespace h2::sim
