// Named simulation scenarios — the curated chaos schedules the sim test
// suite and the `simrunner` CLI both run. A scenario bundles a SimConfig
// (topology, protocol, fault plan, op mix) with the invariants that must
// hold, plus an `expect_violation` flag for the planted-bug scenario that
// proves the invariants have teeth.
#pragma once

#include <string>
#include <vector>

#include "sim/harness.hpp"

namespace h2::sim {

struct ScenarioDef {
  std::string name;
  std::string description;
  SimConfig config;                     ///< config.scenario mirrors `name`
  std::vector<std::string> invariants;  ///< names for make_invariant()
  bool expect_violation = false;        ///< planted-bug scenarios must fail
};

/// The built-in scenario table (stable order):
///   coherency-storm     — full synchrony under message chaos + partitions
///   failover            — crash/restart churn with scripted failover waves
///   churn               — decentralized protocol under heavy membership churn
///   mesh-skew           — neighborhood protocol with clock skew and delays
///   retry-storm         — resilient RPC under drop/dup/reply-loss chaos
///   failover-cascade    — resilient RPC across serial node crashes
///   planted-bug         — deliberately broken full synchrony (expects a catch)
///   retry-storm-nodedup — idempotency cache disabled (expects a catch)
///   shard-partition-heal / shard-churn / shard-read-repair — sharded repair
///   shard-ae-skip       — AE skips one shard, hints dropped (expects a catch)
///   loop-storm          — queued loops under a SimDriver
///   shard-owner-down-write — hinted handoff restores R-replication
///   shard-hint-drop     — hints silently dropped (expects a catch)
///   shard-repair-storm  — churn against a tight rebalance budget
const std::vector<ScenarioDef>& scenarios();

Result<const ScenarioDef*> find_scenario(std::string_view name);

/// Builds a harness for (scenario, seed), registers the scenario's
/// invariants, and runs it. Returns the report, or the violation error
/// (which embeds seed, step and the replay command). If `trace_out` is
/// non-null it receives the full event trace either way.
Result<RunReport> run_scenario(const ScenarioDef& scenario, std::uint64_t seed,
                               std::string* trace_out = nullptr);

/// One failed seed within a sweep.
struct SeedFailure {
  std::uint64_t seed = 0;
  std::string message;
};

struct SweepResult {
  std::size_t runs = 0;
  std::vector<SeedFailure> failures;
};

/// Runs `count` consecutive seeds starting at `first_seed`.
SweepResult sweep_scenario(const ScenarioDef& scenario, std::uint64_t first_seed,
                           std::size_t count);

}  // namespace h2::sim
