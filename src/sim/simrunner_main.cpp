// simrunner — CLI front end for the deterministic simulation harness.
//
//   simrunner --list
//   simrunner --scenario=coherency-storm --seed=42 [--trace]
//   simrunner --scenario=failover --seed=1 --seeds=100
//   simrunner --all [--seed=1] [--seeds=25]
//
// Exit codes: 0 = every scenario behaved as specified (expect_violation
// scenarios must fail), 1 = an invariant violation (or a missing expected
// one), 2 = usage error. A violation prints the failing seed, the replay
// command, and the tail of the event trace.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "sim/scenario.hpp"

namespace {

using h2::sim::ScenarioDef;

struct Options {
  bool list = false;
  bool all = false;
  bool trace = false;
  std::string scenario;
  std::uint64_t seed = 1;
  std::size_t seeds = 1;
};

bool parse_value(std::string_view arg, std::string_view key, std::string& out) {
  if (!arg.starts_with(key)) return false;
  out = std::string(arg.substr(key.size()));
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list\n"
               "       %s --scenario=NAME [--seed=N] [--seeds=COUNT] [--trace]\n"
               "       %s --all [--seed=N] [--seeds=COUNT]\n",
               argv0, argv0, argv0);
  return 2;
}

/// Runs one scenario over `seeds` consecutive seeds. Returns true when the
/// scenario behaved as specified.
bool run_one(const ScenarioDef& def, const Options& options) {
  std::size_t violations = 0;
  for (std::size_t i = 0; i < options.seeds; ++i) {
    std::uint64_t seed = options.seed + i;
    std::string trace;
    auto report = h2::sim::run_scenario(def, seed, &trace);
    if (report.ok()) {
      if (options.trace) std::fputs(trace.c_str(), stdout);
      std::printf("ok    %-16s seed=%llu steps=%zu ops=%zu faults=%zu checks=%zu\n",
                  def.name.c_str(), static_cast<unsigned long long>(seed),
                  report->steps_executed, report->ops_executed,
                  report->faults_applied, report->checks_run);
      continue;
    }
    ++violations;
    if (def.expect_violation) {
      std::printf("caught %-15s seed=%llu (expected): %s\n", def.name.c_str(),
                  static_cast<unsigned long long>(seed),
                  report.error().message().c_str());
      continue;
    }
    std::printf("FAIL  %-16s seed=%llu\n  %s\n", def.name.c_str(),
                static_cast<unsigned long long>(seed),
                report.error().message().c_str());
    if (options.trace) {
      std::fputs(trace.c_str(), stdout);
    } else {
      // Re-run is cheap and deterministic; show the last few trace events.
      std::printf("  trace tail:\n");
      std::size_t start = trace.size();
      int newlines = 0;
      while (start > 0) {
        --start;
        if (trace[start] == '\n' && ++newlines > 12) {
          ++start;
          break;
        }
      }
      std::fputs(trace.substr(start).c_str(), stdout);
    }
  }
  if (def.expect_violation) {
    if (violations == 0) {
      std::printf("FAIL  %-16s planted bug was NOT caught in %zu seed(s)\n",
                  def.name.c_str(), options.seeds);
      return false;
    }
    std::printf("      %-16s planted bug caught in %zu/%zu seed(s)\n",
                def.name.c_str(), violations, options.seeds);
    return true;
  }
  if (violations > 0) {
    std::printf("      %-16s %zu/%zu seed(s) FAILED\n", def.name.c_str(), violations,
                options.seeds);
  }
  return violations == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string value;
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--all") {
      options.all = true;
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (parse_value(arg, "--scenario=", value)) {
      options.scenario = value;
    } else if (parse_value(arg, "--seed=", value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_value(arg, "--seeds=", value)) {
      options.seeds = std::strtoull(value.c_str(), nullptr, 10);
      if (options.seeds == 0) options.seeds = 1;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }

  if (options.list) {
    for (const ScenarioDef& def : h2::sim::scenarios()) {
      std::printf("%-16s %s%s\n", def.name.c_str(), def.description.c_str(),
                  def.expect_violation ? " [expects violation]" : "");
    }
    return 0;
  }

  bool ok = true;
  if (options.all) {
    for (const ScenarioDef& def : h2::sim::scenarios()) {
      ok = run_one(def, options) && ok;
    }
  } else if (!options.scenario.empty()) {
    auto def = h2::sim::find_scenario(options.scenario);
    if (!def.ok()) {
      std::fprintf(stderr, "%s\n", def.error().message().c_str());
      return 2;
    }
    ok = run_one(**def, options);
  } else {
    return usage(argv[0]);
  }
  return ok ? 0 : 1;
}
