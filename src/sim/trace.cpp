#include "sim/trace.hpp"

namespace h2::sim {

namespace {
void append_event(std::string& out, const TraceEvent& event) {
  out += std::to_string(event.at);
  out += '\t';
  out += event.kind;
  out += '\t';
  out += event.detail;
  out += '\n';
}
}  // namespace

std::string EventTrace::to_string() const {
  std::string out;
  for (const TraceEvent& event : events_) append_event(out, event);
  return out;
}

std::string EventTrace::tail(std::size_t n) const {
  std::string out;
  std::size_t first = events_.size() > n ? events_.size() - n : 0;
  for (std::size_t i = first; i < events_.size(); ++i) append_event(out, events_[i]);
  return out;
}

}  // namespace h2::sim
