// Replayable event traces. Every observable step a SimHarness run takes —
// schedule ops, fault injections, invariant checks — is recorded here with
// its virtual timestamp. The text rendering is byte-stable: the same
// scenario and seed must produce the same trace on every run, which is
// what makes "simrunner --seed=S --scenario=X" a one-command repro.
#pragma once

#include <string>
#include <vector>

#include "util/clock.hpp"

namespace h2::sim {

struct TraceEvent {
  Nanos at = 0;        ///< virtual time of the event
  std::string kind;    ///< short verb: "set", "crash", "partition", "check"...
  std::string detail;  ///< deterministic free text ("n2 k3=v17 ok")
};

class EventTrace {
 public:
  void record(Nanos at, std::string kind, std::string detail) {
    events_.push_back(TraceEvent{at, std::move(kind), std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// One line per event: "<at-ns>\t<kind>\t<detail>\n". Deterministic
  /// given the same event sequence; compared byte-for-byte by the
  /// determinism tests.
  std::string to_string() const;

  /// The last `n` lines of to_string() — what simrunner prints on failure.
  std::string tail(std::size_t n) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace h2::sim
