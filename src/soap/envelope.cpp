#include "soap/envelope.hpp"

#include <charconv>

#include "encoding/base64.hpp"
#include "util/strings.hpp"
#include "xml/escape.hpp"
#include "xml/pull_parser.hpp"

namespace h2::soap {

namespace {

/// Appends a number with std::to_chars (shortest round-trip form for
/// doubles — same digits str::format_double produces).
void append_double(std::string& out, double v) {
  char buf[32];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(end - buf));
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(end - buf));
}

}  // namespace

// ---- writer --------------------------------------------------------------------

void EnvelopeWriter::envelope_open() {
  out_ += "<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"";
  out_ += kEnvelopeNs;
  out_ += "\" xmlns:SOAP-ENC=\"";
  out_ += kEncodingNs;
  out_ += "\" xmlns:xsd=\"";
  out_ += kXsdNs;
  out_ += "\" xmlns:xsi=\"";
  out_ += kXsiNs;
  out_ += "\">";
}

void EnvelopeWriter::headers(std::span<const HeaderEntry> entries) {
  if (entries.empty()) return;
  out_ += "<SOAP-ENV:Header>";
  int hdr_index = 0;
  for (const HeaderEntry& entry : entries) {
    char prefix[16] = {'h'};
    auto [pend, ec] = std::to_chars(prefix + 1, prefix + sizeof prefix, hdr_index++);
    std::string_view pfx(prefix, static_cast<std::size_t>(pend - prefix));
    out_.push_back('<');
    out_ += pfx;
    out_.push_back(':');
    out_ += entry.name;
    out_ += " xmlns:";
    out_ += pfx;
    out_ += "=\"";
    xml::escape_attr_to(out_, entry.ns);
    out_.push_back('"');
    if (entry.must_understand) out_ += " SOAP-ENV:mustUnderstand=\"1\"";
    if (!entry.actor.empty()) {
      out_ += " SOAP-ENV:actor=\"";
      xml::escape_attr_to(out_, entry.actor);
      out_.push_back('"');
    }
    out_.push_back('>');
    xml::escape_text_to(out_, entry.value);
    out_ += "</";
    out_ += pfx;
    out_.push_back(':');
    out_ += entry.name;
    out_.push_back('>');
  }
  out_ += "</SOAP-ENV:Header>";
}

void EnvelopeWriter::body_open() { out_ += "<SOAP-ENV:Body>"; }

void EnvelopeWriter::call_open(std::string_view operation, std::string_view service_ns,
                               bool response) {
  out_ += "<m:";
  out_ += operation;
  if (response) out_ += "Response";
  out_ += " xmlns:m=\"";
  xml::escape_attr_to(out_, service_ns);
  out_ += "\">";
}

void EnvelopeWriter::param(const Value& value, std::string_view element_name) {
  out_.push_back('<');
  out_ += element_name;
  switch (value.kind()) {
    case ValueKind::kVoid:
      out_ += " xsi:nil=\"true\"/>";
      return;
    case ValueKind::kBool:
      out_ += " xsi:type=\"xsd:boolean\">";
      out_ += value.as_bool().value() ? "true" : "false";
      break;
    case ValueKind::kInt:
      out_ += " xsi:type=\"xsd:long\">";
      append_int(out_, value.as_int().value());
      break;
    case ValueKind::kDouble:
      out_ += " xsi:type=\"xsd:double\">";
      append_double(out_, value.as_double().value());
      break;
    case ValueKind::kString:
      out_ += " xsi:type=\"xsd:string\">";
      xml::escape_text_to(out_, value.string_view());
      break;
    case ValueKind::kDoubleArray: {
      auto items = value.doubles_view();
      out_ += " xsi:type=\"SOAP-ENC:Array\" SOAP-ENC:arrayType=\"xsd:double[";
      append_int(out_, static_cast<std::int64_t>(items.size()));
      out_ += "]\"";
      if (items.empty()) {
        out_ += "/>";
        return;
      }
      out_.push_back('>');
      for (double v : items) {
        out_ += "<item>";
        append_double(out_, v);
        out_ += "</item>";
      }
      break;
    }
    case ValueKind::kBytes:
      out_ += " xsi:type=\"xsd:base64Binary\">";
      enc::base64_encode_to(out_, value.bytes_view());
      break;
  }
  out_ += "</";
  out_ += element_name;
  out_.push_back('>');
}

void EnvelopeWriter::href_param(std::string_view element_name, std::string_view cid,
                                std::string_view xsi_type) {
  out_.push_back('<');
  out_ += element_name;
  out_ += " href=\"";
  xml::escape_attr_to(out_, cid);
  out_ += "\" xsi:type=\"";
  xml::escape_attr_to(out_, xsi_type);
  out_ += "\"/>";
}

void EnvelopeWriter::call_close(std::string_view operation, bool response) {
  out_ += "</m:";
  out_ += operation;
  if (response) out_ += "Response";
  out_.push_back('>');
}

void EnvelopeWriter::body_close() { out_ += "</SOAP-ENV:Body>"; }

void EnvelopeWriter::envelope_close() { out_ += "</SOAP-ENV:Envelope>"; }

void EnvelopeWriter::fault(const Fault& f) {
  out_ += "<SOAP-ENV:Fault><faultcode>SOAP-ENV:";
  xml::escape_text_to(out_, f.code);
  out_ += "</faultcode><faultstring>";
  xml::escape_text_to(out_, f.message);
  out_ += "</faultstring>";
  if (!f.detail.empty()) {
    out_ += "<detail>";
    xml::escape_text_to(out_, f.detail);
    out_ += "</detail>";
  }
  out_ += "</SOAP-ENV:Fault>";
}

std::size_t EnvelopeWriter::estimate(const Value& value, std::size_t name_len) {
  std::size_t fixed = 2 * name_len + 40;  // tags + xsi:type attribute
  switch (value.kind()) {
    case ValueKind::kDoubleArray:
      // "<item>" + up to 24 digit chars + "</item>" per element.
      return fixed + 40 + value.doubles_view().size() * 38;
    case ValueKind::kBytes:
      return fixed + enc::base64_encoded_size(value.bytes_view().size());
    case ValueKind::kString:
      return fixed + value.string_view().size() + value.string_view().size() / 8;
    default:
      return fixed + 32;
  }
}

// ---- building ------------------------------------------------------------------

namespace {

constexpr std::size_t kEnvelopeOverhead = 256;

std::size_t estimate_request(std::string_view operation, std::string_view service_ns,
                             std::span<const Value> params,
                             std::span<const HeaderEntry> headers) {
  std::size_t est = kEnvelopeOverhead + 2 * operation.size() + service_ns.size();
  for (const HeaderEntry& h : headers) {
    est += 2 * h.name.size() + h.ns.size() + h.value.size() + h.actor.size() + 64;
  }
  for (const Value& p : params) {
    est += EnvelopeWriter::estimate(p, p.name().empty() ? 5 : p.name().size());
  }
  return est;
}

/// Writes one request parameter, defaulting unnamed params to argN.
void write_param(EnvelopeWriter& w, const Value& p, int position) {
  if (!p.name().empty()) {
    w.param(p, p.name());
    return;
  }
  char buf[16] = {'a', 'r', 'g'};
  auto [end, ec] = std::to_chars(buf + 3, buf + sizeof buf, position);
  w.param(p, std::string_view(buf, static_cast<std::size_t>(end - buf)));
}

}  // namespace

void build_request_into(std::string& out, std::string_view operation,
                        std::string_view service_ns, std::span<const Value> params,
                        std::span<const HeaderEntry> headers) {
  out.clear();
  std::size_t est = estimate_request(operation, service_ns, params, headers);
  if (out.capacity() < est) out.reserve(est);
  EnvelopeWriter w(out);
  w.envelope_open();
  w.headers(headers);
  w.body_open();
  w.call_open(operation, service_ns, /*response=*/false);
  int position = 0;
  for (const Value& p : params) write_param(w, p, position++);
  w.call_close(operation, /*response=*/false);
  w.body_close();
  w.envelope_close();
}

void build_response_into(std::string& out, std::string_view operation,
                         std::string_view service_ns, const Value& result) {
  out.clear();
  std::size_t est = kEnvelopeOverhead + 2 * operation.size() + service_ns.size() +
                    EnvelopeWriter::estimate(result, 6);
  if (out.capacity() < est) out.reserve(est);
  EnvelopeWriter w(out);
  w.envelope_open();
  w.body_open();
  w.call_open(operation, service_ns, /*response=*/true);
  w.param(result, "return");
  w.call_close(operation, /*response=*/true);
  w.body_close();
  w.envelope_close();
}

void build_fault_into(std::string& out, const Fault& fault) {
  out.clear();
  EnvelopeWriter w(out);
  w.envelope_open();
  w.body_open();
  w.fault(fault);
  w.body_close();
  w.envelope_close();
}

std::string build_request(std::string_view operation, std::string_view service_ns,
                          std::span<const Value> params) {
  return build_request(operation, service_ns, params, {});
}

std::string build_request(std::string_view operation, std::string_view service_ns,
                          std::span<const Value> params,
                          std::span<const HeaderEntry> headers) {
  std::string out;
  build_request_into(out, operation, service_ns, params, headers);
  return out;
}

std::string build_response(std::string_view operation, std::string_view service_ns,
                           const Value& result) {
  std::string out;
  build_response_into(out, operation, service_ns, result);
  return out;
}

std::string build_fault(const Fault& fault) {
  std::string out;
  build_fault_into(out, fault);
  return out;
}

// ---- DOM forms (WSDL tooling, registry, tests) ---------------------------------

std::unique_ptr<xml::Node> value_to_xml(const Value& value, std::string element_name) {
  auto el = xml::Node::element(std::move(element_name));
  switch (value.kind()) {
    case ValueKind::kVoid:
      el->set_attr("xsi:nil", "true");
      break;
    case ValueKind::kBool:
      el->set_attr("xsi:type", "xsd:boolean");
      el->add_text(value.as_bool().value() ? "true" : "false");
      break;
    case ValueKind::kInt:
      el->set_attr("xsi:type", "xsd:long");
      el->add_text(std::to_string(value.as_int().value()));
      break;
    case ValueKind::kDouble:
      el->set_attr("xsi:type", "xsd:double");
      el->add_text(str::format_double(value.as_double().value()));
      break;
    case ValueKind::kString:
      el->set_attr("xsi:type", "xsd:string");
      el->add_text(value.as_string().value());
      break;
    case ValueKind::kDoubleArray: {
      auto items = value.doubles_view();
      el->set_attr("xsi:type", "SOAP-ENC:Array");
      el->set_attr("SOAP-ENC:arrayType",
                   "xsd:double[" + std::to_string(items.size()) + "]");
      for (double v : items) {
        el->add_element_with_text("item", str::format_double(v));
      }
      break;
    }
    case ValueKind::kBytes:
      el->set_attr("xsi:type", "xsd:base64Binary");
      el->add_text(enc::base64_encode(value.bytes_view()));
      break;
  }
  return el;
}

Result<Value> xml_to_value(const xml::Node& element) {
  std::string name(element.local_name());
  std::string type = element.attr_or("xsi:type", "");
  // Normalize "prefix:local" -> local, since prefixes vary by producer.
  if (auto colon = type.find(':'); colon != std::string::npos) {
    type = type.substr(colon + 1);
  }

  if (element.attr("xsi:nil")) return Value::of_void(name);

  if (type == "Array" || element.attr("SOAP-ENC:arrayType")) {
    std::vector<double> values;
    for (const xml::Node* item : element.children_named("item")) {
      auto v = str::parse_double(str::trim(item->inner_text()));
      if (!v.ok()) return v.error().context("soap array item in <" + name + ">");
      values.push_back(*v);
    }
    return Value::of_doubles(std::move(values), name);
  }
  if (type == "base64Binary") {
    auto bytes = enc::base64_decode(str::trim(element.inner_text()));
    if (!bytes.ok()) return bytes.error().context("soap base64 in <" + name + ">");
    return Value::of_bytes(std::move(*bytes), name);
  }
  if (type == "boolean") {
    auto text = str::trim(element.inner_text());
    if (text == "true" || text == "1") return Value::of_bool(true, name);
    if (text == "false" || text == "0") return Value::of_bool(false, name);
    return err::parse("soap: bad boolean '" + std::string(text) + "'");
  }
  if (type == "long" || type == "int" || type == "integer" || type == "short") {
    auto v = str::parse_i64(str::trim(element.inner_text()));
    if (!v.ok()) return v.error().context("soap integer in <" + name + ">");
    return Value::of_int(*v, name);
  }
  if (type == "double" || type == "float" || type == "decimal") {
    auto v = str::parse_double(str::trim(element.inner_text()));
    if (!v.ok()) return v.error().context("soap double in <" + name + ">");
    return Value::of_double(*v, name);
  }
  if (type == "string" || type.empty()) {
    // Untyped simple content defaults to string (common SOAP practice).
    return Value::of_string(element.inner_text(), name);
  }
  return err::unsupported("soap: unsupported xsi:type '" + type + "'");
}

// ---- parsing -------------------------------------------------------------------

namespace {

using xml::PullParser;
using xml::Token;

/// Scratch buffers threaded through the parse so steady-state decoding
/// never allocates (they only grow when content actually holds entities
/// or spans multiple text runs).
struct ParseScratch {
  std::string text;
  std::string attr;
};

/// Reads one parameter/return element (parser positioned on its start
/// tag) into a Value, consuming through the matching end tag. Mirrors
/// xml_to_value's type dispatch exactly.
Result<Value> read_param(PullParser& p, const HrefResolver* resolver,
                         ParseScratch& scratch) {
  std::string name(p.local_name());

  // Collect attributes up front: next() invalidates them.
  bool nil = p.raw_attr("xsi:nil").has_value();
  auto type_attr = p.attr("xsi:type", scratch.attr);
  if (!type_attr.ok()) return type_attr.error();
  std::string full_type;
  std::string type;
  if (*type_attr) {
    full_type.assign(**type_attr);
    auto colon = full_type.find(':');
    type = colon == std::string::npos ? full_type : full_type.substr(colon + 1);
  }
  auto array_attr = p.raw_attr("SOAP-ENC:arrayType");

  if (resolver != nullptr) {
    auto href = p.attr("href", scratch.attr);
    if (!href.ok()) return href.error();
    if (*href) {
      std::string href_value(**href);
      auto skipped = p.skip_element();
      if (!skipped.ok()) return skipped.error();
      return (*resolver)(href_value, full_type, name);
    }
  }

  if (nil) {
    auto skipped = p.skip_element();
    if (!skipped.ok()) return skipped.error();
    return Value::of_void(std::move(name));
  }

  if (type == "Array" || array_attr.has_value()) {
    std::vector<double> values;
    if (array_attr) {
      // "xsd:double[65536]" — pre-size from the declared count (capped so
      // a hostile header can't force a huge allocation before parsing).
      auto lb = array_attr->find('[');
      auto rb = array_attr->find(']');
      if (lb != std::string_view::npos && rb != std::string_view::npos && rb > lb + 1) {
        auto n = str::parse_i64(array_attr->substr(lb + 1, rb - lb - 1));
        if (n.ok() && *n > 0) {
          values.reserve(static_cast<std::size_t>(std::min<std::int64_t>(*n, 1 << 22)));
        }
      }
    }
    int base = p.depth();
    while (true) {
      auto t = p.next();
      if (!t.ok()) return t.error();
      if (*t == Token::kEndElement && p.depth() == base - 1) break;
      if (*t != Token::kStartElement) continue;
      if (p.local_name() != "item") {
        auto skipped = p.skip_element();
        if (!skipped.ok()) return skipped.error();
        continue;
      }
      auto text = p.inner_text(scratch.text);
      if (!text.ok()) return text.error();
      auto v = str::parse_double(str::trim(*text));
      if (!v.ok()) return v.error().context("soap array item in <" + name + ">");
      values.push_back(*v);
    }
    return Value::of_doubles(std::move(values), std::move(name));
  }

  if (type == "base64Binary") {
    auto text = p.inner_text(scratch.text);
    if (!text.ok()) return text.error();
    auto bytes = enc::base64_decode(str::trim(*text));
    if (!bytes.ok()) return bytes.error().context("soap base64 in <" + name + ">");
    return Value::of_bytes(std::move(*bytes), std::move(name));
  }
  if (type == "boolean") {
    auto raw = p.inner_text(scratch.text);
    if (!raw.ok()) return raw.error();
    auto text = str::trim(*raw);
    if (text == "true" || text == "1") return Value::of_bool(true, std::move(name));
    if (text == "false" || text == "0") return Value::of_bool(false, std::move(name));
    return err::parse("soap: bad boolean '" + std::string(text) + "'");
  }
  if (type == "long" || type == "int" || type == "integer" || type == "short") {
    auto text = p.inner_text(scratch.text);
    if (!text.ok()) return text.error();
    auto v = str::parse_i64(str::trim(*text));
    if (!v.ok()) return v.error().context("soap integer in <" + name + ">");
    return Value::of_int(*v, std::move(name));
  }
  if (type == "double" || type == "float" || type == "decimal") {
    auto text = p.inner_text(scratch.text);
    if (!text.ok()) return text.error();
    auto v = str::parse_double(str::trim(*text));
    if (!v.ok()) return v.error().context("soap double in <" + name + ">");
    return Value::of_double(*v, std::move(name));
  }
  if (type == "string" || type.empty()) {
    auto text = p.inner_text(scratch.text);
    if (!text.ok()) return text.error();
    return Value::of_string(std::string(*text), std::move(name));
  }
  return err::unsupported("soap: unsupported xsi:type '" + type + "'");
}

/// Reads one <Header> child element (parser on its start tag).
Result<HeaderEntry> read_header(PullParser& p, ParseScratch& scratch) {
  HeaderEntry entry;
  entry.name.assign(p.local_name());
  if (auto ns = p.namespace_uri()) entry.ns.assign(*ns);
  // Envelope-namespace attributes, regardless of the producer's prefix.
  for (const xml::PullAttribute& attr : p.attributes()) {
    auto colon = attr.name.find(':');
    std::string_view local =
        colon == std::string_view::npos ? attr.name : attr.name.substr(colon + 1);
    if (local != "mustUnderstand" && local != "actor") continue;
    std::string_view prefix =
        colon == std::string_view::npos ? std::string_view{} : attr.name.substr(0, colon);
    auto ns = p.resolve_namespace(prefix);
    if (!ns || *ns != kEnvelopeNs) continue;
    std::string_view value = attr.raw_value;
    std::string decoded;
    if (value.find('&') != std::string_view::npos) {
      auto status = xml::decode_entities_to(value, decoded);
      if (!status.ok()) return status.error();
      value = decoded;
    }
    if (local == "mustUnderstand") {
      entry.must_understand = (value == "1" || value == "true");
    } else {
      entry.actor.assign(value);
    }
  }
  auto text = p.inner_text(scratch.text);
  if (!text.ok()) return text.error();
  entry.value.assign(*text);
  return entry;
}

/// Advances to the root start tag and checks it is a SOAP 1.1 Envelope.
Status open_envelope(PullParser& p) {
  auto first = p.next();
  if (!first.ok()) return first.error();
  if (p.local_name() != "Envelope") {
    return err::parse("soap: root element is <" + std::string(p.name()) +
                      ">, expected Envelope");
  }
  auto ns = p.namespace_uri();
  if (!ns || *ns != kEnvelopeNs) {
    return err::parse("soap: Envelope not in SOAP 1.1 namespace");
  }
  return Status::success();
}

/// Consumes epilog misc after the envelope's end tag; any real content is
/// a parse error (matches the DOM parser's trailing-content check).
Status close_document(PullParser& p) {
  auto tail = p.next();
  if (!tail.ok()) return tail.error();
  return Status::success();
}

/// Parses an entire <Header> element (parser on its start tag).
Status read_headers(PullParser& p, ParseScratch& scratch,
                    std::vector<HeaderEntry>& out) {
  int base = p.depth();
  if (p.self_closing()) {
    return p.skip_element();
  }
  while (true) {
    auto t = p.next();
    if (!t.ok()) return t.error();
    if (*t == Token::kEndElement && p.depth() == base - 1) return Status::success();
    if (*t != Token::kStartElement) continue;
    auto entry = read_header(p, scratch);
    if (!entry.ok()) return entry.error();
    out.push_back(std::move(*entry));
  }
}

}  // namespace

Result<RpcCall> parse_request(std::string_view envelope_xml,
                              const HrefResolver* resolver) {
  PullParser p(envelope_xml);
  ParseScratch scratch;
  if (auto st = open_envelope(p); !st.ok()) return st.error().context("soap request");

  RpcCall out;
  bool seen_header = false;
  bool seen_body = false;
  bool have_call = false;
  while (true) {
    auto t = p.next();
    if (!t.ok()) return t.error().context("soap request");
    if (*t == Token::kEndElement && p.depth() == 0) break;
    if (*t != Token::kStartElement) continue;

    if (p.local_name() == "Header" && !seen_header) {
      seen_header = true;
      auto st = read_headers(p, scratch, out.headers);
      if (!st.ok()) return st.error().context("soap request");
      continue;
    }
    if (p.local_name() == "Body" && !seen_body) {
      seen_body = true;
      if (p.self_closing()) {
        auto st = p.skip_element();
        if (!st.ok()) return st.error().context("soap request");
        continue;
      }
      while (true) {
        auto bt = p.next();
        if (!bt.ok()) return bt.error().context("soap request");
        if (*bt == Token::kEndElement && p.depth() == 1) break;
        if (*bt != Token::kStartElement) continue;
        if (have_call) {
          return err::parse(
              "soap: request Body must contain exactly one operation element");
        }
        have_call = true;
        out.operation.assign(p.local_name());
        if (auto ns = p.namespace_uri()) out.service_ns.assign(*ns);
        if (p.self_closing()) {
          auto st = p.skip_element();
          if (!st.ok()) return st.error().context("soap request");
          continue;
        }
        while (true) {
          auto pt = p.next();
          if (!pt.ok()) return pt.error().context("soap request");
          if (*pt == Token::kEndElement && p.depth() == 2) break;
          if (*pt != Token::kStartElement) continue;
          auto v = read_param(p, resolver, scratch);
          if (!v.ok()) return v.error().context("parameter of " + out.operation);
          out.params.push_back(std::move(*v));
        }
      }
      continue;
    }
    // Extra Body/Header elements or foreign envelope children: skip whole.
    auto st = p.skip_element();
    if (!st.ok()) return st.error().context("soap request");
  }
  if (auto st = close_document(p); !st.ok()) return st.error().context("soap request");

  if (!seen_body) return err::parse("soap: missing Body");
  if (!have_call) {
    return err::parse("soap: request Body must contain exactly one operation element");
  }
  return out;
}

Result<RpcCall> parse_request(std::string_view envelope_xml) {
  return parse_request(envelope_xml, nullptr);
}

namespace {

/// Reads the children of a <Fault> element (parser on its start tag).
Result<Fault> read_fault(PullParser& p, ParseScratch& scratch) {
  Fault fault;
  bool have_code = false, have_string = false, have_detail = false;
  int base = p.depth();
  if (p.self_closing()) {
    auto st = p.skip_element();
    if (!st.ok()) return st.error();
    return fault;
  }
  while (true) {
    auto t = p.next();
    if (!t.ok()) return t.error();
    if (*t == Token::kEndElement && p.depth() == base - 1) return fault;
    if (*t != Token::kStartElement) continue;
    std::string_view local = p.local_name();
    if (local == "faultcode" && !have_code) {
      have_code = true;
      auto text = p.inner_text(scratch.text);
      if (!text.ok()) return text.error();
      std::string_view code = *text;
      if (auto colon = code.find(':'); colon != std::string_view::npos) {
        code = code.substr(colon + 1);
      }
      fault.code.assign(code);
    } else if (local == "faultstring" && !have_string) {
      have_string = true;
      auto text = p.inner_text(scratch.text);
      if (!text.ok()) return text.error();
      fault.message.assign(*text);
    } else if (local == "detail" && !have_detail) {
      have_detail = true;
      auto text = p.inner_text(scratch.text);
      if (!text.ok()) return text.error();
      fault.detail.assign(*text);
    } else {
      auto st = p.skip_element();
      if (!st.ok()) return st.error();
    }
  }
}

}  // namespace

Result<RpcReply> parse_reply(std::string_view envelope_xml,
                             const HrefResolver* resolver) {
  PullParser p(envelope_xml);
  ParseScratch scratch;
  if (auto st = open_envelope(p); !st.ok()) return st.error().context("soap reply");

  std::optional<RpcReply> reply;
  bool seen_body = false;
  bool have_payload = false;
  while (true) {
    auto t = p.next();
    if (!t.ok()) return t.error().context("soap reply");
    if (*t == Token::kEndElement && p.depth() == 0) break;
    if (*t != Token::kStartElement) continue;

    if (p.local_name() == "Body" && !seen_body) {
      seen_body = true;
      if (p.self_closing()) {
        auto st = p.skip_element();
        if (!st.ok()) return st.error().context("soap reply");
        continue;
      }
      while (true) {
        auto bt = p.next();
        if (!bt.ok()) return bt.error().context("soap reply");
        if (*bt == Token::kEndElement && p.depth() == 1) break;
        if (*bt != Token::kStartElement) continue;
        if (have_payload) {
          return err::parse("soap: reply Body must contain exactly one element");
        }
        have_payload = true;

        if (p.local_name() == "Fault") {
          auto fault = read_fault(p, scratch);
          if (!fault.ok()) return fault.error().context("soap reply");
          reply = RpcReply{std::move(*fault)};
          continue;
        }

        // <opResponse>: first child element is the return value; a void
        // response has none.
        bool have_value = false;
        if (p.self_closing()) {
          auto st = p.skip_element();
          if (!st.ok()) return st.error().context("soap reply");
          reply = RpcReply{Value::of_void("return")};
          continue;
        }
        int base = p.depth();
        while (true) {
          auto rt = p.next();
          if (!rt.ok()) return rt.error().context("soap reply");
          if (*rt == Token::kEndElement && p.depth() == base - 1) break;
          if (*rt != Token::kStartElement) continue;
          if (have_value) {
            auto st = p.skip_element();
            if (!st.ok()) return st.error().context("soap reply");
            continue;
          }
          have_value = true;
          auto v = read_param(p, resolver, scratch);
          if (!v.ok()) return v.error().context("soap return value");
          reply = RpcReply{std::move(*v)};
        }
        if (!have_value) reply = RpcReply{Value::of_void("return")};
      }
      continue;
    }
    auto st = p.skip_element();
    if (!st.ok()) return st.error().context("soap reply");
  }
  if (auto st = close_document(p); !st.ok()) return st.error().context("soap reply");

  if (!seen_body) return err::parse("soap: missing Body");
  if (!reply) return err::parse("soap: reply Body must contain exactly one element");
  return std::move(*reply);
}

Result<RpcReply> parse_reply(std::string_view envelope_xml) {
  return parse_reply(envelope_xml, nullptr);
}

// ---- batching -----------------------------------------------------------------

void build_batch_request_into(std::string& out, std::string_view service_ns,
                              std::span<const BatchCall> calls,
                              std::span<const HeaderEntry> headers) {
  out.clear();
  std::size_t est = kEnvelopeOverhead + service_ns.size();
  for (const HeaderEntry& h : headers) {
    est += 2 * h.name.size() + h.ns.size() + h.value.size() + h.actor.size() + 64;
  }
  for (const BatchCall& call : calls) {
    est += 2 * call.operation.size() + 32;
    for (const Value& p : call.params) {
      est += EnvelopeWriter::estimate(p, p.name().empty() ? 5 : p.name().size());
    }
  }
  if (out.capacity() < est) out.reserve(est);
  EnvelopeWriter w(out);
  w.envelope_open();
  w.headers(headers);
  w.body_open();
  for (const BatchCall& call : calls) {
    w.call_open(call.operation, service_ns, /*response=*/false);
    int position = 0;
    for (const Value& p : call.params) write_param(w, p, position++);
    w.call_close(call.operation, /*response=*/false);
  }
  w.body_close();
  w.envelope_close();
}

Result<BatchRpcCall> parse_batch_request(std::string_view envelope_xml) {
  PullParser p(envelope_xml);
  ParseScratch scratch;
  if (auto st = open_envelope(p); !st.ok()) return st.error().context("soap request");

  BatchRpcCall out;
  bool seen_header = false;
  bool seen_body = false;
  while (true) {
    auto t = p.next();
    if (!t.ok()) return t.error().context("soap request");
    if (*t == Token::kEndElement && p.depth() == 0) break;
    if (*t != Token::kStartElement) continue;

    if (p.local_name() == "Header" && !seen_header) {
      seen_header = true;
      auto st = read_headers(p, scratch, out.headers);
      if (!st.ok()) return st.error().context("soap request");
      continue;
    }
    if (p.local_name() == "Body" && !seen_body) {
      seen_body = true;
      if (p.self_closing()) {
        auto st = p.skip_element();
        if (!st.ok()) return st.error().context("soap request");
        continue;
      }
      while (true) {
        auto bt = p.next();
        if (!bt.ok()) return bt.error().context("soap request");
        if (*bt == Token::kEndElement && p.depth() == 1) break;
        if (*bt != Token::kStartElement) continue;
        BatchRpcCall::Call call;
        call.operation.assign(p.local_name());
        if (auto ns = p.namespace_uri(); ns && out.service_ns.empty()) {
          out.service_ns.assign(*ns);
        }
        if (p.self_closing()) {
          auto st = p.skip_element();
          if (!st.ok()) return st.error().context("soap request");
          out.calls.push_back(std::move(call));
          continue;
        }
        while (true) {
          auto pt = p.next();
          if (!pt.ok()) return pt.error().context("soap request");
          if (*pt == Token::kEndElement && p.depth() == 2) break;
          if (*pt != Token::kStartElement) continue;
          auto v = read_param(p, /*resolver=*/nullptr, scratch);
          if (!v.ok()) return v.error().context("parameter of " + call.operation);
          call.params.push_back(std::move(*v));
        }
        out.calls.push_back(std::move(call));
      }
      continue;
    }
    auto st = p.skip_element();
    if (!st.ok()) return st.error().context("soap request");
  }
  if (auto st = close_document(p); !st.ok()) return st.error().context("soap request");

  if (!seen_body) return err::parse("soap: missing Body");
  return out;
}

Result<std::vector<RpcReply>> parse_batch_reply(std::string_view envelope_xml) {
  PullParser p(envelope_xml);
  ParseScratch scratch;
  if (auto st = open_envelope(p); !st.ok()) return st.error().context("soap reply");

  std::vector<RpcReply> out;
  bool seen_body = false;
  while (true) {
    auto t = p.next();
    if (!t.ok()) return t.error().context("soap reply");
    if (*t == Token::kEndElement && p.depth() == 0) break;
    if (*t != Token::kStartElement) continue;

    if (p.local_name() == "Body" && !seen_body) {
      seen_body = true;
      if (p.self_closing()) {
        auto st = p.skip_element();
        if (!st.ok()) return st.error().context("soap reply");
        continue;
      }
      while (true) {
        auto bt = p.next();
        if (!bt.ok()) return bt.error().context("soap reply");
        if (*bt == Token::kEndElement && p.depth() == 1) break;
        if (*bt != Token::kStartElement) continue;

        if (p.local_name() == "Fault") {
          auto fault = read_fault(p, scratch);
          if (!fault.ok()) return fault.error().context("soap reply");
          out.push_back(RpcReply{std::move(*fault)});
          continue;
        }

        bool have_value = false;
        if (p.self_closing()) {
          auto st = p.skip_element();
          if (!st.ok()) return st.error().context("soap reply");
          out.push_back(RpcReply{Value::of_void("return")});
          continue;
        }
        int base = p.depth();
        RpcReply reply{Value::of_void("return")};
        while (true) {
          auto rt = p.next();
          if (!rt.ok()) return rt.error().context("soap reply");
          if (*rt == Token::kEndElement && p.depth() == base - 1) break;
          if (*rt != Token::kStartElement) continue;
          if (have_value) {
            auto st = p.skip_element();
            if (!st.ok()) return st.error().context("soap reply");
            continue;
          }
          have_value = true;
          auto v = read_param(p, /*resolver=*/nullptr, scratch);
          if (!v.ok()) return v.error().context("soap return value");
          reply = RpcReply{std::move(*v)};
        }
        out.push_back(std::move(reply));
      }
      continue;
    }
    auto st = p.skip_element();
    if (!st.ok()) return st.error().context("soap reply");
  }
  if (auto st = close_document(p); !st.ok()) return st.error().context("soap reply");

  if (!seen_body) return err::parse("soap: missing Body");
  return out;
}

}  // namespace h2::soap
