#include "soap/envelope.hpp"

#include "encoding/base64.hpp"
#include "util/strings.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace h2::soap {

namespace {

/// Builds the envelope skeleton and returns the Body element.
xml::Node* make_skeleton(std::unique_ptr<xml::Node>& envelope) {
  envelope = xml::Node::element("SOAP-ENV:Envelope");
  envelope->set_attr("xmlns:SOAP-ENV", kEnvelopeNs);
  envelope->set_attr("xmlns:SOAP-ENC", kEncodingNs);
  envelope->set_attr("xmlns:xsd", kXsdNs);
  envelope->set_attr("xmlns:xsi", kXsiNs);
  return envelope->add_element("SOAP-ENV:Body");
}

void append_value(xml::Node& parent, const Value& value, std::string element_name) {
  parent.add_child(value_to_xml(value, std::move(element_name)));
}

/// Finds the Body element of a parsed envelope, verifying namespaces.
Result<const xml::Node*> find_body(const xml::Node& root) {
  if (root.local_name() != "Envelope") {
    return err::parse("soap: root element is <" + std::string(root.name()) +
                      ">, expected Envelope");
  }
  auto ns = root.namespace_uri();
  if (!ns || *ns != kEnvelopeNs) {
    return err::parse("soap: Envelope not in SOAP 1.1 namespace");
  }
  const xml::Node* body = root.first_child("Body");
  if (!body) return err::parse("soap: missing Body");
  return body;
}

}  // namespace

std::unique_ptr<xml::Node> value_to_xml(const Value& value, std::string element_name) {
  auto el = xml::Node::element(std::move(element_name));
  switch (value.kind()) {
    case ValueKind::kVoid:
      el->set_attr("xsi:nil", "true");
      break;
    case ValueKind::kBool:
      el->set_attr("xsi:type", "xsd:boolean");
      el->add_text(value.as_bool().value() ? "true" : "false");
      break;
    case ValueKind::kInt:
      el->set_attr("xsi:type", "xsd:long");
      el->add_text(std::to_string(value.as_int().value()));
      break;
    case ValueKind::kDouble:
      el->set_attr("xsi:type", "xsd:double");
      el->add_text(str::format_double(value.as_double().value()));
      break;
    case ValueKind::kString:
      el->set_attr("xsi:type", "xsd:string");
      el->add_text(value.as_string().value());
      break;
    case ValueKind::kDoubleArray: {
      auto items = value.doubles_view();
      el->set_attr("xsi:type", "SOAP-ENC:Array");
      el->set_attr("SOAP-ENC:arrayType",
                   "xsd:double[" + std::to_string(items.size()) + "]");
      for (double v : items) {
        el->add_element_with_text("item", str::format_double(v));
      }
      break;
    }
    case ValueKind::kBytes:
      el->set_attr("xsi:type", "xsd:base64Binary");
      el->add_text(enc::base64_encode(value.bytes_view()));
      break;
  }
  return el;
}

Result<Value> xml_to_value(const xml::Node& element) {
  std::string name(element.local_name());
  std::string type = element.attr_or("xsi:type", "");
  // Normalize "prefix:local" -> local, since prefixes vary by producer.
  if (auto colon = type.find(':'); colon != std::string::npos) {
    type = type.substr(colon + 1);
  }

  if (element.attr("xsi:nil")) return Value::of_void(name);

  if (type == "Array" || element.attr("SOAP-ENC:arrayType")) {
    std::vector<double> values;
    for (const xml::Node* item : element.children_named("item")) {
      auto v = str::parse_double(str::trim(item->inner_text()));
      if (!v.ok()) return v.error().context("soap array item in <" + name + ">");
      values.push_back(*v);
    }
    return Value::of_doubles(std::move(values), name);
  }
  if (type == "base64Binary") {
    auto bytes = enc::base64_decode(str::trim(element.inner_text()));
    if (!bytes.ok()) return bytes.error().context("soap base64 in <" + name + ">");
    return Value::of_bytes(std::move(*bytes), name);
  }
  if (type == "boolean") {
    auto text = str::trim(element.inner_text());
    if (text == "true" || text == "1") return Value::of_bool(true, name);
    if (text == "false" || text == "0") return Value::of_bool(false, name);
    return err::parse("soap: bad boolean '" + std::string(text) + "'");
  }
  if (type == "long" || type == "int" || type == "integer" || type == "short") {
    auto v = str::parse_i64(str::trim(element.inner_text()));
    if (!v.ok()) return v.error().context("soap integer in <" + name + ">");
    return Value::of_int(*v, name);
  }
  if (type == "double" || type == "float" || type == "decimal") {
    auto v = str::parse_double(str::trim(element.inner_text()));
    if (!v.ok()) return v.error().context("soap double in <" + name + ">");
    return Value::of_double(*v, name);
  }
  if (type == "string" || type.empty()) {
    // Untyped simple content defaults to string (common SOAP practice).
    return Value::of_string(element.inner_text(), name);
  }
  return err::unsupported("soap: unsupported xsi:type '" + type + "'");
}

std::string build_request(std::string_view operation, std::string_view service_ns,
                          std::span<const Value> params) {
  return build_request(operation, service_ns, params, {});
}

std::string build_request(std::string_view operation, std::string_view service_ns,
                          std::span<const Value> params,
                          std::span<const HeaderEntry> headers) {
  auto envelope = xml::Node::element("SOAP-ENV:Envelope");
  envelope->set_attr("xmlns:SOAP-ENV", kEnvelopeNs);
  envelope->set_attr("xmlns:SOAP-ENC", kEncodingNs);
  envelope->set_attr("xmlns:xsd", kXsdNs);
  envelope->set_attr("xmlns:xsi", kXsiNs);
  if (!headers.empty()) {
    // SOAP 1.1 §4.2: the Header element precedes the Body.
    xml::Node* header = envelope->add_element("SOAP-ENV:Header");
    int hdr_index = 0;
    for (const HeaderEntry& entry : headers) {
      std::string prefix = "h" + std::to_string(hdr_index++);
      xml::Node* el = header->add_element(prefix + ":" + entry.name);
      el->set_attr("xmlns:" + prefix, entry.ns);
      if (entry.must_understand) el->set_attr("SOAP-ENV:mustUnderstand", "1");
      if (!entry.actor.empty()) el->set_attr("SOAP-ENV:actor", entry.actor);
      el->add_text(entry.value);
    }
  }
  xml::Node* body = envelope->add_element("SOAP-ENV:Body");
  xml::Node* call = body->add_element("m:" + std::string(operation));
  call->set_attr("xmlns:m", std::string(service_ns));
  int position = 0;
  for (const Value& p : params) {
    std::string pname = p.name().empty() ? "arg" + std::to_string(position) : p.name();
    append_value(*call, p, pname);
    ++position;
  }
  return xml::write(*envelope);
}

std::string build_response(std::string_view operation, std::string_view service_ns,
                           const Value& result) {
  std::unique_ptr<xml::Node> envelope;
  xml::Node* body = make_skeleton(envelope);
  xml::Node* response = body->add_element("m:" + std::string(operation) + "Response");
  response->set_attr("xmlns:m", std::string(service_ns));
  append_value(*response, result, "return");
  return xml::write(*envelope);
}

std::string build_fault(const Fault& fault) {
  std::unique_ptr<xml::Node> envelope;
  xml::Node* body = make_skeleton(envelope);
  xml::Node* f = body->add_element("SOAP-ENV:Fault");
  f->add_element_with_text("faultcode", "SOAP-ENV:" + fault.code);
  f->add_element_with_text("faultstring", fault.message);
  if (!fault.detail.empty()) {
    f->add_element_with_text("detail", fault.detail);
  }
  return xml::write(*envelope);
}

namespace {

/// Looks up an envelope-namespace attribute ("mustUnderstand"/"actor") on
/// a header entry, regardless of the producer's prefix choice.
std::optional<std::string> env_attr(const xml::Node& el, std::string_view local) {
  for (const auto& attr : el.attributes()) {
    auto colon = attr.name.find(':');
    std::string_view attr_local =
        colon == std::string::npos ? std::string_view(attr.name)
                                   : std::string_view(attr.name).substr(colon + 1);
    if (attr_local != local) continue;
    std::string_view prefix =
        colon == std::string::npos ? std::string_view{}
                                   : std::string_view(attr.name).substr(0, colon);
    auto ns = el.resolve_namespace(prefix);
    if (ns && *ns == kEnvelopeNs) return attr.value;
  }
  return std::nullopt;
}

std::vector<HeaderEntry> parse_headers(const xml::Node& root) {
  std::vector<HeaderEntry> out;
  const xml::Node* header = root.first_child("Header");
  if (header == nullptr) return out;
  for (const xml::Node* el : header->element_children()) {
    HeaderEntry entry;
    entry.name = std::string(el->local_name());
    if (auto ns = el->namespace_uri()) entry.ns = std::string(*ns);
    entry.value = el->inner_text();
    if (auto mu = env_attr(*el, "mustUnderstand")) {
      entry.must_understand = (*mu == "1" || *mu == "true");
    }
    if (auto actor = env_attr(*el, "actor")) entry.actor = *actor;
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace

Result<RpcCall> parse_request(std::string_view envelope_xml) {
  auto root = xml::parse_element(envelope_xml);
  if (!root.ok()) return root.error().context("soap request");
  auto body = find_body(**root);
  if (!body.ok()) return body.error();

  auto children = (*body)->element_children();
  if (children.size() != 1) {
    return err::parse("soap: request Body must contain exactly one operation element");
  }
  const xml::Node* call = children.front();
  RpcCall out;
  out.headers = parse_headers(**root);
  out.operation = std::string(call->local_name());
  if (auto ns = call->namespace_uri()) out.service_ns = std::string(*ns);
  for (const xml::Node* param : call->element_children()) {
    auto v = xml_to_value(*param);
    if (!v.ok()) return v.error().context("parameter of " + out.operation);
    out.params.push_back(std::move(*v));
  }
  return out;
}

Result<RpcReply> parse_reply(std::string_view envelope_xml) {
  auto root = xml::parse_element(envelope_xml);
  if (!root.ok()) return root.error().context("soap reply");
  auto body = find_body(**root);
  if (!body.ok()) return body.error();

  auto children = (*body)->element_children();
  if (children.size() != 1) {
    return err::parse("soap: reply Body must contain exactly one element");
  }
  const xml::Node* payload = children.front();

  if (payload->local_name() == "Fault") {
    Fault fault;
    if (const xml::Node* c = payload->first_child("faultcode")) {
      std::string code = c->inner_text();
      if (auto colon = code.find(':'); colon != std::string::npos) {
        code = code.substr(colon + 1);
      }
      fault.code = code;
    }
    if (const xml::Node* s = payload->first_child("faultstring")) {
      fault.message = s->inner_text();
    }
    if (const xml::Node* d = payload->first_child("detail")) {
      fault.detail = d->inner_text();
    }
    return RpcReply{std::move(fault)};
  }

  auto returns = payload->element_children();
  if (returns.empty()) {
    // Void response: <opResponse/> with no return element.
    return RpcReply{Value::of_void("return")};
  }
  auto v = xml_to_value(*returns.front());
  if (!v.ok()) return v.error().context("soap return value");
  return RpcReply{std::move(*v)};
}

}  // namespace h2::soap
