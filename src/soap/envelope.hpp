// SOAP 1.1 envelopes: RPC-style requests/responses and faults, built from
// and parsed into the cross-binding h2::Value model. The XML produced here
// is genuine SOAP 1.1 (Envelope/Body, SOAP-ENC arrays, xsi types); the
// parser accepts anything this builder emits plus reasonable variations
// (prefix choice, attribute order, whitespace).
//
// Fast path: building streams through EnvelopeWriter (single pass, one
// size-estimated buffer, no DOM); parsing streams through xml::PullParser
// (no DOM allocation, numeric payloads go straight from input slices to
// doubles via from_chars). value_to_xml/xml_to_value keep the DOM forms
// for WSDL tooling and tests.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "encoding/value.hpp"
#include "util/error.hpp"
#include "xml/dom.hpp"

namespace h2::soap {

// Standard namespace URIs.
inline constexpr const char* kEnvelopeNs = "http://schemas.xmlsoap.org/soap/envelope/";
inline constexpr const char* kEncodingNs = "http://schemas.xmlsoap.org/soap/encoding/";
inline constexpr const char* kXsdNs = "http://www.w3.org/2001/XMLSchema";
inline constexpr const char* kXsiNs = "http://www.w3.org/2001/XMLSchema-instance";

/// SOAP 1.1 fault. `code` is the qualified fault code local part
/// ("Client", "Server", "VersionMismatch", "MustUnderstand").
struct Fault {
  std::string code;
  std::string message;  // <faultstring>
  std::string detail;   // flattened <detail> text, optional

  std::string describe() const { return code + ": " + message; }
};

/// One SOAP Header entry. `must_understand` maps to soap:mustUnderstand;
/// a receiver that does not recognize such a header MUST fault with
/// MustUnderstand (SOAP 1.1 §4.2.3) — enforced by SoapHttpServer.
struct HeaderEntry {
  std::string name;             ///< element local name ("TransactionId")
  std::string ns;               ///< header namespace URI
  std::string value;            ///< text content
  bool must_understand = false;
  std::string actor;            ///< optional SOAP-ENV:actor URI

  bool operator==(const HeaderEntry&) const = default;
};

/// A decoded RPC request: the operation element's local name, its
/// namespace URI, header entries, and the child parameters in order.
struct RpcCall {
  std::string operation;
  std::string service_ns;
  std::vector<HeaderEntry> headers;
  std::vector<Value> params;
};

/// A decoded RPC reply: either the (single) return value or a fault.
struct RpcReply {
  std::variant<Value, Fault> payload;

  bool is_fault() const { return std::holds_alternative<Fault>(payload); }
  const Fault& fault() const { return std::get<Fault>(payload); }
  const Value& value() const { return std::get<Value>(payload); }
};

// ---- building -----------------------------------------------------------------

/// Serializes an RPC request envelope. `operation` becomes the body child
/// element in namespace `service_ns`; params become its children.
std::string build_request(std::string_view operation, std::string_view service_ns,
                          std::span<const Value> params);

/// As above, with SOAP Header entries.
std::string build_request(std::string_view operation, std::string_view service_ns,
                          std::span<const Value> params,
                          std::span<const HeaderEntry> headers);

/// Serializes an RPC response envelope (`<opResponse><return .../></op…>`).
std::string build_response(std::string_view operation, std::string_view service_ns,
                           const Value& result);

/// Serializes a fault envelope.
std::string build_fault(const Fault& fault);

/// Buffer-reusing forms: clear `out` and build into it, preserving its
/// capacity. Steady-state callers (channels, the SOAP HTTP server) keep
/// one scratch string alive so repeated calls stop allocating.
void build_request_into(std::string& out, std::string_view operation,
                        std::string_view service_ns, std::span<const Value> params,
                        std::span<const HeaderEntry> headers = {});
void build_response_into(std::string& out, std::string_view operation,
                         std::string_view service_ns, const Value& result);
void build_fault_into(std::string& out, const Fault& fault);

/// Single-pass envelope writer. Appends SOAP 1.1 fragments to a
/// caller-owned string; text/attribute content is escaped with a bulk-run
/// scanner and numbers are formatted with std::to_chars. Produces the same
/// bytes the DOM builder+writer used to. The mime binding drives it
/// directly so attachments can replace bulk params with href stubs.
class EnvelopeWriter {
 public:
  explicit EnvelopeWriter(std::string& out) : out_(out) {}

  void envelope_open();
  void headers(std::span<const HeaderEntry> entries);  ///< no-op when empty
  void body_open();
  /// `<m:{op}{Response?} xmlns:m="ns">`
  void call_open(std::string_view operation, std::string_view service_ns,
                 bool response);
  /// One parameter/return element, chosen by the value's kind.
  void param(const Value& value, std::string_view element_name);
  /// SOAP-with-Attachments stub: `<name href="cid:..." xsi:type="..."/>`.
  void href_param(std::string_view element_name, std::string_view cid,
                  std::string_view xsi_type);
  void call_close(std::string_view operation, bool response);
  void body_close();
  void envelope_close();
  /// Complete `<SOAP-ENV:Fault>` element (inside an open body).
  void fault(const Fault& fault);

  /// Bytes a param() call for `value` will need, for up-front reserve().
  static std::size_t estimate(const Value& value, std::size_t name_len);

 private:
  std::string& out_;
};

/// Converts one Value into its SOAP XML element (exposed for WSDL tooling
/// and tests). `element_name` is used as the tag.
std::unique_ptr<xml::Node> value_to_xml(const Value& value, std::string element_name);

// ---- parsing -------------------------------------------------------------------

/// Parses a request envelope into an RpcCall.
Result<RpcCall> parse_request(std::string_view envelope_xml);

/// Parses a response envelope into an RpcReply (result or fault).
Result<RpcReply> parse_reply(std::string_view envelope_xml);

/// Resolves a SOAP-with-Attachments parameter that carries an href
/// attribute instead of inline content. Receives the href value as
/// written ("cid:part1"), the element's xsi:type as written (empty when
/// absent), and the element's local name. Used by soap::mime.
using HrefResolver = std::function<Result<Value>(
    std::string_view href, std::string_view xsi_type, std::string_view name)>;

/// As parse_request/parse_reply, delegating href-carrying parameters to
/// `resolver` (nullptr behaves like the plain overloads: href is ignored
/// and the element parses by xsi:type as usual).
Result<RpcCall> parse_request(std::string_view envelope_xml,
                              const HrefResolver* resolver);
Result<RpcReply> parse_reply(std::string_view envelope_xml,
                             const HrefResolver* resolver);

/// Converts a SOAP parameter element back into a Value (type chosen from
/// xsi:type, falling back to shape inference for untyped elements).
Result<Value> xml_to_value(const xml::Node& element);

// ---- batching -----------------------------------------------------------------
// A batch envelope is ordinary SOAP 1.1 with REPEATED operation elements
// in one Body — one HTTP round trip carries N calls. The transport layer
// marks batches with headers (net::kBatchCountHeaderName et al.); this
// layer only builds/parses the repeated-element shape.

/// One sub-call of a batch request (views into caller-owned storage).
struct BatchCall {
  std::string_view operation;
  std::span<const Value> params;
};

/// A decoded multi-call request: shared headers plus the Body's operation
/// elements in order. `service_ns` is the first operation's namespace
/// (sub-calls of one service share it). A singleton request parses as a
/// one-element batch.
struct BatchRpcCall {
  std::string service_ns;
  std::vector<HeaderEntry> headers;
  struct Call {
    std::string operation;
    std::vector<Value> params;
  };
  std::vector<Call> calls;
};

/// Serializes a batch request: each call becomes one operation element of
/// a single Body; `headers` are shared by the whole batch. Clears `out`
/// and reuses its capacity, like build_request_into.
void build_batch_request_into(std::string& out, std::string_view service_ns,
                              std::span<const BatchCall> calls,
                              std::span<const HeaderEntry> headers = {});

/// Parses a request Body carrying ANY number of operation elements (the
/// strict parse_request is the exactly-one special case).
Result<BatchRpcCall> parse_batch_request(std::string_view envelope_xml);

/// Parses a reply Body carrying one element per sub-call (opResponse or
/// Fault), in order.
Result<std::vector<RpcReply>> parse_batch_reply(std::string_view envelope_xml);

}  // namespace h2::soap
