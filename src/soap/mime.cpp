#include "soap/mime.hpp"

#include "util/strings.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace h2::soap {

namespace {

constexpr const char* kBoundary = "h2-mime-boundary-7f3a91";

/// True for kinds that travel as binary attachments.
bool is_bulk(ValueKind kind) {
  return kind == ValueKind::kDoubleArray || kind == ValueKind::kBytes;
}

/// Serializes a bulk value's raw attachment bytes.
std::vector<std::uint8_t> bulk_bytes(const Value& value) {
  if (value.kind() == ValueKind::kBytes) {
    auto view = value.bytes_view();
    return {view.begin(), view.end()};
  }
  ByteBuffer buffer;
  for (double v : value.doubles_view()) buffer.write_f64_le(v);
  return {buffer.bytes().begin(), buffer.bytes().end()};
}

struct Attachment {
  std::string cid;
  std::vector<std::uint8_t> bytes;
};

/// Converts a value into its envelope element, exporting bulk payloads
/// into `attachments`.
std::unique_ptr<xml::Node> value_to_part(const Value& value, std::string element_name,
                                         std::vector<Attachment>& attachments) {
  if (!is_bulk(value.kind())) {
    return value_to_xml(value, std::move(element_name));
  }
  auto el = xml::Node::element(std::move(element_name));
  std::string cid = "part" + std::to_string(attachments.size() + 1);
  el->set_attr("href", "cid:" + cid);
  el->set_attr("xsi:type", value.kind() == ValueKind::kDoubleArray
                               ? "xsd:double[]"
                               : "xsd:base64Binary");
  attachments.push_back({std::move(cid), bulk_bytes(value)});
  return el;
}

/// Assembles the multipart body from the envelope and attachments.
MultipartMessage assemble(const std::string& envelope,
                          const std::vector<Attachment>& attachments) {
  MultipartMessage out;
  out.content_type = std::string("multipart/related; type=\"text/xml\"; boundary=\"") +
                     kBoundary + "\"";
  std::string body;
  body.reserve(envelope.size() + 256);
  body += "--";
  body += kBoundary;
  body += "\r\nContent-Type: text/xml; charset=utf-8\r\nContent-ID: <root>\r\n\r\n";
  body += envelope;
  for (const Attachment& attachment : attachments) {
    body += "\r\n--";
    body += kBoundary;
    body += "\r\nContent-Type: application/octet-stream\r\nContent-ID: <" +
            attachment.cid + ">\r\n\r\n";
    body.append(reinterpret_cast<const char*>(attachment.bytes.data()),
                attachment.bytes.size());
  }
  body += "\r\n--";
  body += kBoundary;
  body += "--\r\n";
  out.body = ByteBuffer(body);
  return out;
}

/// Extracts the boundary parameter from a Content-Type value.
Result<std::string> boundary_of(std::string_view content_type) {
  auto pos = content_type.find("boundary=");
  if (pos == std::string_view::npos) {
    return err::parse("mime: Content-Type has no boundary parameter");
  }
  std::string_view rest = content_type.substr(pos + 9);
  if (!rest.empty() && rest.front() == '"') {
    auto close = rest.find('"', 1);
    if (close == std::string_view::npos) return err::parse("mime: unterminated boundary");
    return std::string(rest.substr(1, close - 1));
  }
  auto end = rest.find(';');
  return std::string(str::trim(end == std::string_view::npos ? rest : rest.substr(0, end)));
}

struct Part {
  std::string content_id;  // without <>
  std::string content_type;
  std::string_view body;
};

/// Splits a multipart/related body into parts.
Result<std::vector<Part>> split_parts(std::string_view boundary,
                                      std::span<const std::uint8_t> raw) {
  std::string_view text(reinterpret_cast<const char*>(raw.data()), raw.size());
  std::string open = "--" + std::string(boundary);
  std::vector<Part> parts;

  std::size_t pos = text.find(open);
  if (pos == std::string_view::npos) return err::parse("mime: no opening boundary");
  while (true) {
    pos += open.size();
    if (text.substr(pos, 2) == "--") return parts;  // closing boundary
    if (text.substr(pos, 2) != "\r\n") return err::parse("mime: malformed boundary line");
    pos += 2;
    auto header_end = text.find("\r\n\r\n", pos);
    if (header_end == std::string_view::npos) {
      return err::parse("mime: part without header terminator");
    }
    Part part;
    for (const auto& line : str::split(std::string(text.substr(pos, header_end - pos)), '\n')) {
      auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = str::to_lower(str::trim(std::string_view(line).substr(0, colon)));
      std::string value(str::trim(std::string_view(line).substr(colon + 1)));
      if (name == "content-id") {
        if (value.size() >= 2 && value.front() == '<' && value.back() == '>') {
          value = value.substr(1, value.size() - 2);
        }
        part.content_id = value;
      } else if (name == "content-type") {
        part.content_type = value;
      }
    }
    std::size_t body_start = header_end + 4;
    auto next = text.find("\r\n" + open, body_start);
    if (next == std::string_view::npos) return err::parse("mime: missing next boundary");
    part.body = text.substr(body_start, next - body_start);
    parts.push_back(std::move(part));
    pos = next + 2;
  }
}

const Part* find_part(const std::vector<Part>& parts, std::string_view cid) {
  for (const Part& part : parts) {
    if (part.content_id == cid) return &part;
  }
  return nullptr;
}

/// Rebuilds a value from an envelope element, resolving href attachments.
Result<Value> part_to_value(const xml::Node& element, const std::vector<Part>& parts) {
  auto href = element.attr("href");
  if (!href) return xml_to_value(element);
  if (!str::starts_with(*href, "cid:")) {
    return err::parse("mime: unsupported href '" + std::string(*href) + "'");
  }
  const Part* part = find_part(parts, href->substr(4));
  if (part == nullptr) {
    return err::parse("mime: dangling attachment reference " + std::string(*href));
  }
  std::string name(element.local_name());
  std::string type = element.attr_or("xsi:type", "xsd:base64Binary");
  if (type == "xsd:double[]") {
    if (part->body.size() % 8 != 0) {
      return err::parse("mime: double[] attachment not a multiple of 8 bytes");
    }
    ByteBuffer buffer(part->body);
    std::vector<double> values;
    values.reserve(part->body.size() / 8);
    while (buffer.remaining() > 0) {
      auto v = buffer.read_f64_le();
      if (!v.ok()) return v.error();
      values.push_back(*v);
    }
    return Value::of_doubles(std::move(values), name);
  }
  return Value::of_bytes(std::vector<std::uint8_t>(part->body.begin(), part->body.end()),
                         name);
}

/// Finds the root (envelope) part and the attachment list.
Result<std::pair<std::string_view, std::vector<Part>>> open_message(
    std::string_view content_type, std::span<const std::uint8_t> body) {
  auto boundary = boundary_of(content_type);
  if (!boundary.ok()) return boundary.error();
  auto parts = split_parts(*boundary, body);
  if (!parts.ok()) return parts.error();
  if (parts->empty()) return err::parse("mime: no parts");
  // SOAP-with-Attachments: the root part comes first (or is named <root>).
  const Part* root = find_part(*parts, "root");
  if (root == nullptr) root = &parts->front();
  return std::make_pair(root->body, std::move(*parts));
}

}  // namespace

MultipartMessage build_mime_request(std::string_view operation,
                                    std::string_view service_ns,
                                    std::span<const Value> params) {
  std::vector<Attachment> attachments;
  auto envelope = xml::Node::element("SOAP-ENV:Envelope");
  envelope->set_attr("xmlns:SOAP-ENV", kEnvelopeNs);
  envelope->set_attr("xmlns:SOAP-ENC", kEncodingNs);
  envelope->set_attr("xmlns:xsd", kXsdNs);
  envelope->set_attr("xmlns:xsi", kXsiNs);
  xml::Node* body = envelope->add_element("SOAP-ENV:Body");
  xml::Node* call = body->add_element("m:" + std::string(operation));
  call->set_attr("xmlns:m", std::string(service_ns));
  int position = 0;
  for (const Value& p : params) {
    std::string name = p.name().empty() ? "arg" + std::to_string(position) : p.name();
    call->add_child(value_to_part(p, std::move(name), attachments));
    ++position;
  }
  return assemble(xml::write(*envelope), attachments);
}

MultipartMessage build_mime_response(std::string_view operation,
                                     std::string_view service_ns, const Value& result) {
  std::vector<Attachment> attachments;
  auto envelope = xml::Node::element("SOAP-ENV:Envelope");
  envelope->set_attr("xmlns:SOAP-ENV", kEnvelopeNs);
  envelope->set_attr("xmlns:SOAP-ENC", kEncodingNs);
  envelope->set_attr("xmlns:xsd", kXsdNs);
  envelope->set_attr("xmlns:xsi", kXsiNs);
  xml::Node* body = envelope->add_element("SOAP-ENV:Body");
  xml::Node* response = body->add_element("m:" + std::string(operation) + "Response");
  response->set_attr("xmlns:m", std::string(service_ns));
  response->add_child(value_to_part(result, "return", attachments));
  return assemble(xml::write(*envelope), attachments);
}

MultipartMessage build_mime_fault(const Fault& fault) {
  return assemble(build_fault(fault), {});
}

Result<RpcCall> parse_mime_request(std::string_view content_type,
                                   std::span<const std::uint8_t> body) {
  auto message = open_message(content_type, body);
  if (!message.ok()) return message.error();
  const auto& [envelope_text, parts] = *message;

  auto root = xml::parse_element(envelope_text);
  if (!root.ok()) return root.error().context("mime envelope");
  const xml::Node* body_el = (*root)->first_child("Body");
  if (body_el == nullptr) return err::parse("mime: envelope has no Body");
  auto children = body_el->element_children();
  if (children.size() != 1) return err::parse("mime: Body must hold one operation");
  const xml::Node* call = children.front();

  RpcCall out;
  out.operation = std::string(call->local_name());
  if (auto ns = call->namespace_uri()) out.service_ns = std::string(*ns);
  for (const xml::Node* param : call->element_children()) {
    auto value = part_to_value(*param, parts);
    if (!value.ok()) return value.error().context("mime param");
    out.params.push_back(std::move(*value));
  }
  return out;
}

Result<RpcReply> parse_mime_reply(std::string_view content_type,
                                  std::span<const std::uint8_t> body) {
  auto message = open_message(content_type, body);
  if (!message.ok()) return message.error();
  const auto& [envelope_text, parts] = *message;

  auto root = xml::parse_element(envelope_text);
  if (!root.ok()) return root.error().context("mime envelope");
  const xml::Node* body_el = (*root)->first_child("Body");
  if (body_el == nullptr) return err::parse("mime: envelope has no Body");
  auto children = body_el->element_children();
  if (children.size() != 1) return err::parse("mime: Body must hold one element");
  const xml::Node* payload = children.front();

  if (payload->local_name() == "Fault") {
    // Delegate fault decoding to the plain-envelope parser.
    return parse_reply(envelope_text);
  }
  auto returns = payload->element_children();
  if (returns.empty()) return RpcReply{Value::of_void("return")};
  auto value = part_to_value(*returns.front(), parts);
  if (!value.ok()) return value.error().context("mime return");
  return RpcReply{std::move(*value)};
}

}  // namespace h2::soap
