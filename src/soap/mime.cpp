#include "soap/mime.hpp"

#include <charconv>

#include "util/strings.hpp"

namespace h2::soap {

namespace {

constexpr const char* kBoundary = "h2-mime-boundary-7f3a91";

/// True for kinds that travel as binary attachments.
bool is_bulk(ValueKind kind) {
  return kind == ValueKind::kDoubleArray || kind == ValueKind::kBytes;
}

/// Serializes a bulk value's raw attachment bytes.
std::vector<std::uint8_t> bulk_bytes(const Value& value) {
  if (value.kind() == ValueKind::kBytes) {
    auto view = value.bytes_view();
    return {view.begin(), view.end()};
  }
  ByteBuffer buffer;
  for (double v : value.doubles_view()) buffer.write_f64_le(v);
  return {buffer.bytes().begin(), buffer.bytes().end()};
}

struct Attachment {
  std::string cid;
  std::vector<std::uint8_t> bytes;
};

/// Writes one parameter into the envelope: bulk values become href stubs
/// with the payload exported into `attachments`, scalars stay inline.
void write_part(EnvelopeWriter& w, const Value& value, std::string_view element_name,
                std::vector<Attachment>& attachments) {
  if (!is_bulk(value.kind())) {
    w.param(value, element_name);
    return;
  }
  std::string cid = "part" + std::to_string(attachments.size() + 1);
  w.href_param(element_name, "cid:" + cid,
               value.kind() == ValueKind::kDoubleArray ? "xsd:double[]"
                                                       : "xsd:base64Binary");
  attachments.push_back({std::move(cid), bulk_bytes(value)});
}

/// Assembles the multipart body from the envelope and attachments.
MultipartMessage assemble(const std::string& envelope,
                          const std::vector<Attachment>& attachments) {
  MultipartMessage out;
  out.content_type = std::string("multipart/related; type=\"text/xml\"; boundary=\"") +
                     kBoundary + "\"";
  std::string body;
  std::size_t attachment_bytes = 0;
  for (const Attachment& attachment : attachments) {
    attachment_bytes += attachment.bytes.size() + 128;
  }
  body.reserve(envelope.size() + attachment_bytes + 256);
  body += "--";
  body += kBoundary;
  body += "\r\nContent-Type: text/xml; charset=utf-8\r\nContent-ID: <root>\r\n\r\n";
  body += envelope;
  for (const Attachment& attachment : attachments) {
    body += "\r\n--";
    body += kBoundary;
    body += "\r\nContent-Type: application/octet-stream\r\nContent-ID: <" +
            attachment.cid + ">\r\n\r\n";
    body.append(reinterpret_cast<const char*>(attachment.bytes.data()),
                attachment.bytes.size());
  }
  body += "\r\n--";
  body += kBoundary;
  body += "--\r\n";
  out.body = ByteBuffer(body);
  return out;
}

/// Extracts the boundary parameter from a Content-Type value.
Result<std::string> boundary_of(std::string_view content_type) {
  auto pos = content_type.find("boundary=");
  if (pos == std::string_view::npos) {
    return err::parse("mime: Content-Type has no boundary parameter");
  }
  std::string_view rest = content_type.substr(pos + 9);
  if (!rest.empty() && rest.front() == '"') {
    auto close = rest.find('"', 1);
    if (close == std::string_view::npos) return err::parse("mime: unterminated boundary");
    return std::string(rest.substr(1, close - 1));
  }
  auto end = rest.find(';');
  return std::string(str::trim(end == std::string_view::npos ? rest : rest.substr(0, end)));
}

struct Part {
  std::string content_id;  // without <>
  std::string content_type;
  std::string_view body;
};

/// Splits a multipart/related body into parts.
Result<std::vector<Part>> split_parts(std::string_view boundary,
                                      std::span<const std::uint8_t> raw) {
  std::string_view text(reinterpret_cast<const char*>(raw.data()), raw.size());
  std::string open = "--" + std::string(boundary);
  std::vector<Part> parts;

  std::size_t pos = text.find(open);
  if (pos == std::string_view::npos) return err::parse("mime: no opening boundary");
  while (true) {
    pos += open.size();
    if (text.substr(pos, 2) == "--") return parts;  // closing boundary
    if (text.substr(pos, 2) != "\r\n") return err::parse("mime: malformed boundary line");
    pos += 2;
    auto header_end = text.find("\r\n\r\n", pos);
    if (header_end == std::string_view::npos) {
      return err::parse("mime: part without header terminator");
    }
    Part part;
    for (const auto& line : str::split(std::string(text.substr(pos, header_end - pos)), '\n')) {
      auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = str::to_lower(str::trim(std::string_view(line).substr(0, colon)));
      std::string value(str::trim(std::string_view(line).substr(colon + 1)));
      if (name == "content-id") {
        if (value.size() >= 2 && value.front() == '<' && value.back() == '>') {
          value = value.substr(1, value.size() - 2);
        }
        part.content_id = value;
      } else if (name == "content-type") {
        part.content_type = value;
      }
    }
    std::size_t body_start = header_end + 4;
    auto next = text.find("\r\n" + open, body_start);
    if (next == std::string_view::npos) return err::parse("mime: missing next boundary");
    part.body = text.substr(body_start, next - body_start);
    parts.push_back(std::move(part));
    pos = next + 2;
  }
}

const Part* find_part(const std::vector<Part>& parts, std::string_view cid) {
  for (const Part& part : parts) {
    if (part.content_id == cid) return &part;
  }
  return nullptr;
}

/// Rebuilds a bulk value from its attachment part. `xsi_type` is the
/// href element's type as written (empty defaults to base64Binary).
Result<Value> attachment_to_value(const std::vector<Part>& parts, std::string_view href,
                                  std::string_view xsi_type, std::string_view name) {
  if (!str::starts_with(href, "cid:")) {
    return err::parse("mime: unsupported href '" + std::string(href) + "'");
  }
  const Part* part = find_part(parts, href.substr(4));
  if (part == nullptr) {
    return err::parse("mime: dangling attachment reference " + std::string(href));
  }
  if (xsi_type == "xsd:double[]") {
    if (part->body.size() % 8 != 0) {
      return err::parse("mime: double[] attachment not a multiple of 8 bytes");
    }
    ByteBuffer buffer(part->body);
    std::vector<double> values;
    values.reserve(part->body.size() / 8);
    while (buffer.remaining() > 0) {
      auto v = buffer.read_f64_le();
      if (!v.ok()) return v.error();
      values.push_back(*v);
    }
    return Value::of_doubles(std::move(values), std::string(name));
  }
  return Value::of_bytes(std::vector<std::uint8_t>(part->body.begin(), part->body.end()),
                         std::string(name));
}

/// HrefResolver over a parsed part list, for the shared envelope parser.
HrefResolver make_resolver(const std::vector<Part>& parts) {
  return [&parts](std::string_view href, std::string_view xsi_type,
                  std::string_view name) {
    return attachment_to_value(parts, href, xsi_type, name);
  };
}

/// Finds the root (envelope) part and the attachment list.
Result<std::pair<std::string_view, std::vector<Part>>> open_message(
    std::string_view content_type, std::span<const std::uint8_t> body) {
  auto boundary = boundary_of(content_type);
  if (!boundary.ok()) return boundary.error();
  auto parts = split_parts(*boundary, body);
  if (!parts.ok()) return parts.error();
  if (parts->empty()) return err::parse("mime: no parts");
  // SOAP-with-Attachments: the root part comes first (or is named <root>).
  const Part* root = find_part(*parts, "root");
  if (root == nullptr) root = &parts->front();
  return std::make_pair(root->body, std::move(*parts));
}

}  // namespace

MultipartMessage build_mime_request(std::string_view operation,
                                    std::string_view service_ns,
                                    std::span<const Value> params) {
  std::vector<Attachment> attachments;
  std::string envelope;
  EnvelopeWriter w(envelope);
  w.envelope_open();
  w.body_open();
  w.call_open(operation, service_ns, /*response=*/false);
  int position = 0;
  for (const Value& p : params) {
    if (!p.name().empty()) {
      write_part(w, p, p.name(), attachments);
    } else {
      char buf[16] = {'a', 'r', 'g'};
      auto [end, ec] = std::to_chars(buf + 3, buf + sizeof buf, position);
      write_part(w, p, std::string_view(buf, static_cast<std::size_t>(end - buf)),
                 attachments);
    }
    ++position;
  }
  w.call_close(operation, /*response=*/false);
  w.body_close();
  w.envelope_close();
  return assemble(envelope, attachments);
}

MultipartMessage build_mime_response(std::string_view operation,
                                     std::string_view service_ns, const Value& result) {
  std::vector<Attachment> attachments;
  std::string envelope;
  EnvelopeWriter w(envelope);
  w.envelope_open();
  w.body_open();
  w.call_open(operation, service_ns, /*response=*/true);
  write_part(w, result, "return", attachments);
  w.call_close(operation, /*response=*/true);
  w.body_close();
  w.envelope_close();
  return assemble(envelope, attachments);
}

MultipartMessage build_mime_fault(const Fault& fault) {
  return assemble(build_fault(fault), {});
}

Result<RpcCall> parse_mime_request(std::string_view content_type,
                                   std::span<const std::uint8_t> body) {
  auto message = open_message(content_type, body);
  if (!message.ok()) return message.error();
  const auto& [envelope_text, parts] = *message;
  HrefResolver resolver = make_resolver(parts);
  return parse_request(envelope_text, &resolver);
}

Result<RpcReply> parse_mime_reply(std::string_view content_type,
                                  std::span<const std::uint8_t> body) {
  auto message = open_message(content_type, body);
  if (!message.ok()) return message.error();
  const auto& [envelope_text, parts] = *message;
  HrefResolver resolver = make_resolver(parts);
  return parse_reply(envelope_text, &resolver);
}

}  // namespace h2::soap
