// The MIME binding — the third binding standardized by the W3C alongside
// SOAP and HTTP (paper Section 4: "At present there are only three kinds
// of bindings standardized by the W3C consortium, namely SOAP, HTTP and
// MIME"). Realized here as SOAP-with-Attachments (multipart/related): the
// envelope stays XML, but bulk numeric/binary parameters travel as raw
// binary attachment parts referenced by href="cid:...", dodging both the
// BASE64 4/3 expansion and the per-item XML tax — the era's standard
// remedy for exactly the encoding problem the paper describes.
//
// Wire layout:
//   --<boundary>\r\n
//   Content-Type: text/xml\r\nContent-ID: <root>\r\n\r\n  <envelope XML>
//   \r\n--<boundary>\r\n
//   Content-Type: application/octet-stream\r\n
//   Content-ID: <part1>\r\n\r\n                           <raw bytes>
//   \r\n--<boundary>--\r\n
//
// Attachment payloads: double arrays as little-endian IEEE-754 bytes,
// byte arrays verbatim. The envelope references them as
//   <name href="cid:part1" xsi:type="xsd:double[]"/>
#pragma once

#include "soap/envelope.hpp"
#include "util/byte_buffer.hpp"

namespace h2::soap {

/// A built multipart message: the Content-Type header value (carrying the
/// boundary parameter) plus the body bytes.
struct MultipartMessage {
  std::string content_type;  ///< multipart/related; boundary="..."
  ByteBuffer body;
};

/// Builds an RPC request with array/bytes params as binary attachments.
MultipartMessage build_mime_request(std::string_view operation,
                                    std::string_view service_ns,
                                    std::span<const Value> params);

/// Builds an RPC response likewise.
MultipartMessage build_mime_response(std::string_view operation,
                                     std::string_view service_ns, const Value& result);

/// Builds a fault (single-part: faults carry no bulk data).
MultipartMessage build_mime_fault(const Fault& fault);

/// Parses a multipart request; `content_type` must carry the boundary.
Result<RpcCall> parse_mime_request(std::string_view content_type,
                                   std::span<const std::uint8_t> body);

/// Parses a multipart reply.
Result<RpcReply> parse_mime_reply(std::string_view content_type,
                                  std::span<const std::uint8_t> body);

}  // namespace h2::soap
