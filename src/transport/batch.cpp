#include "transport/batch.hpp"

#include <charconv>

namespace h2::net {

namespace {

// Same shape the resilience layer stamps ("h2c-<serial>"): ids drawn from
// one network serial stream are unique across every channel of a world,
// so a batch sub-call and a singleton retry can never collide.
std::string stamp_call_id(std::uint64_t serial) {
  char buf[24] = {'h', '2', 'c', '-'};
  auto [end, ec] = std::to_chars(buf + 4, buf + sizeof(buf), serial);
  (void)ec;  // 20 digits always fit
  return std::string(buf, end);
}

}  // namespace

BatchChannel::BatchChannel(std::unique_ptr<Channel> inner, Transport& net,
                           BatchPolicy policy)
    : inner_(std::move(inner)), net_(net), policy_(policy) {
  if (policy_.max_batch == 0) policy_.max_batch = 1;
}

BatchChannel::Ticket BatchChannel::enqueue(std::string operation,
                                           std::vector<Value> params) {
  // Linger check first: a late arrival must not extend the wait of calls
  // already queued past the policy bound.
  if (policy_.max_linger > 0 && !pending_.empty() &&
      net_.now() - oldest_pending_ >= policy_.max_linger) {
    (void)flush();
  }
  if (pending_.empty()) oldest_pending_ = net_.now();

  Ticket ticket{net_.next_call_serial()};
  BatchItem item;
  item.operation = std::move(operation);
  item.params = std::move(params);
  if (policy_.attach_call_ids) item.call_id = stamp_call_id(ticket.serial);
  pending_.push_back(std::move(item));
  pending_serials_.push_back(ticket.serial);

  if (pending_.size() >= policy_.max_batch) (void)flush();
  return ticket;
}

Status BatchChannel::flush() {
  if (pending_.empty()) return Status::success();
  ++flushes_;
  std::vector<Result<Value>> results;
  Status status = inner_->invoke_batch(pending_, results);
  // The Channel contract fills `results` on both outcomes; guard anyway so
  // a short reply from a misbehaving inner channel cannot lose tickets.
  const Error short_reply = err::internal("batch reply missing this sub-call");
  for (std::size_t i = 0; i < pending_serials_.size(); ++i) {
    completed_.push_back(
        {pending_serials_[i],
         i < results.size() ? std::move(results[i]) : Result<Value>(short_reply)});
  }
  pending_.clear();
  pending_serials_.clear();
  return status;
}

Result<Value> BatchChannel::take(Ticket ticket) {
  for (std::uint64_t serial : pending_serials_) {
    if (serial == ticket.serial) {
      (void)flush();
      break;
    }
  }
  for (auto it = completed_.begin(); it != completed_.end(); ++it) {
    if (it->serial == ticket.serial) {
      Result<Value> result = std::move(it->result);
      completed_.erase(it);
      return result;
    }
  }
  return err::not_found("batch ticket " + std::to_string(ticket.serial) +
                        " unknown or already taken");
}

Result<Value> BatchChannel::invoke(std::string_view operation,
                                   std::span<const Value> params) {
  (void)flush();  // preserve program order: queued calls go out first
  return inner_->invoke(operation, params);
}

Status BatchChannel::invoke_batch(std::span<const BatchItem> calls,
                                  std::vector<Result<Value>>& results) {
  (void)flush();
  return inner_->invoke_batch(calls, results);
}

std::unique_ptr<BatchChannel> make_batch_channel(std::unique_ptr<Channel> inner,
                                                 Transport& net, BatchPolicy policy) {
  return std::make_unique<BatchChannel>(std::move(inner), net, policy);
}

}  // namespace h2::net
