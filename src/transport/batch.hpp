// BatchChannel — adaptive RPC batching over any net::Channel. Callers
// enqueue() calls and redeem Tickets; the channel packs pending calls into
// ONE invoke_batch() wire message, flushed explicitly or automatically
// when the batch fills (max_batch) or has lingered too long in virtual
// time (max_linger). This is the client half of the paper's localization
// argument applied to the wire: when N calls must traverse the full
// stub/encoder/socket/server chain anyway, traverse it once, not N times.
//
// Single-threaded by design: enqueue, flush and take must be called from
// one thread (over SockNet the wire I/O happens inside that thread's
// blocking call; the mux thread never touches the batch state).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "transport/rpc.hpp"

namespace h2::net {

/// When a BatchChannel flushes on its own.
struct BatchPolicy {
  /// Auto-flush when this many calls are pending. 1 degenerates to
  /// unbatched pass-through.
  std::size_t max_batch = 16;
  /// Auto-flush an enqueue() arriving this long (virtual time) after the
  /// oldest pending call. 0 = flush only on size/explicit flush/take.
  Nanos max_linger = 0;
  /// Stamp each sub-call with a "h2c-<serial>" idempotency key at
  /// enqueue time, so a resilient inner channel re-sends the same ids.
  bool attach_call_ids = true;
};

class BatchChannel final : public Channel {
 public:
  /// Redeemable handle for one enqueued call. Valid until the result is
  /// taken; flushing invalidates nothing.
  struct Ticket {
    std::uint64_t serial = 0;
  };

  BatchChannel(std::unique_ptr<Channel> inner, Transport& net, BatchPolicy policy);

  /// Queues one call; may auto-flush (the max_batch'th call flushes the
  /// batch it completes; a call arriving max_linger after the oldest
  /// pending one flushes the stragglers first).
  Ticket enqueue(std::string operation, std::vector<Value> params);

  /// Sends every pending call as one batch. No-op when empty. Returns the
  /// transport status (per-call results are redeemed via take()).
  Status flush();

  /// Redeems a ticket, flushing first if its call is still pending.
  /// A ticket can be taken once; redeeming it again is kNotFound.
  Result<Value> take(Ticket ticket);

  std::size_t pending() const { return pending_.size(); }

  // Channel interface: invoke() preserves program order by flushing any
  // pending batch before the direct call goes out.
  Result<Value> invoke(std::string_view operation,
                       std::span<const Value> params) override;
  Status invoke_batch(std::span<const BatchItem> calls,
                      std::vector<Result<Value>>& results) override;
  const char* binding_name() const override { return inner_->binding_name(); }
  CallStats last_stats() const override { return inner_->last_stats(); }
  void set_call_id(std::string call_id) override { inner_->set_call_id(std::move(call_id)); }
  const Endpoint* remote() const override { return inner_->remote(); }

  const BatchPolicy& policy() const { return policy_; }
  /// Batches actually sent (auto + explicit), for tests/benches.
  std::uint64_t flushes() const { return flushes_; }

 private:
  struct Completed {
    std::uint64_t serial;
    Result<Value> result;
  };

  std::unique_ptr<Channel> inner_;
  Transport& net_;
  BatchPolicy policy_;
  std::vector<BatchItem> pending_;
  std::vector<std::uint64_t> pending_serials_;
  Nanos oldest_pending_ = 0;
  std::vector<Completed> completed_;
  std::uint64_t flushes_ = 0;
};

std::unique_ptr<BatchChannel> make_batch_channel(std::unique_ptr<Channel> inner,
                                                 Transport& net,
                                                 BatchPolicy policy = {});

}  // namespace h2::net
