#include "transport/endpoint.hpp"

#include "util/strings.hpp"

namespace h2::net {

Result<Endpoint> Endpoint::parse(std::string_view uri) {
  auto scheme_end = uri.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return err::parse("endpoint: missing scheme in '" + std::string(uri) + "'");
  }
  Endpoint out;
  out.scheme = str::to_lower(uri.substr(0, scheme_end));
  std::string_view rest = uri.substr(scheme_end + 3);
  if (rest.empty()) return err::parse("endpoint: missing host in '" + std::string(uri) + "'");

  auto path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (path_start != std::string_view::npos) {
    out.path = std::string(rest.substr(path_start + 1));
  }

  auto colon = authority.find(':');
  if (colon == std::string_view::npos) {
    out.host = std::string(authority);
  } else {
    out.host = std::string(authority.substr(0, colon));
    auto port = str::parse_u64(authority.substr(colon + 1));
    if (!port.ok() || *port > 65535) {
      return err::parse("endpoint: bad port in '" + std::string(uri) + "'");
    }
    out.port = static_cast<std::uint16_t>(*port);
  }
  if (out.host.empty()) {
    return err::parse("endpoint: empty host in '" + std::string(uri) + "'");
  }
  return out;
}

std::string Endpoint::to_uri() const {
  std::string out = scheme + "://" + host;
  if (port != 0) out += ":" + std::to_string(port);
  if (!path.empty()) out += "/" + path;
  return out;
}

}  // namespace h2::net
