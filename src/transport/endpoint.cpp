#include "transport/endpoint.hpp"

#include "util/strings.hpp"

namespace h2::net {

namespace {

bool scheme_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '+' ||
         c == '-' || c == '.';
}

/// RFC-3986 scheme charset, lower-cased, with at most one '+' splitting a
/// transport prefix from the binding scheme; both halves must be non-empty
/// and start with a letter.
bool valid_scheme(std::string_view scheme) {
  std::size_t plus = std::string_view::npos;
  for (std::size_t i = 0; i < scheme.size(); ++i) {
    if (!scheme_char(scheme[i])) return false;
    if (scheme[i] == '+') {
      if (plus != std::string_view::npos) return false;  // second separator
      plus = i;
    }
  }
  auto starts_alpha = [](std::string_view s) {
    return !s.empty() && s[0] >= 'a' && s[0] <= 'z';
  };
  if (plus == std::string_view::npos) return starts_alpha(scheme);
  return starts_alpha(scheme.substr(0, plus)) && starts_alpha(scheme.substr(plus + 1));
}

}  // namespace

std::uint16_t Endpoint::default_port(std::string_view scheme) {
  // Strip any transport prefix so "tcp+http" defaults like "http".
  auto plus = scheme.find('+');
  if (plus != std::string_view::npos) scheme = scheme.substr(plus + 1);
  if (scheme == "http") return 80;
  return 0;
}

std::string_view Endpoint::binding_scheme() const {
  std::string_view s = scheme;
  auto plus = s.find('+');
  return plus == std::string_view::npos ? s : s.substr(plus + 1);
}

std::string_view Endpoint::transport_scheme() const {
  std::string_view s = scheme;
  auto plus = s.find('+');
  return plus == std::string_view::npos ? std::string_view{} : s.substr(0, plus);
}

Result<Endpoint> Endpoint::parse(std::string_view uri) {
  auto scheme_end = uri.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return err::parse("endpoint: missing scheme in '" + std::string(uri) + "'");
  }
  Endpoint out;
  out.scheme = str::to_lower(uri.substr(0, scheme_end));
  if (!valid_scheme(out.scheme)) {
    return err::parse("endpoint: bad scheme in '" + std::string(uri) + "'");
  }
  std::string_view rest = uri.substr(scheme_end + 3);
  if (rest.empty()) return err::parse("endpoint: missing host in '" + std::string(uri) + "'");

  auto path_start = rest.find('/');
  std::string_view authority =
      path_start == std::string_view::npos ? rest : rest.substr(0, path_start);
  if (path_start != std::string_view::npos) {
    // "http://h:1/" is a present-but-empty path: same endpoint as no path.
    out.path = std::string(rest.substr(path_start + 1));
  }

  auto colon = authority.find(':');
  if (colon == std::string_view::npos) {
    out.host = std::string(authority);
    out.port = default_port(out.scheme);
  } else {
    out.host = std::string(authority.substr(0, colon));
    // parse_u64 consumes the whole string, so "", "8 0", "+80", "80x" and
    // anything signed all land here; the range check catches 70000.
    auto port = str::parse_u64(authority.substr(colon + 1));
    if (!port.ok() || *port == 0 || *port > 65535) {
      return err::parse("endpoint: bad port in '" + std::string(uri) + "'");
    }
    out.port = static_cast<std::uint16_t>(*port);
  }
  if (out.host.empty()) {
    return err::parse("endpoint: empty host in '" + std::string(uri) + "'");
  }
  return out;
}

std::string Endpoint::to_uri() const {
  std::string out = scheme + "://" + host;
  if (port != 0) out += ":" + std::to_string(port);
  if (!path.empty()) out += "/" + path;
  return out;
}

}  // namespace h2::net
