// Endpoint URIs. Every WSDL port address in Harness II is one of:
//   http://<host>:<port>/<path>      SOAP or raw HTTP binding
//   xdr://<host>:<port>              direct socket-level XDR binding
//   local://<container>              same-container type-level binding
//   localobject://<container>/<id>   same-container instance binding
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace h2::net {

struct Endpoint {
  std::string scheme;  ///< "http", "xdr", "local", "localobject"
  std::string host;    ///< sim host / container name
  std::uint16_t port = 0;
  std::string path;    ///< leading '/' stripped; instance id for localobject

  /// Parses "scheme://host[:port][/path]".
  static Result<Endpoint> parse(std::string_view uri);

  /// Canonical URI form (inverse of parse()).
  std::string to_uri() const;

  bool operator==(const Endpoint&) const = default;
};

}  // namespace h2::net
