// Endpoint URIs. Every WSDL port address in Harness II is one of:
//   http://<host>:<port>/<path>      SOAP or raw HTTP binding
//   xdr://<host>:<port>              direct socket-level XDR binding
//   local://<container>              same-container type-level binding
//   localobject://<container>/<id>   same-container instance binding
//
// A scheme may also carry an explicit transport prefix, selecting which
// Transport moves the bytes while the binding stays the same:
//   tcp+xdr://<host>:<port>          XDR frames over loopback/LAN TCP
//   uds+http://<host>:<port>/<path>  HTTP over a Unix-domain socket
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace h2::net {

struct Endpoint {
  std::string scheme;  ///< lower-cased; may be composite, e.g. "tcp+xdr"
  std::string host;    ///< sim host / container name
  std::uint16_t port = 0;
  std::string path;    ///< leading '/' stripped; instance id for localobject

  /// Parses "scheme://host[:port][/path]". The scheme is validated
  /// (RFC-3986 charset, at most one '+' transport separator) and
  /// lower-cased; a missing port takes the scheme's default (http → 80);
  /// a bare trailing slash is an empty path.
  static Result<Endpoint> parse(std::string_view uri);

  /// Canonical URI form. parse(to_uri()) reproduces the Endpoint exactly.
  std::string to_uri() const;

  /// The binding half of the scheme: "xdr" for "tcp+xdr", or the whole
  /// scheme when no transport prefix is present.
  std::string_view binding_scheme() const;

  /// The transport half: "tcp" for "tcp+xdr", empty when unspecified.
  std::string_view transport_scheme() const;

  /// Well-known default port for a binding scheme (http → 80); 0 when the
  /// scheme has none.
  static std::uint16_t default_port(std::string_view scheme);

  bool operator==(const Endpoint&) const = default;
};

}  // namespace h2::net
