#include "transport/http.hpp"

#include "util/strings.hpp"

namespace h2::net::http {

namespace {

/// Splits raw bytes into (head lines, body) at the first CRLFCRLF and
/// validates Content-Length framing.
struct RawMessage {
  std::vector<std::string> lines;  // start line + header lines
  std::string body;
};

Result<RawMessage> split_message(std::span<const std::uint8_t> bytes) {
  std::string_view text(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  auto head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return err::parse("http: missing header terminator");
  }
  RawMessage out;
  std::string_view head = text.substr(0, head_end);
  std::size_t start = 0;
  while (start <= head.size()) {
    auto eol = head.find("\r\n", start);
    std::string_view line =
        eol == std::string_view::npos ? head.substr(start) : head.substr(start, eol - start);
    out.lines.emplace_back(line);
    if (eol == std::string_view::npos) break;
    start = eol + 2;
  }
  if (out.lines.empty() || out.lines[0].empty()) {
    return err::parse("http: empty start line");
  }
  out.body = std::string(text.substr(head_end + 4));
  return out;
}

Result<Headers> parse_headers(const std::vector<std::string>& lines,
                              const std::string& body) {
  Headers headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto colon = lines[i].find(':');
    if (colon == std::string::npos) {
      return err::parse("http: malformed header line '" + lines[i] + "'");
    }
    std::string name(str::trim(std::string_view(lines[i]).substr(0, colon)));
    std::string value(str::trim(std::string_view(lines[i]).substr(colon + 1)));
    if (name.empty()) return err::parse("http: empty header name");
    headers.set(std::move(name), std::move(value));
  }
  if (auto cl = headers.get("content-length")) {
    auto n = str::parse_u64(*cl);
    if (!n.ok()) return err::parse("http: bad Content-Length");
    if (*n != body.size()) {
      return err::parse("http: Content-Length " + std::string(*cl) + " != body size " +
                        std::to_string(body.size()));
    }
  } else if (!body.empty()) {
    return err::parse("http: body present without Content-Length");
  }
  return headers;
}

}  // namespace

void Headers::set(std::string name, std::string value) {
  entries_[str::to_lower(name)] = std::move(value);
}

std::optional<std::string_view> Headers::get(std::string_view name) const {
  // The comparator is transparent and case-insensitive: no lowered copy.
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return std::string_view(it->second);
}

std::string Headers::get_or(std::string_view name, std::string_view fallback) const {
  auto v = get(name);
  return std::string(v ? *v : fallback);
}

ByteBuffer Request::serialize(std::string_view host) const {
  std::string out;
  out.reserve(128 + body.size());
  out += method;
  out += ' ';
  out += target.empty() ? "/" : target;
  out += " HTTP/1.1\r\nHost: ";
  out += host;
  out += "\r\n";
  for (const auto& [name, value] : headers.entries()) {
    if (name == "host" || name == "content-length") continue;
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return ByteBuffer(out);
}

ByteBuffer Response::serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  for (const auto& [name, value] : headers.entries()) {
    if (name == "content-length") continue;
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  out += body;
  return ByteBuffer(out);
}

Result<Request> parse_request(std::span<const std::uint8_t> bytes) {
  auto raw = split_message(bytes);
  if (!raw.ok()) return raw.error();
  auto fields = str::split_nonempty(raw->lines[0], ' ');
  if (fields.size() != 3) {
    return err::parse("http: malformed request line '" + raw->lines[0] + "'");
  }
  if (fields[2] != "HTTP/1.1" && fields[2] != "HTTP/1.0") {
    return err::parse("http: unsupported version '" + fields[2] + "'");
  }
  Request out;
  out.method = fields[0];
  out.target = fields[1];
  auto headers = parse_headers(raw->lines, raw->body);
  if (!headers.ok()) return headers.error();
  out.headers = std::move(*headers);
  out.body = std::move(raw->body);
  return out;
}

Result<Response> parse_response(std::span<const std::uint8_t> bytes) {
  auto raw = split_message(bytes);
  if (!raw.ok()) return raw.error();
  const std::string& line = raw->lines[0];
  if (!str::starts_with(line, "HTTP/1.")) {
    return err::parse("http: malformed status line '" + line + "'");
  }
  auto fields = str::split(line, ' ');
  if (fields.size() < 2) return err::parse("http: malformed status line");
  auto status = str::parse_i64(fields[1]);
  if (!status.ok() || *status < 100 || *status > 599) {
    return err::parse("http: bad status code in '" + line + "'");
  }
  Response out;
  out.status = static_cast<int>(*status);
  std::vector<std::string> reason_parts(fields.begin() + 2, fields.end());
  out.reason = str::join(reason_parts, " ");
  auto headers = parse_headers(raw->lines, raw->body);
  if (!headers.ok()) return headers.error();
  out.headers = std::move(*headers);
  out.body = std::move(raw->body);
  return out;
}

Result<std::size_t> message_size(std::span<const std::uint8_t> bytes) {
  std::string_view text(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  auto head_end = text.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (text.size() > kMaxHeadBytes) {
      return err::parse("http: header exceeds " + std::to_string(kMaxHeadBytes) +
                        " bytes without terminator");
    }
    return std::size_t{0};
  }
  // Scan the (complete) head for Content-Length. This is framing only —
  // full header validation stays in parse_request/parse_response once the
  // whole message is in hand.
  std::size_t body_len = 0;
  std::string_view head = text.substr(0, head_end);
  std::size_t start = 0;
  while (start < head.size()) {
    auto eol = head.find("\r\n", start);
    std::string_view line =
        eol == std::string_view::npos ? head.substr(start) : head.substr(start, eol - start);
    auto colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string_view name = str::trim(line.substr(0, colon));
      if (name.size() == 14 && CaseInsensitiveLess::lower(name[0]) == 'c' &&
          !CaseInsensitiveLess{}(name, "content-length") &&
          !CaseInsensitiveLess{}("content-length", name)) {
        auto n = str::parse_u64(str::trim(line.substr(colon + 1)));
        if (!n.ok()) return err::parse("http: bad Content-Length");
        body_len = static_cast<std::size_t>(*n);
        break;
      }
    }
    if (eol == std::string_view::npos) break;
    start = eol + 2;
  }
  return head_end + 4 + body_len;
}

std::string_view reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace h2::net::http
