// Minimal but genuine HTTP/1.1 messages: request/response structs,
// byte-exact serialization, and a strict parser (request line / status
// line, case-insensitive headers, Content-Length framing). This is the
// layer a SOAP call must traverse, and whose cost EXP-LOC measures for
// co-located components.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace h2::net::http {

/// Case-insensitive header map (HTTP header names are case-insensitive).
class Headers {
 public:
  void set(std::string name, std::string value);
  std::optional<std::string_view> get(std::string_view name) const;
  std::string get_or(std::string_view name, std::string_view fallback) const;
  std::size_t size() const { return entries_.size(); }
  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;  // keys stored lower-case
};

struct Request {
  std::string method = "POST";
  std::string target = "/";
  Headers headers;
  std::string body;

  /// Serializes with Host, Content-Length (and Content-Type if set via
  /// headers) — a complete valid HTTP/1.1 request.
  ByteBuffer serialize(std::string_view host) const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;

  ByteBuffer serialize() const;
};

/// Parses a complete request (as delivered by SimNetwork in one unit).
Result<Request> parse_request(std::span<const std::uint8_t> bytes);

/// Parses a complete response.
Result<Response> parse_response(std::span<const std::uint8_t> bytes);

/// Canonical reason phrase for common status codes.
std::string_view reason_for(int status);

}  // namespace h2::net::http
