// Minimal but genuine HTTP/1.1 messages: request/response structs,
// byte-exact serialization, and a strict parser (request line / status
// line, case-insensitive headers, Content-Length framing). This is the
// layer a SOAP call must traverse, and whose cost EXP-LOC measures for
// co-located components.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "util/byte_buffer.hpp"
#include "util/error.hpp"

namespace h2::net::http {

/// ASCII case-insensitive ordering with transparent lookup, so header
/// gets compare a string_view against stored keys without allocating.
struct CaseInsensitiveLess {
  using is_transparent = void;
  static unsigned char lower(char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<unsigned char>(c - 'A' + 'a')
                                  : static_cast<unsigned char>(c);
  }
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    std::size_t n = a.size() < b.size() ? a.size() : b.size();
    for (std::size_t i = 0; i < n; ++i) {
      unsigned char la = lower(a[i]);
      unsigned char lb = lower(b[i]);
      if (la != lb) return la < lb;
    }
    return a.size() < b.size();
  }
};

/// Case-insensitive header map (HTTP header names are case-insensitive).
class Headers {
 public:
  using Map = std::map<std::string, std::string, CaseInsensitiveLess>;

  void set(std::string name, std::string value);
  std::optional<std::string_view> get(std::string_view name) const;
  std::string get_or(std::string_view name, std::string_view fallback) const;
  std::size_t size() const { return entries_.size(); }
  const Map& entries() const { return entries_; }

 private:
  Map entries_;  // keys stored lower-case
};

struct Request {
  std::string method = "POST";
  std::string target = "/";
  Headers headers;
  std::string body;

  /// Serializes with Host, Content-Length (and Content-Type if set via
  /// headers) — a complete valid HTTP/1.1 request.
  ByteBuffer serialize(std::string_view host) const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;

  ByteBuffer serialize() const;
};

/// Parses a complete request (one whole message: SimNetwork delivers it
/// in one unit; socket transports cut it out of the stream with
/// message_size() first).
Result<Request> parse_request(std::span<const std::uint8_t> bytes);

/// Parses a complete response.
Result<Response> parse_response(std::span<const std::uint8_t> bytes);

/// A head that hasn't terminated within this many bytes is hostile or
/// garbage, not merely fragmented.
inline constexpr std::size_t kMaxHeadBytes = 64 * 1024;

/// Incremental framing for persistent connections carrying fragmented or
/// pipelined messages: how many bytes at the front of `bytes` form ONE
/// complete head+body message?
///   0  — incomplete; feed more bytes and retry
///   n  — bytes[0..n) is a complete message for parse_request/response
/// Fails when the head exceeds kMaxHeadBytes without its CRLFCRLF
/// terminator, or a complete head declares an unparseable Content-Length.
/// A complete head with no Content-Length frames a bodyless message
/// (every message we emit declares its length explicitly).
Result<std::size_t> message_size(std::span<const std::uint8_t> bytes);

/// Canonical reason phrase for common status codes.
std::string_view reason_for(int status);

}  // namespace h2::net::http
