#include "transport/marshal.hpp"

namespace h2::net {

namespace {
constexpr std::uint32_t kCallMagic = 0x48325251;          // "H2RQ"
constexpr std::uint32_t kResilientCallMagic = 0x48325243;  // "H2RC"
constexpr std::uint32_t kReplyMagic = 0x48325250;          // "H2RP"
}  // namespace

void marshal_value(enc::XdrWriter& writer, const Value& value) {
  writer.put_string(value.name());
  writer.put_u32(static_cast<std::uint32_t>(value.kind()));
  switch (value.kind()) {
    case ValueKind::kVoid:
      break;
    case ValueKind::kBool:
      writer.put_bool(value.as_bool().value());
      break;
    case ValueKind::kInt:
      writer.put_i64(value.as_int().value());
      break;
    case ValueKind::kDouble:
      writer.put_f64(value.as_double().value());
      break;
    case ValueKind::kString:
      writer.put_string(value.as_string().value());
      break;
    case ValueKind::kDoubleArray:
      writer.put_f64_array(value.doubles_view());
      break;
    case ValueKind::kBytes:
      writer.put_opaque(value.bytes_view());
      break;
  }
}

Result<Value> unmarshal_value(enc::XdrReader& reader) {
  auto name = reader.get_string();
  if (!name.ok()) return name.error().context("value name");
  auto tag = reader.get_u32();
  if (!tag.ok()) return tag.error().context("value kind");
  switch (static_cast<ValueKind>(*tag)) {
    case ValueKind::kVoid:
      return Value::of_void(std::move(*name));
    case ValueKind::kBool: {
      auto v = reader.get_bool();
      if (!v.ok()) return v.error();
      return Value::of_bool(*v, std::move(*name));
    }
    case ValueKind::kInt: {
      auto v = reader.get_i64();
      if (!v.ok()) return v.error();
      return Value::of_int(*v, std::move(*name));
    }
    case ValueKind::kDouble: {
      auto v = reader.get_f64();
      if (!v.ok()) return v.error();
      return Value::of_double(*v, std::move(*name));
    }
    case ValueKind::kString: {
      auto v = reader.get_string();
      if (!v.ok()) return v.error();
      return Value::of_string(std::move(*v), std::move(*name));
    }
    case ValueKind::kDoubleArray: {
      auto v = reader.get_f64_array();
      if (!v.ok()) return v.error();
      return Value::of_doubles(std::move(*v), std::move(*name));
    }
    case ValueKind::kBytes: {
      auto v = reader.get_opaque();
      if (!v.ok()) return v.error();
      return Value::of_bytes(std::move(*v), std::move(*name));
    }
  }
  return err::parse("xdr frame: unknown value kind tag " + std::to_string(*tag));
}

ByteBuffer marshal_call(std::string_view operation, std::span<const Value> params,
                        std::string_view call_id) {
  enc::XdrWriter writer;
  if (call_id.empty()) {
    writer.put_u32(kCallMagic);
  } else {
    writer.put_u32(kResilientCallMagic);
    writer.put_string(call_id);
  }
  writer.put_string(operation);
  writer.put_u32(static_cast<std::uint32_t>(params.size()));
  for (const Value& p : params) marshal_value(writer, p);
  return writer.take();
}

Result<UnmarshaledCall> unmarshal_call(std::span<const std::uint8_t> bytes) {
  enc::XdrReader reader(bytes);
  auto magic = reader.get_u32();
  if (!magic.ok()) return magic.error();
  if (*magic != kCallMagic && *magic != kResilientCallMagic) {
    return err::parse("xdr frame: bad call magic");
  }
  UnmarshaledCall out;
  if (*magic == kResilientCallMagic) {
    auto id = reader.get_string();
    if (!id.ok()) return id.error().context("call id");
    out.call_id = std::move(*id);
  }
  auto op = reader.get_string();
  if (!op.ok()) return op.error().context("call operation");
  out.operation = std::move(*op);
  auto count = reader.get_u32();
  if (!count.ok()) return count.error();
  out.params.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto v = unmarshal_value(reader);
    if (!v.ok()) return v.error().context("call param " + std::to_string(i));
    out.params.push_back(std::move(*v));
  }
  if (!reader.exhausted()) return err::parse("xdr frame: trailing bytes in call");
  return out;
}

ByteBuffer marshal_reply(const Result<Value>& outcome) {
  enc::XdrWriter writer;
  writer.put_u32(kReplyMagic);
  writer.put_bool(outcome.ok());
  if (outcome.ok()) {
    marshal_value(writer, *outcome);
  } else {
    writer.put_u32(static_cast<std::uint32_t>(outcome.error().code()));
    writer.put_string(outcome.error().message());
  }
  return writer.take();
}

Result<Value> unmarshal_reply(std::span<const std::uint8_t> bytes) {
  enc::XdrReader reader(bytes);
  auto magic = reader.get_u32();
  if (!magic.ok()) return magic.error();
  if (*magic != kReplyMagic) return err::parse("xdr frame: bad reply magic");
  auto ok = reader.get_bool();
  if (!ok.ok()) return ok.error();
  if (*ok) {
    auto v = unmarshal_value(reader);
    if (!v.ok()) return v.error().context("reply value");
    if (!reader.exhausted()) return err::parse("xdr frame: trailing bytes in reply");
    return v;
  }
  auto code = reader.get_u32();
  if (!code.ok()) return code.error();
  auto message = reader.get_string();
  if (!message.ok()) return message.error();
  if (*code > static_cast<std::uint32_t>(ErrorCode::kInternal)) {
    return err::parse("xdr frame: unknown error code " + std::to_string(*code));
  }
  return Error(static_cast<ErrorCode>(*code), std::move(*message));
}

}  // namespace h2::net
