#include "transport/marshal.hpp"

namespace h2::net {

namespace {
constexpr std::uint32_t kCallMagic = 0x48325251;           // "H2RQ"
constexpr std::uint32_t kResilientCallMagic = 0x48325243;  // "H2RC"
constexpr std::uint32_t kReplyMagic = 0x48325250;          // "H2RP"
constexpr std::uint32_t kBatchCallMagic = 0x48325242;      // "H2RB"
constexpr std::uint32_t kBatchReplyMagic = 0x4832525A;     // "H2RZ"

bool starts_with_magic(std::span<const std::uint8_t> bytes, std::uint32_t magic) {
  if (bytes.size() < 4) return false;
  const std::uint32_t head = (std::uint32_t{bytes[0]} << 24) |
                             (std::uint32_t{bytes[1]} << 16) |
                             (std::uint32_t{bytes[2]} << 8) | std::uint32_t{bytes[3]};
  return head == magic;
}

// Shared splitter: both batch frames are magic | u32 count | opaque*.
Result<std::vector<std::span<const std::uint8_t>>> split_batch_frames(
    std::span<const std::uint8_t> bytes, std::uint32_t expected_magic,
    const char* what) {
  enc::XdrReader reader(bytes);  // borrowing mode: views alias `bytes`
  auto magic = reader.get_u32();
  if (!magic.ok()) return magic.error();
  if (*magic != expected_magic) {
    return err::parse(std::string("xdr frame: bad ") + what + " magic");
  }
  auto count = reader.get_u32();
  if (!count.ok()) return count.error();
  if (*count > kMaxBatchCalls) {
    return err::parse("xdr frame: batch count " + std::to_string(*count) +
                      " exceeds limit " + std::to_string(kMaxBatchCalls));
  }
  std::vector<std::span<const std::uint8_t>> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto view = reader.get_opaque_view();
    if (!view.ok()) {
      return view.error().context("batch sub-frame " + std::to_string(i));
    }
    out.push_back(*view);
  }
  if (!reader.exhausted()) return err::parse("xdr frame: trailing bytes in batch");
  return out;
}
}  // namespace

void marshal_value(enc::XdrWriter& writer, const Value& value) {
  writer.put_string(value.name());
  writer.put_u32(static_cast<std::uint32_t>(value.kind()));
  switch (value.kind()) {
    case ValueKind::kVoid:
      break;
    case ValueKind::kBool:
      writer.put_bool(value.as_bool().value());
      break;
    case ValueKind::kInt:
      writer.put_i64(value.as_int().value());
      break;
    case ValueKind::kDouble:
      writer.put_f64(value.as_double().value());
      break;
    case ValueKind::kString:
      writer.put_string(value.as_string().value());
      break;
    case ValueKind::kDoubleArray:
      writer.put_f64_array(value.doubles_view());
      break;
    case ValueKind::kBytes:
      writer.put_opaque(value.bytes_view());
      break;
  }
}

Result<Value> unmarshal_value(enc::XdrReader& reader) {
  auto name = reader.get_string();
  if (!name.ok()) return name.error().context("value name");
  auto tag = reader.get_u32();
  if (!tag.ok()) return tag.error().context("value kind");
  switch (static_cast<ValueKind>(*tag)) {
    case ValueKind::kVoid:
      return Value::of_void(std::move(*name));
    case ValueKind::kBool: {
      auto v = reader.get_bool();
      if (!v.ok()) return v.error();
      return Value::of_bool(*v, std::move(*name));
    }
    case ValueKind::kInt: {
      auto v = reader.get_i64();
      if (!v.ok()) return v.error();
      return Value::of_int(*v, std::move(*name));
    }
    case ValueKind::kDouble: {
      auto v = reader.get_f64();
      if (!v.ok()) return v.error();
      return Value::of_double(*v, std::move(*name));
    }
    case ValueKind::kString: {
      auto v = reader.get_string();
      if (!v.ok()) return v.error();
      return Value::of_string(std::move(*v), std::move(*name));
    }
    case ValueKind::kDoubleArray: {
      auto v = reader.get_f64_array();
      if (!v.ok()) return v.error();
      return Value::of_doubles(std::move(*v), std::move(*name));
    }
    case ValueKind::kBytes: {
      auto v = reader.get_opaque();
      if (!v.ok()) return v.error();
      return Value::of_bytes(std::move(*v), std::move(*name));
    }
  }
  return err::parse("xdr frame: unknown value kind tag " + std::to_string(*tag));
}

void marshal_call_into(enc::XdrWriter& writer, std::string_view operation,
                       std::span<const Value> params, std::string_view call_id) {
  if (call_id.empty()) {
    writer.put_u32(kCallMagic);
  } else {
    writer.put_u32(kResilientCallMagic);
    writer.put_string(call_id);
  }
  writer.put_string(operation);
  writer.put_u32(static_cast<std::uint32_t>(params.size()));
  for (const Value& p : params) marshal_value(writer, p);
}

ByteBuffer marshal_call(std::string_view operation, std::span<const Value> params,
                        std::string_view call_id) {
  enc::XdrWriter writer;
  marshal_call_into(writer, operation, params, call_id);
  return writer.take();
}

Result<UnmarshaledCall> unmarshal_call(std::span<const std::uint8_t> bytes) {
  enc::XdrReader reader(bytes);
  auto magic = reader.get_u32();
  if (!magic.ok()) return magic.error();
  if (*magic != kCallMagic && *magic != kResilientCallMagic) {
    return err::parse("xdr frame: bad call magic");
  }
  UnmarshaledCall out;
  if (*magic == kResilientCallMagic) {
    auto id = reader.get_string();
    if (!id.ok()) return id.error().context("call id");
    out.call_id = std::move(*id);
  }
  auto op = reader.get_string();
  if (!op.ok()) return op.error().context("call operation");
  out.operation = std::move(*op);
  auto count = reader.get_u32();
  if (!count.ok()) return count.error();
  out.params.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto v = unmarshal_value(reader);
    if (!v.ok()) return v.error().context("call param " + std::to_string(i));
    out.params.push_back(std::move(*v));
  }
  if (!reader.exhausted()) return err::parse("xdr frame: trailing bytes in call");
  return out;
}

void marshal_reply_into(enc::XdrWriter& writer, const Result<Value>& outcome) {
  writer.put_u32(kReplyMagic);
  writer.put_bool(outcome.ok());
  if (outcome.ok()) {
    marshal_value(writer, *outcome);
  } else {
    writer.put_u32(static_cast<std::uint32_t>(outcome.error().code()));
    writer.put_string(outcome.error().message());
  }
}

ByteBuffer marshal_reply(const Result<Value>& outcome) {
  enc::XdrWriter writer;
  marshal_reply_into(writer, outcome);
  return writer.take();
}

Result<Value> unmarshal_reply(std::span<const std::uint8_t> bytes) {
  enc::XdrReader reader(bytes);
  auto magic = reader.get_u32();
  if (!magic.ok()) return magic.error();
  if (*magic != kReplyMagic) return err::parse("xdr frame: bad reply magic");
  auto ok = reader.get_bool();
  if (!ok.ok()) return ok.error();
  if (*ok) {
    auto v = unmarshal_value(reader);
    if (!v.ok()) return v.error().context("reply value");
    if (!reader.exhausted()) return err::parse("xdr frame: trailing bytes in reply");
    return v;
  }
  auto code = reader.get_u32();
  if (!code.ok()) return code.error();
  auto message = reader.get_string();
  if (!message.ok()) return message.error();
  if (*code > static_cast<std::uint32_t>(ErrorCode::kInternal)) {
    return err::parse("xdr frame: unknown error code " + std::to_string(*code));
  }
  return Error(static_cast<ErrorCode>(*code), std::move(*message));
}

bool is_batch_call(std::span<const std::uint8_t> bytes) {
  return starts_with_magic(bytes, kBatchCallMagic);
}

bool is_batch_reply(std::span<const std::uint8_t> bytes) {
  return starts_with_magic(bytes, kBatchReplyMagic);
}

ByteBuffer marshal_batch_call(std::span<const BatchItem> calls, ByteBuffer scratch) {
  scratch.clear();
  enc::XdrWriter writer(std::move(scratch));
  writer.put_u32(kBatchCallMagic);
  writer.put_u32(static_cast<std::uint32_t>(calls.size()));
  for (const BatchItem& item : calls) {
    // Length-prefix each sub-frame by backpatching: marshal straight into
    // the batch buffer, no per-sub-call staging copy. XDR streams are
    // 4-aligned by construction, so the opaque needs no padding.
    const std::size_t length_at = writer.size();
    writer.put_u32(0);
    const std::size_t start = writer.size();
    marshal_call_into(writer, item.operation, item.params, item.call_id);
    writer.buffer().patch_u32_be(length_at,
                                 static_cast<std::uint32_t>(writer.size() - start));
  }
  return writer.take();
}

void marshal_batch_reply_begin(enc::XdrWriter& writer, std::uint32_t count) {
  writer.put_u32(kBatchReplyMagic);
  writer.put_u32(count);
}

Result<std::vector<std::span<const std::uint8_t>>> split_batch_call(
    std::span<const std::uint8_t> bytes) {
  return split_batch_frames(bytes, kBatchCallMagic, "batch call");
}

Result<std::vector<std::span<const std::uint8_t>>> split_batch_reply(
    std::span<const std::uint8_t> bytes) {
  return split_batch_frames(bytes, kBatchReplyMagic, "batch reply");
}

}  // namespace h2::net
