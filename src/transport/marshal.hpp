// XDR framing for the direct-socket binding: values, call frames and
// reply frames. This is the wire format of the paper's proposed XDR
// binding — no XML, no text, counted numeric arrays (Section 5).
//
// Frames:
//   call  := magic "H2RQ" | string operation | u32 nparams | value*
//   rcall := magic "H2RC" | string call-id | string operation | u32 nparams | value*
//   reply := magic "H2RP" | bool ok | (value | u32 errcode, string errmsg)
//   value := string name | u32 kind-tag | payload(kind)
//
// "H2RC" is the resilient-call variant: identical to "H2RQ" plus a
// leading idempotency key, so servers can deduplicate retried calls.
// Plain "H2RQ" frames remain valid — old clients need not change.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "encoding/value.hpp"
#include "encoding/xdr.hpp"
#include "util/error.hpp"

namespace h2::net {

/// Appends one Value to an XDR stream.
void marshal_value(enc::XdrWriter& writer, const Value& value);

/// Reads one Value from an XDR stream.
Result<Value> unmarshal_value(enc::XdrReader& reader);

/// Builds a complete call frame. A non-empty `call_id` selects the "H2RC"
/// resilient-call frame carrying the idempotency key; empty keeps the
/// classic "H2RQ" layout byte-for-byte.
ByteBuffer marshal_call(std::string_view operation, std::span<const Value> params,
                        std::string_view call_id = {});

struct UnmarshaledCall {
  std::string operation;
  std::vector<Value> params;
  std::string call_id;  ///< empty for plain "H2RQ" frames
};
Result<UnmarshaledCall> unmarshal_call(std::span<const std::uint8_t> bytes);

/// Builds a reply frame carrying either a value or an error.
ByteBuffer marshal_reply(const Result<Value>& outcome);

/// Decodes a reply frame back into Result<Value> (remote errors come back
/// with their original ErrorCode).
Result<Value> unmarshal_reply(std::span<const std::uint8_t> bytes);

}  // namespace h2::net
