// XDR framing for the direct-socket binding: values, call frames and
// reply frames. This is the wire format of the paper's proposed XDR
// binding — no XML, no text, counted numeric arrays (Section 5).
//
// Frames:
//   call   := magic "H2RQ" | string operation | u32 nparams | value*
//   rcall  := magic "H2RC" | string call-id | string operation | u32 nparams | value*
//   reply  := magic "H2RP" | bool ok | (value | u32 errcode, string errmsg)
//   batch  := magic "H2RB" | u32 ncalls | opaque(call-or-rcall frame)*
//   breply := magic "H2RZ" | u32 ncalls | opaque(reply frame)*
//   value  := string name | u32 kind-tag | payload(kind)
//
// "H2RC" is the resilient-call variant: identical to "H2RQ" plus a
// leading idempotency key, so servers can deduplicate retried calls.
// Plain "H2RQ" frames remain valid — old clients need not change.
//
// "H2RB"/"H2RZ" are the batching layer's multi-call frames: each
// sub-frame is a complete, length-prefixed singleton frame, so a batch
// sub-reply is byte-identical to the reply a singleton call would have
// received — which is what lets the server's DedupCache replay cached
// singleton replies into batches (and vice versa) without re-encoding.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "encoding/value.hpp"
#include "encoding/xdr.hpp"
#include "util/error.hpp"

namespace h2::net {

/// Appends one Value to an XDR stream.
void marshal_value(enc::XdrWriter& writer, const Value& value);

/// Reads one Value from an XDR stream.
Result<Value> unmarshal_value(enc::XdrReader& reader);

/// Builds a complete call frame. A non-empty `call_id` selects the "H2RC"
/// resilient-call frame carrying the idempotency key; empty keeps the
/// classic "H2RQ" layout byte-for-byte.
ByteBuffer marshal_call(std::string_view operation, std::span<const Value> params,
                        std::string_view call_id = {});

struct UnmarshaledCall {
  std::string operation;
  std::vector<Value> params;
  std::string call_id;  ///< empty for plain "H2RQ" frames
};
Result<UnmarshaledCall> unmarshal_call(std::span<const std::uint8_t> bytes);

/// Builds a reply frame carrying either a value or an error.
ByteBuffer marshal_reply(const Result<Value>& outcome);

/// Decodes a reply frame back into Result<Value> (remote errors come back
/// with their original ErrorCode).
Result<Value> unmarshal_reply(std::span<const std::uint8_t> bytes);

// ---- batching -----------------------------------------------------------------

/// One call inside a batch. A non-empty `call_id` gives that sub-call its
/// own idempotency key (sub-frame becomes "H2RC"), preserving at-most-once
/// semantics per sub-call when the whole batch is retried.
struct BatchItem {
  std::string operation;
  std::vector<Value> params;
  std::string call_id;
};

/// Upper bound on sub-frames per batch; unmarshalling rejects larger
/// counts before reserving anything (guards hostile count prefixes).
inline constexpr std::uint32_t kMaxBatchCalls = 4096;

// SOAP batch header vocabulary (the XML bindings mark batch envelopes
// with these headers; the XDR binding uses the "H2RB" magic instead).
inline constexpr const char* kBatchHeaderNs = "http://harness2/batch";
inline constexpr const char* kBatchCountHeaderName = "BatchCount";
inline constexpr const char* kBatchIdsHeaderName = "BatchCallIds";

/// Streaming forms of marshal_call/marshal_reply: append the frame to an
/// existing writer so batch assembly reuses one buffer for many frames.
void marshal_call_into(enc::XdrWriter& writer, std::string_view operation,
                       std::span<const Value> params, std::string_view call_id = {});
void marshal_reply_into(enc::XdrWriter& writer, const Result<Value>& outcome);

/// True when `bytes` begins with the "H2RB" batch-call magic — how the
/// servers route between the singleton and batch dispatch paths.
bool is_batch_call(std::span<const std::uint8_t> bytes);
/// True when `bytes` begins with the "H2RZ" batch-reply magic.
bool is_batch_reply(std::span<const std::uint8_t> bytes);

/// Builds a complete "H2RB" frame. `scratch` (optional) donates its
/// capacity — pass a pooled buffer to make assembly allocation-free.
ByteBuffer marshal_batch_call(std::span<const BatchItem> calls,
                              ByteBuffer scratch = {});

/// Starts a "H2RZ" batch-reply frame in `writer`; the server then appends
/// `count` length-prefixed sub-replies (put_opaque of a complete reply
/// frame, or a backpatched in-place marshal_reply_into).
void marshal_batch_reply_begin(enc::XdrWriter& writer, std::uint32_t count);

/// Splits a "H2RB" frame into views of its sub-call frames. Zero-copy:
/// the spans alias `bytes` and each is a complete call/rcall frame for
/// unmarshal_call.
Result<std::vector<std::span<const std::uint8_t>>> split_batch_call(
    std::span<const std::uint8_t> bytes);

/// Splits a "H2RZ" frame into views of its sub-reply frames (each one a
/// complete reply frame for unmarshal_reply). Zero-copy, aliases `bytes`.
Result<std::vector<std::span<const std::uint8_t>>> split_batch_reply(
    std::span<const std::uint8_t> bytes);

}  // namespace h2::net
